/// dvfs_execute: run a plan on real worker threads (dvfs::rt) and compare
/// the wall clock against the model — the live half of the paper's
/// evaluation, time-dilated to taste.
///
///   dvfs_execute --plan plan.csv --time-scale 1e-3
///   dvfs_execute --plan plan.csv --hw auto --record-out run.dfr
///
/// Flags: see kUsage below (also printed by --help).
#include <cstdio>
#include <memory>
#include <set>

#include "dvfs/core/plan_io.h"
#include "dvfs/obs/build_info.h"
#include "dvfs/obs/health.h"
#include "dvfs/obs/hw_telemetry.h"
#include "dvfs/obs/recorder.h"
#include "dvfs/obs/trace.h"
#include "dvfs/rt/executor.h"
#include "tool_common.h"

namespace {

constexpr const char* kUsage =
    "usage: dvfs_execute --plan plan.csv [flags]\n"
    "  --plan PATH          plan CSV                          (required)\n"
    "  --model SPEC         table2 | cubic:<n>                (table2)\n"
    "  --time-scale S       wall seconds per model second     (1e-3)\n"
    "  --pin                pin worker threads to CPUs (best effort)\n"
    "  --hw SPEC            hardware telemetry provider:\n"
    "                       auto | perf | timer | model | off |\n"
    "                       fake[:cycles=A,time=B,energy=C,ipc=D]\n"
    "                       (default off; measures per-task cycles/CPI\n"
    "                       via perf_event_open and energy via RAPL,\n"
    "                       falling back to the thread timer / model\n"
    "                       with explicit source labels)\n"
    "  --trace-out PATH     Chrome trace_event JSON timeline of the run\n"
    "  --metrics-out PATH   metrics-registry JSON snapshot\n"
    "  --record-out PATH    .dfr flight recording (v2 when --hw is on;\n"
    "                       summarize drift with `dvfs_inspect drift`)\n"
    "  --health-config C    SLO rules: \"builtin\" or a dvfs-health-v1\n"
    "                       JSON path; enables burn-rate alerting\n"
    "  --health-period S    health sampling period in seconds (0.5);\n"
    "                       also enables the monitor (builtin rules)\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(argc, argv,
                          {"plan", "model", "time-scale", "pin", "hw",
                           "trace-out", "metrics-out", "record-out",
                           "health-config", "health-period", "help"});
    if (args.has("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    obs::register_build_info(obs::Registry::global());
    const core::Plan plan = core::read_plan_csv_file(args.get_string("plan"));
    const core::EnergyModel model =
        tools::model_from_flag(args.get_string("model", "table2"));
    const double scale = args.get_double("time-scale", 1e-3);

    // Model-side expectations for the comparison lines.
    Seconds model_makespan = 0.0;
    for (const core::CorePlan& c : plan.cores) {
      Seconds clock = 0.0;
      for (const core::ScheduledTask& st : c.sequence) {
        clock += model.task_time(st.cycles, st.rate_idx);
      }
      model_makespan = std::max(model_makespan, clock);
    }
    std::printf("executing %zu tasks on %zu worker threads "
                "(expected wall time ~%.2f s)...\n",
                plan.num_tasks(), plan.num_cores(), model_makespan * scale);

    rt::RealtimeExecutor exec(
        model, {.time_scale = scale, .pin_threads = args.has("pin")});
    const std::unique_ptr<obs::hw::HwProvider> hw =
        obs::hw::make_provider(args.get_string("hw", "off"));
    if (hw != nullptr) {
      exec.set_hw_provider(hw.get());
      std::printf("hardware telemetry: %s\n", hw->describe().c_str());
    }
    // One SPSC channel per worker thread (the executor requires it).
    obs::Recorder recorder(std::max<std::size_t>(1, plan.num_cores()));
    if (args.has("record-out")) exec.set_recorder(&recorder);
    std::unique_ptr<obs::health::HealthMonitor> monitor;
    if (args.has("health-config") || args.has("health-period")) {
      monitor = std::make_unique<obs::health::HealthMonitor>(
          obs::Registry::global(),
          obs::health::load_rules(args.get_string("health-config", "")),
          obs::health::HealthMonitor::Options{
              .period_s = args.get_double("health-period", 0.5)});
      if (args.has("record-out")) {
        // Own ring: health events must survive worker rings overflowing.
        monitor->set_channel(
            &recorder.add_channel(obs::Recorder::kDefaultCapacity));
      }
      monitor->start();
    }
    const rt::RtResult r = exec.execute(plan);
    if (monitor != nullptr) {
      // Settle and take the final tick before the drain below, so the
      // recording and the snapshot carry the alerts' end state.
      monitor->settle();
      monitor->stop();
      std::printf("health: %zu alert(s) firing after %llu ticks\n",
                  monitor->firing_count(),
                  static_cast<unsigned long long>(monitor->ticks()));
    }
    if (args.has("record-out")) {
      recorder.drain();
      recorder.capture_metrics(obs::Registry::global());
      const std::string path = args.get_string("record-out");
      recorder.write_file(path);
      std::printf("wrote %zu recorded events to %s\n",
                  recorder.events().size(), path.c_str());
    }
    if (args.has("trace-out")) {
      // The executor records rather than traces directly; the recording
      // replays into the same trace JSON a live tracer would have
      // produced (dvfs_inspect replay does the identical transform).
      DVFS_REQUIRE(args.has("record-out"),
                   "--trace-out needs --record-out (the trace is replayed "
                   "from the recording)");
      obs::TraceWriter writer;
      obs::Recording recording;
      recording.events = recorder.events();
      obs::replay_to_trace(recording, writer);
      const std::string path = args.get_string("trace-out");
      writer.write_file(path);
      std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                  writer.size(), path.c_str());
    }
    if (args.has("metrics-out")) {
      const std::string path = args.get_string("metrics-out");
      obs::write_json_file(path, obs::Registry::global().to_json());
      std::printf("wrote metrics snapshot to %s\n", path.c_str());
    }

    std::printf("done: %zu tasks, wall makespan %.3f s "
                "(model: %.3f s, drift %+.2f%%)\n",
                r.tasks.size(), r.wall_makespan, model_makespan * scale,
                (r.wall_makespan / (model_makespan * scale) - 1.0) * 100.0);
    std::printf("model energy charged: %.1f J; worst per-task duration "
                "drift %.1f%%\n",
                r.model_energy, r.worst_relative_drift() * 100.0);
    if (hw != nullptr) {
      std::printf("telemetry drift (measured/predicted): cycles %.6f | "
                  "duration %.6f | energy %.6f (%llu measured spans, "
                  "%llu model-charged)\n",
                  r.drift.cycles_ratio, r.drift.duration_ratio,
                  r.drift.energy_ratio,
                  static_cast<unsigned long long>(r.drift.spans_measured),
                  static_cast<unsigned long long>(r.drift.spans_model));
    }
    return 0;
  });
}
