/// dvfs_execute: run a plan on real worker threads (dvfs::rt) and compare
/// the wall clock against the model — the live half of the paper's
/// evaluation, time-dilated to taste. With `--serve` it becomes the
/// long-running scheduling daemon instead: a sharded online LMC service
/// (dvfs::svc) admitting tasks over HTTP until SIGINT/SIGTERM drains it.
///
///   dvfs_execute --plan plan.csv --time-scale 1e-3
///   dvfs_execute --plan plan.csv --hw auto --record-out run.dfr
///   dvfs_execute --serve --listen :9464 --shards 4 --cores 8
///
/// Serve-mode API (on the same server that exposes /metrics):
///   POST /submit           {"id":1,"cycles":4000000} or
///                          {"tasks":[{"id":...,"cycles":...},...]}
///                          → 202 {"accepted":..,"rejected":..};
///                          503 when backpressure rejected every task
///   GET  /schedule/{id}    → 200 placement decision JSON | 404
///   GET  /tasks/{id}/trace → 200 per-task request timeline JSON | 404
///   GET  /healthz          → 200 ok / 503 firing (with --health-*)
/// /metrics histogram buckets carry OpenMetrics-style trace-id
/// exemplars from the service's request-tracing layer.
///
/// Flags: see kUsage below (also printed by --help).
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <set>
#include <thread>

#include "dvfs/core/plan_io.h"
#include "dvfs/obs/build_info.h"
#include "dvfs/obs/health.h"
#include "dvfs/obs/hw_telemetry.h"
#include "dvfs/obs/json.h"
#include "dvfs/obs/promtext.h"
#include "dvfs/obs/recorder.h"
#include "dvfs/obs/trace.h"
#include "dvfs/rt/executor.h"
#include "dvfs/svc/http.h"
#include "dvfs/svc/service.h"
#include "tool_common.h"

namespace {

constexpr const char* kUsage =
    "usage: dvfs_execute --plan plan.csv [flags]\n"
    "       dvfs_execute --serve --listen HOST:PORT [flags]\n"
    "  --plan PATH          plan CSV                (required unless --serve)\n"
    "  --model SPEC         table2 | cubic:<n>                (table2)\n"
    "  --time-scale S       wall seconds per model second     (1e-3;\n"
    "                       in serve mode: 0 = queue-only, no virtual\n"
    "                       execution)\n"
    "  --pin                pin worker threads to CPUs (best effort)\n"
    "  --hw SPEC            hardware telemetry provider:\n"
    "                       auto | perf | timer | model | off |\n"
    "                       fake[:cycles=A,time=B,energy=C,ipc=D]\n"
    "                       (default off; measures per-task cycles/CPI\n"
    "                       via perf_event_open and energy via RAPL,\n"
    "                       falling back to the thread timer / model\n"
    "                       with explicit source labels)\n"
    "  --trace-out PATH     Chrome trace_event JSON timeline of the run\n"
    "  --metrics-out PATH   metrics-registry JSON snapshot\n"
    "  --record-out PATH    .dfr flight recording (v2 when --hw is on;\n"
    "                       summarize drift with `dvfs_inspect drift`)\n"
    "  --health-config C    SLO rules: \"builtin\" or a dvfs-health-v1\n"
    "                       JSON path; enables burn-rate alerting\n"
    "  --health-period S    health sampling period in seconds (0.5);\n"
    "                       also enables the monitor (builtin rules)\n"
    "  --profile-out PATH   gzipped pprof CPU profile of the run (plan\n"
    "                       mode: enables the sampling profiler; serve\n"
    "                       mode: always on, this adds the file dump)\n"
    "  --profile-hz N       profiler sampling rate per thread    (100)\n"
    "serve mode (long-running sharded scheduling daemon):\n"
    "  --serve              run the dvfs::svc daemon instead of a plan\n"
    "  --listen HOST:PORT   bind the HTTP API + /metrics     (required)\n"
    "  --shards N           independent LMC shards            (2)\n"
    "  --cores N            total cores, partitioned across shards (4)\n"
    "  --re R / --rt R      cost weights, money per J / per s (0.4/0.1)\n"
    "  --ring-capacity N    per-shard admission ring slots    (65536)\n"
    "  --max-batch N        ring messages per worker iteration (256;\n"
    "                       0 starves the shards: the 503 test hook)\n"
    "  --steal-ratio R      steal when max/min shard queue cost exceeds\n"
    "                       R (4.0; 0 disables work stealing)\n"
    "  --status-capacity N  remembered placements for /schedule (1M)\n"
    "  --serve-seconds N    exit after N s (0 = until SIGINT/SIGTERM;\n"
    "                       both drain gracefully and flush outputs)\n";

// Written by the signal handler, polled by the serve loop. sig_atomic_t
// per the C standard; volatile so the poll is not hoisted.
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int signum) { g_signal = signum; }

int run_serve(const dvfs::util::Args& args) {
  using namespace dvfs;
  obs::register_build_info(obs::Registry::global());
  const core::EnergyModel model =
      tools::model_from_flag(args.get_string("model", "table2"));
  // Online defaults per the paper's interactive experiments.
  const core::CostParams params{.re = args.get_double("re", 0.4),
                                .rt = args.get_double("rt", 0.1)};
  svc::ServiceOptions opts;
  opts.shards = args.get_u64("shards", 2);
  opts.cores = args.get_u64("cores", 4);
  opts.ring_capacity = args.get_u64("ring-capacity", std::size_t{1} << 16);
  opts.max_batch = args.get_u64("max-batch", 256);
  opts.steal_ratio = args.get_double("steal-ratio", 4.0);
  opts.status_capacity = args.get_u64("status-capacity", std::size_t{1} << 20);
  opts.time_scale = args.get_double("time-scale", 0.0);

  svc::SchedulingService svc(model, params, opts);
  obs::Recorder recorder(std::max<std::size_t>(1, opts.shards));
  if (args.has("record-out")) svc.set_recorder(&recorder);

  // Serve mode keeps the sampling profiler always on so operators can
  // pull /debug/pprof/profile from a live daemon without a restart.
  tools::ToolProfile prof = tools::start_tool_profiler(
      args, args.has("record-out") ? &recorder : nullptr,
      /*always_on=*/true);

  std::unique_ptr<obs::health::HealthMonitor> monitor;
  if (args.has("health-config") || args.has("health-period")) {
    monitor = std::make_unique<obs::health::HealthMonitor>(
        obs::Registry::global(),
        obs::health::load_rules(args.get_string("health-config", "")),
        obs::health::HealthMonitor::Options{
            .period_s = args.get_double("health-period", 0.5)});
    if (args.has("record-out")) {
      monitor->set_channel(
          &recorder.add_channel(obs::Recorder::kDefaultCapacity));
    }
    monitor->start();
  }
  svc.start();

  // /metrics serves exemplar-bearing histograms: the service's trace
  // layer remembers a recent trace id per latency bucket.
  svc::SchedulingService* s = &svc;
  obs::MetricsHttpServer server(
      obs::parse_listen(args.get_string("listen")), [s] {
        return obs::prometheus_text(obs::Registry::global(),
                                    &s->exemplars());
      });
  svc::register_service_routes(server, svc);
  obs::prof::register_pprof_route(server, *prof.profiler);
  if (monitor != nullptr) {
    obs::health::HealthMonitor* m = monitor.get();
    server.add_route("/healthz", [m] {
      return obs::MetricsHttpServer::Response{
          .status = m->healthy() ? 200 : 503,
          .content_type = "application/json; charset=utf-8",
          .body = m->status_json().dump(2) + "\n"};
    });
  }
  server.start();
  std::printf("serving scheduling API on port %u: POST /submit, "
              "GET /schedule/{id}, GET /tasks/{id}/trace, "
              "/metrics%s (%zu shards x %zu cores)\n",
              server.port(),
              monitor != nullptr ? ", /healthz" : "", opts.shards,
              opts.cores / opts.shards);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const std::uint64_t serve_s = args.get_u64("serve-seconds", 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(serve_s);
  while (g_signal == 0 &&
         (serve_s == 0 || std::chrono::steady_clock::now() < deadline)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (g_signal != 0) {
    std::printf("caught signal %d, shutting down\n",
                static_cast<int>(g_signal));
  }
  // Graceful order: close the API first (no new admissions), drain the
  // shards (every accepted ticket reaches a placement), settle health,
  // then flush the outputs — so the recording carries the final state.
  server.stop();
  svc.drain();
  std::printf("drained: %llu submitted, %llu placed, %llu rejected, "
              "%llu stolen, %llu completed\n",
              static_cast<unsigned long long>(svc.submitted()),
              static_cast<unsigned long long>(svc.placed()),
              static_cast<unsigned long long>(svc.rejected()),
              static_cast<unsigned long long>(svc.stolen()),
              static_cast<unsigned long long>(svc.completed()));
  if (monitor != nullptr) {
    monitor->settle();
    monitor->stop();
    std::printf("health: %zu alert(s) firing after %llu ticks\n",
                monitor->firing_count(),
                static_cast<unsigned long long>(monitor->ticks()));
  }
  // Profiler before the recorder drain: its channel events and symbol
  // table must be in place when the .dfr file is written.
  tools::finish_tool_profiler(prof, args, &recorder);
  if (args.has("record-out")) {
    recorder.drain();
    recorder.capture_metrics(obs::Registry::global());
    const std::string path = args.get_string("record-out");
    recorder.write_file(path);
    std::printf("wrote %zu recorded events to %s\n",
                recorder.events().size(), path.c_str());
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get_string("metrics-out");
    obs::write_json_file(path, obs::Registry::global().to_json());
    std::printf("wrote metrics snapshot to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(
        argc, argv,
        {"plan", "model", "time-scale", "pin", "hw", "trace-out",
         "metrics-out", "record-out", "health-config", "health-period",
         "serve", "listen", "shards", "cores", "re", "rt", "ring-capacity",
         "max-batch", "steal-ratio", "status-capacity", "serve-seconds",
         "profile-out", "profile-hz", "help"});
    if (args.has("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (args.has("serve")) return run_serve(args);
    obs::register_build_info(obs::Registry::global());
    const core::Plan plan = core::read_plan_csv_file(args.get_string("plan"));
    const core::EnergyModel model =
        tools::model_from_flag(args.get_string("model", "table2"));
    const double scale = args.get_double("time-scale", 1e-3);

    // Model-side expectations for the comparison lines.
    Seconds model_makespan = 0.0;
    for (const core::CorePlan& c : plan.cores) {
      Seconds clock = 0.0;
      for (const core::ScheduledTask& st : c.sequence) {
        clock += model.task_time(st.cycles, st.rate_idx);
      }
      model_makespan = std::max(model_makespan, clock);
    }
    std::printf("executing %zu tasks on %zu worker threads "
                "(expected wall time ~%.2f s)...\n",
                plan.num_tasks(), plan.num_cores(), model_makespan * scale);

    rt::RealtimeExecutor exec(
        model, {.time_scale = scale, .pin_threads = args.has("pin")});
    const std::unique_ptr<obs::hw::HwProvider> hw =
        obs::hw::make_provider(args.get_string("hw", "off"));
    if (hw != nullptr) {
      exec.set_hw_provider(hw.get());
      std::printf("hardware telemetry: %s\n", hw->describe().c_str());
    }
    // One SPSC channel per worker thread (the executor requires it).
    obs::Recorder recorder(std::max<std::size_t>(1, plan.num_cores()));
    if (args.has("record-out")) exec.set_recorder(&recorder);
    tools::ToolProfile prof = tools::start_tool_profiler(
        args, args.has("record-out") ? &recorder : nullptr);
    std::unique_ptr<obs::health::HealthMonitor> monitor;
    if (args.has("health-config") || args.has("health-period")) {
      monitor = std::make_unique<obs::health::HealthMonitor>(
          obs::Registry::global(),
          obs::health::load_rules(args.get_string("health-config", "")),
          obs::health::HealthMonitor::Options{
              .period_s = args.get_double("health-period", 0.5)});
      if (args.has("record-out")) {
        // Own ring: health events must survive worker rings overflowing.
        monitor->set_channel(
            &recorder.add_channel(obs::Recorder::kDefaultCapacity));
      }
      monitor->start();
    }
    const rt::RtResult r = exec.execute(plan);
    if (monitor != nullptr) {
      // Settle and take the final tick before the drain below, so the
      // recording and the snapshot carry the alerts' end state.
      monitor->settle();
      monitor->stop();
      std::printf("health: %zu alert(s) firing after %llu ticks\n",
                  monitor->firing_count(),
                  static_cast<unsigned long long>(monitor->ticks()));
    }
    tools::finish_tool_profiler(prof, args, &recorder);
    if (args.has("record-out")) {
      recorder.drain();
      recorder.capture_metrics(obs::Registry::global());
      const std::string path = args.get_string("record-out");
      recorder.write_file(path);
      std::printf("wrote %zu recorded events to %s\n",
                  recorder.events().size(), path.c_str());
    }
    if (args.has("trace-out")) {
      // The executor records rather than traces directly; the recording
      // replays into the same trace JSON a live tracer would have
      // produced (dvfs_inspect replay does the identical transform).
      DVFS_REQUIRE(args.has("record-out"),
                   "--trace-out needs --record-out (the trace is replayed "
                   "from the recording)");
      obs::TraceWriter writer;
      obs::Recording recording;
      recording.events = recorder.events();
      obs::replay_to_trace(recording, writer);
      const std::string path = args.get_string("trace-out");
      writer.write_file(path);
      std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                  writer.size(), path.c_str());
    }
    if (args.has("metrics-out")) {
      const std::string path = args.get_string("metrics-out");
      obs::write_json_file(path, obs::Registry::global().to_json());
      std::printf("wrote metrics snapshot to %s\n", path.c_str());
    }

    std::printf("done: %zu tasks, wall makespan %.3f s "
                "(model: %.3f s, drift %+.2f%%)\n",
                r.tasks.size(), r.wall_makespan, model_makespan * scale,
                (r.wall_makespan / (model_makespan * scale) - 1.0) * 100.0);
    std::printf("model energy charged: %.1f J; worst per-task duration "
                "drift %.1f%%\n",
                r.model_energy, r.worst_relative_drift() * 100.0);
    if (hw != nullptr) {
      std::printf("telemetry drift (measured/predicted): cycles %.6f | "
                  "duration %.6f | energy %.6f (%llu measured spans, "
                  "%llu model-charged)\n",
                  r.drift.cycles_ratio, r.drift.duration_ratio,
                  r.drift.energy_ratio,
                  static_cast<unsigned long long>(r.drift.spans_measured),
                  static_cast<unsigned long long>(r.drift.spans_model));
    }
    return 0;
  });
}
