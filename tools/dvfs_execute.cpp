/// dvfs_execute: run a plan on real worker threads (dvfs::rt) and compare
/// the wall clock against the model — the live half of the paper's
/// evaluation, time-dilated to taste.
///
///   dvfs_execute --plan plan.csv --time-scale 1e-3
///   dvfs_execute --plan plan.csv --time-scale 1e-4 --pin
///
/// Flags:
///   --plan        plan CSV                                 (required)
///   --model       table2 | cubic:<n>                       (default table2)
///   --time-scale  wall seconds per model second            (default 1e-3)
///   --pin         pin worker threads to CPUs (best effort)
///   --record-out  write a .dfr flight recording of the execution
#include <cstdio>
#include <set>

#include "dvfs/core/plan_io.h"
#include "dvfs/obs/recorder.h"
#include "dvfs/rt/executor.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(argc, argv,
                          {"plan", "model", "time-scale", "pin",
                           "record-out"});
    const core::Plan plan = core::read_plan_csv_file(args.get_string("plan"));
    const core::EnergyModel model =
        tools::model_from_flag(args.get_string("model", "table2"));
    const double scale = args.get_double("time-scale", 1e-3);

    // Model-side expectations for the comparison lines.
    Seconds model_makespan = 0.0;
    for (const core::CorePlan& c : plan.cores) {
      Seconds clock = 0.0;
      for (const core::ScheduledTask& st : c.sequence) {
        clock += model.task_time(st.cycles, st.rate_idx);
      }
      model_makespan = std::max(model_makespan, clock);
    }
    std::printf("executing %zu tasks on %zu worker threads "
                "(expected wall time ~%.2f s)...\n",
                plan.num_tasks(), plan.num_cores(), model_makespan * scale);

    rt::RealtimeExecutor exec(
        model, {.time_scale = scale, .pin_threads = args.has("pin")});
    // One SPSC channel per worker thread (the executor requires it).
    obs::Recorder recorder(std::max<std::size_t>(1, plan.num_cores()));
    if (args.has("record-out")) exec.set_recorder(&recorder);
    const rt::RtResult r = exec.execute(plan);
    if (args.has("record-out")) {
      recorder.drain();
      recorder.capture_metrics(obs::Registry::global());
      const std::string path = args.get_string("record-out");
      recorder.write_file(path);
      std::printf("wrote %zu recorded events to %s\n",
                  recorder.events().size(), path.c_str());
    }

    std::printf("done: %zu tasks, wall makespan %.3f s "
                "(model: %.3f s, drift %+.2f%%)\n",
                r.tasks.size(), r.wall_makespan, model_makespan * scale,
                (r.wall_makespan / (model_makespan * scale) - 1.0) * 100.0);
    std::printf("model energy charged: %.1f J; worst per-task duration "
                "drift %.1f%%\n",
                r.model_energy, r.worst_relative_drift() * 100.0);
    return 0;
  });
}
