/// \file tool_common.h
/// \brief Shared plumbing for the dvfs command-line tools.
#pragma once

#include <cstdio>
#include <string>

#include "dvfs/core/cost_model.h"
#include "dvfs/util/args.h"

namespace dvfs::tools {

/// Builds the energy model a tool was asked for: "table2" (the paper's
/// i7-950) or "cubic:<num_rates>" (analytic sweep model, rates 0.5 GHz
/// upward in 0.25 GHz steps).
[[nodiscard]] inline core::EnergyModel model_from_flag(
    const std::string& spec) {
  if (spec == "table2") return core::EnergyModel::icpp2014_table2();
  const std::string prefix = "cubic:";
  if (spec.rfind(prefix, 0) == 0) {
    const std::size_t n = std::stoul(spec.substr(prefix.size()));
    DVFS_REQUIRE(n >= 1 && n <= 64, "cubic rate count must be in [1, 64]");
    std::vector<Rate> rates;
    for (std::size_t i = 0; i < n; ++i) {
      rates.push_back(0.5 + 0.25 * static_cast<double>(i));
    }
    return core::EnergyModel::cubic(core::RateSet(std::move(rates)));
  }
  DVFS_REQUIRE(false, "unknown model spec (want table2 or cubic:<n>): " + spec);
  return core::EnergyModel::icpp2014_table2();  // unreachable
}

/// Uniform tool error handling: run `body`, print a one-line error and
/// return 2 on precondition violations.
template <typename Fn>
int run_tool(Fn&& body) {
  try {
    return body();
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace dvfs::tools
