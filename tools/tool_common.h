/// \file tool_common.h
/// \brief Shared plumbing for the dvfs command-line tools.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "dvfs/core/cost_model.h"
#include "dvfs/obs/prof.h"
#include "dvfs/obs/recorder.h"
#include "dvfs/util/args.h"

namespace dvfs::tools {

/// Builds the energy model a tool was asked for: "table2" (the paper's
/// i7-950) or "cubic:<num_rates>" (analytic sweep model, rates 0.5 GHz
/// upward in 0.25 GHz steps).
[[nodiscard]] inline core::EnergyModel model_from_flag(
    const std::string& spec) {
  if (spec == "table2") return core::EnergyModel::icpp2014_table2();
  const std::string prefix = "cubic:";
  if (spec.rfind(prefix, 0) == 0) {
    const std::size_t n = std::stoul(spec.substr(prefix.size()));
    DVFS_REQUIRE(n >= 1 && n <= 64, "cubic rate count must be in [1, 64]");
    std::vector<Rate> rates;
    for (std::size_t i = 0; i < n; ++i) {
      rates.push_back(0.5 + 0.25 * static_cast<double>(i));
    }
    return core::EnergyModel::cubic(core::RateSet(std::move(rates)));
  }
  DVFS_REQUIRE(false, "unknown model spec (want table2 or cubic:<n>): " + spec);
  return core::EnergyModel::icpp2014_table2();  // unreachable
}

/// Shared `--profile-out` / `--profile-hz` wiring: owns the profiler and
/// the calling (main) thread's registration guard, so even a
/// single-threaded tool run yields samples.
struct ToolProfile {
  obs::prof::ThreadGuard main_guard;
  std::unique_ptr<obs::prof::CpuProfiler> profiler;

  [[nodiscard]] explicit operator bool() const { return profiler != nullptr; }
};

/// Starts the CPU profiler when `--profile-out` was passed (or
/// `always_on`, which serve mode uses so `/debug/pprof/profile` works
/// without a flag). With a recorder, samples also persist as a
/// kProfSample channel in the `.dfr` file.
[[nodiscard]] inline ToolProfile start_tool_profiler(const util::Args& args,
                                                     obs::Recorder* recorder,
                                                     bool always_on = false) {
  ToolProfile tp;
  if (!always_on && !args.has("profile-out")) return tp;
  tp.main_guard = obs::prof::profile_current_thread();
  obs::prof::CpuProfiler::Options options;
  options.hz = static_cast<int>(args.get_u64("profile-hz", 100));
  if (recorder != nullptr) {
    options.channel = &recorder->add_channel(obs::Recorder::kDefaultCapacity);
  }
  tp.profiler = std::make_unique<obs::prof::CpuProfiler>(options);
  tp.profiler->start();
  return tp;
}

/// Stops the profiler, captures symbols into `recorder` (so the `.dfr`
/// v5 "DFRS" epilogue can name frames offline), and writes the gzipped
/// pprof profile to `--profile-out` if requested. Call before
/// `recorder->drain()`.
inline void finish_tool_profiler(ToolProfile& tp, const util::Args& args,
                                 obs::Recorder* recorder) {
  if (!tp.profiler) return;
  tp.profiler->stop();
  const std::vector<obs::prof::StackSample> samples =
      tp.profiler->all_samples();
  const obs::prof::DladdrSymbolizer sym;
  if (recorder != nullptr) {
    recorder->capture_symbols(obs::prof::symbol_table(samples, sym));
  }
  if (args.has("profile-out")) {
    obs::prof::PprofOptions options;
    options.hz = tp.profiler->hz();
    options.time_nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    options.mappings = obs::prof::read_proc_self_maps();
    const std::string pprof = obs::prof::encode_pprof(samples, sym, options);
    const std::string path = args.get_string("profile-out");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    DVFS_REQUIRE(f != nullptr, "cannot open " + path);
    std::fwrite(pprof.data(), 1, pprof.size(), f);
    std::fclose(f);
    std::printf("wrote %zu CPU samples (%llu dropped) to %s "
                "(gzipped pprof; `go tool pprof %s`)\n",
                samples.size(),
                static_cast<unsigned long long>(tp.profiler->dropped()),
                path.c_str(), path.c_str());
  }
}

/// Uniform tool error handling: run `body`, print a one-line error and
/// return 2 on precondition violations.
template <typename Fn>
int run_tool(Fn&& body) {
  try {
    return body();
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace dvfs::tools
