/// dvfs_pin: apply a plan's frequencies to a cpufreq sysfs tree — the
/// paper's experiment-setup procedure as a command.
///
///   dvfs_pin --plan plan.csv --sysfs-root /sys/devices/system/cpu
///   dvfs_pin --plan plan.csv --sysfs-root /tmp/faketree --dry-run
///
/// Switches every core to the userspace governor, pins each core to its
/// first planned task's frequency, and verifies via scaling_cur_freq.
/// Run against a fake tree (see make_fake_sysfs_tree / --make-fake) for a
/// safe rehearsal; against the real /sys it needs root and a cpufreq
/// driver exposing the userspace governor.
///
/// Flags:
///   --plan        plan CSV                                   (required)
///   --sysfs-root  cpufreq tree root                          (required)
///   --model       table2 | cubic:<n> (rate-index -> GHz map) (default table2)
///   --make-fake   first create a fake tree with <cores> cpus under the root
///   --dry-run     print what would be written, change nothing
#include <cstdio>
#include <set>
#include <vector>

#include "dvfs/core/plan_io.h"
#include "dvfs/cpufreq/cpufreq.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(
        argc, argv, {"plan", "sysfs-root", "model", "make-fake", "dry-run"});
    const core::Plan plan = core::read_plan_csv_file(args.get_string("plan"));
    const std::string root = args.get_string("sysfs-root");
    const core::EnergyModel model =
        tools::model_from_flag(args.get_string("model", "table2"));

    if (args.has("make-fake")) {
      std::vector<cpufreq::KHz> khz;
      for (const Rate r : model.rates().rates()) {
        khz.push_back(cpufreq::ghz_to_khz(r));
      }
      cpufreq::make_fake_sysfs_tree(root, args.get_u64("make-fake"), khz);
      std::printf("created fake cpufreq tree with %llu cpus under %s\n",
                  static_cast<unsigned long long>(args.get_u64("make-fake")),
                  root.c_str());
    }

    // The frequency each core starts its sequence at.
    std::vector<std::size_t> first_rates(plan.cores.size(), 0);
    for (std::size_t j = 0; j < plan.cores.size(); ++j) {
      if (!plan.cores[j].sequence.empty()) {
        first_rates[j] = plan.cores[j].sequence.front().rate_idx;
      }
    }

    if (args.has("dry-run")) {
      for (std::size_t j = 0; j < first_rates.size(); ++j) {
        std::printf("cpu%zu: scaling_governor <- userspace; "
                    "scaling_setspeed <- %llu kHz\n",
                    j,
                    static_cast<unsigned long long>(
                        cpufreq::ghz_to_khz(model.rates()[first_rates[j]])));
      }
      return 0;
    }

    cpufreq::SysfsCpufreq backend(root);
    DVFS_REQUIRE(backend.num_cpus() >= plan.cores.size(),
                 "tree has fewer cpus than the plan has cores");
    cpufreq::PlatformController controller(backend, model.rates());
    controller.disable_automatic_scaling();
    for (std::size_t j = 0; j < first_rates.size(); ++j) {
      controller.pin(j, first_rates[j]);
      std::printf("cpu%zu pinned to %llu kHz (verified)\n", j,
                  static_cast<unsigned long long>(backend.current_khz(j)));
    }
    return 0;
  });
}
