/// dvfs_simulate: run a workload trace through the event-driven simulator
/// under a chosen scheduling policy and print the metrics.
///
///   dvfs_simulate --trace exam.csv --policy lmc --cores 4 --re 0.4 --rt 0.1
///   dvfs_simulate --plan plan.csv --trace batch.csv --policy planned
///
/// Flags:
///   --trace       input trace CSV                      (required)
///   --policy      lmc | olb | od | ps | planned        (required)
///   --plan        plan CSV (policy=planned only)
///   --cores       core count                           (default 4)
///   --re, --rt    cost weights                         (default 0.4 / 0.1)
///   --model       table2 | cubic:<n>                   (default table2)
///   --contention  co-run slowdown alpha                (default 0)
///   --trace-out   write a Chrome trace_event JSON timeline here
///   --metrics-out write a metrics-registry JSON snapshot here
///   --record-out  write a .dfr flight recording here (replay/explain/
///                 audit it later with dvfs_inspect)
///   --record-capacity  recorder ring slots (default: sized to the trace)
///   --health-config    SLO rules JSON ("builtin" or a path); enables the
///                 health monitor (burn-rate alerts over the registry)
///   --health-period    health sampling period in seconds (default 0.5;
///                 also enables the monitor with the builtin rules)
///   --listen      serve /metrics (Prometheus text) and, with the health
///                 monitor on, /healthz (200 ok / 503 firing) on
///                 ":9464"-style host:port after the run
///   --serve-seconds    with --listen: exit after N seconds (default 0 =
///                 serve until interrupted)
///
/// SIGINT/SIGTERM while serving exits gracefully: the health monitor is
/// settled and stopped, then --trace-out/--record-out/--metrics-out are
/// flushed (the recording gets its metrics epilogue), then exit 0.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "dvfs/core/plan_io.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/governors/planned_policy.h"
#include "dvfs/obs/build_info.h"
#include "dvfs/obs/health.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/obs/promtext.h"
#include "dvfs/obs/recorder.h"
#include "dvfs/obs/trace.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/trace.h"
#include "tool_common.h"

namespace {

constexpr const char* kUsage =
    "usage: dvfs_simulate --trace t.csv --policy lmc [flags]\n"
    "  --trace PATH         input workload trace CSV          (required)\n"
    "  --policy NAME        lmc | olb | od | ps | planned     (required)\n"
    "  --plan PATH          plan CSV (policy=planned only)\n"
    "  --cores N            core count                        (default 4)\n"
    "  --re R, --rt R       cost weights                      (0.4 / 0.1)\n"
    "  --model SPEC         table2 | cubic:<n>                (table2)\n"
    "  --contention A       co-run slowdown alpha             (0)\n"
    "  --trace-out PATH     Chrome trace_event JSON timeline\n"
    "  --metrics-out PATH   metrics-registry JSON snapshot\n"
    "  --record-out PATH    .dfr flight recording (dvfs_inspect replays\n"
    "                       it into the two files above byte-for-byte)\n"
    "  --record-capacity N  recorder ring slots (default: trace-sized)\n"
    "  --health-config C    SLO rules: \"builtin\" or a dvfs-health-v1\n"
    "                       JSON path; enables burn-rate alerting\n"
    "  --health-period S    health sampling period in seconds (0.5);\n"
    "                       also enables the monitor (builtin rules)\n"
    "  --listen HOST:PORT   serve Prometheus /metrics (and /healthz when\n"
    "                       the health monitor is on) after the run\n"
    "  --serve-seconds N    with --listen: exit after N s (0 = until\n"
    "                       SIGINT/SIGTERM; both exit gracefully)\n"
    "  --profile-out PATH   gzipped pprof CPU profile of this process\n"
    "                       (enables the sampling profiler for the run)\n"
    "  --profile-hz N       profiler sampling rate per thread    (100)\n";

// Written by the signal handler, polled by the serve loop. sig_atomic_t
// per the C standard; volatile so the poll is not hoisted.
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int signum) { g_signal = signum; }

}  // namespace

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(argc, argv,
                          {"trace", "policy", "plan", "cores", "re", "rt",
                           "model", "contention", "trace-out",
                           "metrics-out", "record-out", "record-capacity",
                           "health-config", "health-period", "listen",
                           "serve-seconds", "profile-out", "profile-hz",
                           "help"});
    if (args.has("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    obs::register_build_info(obs::Registry::global());
    const workload::Trace trace =
        workload::read_csv_file(args.get_string("trace"));
    const std::string policy_name = args.get_string("policy");
    const std::size_t cores = args.get_u64("cores", 4);
    const core::CostParams cp{args.get_double("re", 0.4),
                              args.get_double("rt", 0.1)};
    const core::EnergyModel model =
        tools::model_from_flag(args.get_string("model", "table2"));
    const sim::ContentionModel contention(args.get_double("contention", 0.0));

    std::unique_ptr<sim::Policy> policy;
    if (policy_name == "lmc") {
      policy = std::make_unique<governors::LmcPolicy>(
          std::vector<core::CostTable>(cores, core::CostTable(model, cp)));
    } else if (policy_name == "olb") {
      policy = std::make_unique<governors::FifoPolicy>(governors::FifoPolicy::Config{
          .placement = governors::FifoPolicy::Placement::kEarliestReady,
          .freq = governors::FifoPolicy::FreqMode::kMax});
    } else if (policy_name == "od") {
      policy = std::make_unique<governors::FifoPolicy>(governors::FifoPolicy::Config{
          .placement = governors::FifoPolicy::Placement::kRoundRobin,
          .freq = governors::FifoPolicy::FreqMode::kOndemand});
    } else if (policy_name == "ps") {
      policy = std::make_unique<governors::FifoPolicy>(governors::FifoPolicy::Config{
          .placement = governors::FifoPolicy::Placement::kEarliestReady,
          .freq = governors::FifoPolicy::FreqMode::kOndemand,
          .rate_cap = (model.num_rates() + 1) / 2 - 1});
    } else if (policy_name == "planned") {
      policy = std::make_unique<governors::PlannedBatchPolicy>(
          core::read_plan_csv_file(args.get_string("plan")));
    } else {
      DVFS_REQUIRE(false,
                   "unknown --policy (want lmc|olb|od|ps|planned): " +
                       policy_name);
    }

    sim::Engine engine(std::vector<core::EnergyModel>(cores, model),
                       contention);
    obs::TraceWriter tracer;
    if (args.has("trace-out")) engine.set_trace_writer(&tracer);
    // Ring sized so a normal run never drops: every task costs at most
    // ~16 events plus up to two candidate/decision events per core.
    const std::size_t auto_capacity = std::clamp<std::size_t>(
        trace.size() * (16 + 2 * cores), std::size_t{1} << 16,
        std::size_t{1} << 22);
    obs::Recorder recorder(
        /*num_channels=*/1,
        args.has("record-capacity") ? args.get_u64("record-capacity")
                                    : auto_capacity);
    if (args.has("record-out")) engine.set_recorder(&recorder.channel(0));

    // The simulator is single-threaded, so the main-thread guard inside
    // the profile handle is what makes `--profile-out` produce samples.
    tools::ToolProfile prof = tools::start_tool_profiler(
        args, args.has("record-out") ? &recorder : nullptr);

    std::unique_ptr<obs::health::HealthMonitor> monitor;
    if (args.has("health-config") || args.has("health-period")) {
      monitor = std::make_unique<obs::health::HealthMonitor>(
          obs::Registry::global(),
          obs::health::load_rules(args.get_string("health-config", "")),
          obs::health::HealthMonitor::Options{
              .period_s = args.get_double("health-period", 0.5)});
      if (args.has("record-out")) {
        // The monitor gets its own ring: the main ring overflowing is one
        // of the conditions it alerts on, so its events must survive it.
        monitor->set_channel(
            &recorder.add_channel(obs::Recorder::kDefaultCapacity));
      }
      monitor->start();
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    const sim::SimResult r = engine.run(trace, *policy);

    std::printf("policy %s on %zu cores: %zu/%zu tasks completed\n",
                policy_name.c_str(), cores, r.completed_count(),
                trace.size());
    std::printf("energy %.1f J | turnaround %.1f s | makespan %.1f s\n",
                r.busy_energy, r.total_turnaround(), r.end_time);
    std::printf("cost: %.2f (energy %.2f + time %.2f) at Re=%.3g Rt=%.3g\n",
                r.total_cost(cp), r.energy_cost(cp), r.time_cost(cp), cp.re,
                cp.rt);
    if (trace.count(core::TaskClass::kInteractive) > 0) {
      std::printf("interactive: mean turnaround %.4f s, deadline misses "
                  "%zu\n",
                  r.mean_turnaround(core::TaskClass::kInteractive),
                  r.deadline_misses(core::TaskClass::kInteractive));
    }
    const std::vector<double> share = r.rate_share();
    if (!share.empty()) {
      std::printf("frequency residency:");
      for (std::size_t i = 0; i < share.size(); ++i) {
        std::printf(" %.1fGHz=%.0f%%", model.rates()[i], share[i] * 100.0);
      }
      std::printf("\n");
    }

    if (args.has("listen")) {
      obs::MetricsHttpServer server(
          obs::parse_listen(args.get_string("listen")),
          [] { return obs::prometheus_text(obs::Registry::global()); });
      if (monitor != nullptr) {
        obs::health::HealthMonitor* m = monitor.get();
        server.add_route("/healthz", [m] {
          return obs::MetricsHttpServer::Response{
              .status = m->healthy() ? 200 : 503,
              .content_type = "application/json; charset=utf-8",
              .body = m->status_json().dump(2) + "\n"};
        });
      }
      server.start();
      std::printf("serving Prometheus metrics on port %u at /metrics%s\n",
                  server.port(),
                  monitor != nullptr ? " (health at /healthz)" : "");
      std::fflush(stdout);
      const std::uint64_t serve_s = args.get_u64("serve-seconds", 0);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(serve_s);
      while (g_signal == 0 &&
             (serve_s == 0 || std::chrono::steady_clock::now() < deadline)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      server.stop();
      if (g_signal != 0) {
        std::printf("caught signal %d, shutting down\n",
                    static_cast<int>(g_signal));
      }
    }

    if (monitor != nullptr) {
      // Let pending alerts reach a terminal state, take the final tick,
      // and join — so the gauges and the recording show the end state.
      monitor->settle();
      monitor->stop();
      std::printf("health: %zu alert(s) firing after %llu ticks\n",
                  monitor->firing_count(),
                  static_cast<unsigned long long>(monitor->ticks()));
    }

    // Profiler before the recorder drain below: its channel events and
    // symbol table must be in place when the .dfr file is written.
    tools::finish_tool_profiler(prof, args, &recorder);

    // Outputs flush last so a signal-interrupted serve still produces a
    // finalized recording (epilogue included) and a final snapshot.
    if (args.has("trace-out")) {
      const std::string path = args.get_string("trace-out");
      tracer.write_file(path);
      std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                  tracer.size(), path.c_str());
    }
    if (args.has("record-out")) {
      recorder.drain();
      recorder.capture_metrics(obs::Registry::global());
      const std::string path = args.get_string("record-out");
      recorder.write_file(path);
      std::printf("wrote %zu recorded events to %s (inspect with "
                  "dvfs_inspect)\n",
                  recorder.events().size(), path.c_str());
      if (recorder.events_dropped() > 0) {
        std::fprintf(stderr,
                     "warning: recorder ring overflowed, %llu events "
                     "dropped (raise --record-capacity)\n",
                     static_cast<unsigned long long>(
                         recorder.events_dropped()));
      }
    }
    if (args.has("metrics-out")) {
      const std::string path = args.get_string("metrics-out");
      obs::write_json_file(path, obs::Registry::global().to_json());
      std::printf("wrote metrics snapshot to %s\n", path.c_str());
    }
    return 0;
  });
}
