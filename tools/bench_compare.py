#!/usr/bin/env python3
"""Compare dvfs-bench-v1 JSON reports against checked-in baselines.

Usage:
    bench_compare.py --baseline DIR_OR_FILE --candidate DIR_OR_FILE
                     [--candidate DIR_OR_FILE ...]
                     [--wall-tolerance 0.25] [--quality-tolerance 1e-6]
                     [--min-wall-ns 1e6] [--markdown-out summary.md]
    bench_compare.py --self-test

--markdown-out additionally writes the comparison as a Markdown table
(one row per gated benchmark with wall-time and quality deltas plus a
pass/fail verdict); CI appends it to $GITHUB_STEP_SUMMARY.

Repeat --candidate to pass several runs of the same suites; rows are
merged by taking the per-row minimum of wall_ns (and of the quality
fields, which are deterministic and identical across runs). Min-of-N is
the standard way to strip scheduler noise from wall-clock numbers, and
CI runs each gated bench twice for exactly that reason.

Rows are matched across the two reports by (name, params). Two classes of
regression are gated differently:

  * wall-time: a matched row fails if candidate wall_ns exceeds baseline by
    more than --wall-tolerance (relative), but only when the baseline is at
    least --min-wall-ns — sub-millisecond timings are noise on shared CI
    runners and are never gated.
  * quality (cost / energy_j / turnaround_s): deterministic model outputs,
    so ANY increase beyond --quality-tolerance (relative) fails. These catch
    "the scheduler silently got worse" bugs that timing never would.

Rows present only in the baseline fail (coverage loss); rows present only
in the candidate are reported but pass (new benchmarks need a baseline
refresh, not a red build). The same asymmetry applies per field: a quality
field with no baseline value is noted and skipped, while one that vanishes
from the candidate fails. Exit status: 0 clean, 1 regression, 2 usage or
I/O error.
"""

import argparse
import json
import os
import sys

SCHEMA = "dvfs-bench-v1"
QUALITY_FIELDS = ("cost", "energy_j", "turnaround_s")


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    if not isinstance(doc.get("rows"), list):
        raise ValueError(f"{path}: missing rows[]")
    return doc


def row_key(row):
    params = row.get("params", {})
    return (row["name"], json.dumps(params, sort_keys=True))


def index_rows(doc, path):
    out = {}
    for row in doc["rows"]:
        key = row_key(row)
        if key in out:
            raise ValueError(f"{path}: duplicate row {key}")
        out[key] = row
    return out


def collect_reports(path):
    """Yield (suite, filepath) for a single report file or a directory."""
    if os.path.isdir(path):
        for entry in sorted(os.listdir(path)):
            if entry.endswith(".json"):
                yield entry[: -len(".json")], os.path.join(path, entry)
    else:
        yield os.path.splitext(os.path.basename(path))[0], path


def compare_reports(base_doc, cand_doc, suite, opts, failures, notes,
                    table=None):
    base = index_rows(base_doc, f"{suite} (baseline)")
    cand = index_rows(cand_doc, f"{suite} (candidate)")

    for key, brow in base.items():
        crow = cand.get(key)
        label = f"{suite}:{brow['name']} {key[1]}"
        failures_before = len(failures)
        if crow is None:
            failures.append(f"{label}: row missing from candidate")
            if table is not None:
                table.append({"label": label, "bwall": None, "cwall": None,
                              "quality": "row missing", "ok": False})
            continue
        bwall = float(brow.get("wall_ns", 0.0))
        cwall = float(crow.get("wall_ns", 0.0))
        # The wall gate applies only when BOTH sides sit at or above the
        # row floor: sub-floor baselines are noise, and a candidate that
        # *drops* below the floor is an improvement to note (and refresh
        # baselines for), never a missing row or a regression.
        if bwall >= opts.min_wall_ns and cwall < opts.min_wall_ns:
            notes.append(
                f"{label}: wall_ns {bwall:.3g} -> {cwall:.3g} fell below "
                f"the {opts.min_wall_ns:.0f} ns row floor (improvement; "
                f"consider refreshing baselines)"
            )
        elif (bwall >= opts.min_wall_ns and cwall >= opts.min_wall_ns and
              cwall > bwall * (1.0 + opts.wall_tolerance)):
            failures.append(
                f"{label}: wall_ns {bwall:.3g} -> {cwall:.3g} "
                f"(+{(cwall / bwall - 1.0) * 100.0:.1f}% > "
                f"{opts.wall_tolerance * 100.0:.0f}% allowed)"
            )
        for field in QUALITY_FIELDS:
            if field not in brow:
                # The row predates this field (a bench just started
                # reporting it): nothing to gate against. Comparing to an
                # implicit 0.0 would fail every nonzero candidate value.
                if field in crow:
                    notes.append(
                        f"{label}: {field} has no baseline value; not gated"
                    )
                continue
            if field not in crow:
                failures.append(
                    f"{label}: {field} missing from candidate (field "
                    f"coverage loss)"
                )
                continue
            bval = float(brow[field])
            cval = float(crow[field])
            if cval > bval * (1.0 + opts.quality_tolerance) + opts.quality_tolerance:
                failures.append(
                    f"{label}: {field} {bval:.6g} -> {cval:.6g} (any increase fails)"
                )
        if table is not None:
            deltas = []
            for field in QUALITY_FIELDS:
                if field in brow and field in crow and float(brow[field]):
                    rel = float(crow[field]) / float(brow[field]) - 1.0
                    if abs(rel) > opts.quality_tolerance:
                        deltas.append(f"{field} {rel:+.2%}")
            table.append({
                "label": label,
                "bwall": bwall,
                "cwall": cwall,
                "quality": ", ".join(deltas) if deltas else "unchanged",
                "ok": len(failures) == failures_before,
            })

    for key in cand:
        if key not in base:
            notes.append(f"{suite}:{key[0]} {key[1]}: new row (no baseline)")


def merge_min(docs):
    """Merge repeated runs of one suite: per-row min of every numeric
    gated field (noise only ever adds time)."""
    merged = docs[0]
    rows = {row_key(r): r for r in merged["rows"]}
    for doc in docs[1:]:
        for row in doc["rows"]:
            prev = rows.get(row_key(row))
            if prev is None:
                rows[row_key(row)] = row
                merged["rows"].append(row)
                continue
            for field in ("wall_ns", *QUALITY_FIELDS):
                # Only merge fields a run actually reported; defaulting an
                # absent field to 0.0 would both fabricate a value and
                # clobber the real one from the other run.
                present = [float(d[field]) for d in (prev, row) if field in d]
                if present:
                    prev[field] = min(present)
    return merged


def _fmt_wall(ns):
    return "—" if ns is None else f"{ns / 1e6:.3g} ms"


def _fmt_delta(bwall, cwall):
    if bwall is None or cwall is None or bwall == 0.0:
        return "—"
    return f"{cwall / bwall - 1.0:+.1%}"


def render_markdown(table, notes, failures):
    """The same comparison as a Markdown document — pasted into CI job
    summaries ($GITHUB_STEP_SUMMARY) so a red gate explains itself
    without digging through logs."""
    lines = ["## Bench regression gate", ""]
    verdict = (f"**FAIL** — {len(failures)} regression(s)" if failures
               else "**PASS** — no regressions")
    lines += [verdict, ""]
    if table:
        lines += [
            "| benchmark | baseline wall | candidate wall | Δ wall "
            "| quality | status |",
            "|---|---:|---:|---:|---|:---:|",
        ]
        for e in table:
            status = "✅" if e["ok"] else "❌"
            lines.append(
                f"| `{e['label']}` | {_fmt_wall(e['bwall'])} "
                f"| {_fmt_wall(e['cwall'])} "
                f"| {_fmt_delta(e['bwall'], e['cwall'])} "
                f"| {e['quality']} | {status} |"
            )
        lines.append("")
    if failures:
        lines += ["### Regressions", ""]
        lines += [f"- {f}" for f in failures]
        lines.append("")
    if notes:
        lines += ["### Notes", ""]
        lines += [f"- {n}" for n in notes]
        lines.append("")
    return "\n".join(lines)


def run_compare(opts):
    base_files = dict(collect_reports(opts.baseline))
    cand_files = {}
    for cand in opts.candidate:
        for suite, path in collect_reports(cand):
            cand_files.setdefault(suite, []).append(path)

    failures = []
    notes = []
    table = []
    for suite, bpath in sorted(base_files.items()):
        cpaths = cand_files.get(suite)
        if not cpaths:
            failures.append(f"{suite}: candidate report missing")
            table.append({"label": suite, "bwall": None, "cwall": None,
                          "quality": "suite missing", "ok": False})
            continue
        cand_doc = merge_min([load_report(p) for p in cpaths])
        compare_reports(load_report(bpath), cand_doc, suite, opts,
                        failures, notes, table)
    for suite in sorted(set(cand_files) - set(base_files)):
        notes.append(f"{suite}: new suite (no baseline)")

    if opts.markdown_out:
        with open(opts.markdown_out, "w") as f:
            f.write(render_markdown(table, notes, failures))

    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    matched = len(base_files)
    print(f"OK: {matched} suite(s) compared, no regressions")
    return 0


# --------------------------------------------------------------- self-test

def _mk_report(rows):
    return {"schema": SCHEMA, "suite": "t", "rows": rows}


def _mk_row(name, params=None, wall_ns=0.0, cost=0.0, energy_j=0.0,
            turnaround_s=0.0):
    return {
        "name": name,
        "params": params or {},
        "wall_ns": wall_ns,
        "cost": cost,
        "energy_j": energy_j,
        "turnaround_s": turnaround_s,
        "counters": {},
    }


def self_test():
    import copy
    import tempfile

    def check(desc, base_rows, cand_runs, want_exit, argv_extra=()):
        # cand_runs: one row-list per repeated run (a single list means
        # one run).
        if cand_runs and isinstance(cand_runs[0], dict):
            cand_runs = [cand_runs]
        with tempfile.TemporaryDirectory() as tmp:
            bdir = os.path.join(tmp, "base")
            os.mkdir(bdir)
            with open(os.path.join(bdir, "t.json"), "w") as f:
                json.dump(_mk_report(base_rows), f)
            argv = ["--baseline", bdir]
            for i, rows in enumerate(cand_runs):
                cdir = os.path.join(tmp, f"cand{i}")
                os.mkdir(cdir)
                with open(os.path.join(cdir, "t.json"), "w") as f:
                    json.dump(_mk_report(rows), f)
                argv += ["--candidate", cdir]
            opts = parse_args(argv + list(argv_extra))
            got = run_compare(opts)
            assert got == want_exit, f"{desc}: exit {got}, wanted {want_exit}"
            print(f"self-test ok: {desc}")

    base = [
        _mk_row("a", {"n": 4}, wall_ns=2e6, cost=100.0),
        _mk_row("a", {"n": 8}, wall_ns=4e6, cost=200.0, energy_j=50.0),
        _mk_row("tiny", wall_ns=1e3),
    ]

    check("identical reports pass", base, copy.deepcopy(base), 0)

    worse_wall = copy.deepcopy(base)
    worse_wall[0]["wall_ns"] = 2e6 * 2.0  # injected 2x wall regression
    check("2x wall regression fails", base, worse_wall, 1)

    slightly_slower = copy.deepcopy(base)
    slightly_slower[0]["wall_ns"] = 2e6 * 1.10  # within 25%
    check("10% wall drift passes", base, slightly_slower, 0)

    tiny_slower = copy.deepcopy(base)
    tiny_slower[2]["wall_ns"] = 1e3 * 100.0  # below --min-wall-ns floor
    check("sub-millisecond rows never gate", base, tiny_slower, 0)

    # A large speedup can push a previously-gated row below the floor
    # (e.g. memoizing an O(n) construction into a cache hit). That is an
    # improvement, not a missing baseline: it must pass.
    now_sub_floor = copy.deepcopy(base)
    now_sub_floor[0]["wall_ns"] = 5e5  # 2 ms baseline -> 0.5 ms candidate
    check("candidate dropping below the row floor passes", base,
          now_sub_floor, 0)

    worse_cost = copy.deepcopy(base)
    worse_cost[1]["cost"] = 200.001
    check("any cost increase fails", base, worse_cost, 1)

    better = copy.deepcopy(base)
    better[1]["cost"] = 150.0
    better[0]["wall_ns"] = 1e6
    check("improvements pass", base, better, 0)

    missing = copy.deepcopy(base)[:2]
    check("dropped row fails", base, missing, 1)

    extra = copy.deepcopy(base) + [_mk_row("new")]
    check("new row passes with a note", base, extra, 0)

    # A bench that just started reporting a quality field must not be
    # gated against an implicit 0.0 baseline.
    no_energy_base = copy.deepcopy(base)
    del no_energy_base[1]["energy_j"]
    check("new quality field passes with a note", no_energy_base,
          copy.deepcopy(base), 0)

    lost_field = copy.deepcopy(base)
    del lost_field[1]["energy_j"]
    check("quality field dropped from candidate fails", base, lost_field, 1)

    # Merging runs must not fabricate absent fields as 0.0 (which would
    # mask a real regression behind a phantom minimum).
    sparse_run = copy.deepcopy(worse_cost)
    del sparse_run[1]["cost"]
    check("min-of-N ignores absent fields when merging", base,
          [copy.deepcopy(worse_cost), sparse_run], 1)

    worse_energy = copy.deepcopy(base)
    worse_energy[1]["energy_j"] = 50.5
    check("any energy increase fails", base, worse_energy, 1)

    noisy_run = copy.deepcopy(base)
    noisy_run[0]["wall_ns"] = 2e6 * 3.0  # one flaky run...
    check("min-of-N candidate runs strips noise", base,
          [noisy_run, copy.deepcopy(base)], 0)
    check("regression in every run still fails", base,
          [worse_wall, copy.deepcopy(worse_wall)], 1)

    # The Markdown summary mirrors the verdict in both directions: a
    # clean run renders PASS with every row checked, a regression renders
    # FAIL with the offending row crossed and the reason listed.
    with tempfile.TemporaryDirectory() as tmp:
        md = os.path.join(tmp, "summary.md")
        check("markdown summary written on pass", base, copy.deepcopy(base),
              0, argv_extra=("--markdown-out", md))
        with open(md) as f:
            text = f.read()
        assert "**PASS**" in text, text
        assert "| benchmark |" in text, text
        assert "`t:a" in text and "✅" in text, text
        assert "❌" not in text, text

        check("markdown summary written on fail", base, worse_wall, 1,
              argv_extra=("--markdown-out", md))
        with open(md) as f:
            text = f.read()
        assert "**FAIL** — 1 regression(s)" in text, text
        assert "❌" in text and "### Regressions" in text, text
        assert "+100.0%" in text, text
        print("self-test ok: markdown summaries")

    print("self-test: all cases passed")
    return 0


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", help="baseline report file or directory")
    p.add_argument("--candidate", action="append", default=[],
                   help="candidate report file or directory; repeat for "
                        "multiple runs (per-row minimum is gated)")
    p.add_argument("--wall-tolerance", type=float, default=0.25,
                   help="allowed relative wall_ns growth (default 0.25)")
    p.add_argument("--quality-tolerance", type=float, default=1e-6,
                   help="relative slack for cost/energy/turnaround")
    p.add_argument("--min-wall-ns", type=float, default=1e6,
                   help="ignore wall regressions below this baseline (ns)")
    p.add_argument("--markdown-out",
                   help="also write the comparison as a Markdown summary "
                        "table (for CI job summaries)")
    p.add_argument("--self-test", action="store_true")
    opts = p.parse_args(argv)
    if not opts.self_test and (not opts.baseline or not opts.candidate):
        p.error("--baseline and --candidate are required")
    return opts


def main(argv):
    opts = parse_args(argv)
    if opts.self_test:
        return self_test()
    try:
        return run_compare(opts)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
