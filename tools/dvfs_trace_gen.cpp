/// dvfs_trace_gen: generate an online-mode workload trace as CSV.
///
///   dvfs_trace_gen --kind judgegirl --seed 1 --out exam.csv
///   dvfs_trace_gen --kind poisson --rate 5 --duration 300 --out load.csv
///
/// Flags:
///   --kind         judgegirl | poisson            (required)
///   --out          output CSV path                (required)
///   --seed         RNG seed                       (default 1)
///   --duration     seconds                        (default per kind)
///   --submissions  judgegirl non-interactive count
///   --interactive  judgegirl interactive count
///   --burstiness   judgegirl end-of-exam factor
///   --rate         poisson arrivals per second
#include <cstdio>
#include <set>

#include "dvfs/workload/generators.h"
#include "dvfs/workload/stats.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(argc, argv,
                          {"kind", "out", "seed", "duration", "submissions",
                           "interactive", "burstiness", "rate"});
    const std::string kind = args.get_string("kind");
    const std::string out = args.get_string("out");
    const std::uint64_t seed = args.get_u64("seed", 1);

    workload::Trace trace;
    if (kind == "judgegirl") {
      workload::JudgegirlConfig cfg;
      cfg.duration = args.get_double("duration", cfg.duration);
      cfg.non_interactive_tasks =
          args.get_u64("submissions", cfg.non_interactive_tasks);
      cfg.interactive_tasks =
          args.get_u64("interactive", cfg.interactive_tasks);
      cfg.burstiness = args.get_double("burstiness", cfg.burstiness);
      trace = workload::generate_judgegirl(cfg, seed);
    } else if (kind == "poisson") {
      workload::PoissonConfig cfg;
      cfg.duration = args.get_double("duration", cfg.duration);
      cfg.arrivals_per_second = args.get_double("rate", 1.0);
      trace = workload::generate_poisson(cfg, seed);
    } else {
      DVFS_REQUIRE(false, "unknown --kind (want judgegirl or poisson): " +
                              kind);
    }

    workload::write_csv_file(trace, out);
    const workload::TraceStats stats = workload::analyze(trace);
    std::printf("%zu tasks (%zu interactive, %zu non-interactive) over "
                "%.0f s -> %s\n",
                trace.size(), stats.interactive.count,
                stats.non_interactive.count, stats.horizon, out.c_str());
    return 0;
  });
}
