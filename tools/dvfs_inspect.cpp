/// dvfs_inspect: read a `.dfr` flight recording back out as human answers.
///
///   dvfs_inspect info    --in run.dfr
///   dvfs_inspect replay  --in run.dfr --trace-out t.json --metrics-out m.json
///   dvfs_inspect trace   --in run.dfr [--task 17 | --slowest 5]
///   dvfs_inspect explain --in run.dfr --task 17
///   dvfs_inspect audit   --in run.dfr [--model table2] [--re R] [--rt R]
///   dvfs_inspect drift   --in run.dfr [--json-out d.json]
///   dvfs_inspect health  --in run.dfr [--health-config rules.json]
///   dvfs_inspect prof    --in run.dfr [--top N] [--folded out.folded]
///
/// Subcommands:
///   info     header + event census: what is in the recording
///   replay   rebuild the Chrome trace / metrics JSON the live run would
///            have written (byte-identical to --trace-out / --metrics-out)
///   trace    reconstruct per-task request timelines from the v4 span
///            events (service recordings): per-stage latency breakdown,
///            the admission critical path, steal hops; `--slowest N`
///            ranks by end-to-end latency, `--trace-out` exports the
///            selection as Chrome trace_event JSON
///   explain  one task's full story: arrival, every candidate core the
///            governor priced with the losing margins, starts,
///            preemptions, finish, energy and turnaround
///   audit    re-plan every recorded placement offline (Workload Based
///            Greedy over the reconstructed queue) and report the realized
///            optimality gap, per decision and end to end
///   drift    summarize predicted-vs-measured telemetry ratios (v2
///            recordings from dvfs_execute --hw) and re-plan with the
///            measurement-corrected model
///   health   replay the recorded SLO evaluations (v3 recordings from
///            --health-config/--health-period runs) through the engine
///            offline, verify every state against the live monitor, and
///            print the alert transitions
///   prof     render the v5 CPU samples: top-N functions by self and
///            cumulative samples, per-stage / per-shard share tables
///            (symbolized from the recording's "DFRS" epilogue), and
///            optionally folded stacks for flamegraph.pl
///
/// Flags:
///   --in            input .dfr recording                  (required)
///   --trace-out     replay/trace: write Chrome trace JSON here
///   --metrics-out   replay: write metrics-registry JSON here
///   --task          explain: task id to explain           (required)
///                   trace: task id to show                (optional)
///   --slowest       trace: print the N slowest tasks      (default 5)
///   --model         audit/drift: table2 | cubic:<n>       (default table2)
///   --re, --rt      audit/drift: cost weights (default: recorded kParams)
///   --json-out      drift: write a dvfs-drift-v1 report here
///   --health-config health: rule set to replay with (default: the
///                   builtin rules; must match the live run's rules for
///                   the state cross-check to be meaningful)
///   --top           prof: show the N hottest functions   (default 20)
///   --folded        prof: write folded stacks here
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dvfs/core/batch_multi.h"
#include "dvfs/core/cost_model.h"
#include "dvfs/core/schedule.h"
#include "dvfs/core/task.h"
#include "dvfs/obs/health.h"
#include "dvfs/obs/hw_telemetry.h"
#include "dvfs/obs/json.h"
#include "dvfs/obs/prof.h"
#include "dvfs/obs/recorder.h"
#include "dvfs/obs/reqtrace.h"
#include "dvfs/obs/trace.h"
#include "tool_common.h"

namespace {

using namespace dvfs;
using obs::dfr::Event;
using obs::dfr::EventType;

[[nodiscard]] constexpr const char* type_name(EventType t) {
  switch (t) {
    case EventType::kNone: return "none";
    case EventType::kRunBegin: return "run_begin";
    case EventType::kParams: return "params";
    case EventType::kTaskArrival: return "task_arrival";
    case EventType::kTaskStart: return "task_start";
    case EventType::kSpanEnd: return "span_end";
    case EventType::kTaskFinish: return "task_finish";
    case EventType::kFreqChange: return "freq_change";
    case EventType::kDecision: return "decision";
    case EventType::kCandidate: return "candidate";
    case EventType::kPlacement: return "placement";
    case EventType::kReplan: return "replan";
    case EventType::kHwPlanned: return "hw_planned";
    case EventType::kHwSpan: return "hw_span";
    case EventType::kHealthSample: return "health_sample";
    case EventType::kAlert: return "alert";
    case EventType::kSubmitRecv: return "submit_recv";
    case EventType::kRingEnqueue: return "ring_enqueue";
    case EventType::kRingDequeue: return "ring_dequeue";
    case EventType::kStealHop: return "steal_hop";
    case EventType::kShardQueue: return "shard_queue";
    case EventType::kExecBegin: return "exec_begin";
    case EventType::kExecEnd: return "exec_end";
    case EventType::kProfSample: return "prof_sample";
  }
  return "?";
}

[[nodiscard]] constexpr const char* policy_name(obs::dfr::PolicyKind k) {
  switch (k) {
    case obs::dfr::PolicyKind::kLmc: return "lmc";
    case obs::dfr::PolicyKind::kWbgRebalance: return "wbg-rebalance";
    case obs::dfr::PolicyKind::kFifo: return "fifo";
    case obs::dfr::PolicyKind::kPlannedBatch: return "planned-batch";
  }
  return "?";
}

[[nodiscard]] constexpr const char* scope_name(obs::dfr::DecisionScope s) {
  switch (s) {
    case obs::dfr::DecisionScope::kNonInteractive: return "non-interactive";
    case obs::dfr::DecisionScope::kInteractive: return "interactive";
    case obs::dfr::DecisionScope::kFifo: return "fifo";
    case obs::dfr::DecisionScope::kPlanned: return "planned";
  }
  return "?";
}

int cmd_info(const obs::Recording& rec) {
  std::printf("format v%u | %u channel(s) | %zu events | %llu dropped\n",
              rec.header.version, rec.header.num_channels, rec.events.size(),
              static_cast<unsigned long long>(rec.header.dropped));
  // v4 recordings carry per-channel counters; older files only have the
  // header aggregate, so the breakdown is simply absent.
  for (std::size_t i = 0; i < rec.channels.size(); ++i) {
    const obs::dfr::ChannelStats& ch = rec.channels[i];
    std::printf("  channel %-3zu recorded=%-10llu dropped=%llu%s\n", i,
                static_cast<unsigned long long>(ch.recorded),
                static_cast<unsigned long long>(ch.dropped),
                ch.dropped > 0 ? "  <-- lossy" : "");
  }
  if (const auto p = rec.first_of(EventType::kParams)) {
    std::printf("policy %s on %u cores",
                policy_name(static_cast<obs::dfr::PolicyKind>(p->aux)),
                p->core);
    if (p->f0 != 0.0 || p->f1 != 0.0) {
      std::printf(" (Re=%g Rt=%g)", p->f0, p->f1);
    }
    std::printf("\n");
  }
  std::map<std::uint8_t, std::size_t> census;
  double t_end = 0.0;
  for (const Event& e : rec.events) {
    ++census[e.type];
    t_end = std::max(t_end, e.time_s);
  }
  std::printf("span: %.6f s\n", t_end);
  for (const auto& [type, n] : census) {
    std::printf("  %-14s %zu\n", type_name(static_cast<EventType>(type)), n);
  }
  // v4+ service recordings: walk the request funnel so a lossy channel
  // is diagnosable per stage — each count should be >= the next, and the
  // stage where events went missing shows up as a negative delta.
  if (rec.header.version >= 4) {
    const EventType funnel[] = {
        EventType::kSubmitRecv,   EventType::kRingEnqueue,
        EventType::kRingDequeue,  EventType::kPlacement,
        EventType::kExecBegin,    EventType::kExecEnd};
    bool any = false;
    for (const EventType t : funnel) {
      any = any || census.contains(static_cast<std::uint8_t>(t));
    }
    if (any) {
      std::printf("request funnel:\n");
      std::size_t prev = 0;
      bool first = true;
      for (const EventType t : funnel) {
        const auto it = census.find(static_cast<std::uint8_t>(t));
        const std::size_t n = it == census.end() ? 0 : it->second;
        if (first) {
          std::printf("  %-14s %zu\n", type_name(t), n);
        } else {
          const auto delta = static_cast<long long>(n) -
                             static_cast<long long>(prev);
          std::printf("  %-14s %-10zu (%+lld%s)\n", type_name(t), n, delta,
                      delta > 0 ? "  <-- span loss upstream" : "");
        }
        prev = n;
        first = false;
      }
    }
  }
  std::printf("symbol table: %zu entries\n", rec.symbols.size());
  std::printf("metrics epilogue: %s\n", rec.metrics ? "yes" : "no");
  if (!rec.epilogue_note.empty()) {
    std::printf("note: %s\n", rec.epilogue_note.c_str());
  }
  return 0;
}

int cmd_replay(const obs::Recording& rec, const util::Args& args) {
  bool wrote = false;
  if (args.has("trace-out")) {
    obs::TraceWriter writer;
    obs::replay_to_trace(rec, writer);
    const std::string path = args.get_string("trace-out");
    writer.write_file(path);
    std::printf("replayed %zu trace events to %s\n", writer.size(),
                path.c_str());
    wrote = true;
  }
  if (args.has("metrics-out")) {
    DVFS_REQUIRE(rec.metrics != nullptr,
                 "recording has no metrics epilogue (record with "
                 "dvfs_simulate --record-out, which captures one)");
    const std::string path = args.get_string("metrics-out");
    obs::write_json_file(path, rec.metrics->to_json());
    std::printf("replayed metrics snapshot to %s\n", path.c_str());
    wrote = true;
  }
  DVFS_REQUIRE(wrote, "replay needs --trace-out and/or --metrics-out");
  return 0;
}

// ---------------------------------------------------------------- trace

void print_timeline(const obs::reqtrace::Timeline& t) {
  namespace rt = obs::reqtrace;
  std::printf("task %-6llu trace=%s %s hops=%zu end-to-end %.6f s\n",
              static_cast<unsigned long long>(t.task),
              rt::trace_id_hex(t.trace_id).c_str(),
              t.stolen() ? "STOLEN" : "direct", t.hops(), t.end_to_end_s());
  double prev = t.begin_s();
  for (const rt::Step& s : t.steps) {
    std::printf("  t=%-12.6f %-12s", s.t_s, rt::to_string(s.stage));
    switch (s.stage) {
      case rt::Stage::kRingEnqueue:
      case rt::Stage::kRingDequeue:
        std::printf(" shard=%u", s.a);
        break;
      case rt::Stage::kStealHop:
        std::printf(" from_shard=%u to_shard=%u", s.a, s.b);
        break;
      case rt::Stage::kPlacement:
        std::printf(" core=%u rate_idx=%u", s.a, s.b);
        break;
      case rt::Stage::kShardQueue:
        std::printf(" core=%u depth=%u", s.a, s.b);
        break;
      case rt::Stage::kExecBegin:
      case rt::Stage::kExecEnd:
        std::printf(" core=%u", s.a);
        break;
      case rt::Stage::kSubmitRecv:
        break;
    }
    std::printf("  (+%.6f s)\n", s.t_s - prev);
    prev = s.t_s;
  }
  const rt::Durations d = t.durations();
  std::printf("  breakdown: ingress=%.6f ring_wait=%.6f placement=%.6f "
              "steal_wait=%.6f queue_wait=%.6f exec=%.6f s\n",
              d.ingress_s, d.ring_wait_s, d.placement_s, d.steal_wait_s,
              d.queue_wait_s, d.exec_s);
  std::printf("  admission critical path: %s\n",
              t.admission_critical_stage());
}

/// Rebuilds request timelines from the v4 event stream and prints either
/// one task (`--task`) or the N slowest end-to-end (`--slowest`, default
/// 5). With `--trace-out`, exports the selected timelines as Chrome
/// trace_event JSON: one track per task, a complete span per stage gap,
/// steal hops as instants.
int cmd_trace(const obs::Recording& rec, const util::Args& args) {
  namespace rt = obs::reqtrace;
  std::vector<rt::Timeline> all = rt::build_timelines(rec.events);
  DVFS_REQUIRE(!all.empty(),
               "recording has no request-trace events (v4 recordings from "
               "dvfs_execute --serve ... --record-out carry them)");

  std::vector<rt::Timeline> selected;
  if (args.has("task")) {
    const std::uint64_t id = args.get_u64("task");
    const auto it =
        std::find_if(all.begin(), all.end(),
                     [id](const rt::Timeline& t) { return t.task == id; });
    DVFS_REQUIRE(it != all.end(), "task " + std::to_string(id) +
                                      " has no trace in the recording");
    selected.push_back(*it);
  } else {
    const std::uint64_t n = args.get_u64("slowest", 5);
    std::stable_sort(all.begin(), all.end(),
                     [](const rt::Timeline& a, const rt::Timeline& b) {
                       return a.end_to_end_s() > b.end_to_end_s();
                     });
    for (const rt::Timeline& t : all) {
      if (selected.size() >= n) break;
      selected.push_back(t);
    }
    std::printf("slowest %zu of %zu traced task(s)\n", selected.size(),
                all.size());
  }
  for (const rt::Timeline& t : selected) print_timeline(t);

  if (args.has("trace-out")) {
    obs::TraceWriter writer;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      const rt::Timeline& t = selected[i];
      const auto tid = static_cast<std::int64_t>(i);
      writer.thread_name(tid, "task " + std::to_string(t.task));
      double prev = t.begin_s();
      for (const rt::Step& s : t.steps) {
        obs::Json::Object detail{
            {"task", obs::Json(static_cast<double>(t.task))},
            {"trace_id", obs::Json(rt::trace_id_hex(t.trace_id))}};
        if (s.stage == rt::Stage::kStealHop) {
          detail.emplace("from_shard", obs::Json(static_cast<double>(s.a)));
          detail.emplace("to_shard", obs::Json(static_cast<double>(s.b)));
          writer.instant(tid, "steal_hop", s.t_s * 1e6, std::move(detail));
        } else if (s.t_s > prev) {
          // The gap belongs to the stage that closed it — same attribution
          // rule Durations uses, so the spans tile the timeline exactly.
          writer.complete(tid, rt::to_string(s.stage), prev * 1e6,
                          (s.t_s - prev) * 1e6, std::move(detail));
        }
        prev = s.t_s;
      }
    }
    const std::string path = args.get_string("trace-out");
    writer.write_file(path);
    std::printf("wrote %zu trace events for %zu task(s) to %s\n",
                writer.size(), selected.size(), path.c_str());
  }
  return 0;
}

int cmd_explain(const obs::Recording& rec, const util::Args& args) {
  const core::TaskId id = args.get_u64("task");
  bool seen = false;
  // Candidate runs are buffered until their closing kPlacement so the
  // table can be printed sorted by cost with the margin to the winner.
  std::vector<Event> candidates;
  for (const Event& e : rec.events) {
    if (e.task != id) continue;
    seen = true;
    switch (static_cast<EventType>(e.type)) {
      case EventType::kTaskArrival:
        std::printf("t=%-12.6f arrival  class=%s cycles=%llu", e.time_s,
                    core::to_string(static_cast<core::TaskClass>(e.aux)),
                    static_cast<unsigned long long>(e.u0));
        if (std::isfinite(e.f0)) std::printf(" deadline=%.6f", e.f0);
        std::printf("\n");
        break;
      case EventType::kCandidate:
        candidates.push_back(e);
        break;
      case EventType::kPlacement: {
        std::printf("t=%-12.6f placed   core=%u scope=%s cost=%.6f", e.time_s,
                    e.core,
                    scope_name(static_cast<obs::dfr::DecisionScope>(e.aux)),
                    e.f0);
        if (e.u0 != 0) {
          std::printf(" est_cycles=%llu",
                      static_cast<unsigned long long>(e.u0));
        }
        if (e.f1 != 0.0) std::printf(" queue_cost_after=%.6f", e.f1);
        std::printf("\n");
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const Event& a, const Event& b) {
                           return a.f0 < b.f0;
                         });
        const double chosen_cost = e.f0;
        for (const Event& c : candidates) {
          const bool won = (c.flags & obs::dfr::kFlagChosen) != 0;
          std::printf("    core %-3u cost=%.6f  %s%+.6f vs chosen%s\n",
                      c.core, c.f0, won ? "CHOSEN (" : "       (",
                      c.f0 - chosen_cost, ")");
        }
        candidates.clear();
        break;
      }
      case EventType::kTaskStart:
        std::printf("t=%-12.6f start    core=%u rate_idx=%u "
                    "remaining_cycles=%.0f\n",
                    e.time_s, e.core, e.rate_idx, e.f0);
        break;
      case EventType::kSpanEnd:
        if ((e.flags & obs::dfr::kFlagPreempted) != 0) {
          std::printf("t=%-12.6f PREEMPT  core=%u (ran %.6f s)\n", e.time_s,
                      e.core, e.time_s - e.f0);
        }
        break;
      case EventType::kTaskFinish:
        std::printf("t=%-12.6f finish   core=%u energy=%.4f J "
                    "turnaround=%.6f s\n",
                    e.time_s, e.core, e.f0, e.f1);
        break;
      default:
        break;
    }
  }
  DVFS_REQUIRE(seen, "task " + std::to_string(id) + " not in the recording");
  return 0;
}

int cmd_audit(const obs::Recording& rec, const util::Args& args) {
  const auto params = rec.first_of(EventType::kParams);
  const auto begin = rec.first_of(EventType::kRunBegin);
  const double re =
      args.has("re") ? args.get_double("re") : (params ? params->f0 : 0.4);
  const double rt =
      args.has("rt") ? args.get_double("rt") : (params ? params->f1 : 0.1);
  const std::size_t cores =
      begin ? begin->core : (params ? params->core : 0);
  DVFS_REQUIRE(cores > 0, "recording has no run_begin/params event");
  const core::EnergyModel model =
      tools::model_from_flag(args.get_string("model", "table2"));
  const std::vector<core::CostTable> tables(
      cores, core::CostTable(model, core::CostParams{re, rt}));

  std::printf("audit: %zu cores, Re=%g Rt=%g, model %s\n", cores, re, rt,
              args.get_string("model", "table2").c_str());

  // Replay the event stream, maintaining the queued-task set the governor
  // saw, and price each recorded non-interactive placement against a
  // clairvoyant offline replan of that same queue.
  std::map<core::TaskId, Event> arrivals;  // id -> kTaskArrival
  std::set<core::TaskId> started;
  std::size_t decisions = 0;
  double worst_gap = 0.0, sum_gap = 0.0;
  Joules realized_energy = 0.0;
  Seconds realized_turnaround = 0.0;
  std::size_t finished = 0;
  for (const Event& e : rec.events) {
    switch (static_cast<EventType>(e.type)) {
      case EventType::kTaskArrival:
        arrivals.emplace(e.task, e);
        break;
      case EventType::kTaskStart:
        started.insert(e.task);
        break;
      case EventType::kTaskFinish:
        realized_energy += e.f0;
        realized_turnaround += e.f1;
        ++finished;
        break;
      case EventType::kPlacement: {
        if (static_cast<obs::dfr::DecisionScope>(e.aux) !=
                obs::dfr::DecisionScope::kNonInteractive ||
            e.f1 == 0.0) {
          break;
        }
        // The queue at this instant: non-interactive tasks that have
        // arrived but not started (the just-placed task included — its
        // kTaskStart, if immediate, follows this event in the stream).
        std::vector<core::Task> queued;
        for (const auto& [id, a] : arrivals) {
          if (started.contains(id)) continue;
          if (static_cast<core::TaskClass>(a.aux) ==
              core::TaskClass::kInteractive) {
            continue;
          }
          queued.push_back(core::Task{.id = id, .cycles = a.u0});
        }
        if (queued.empty()) break;
        const core::Plan plan = core::workload_based_greedy(queued, tables);
        const Money offline = core::evaluate_plan(plan, tables).total();
        const double gap =
            offline > 0.0 ? e.f1 / offline - 1.0 : 0.0;
        ++decisions;
        sum_gap += gap;
        if (gap > worst_gap) worst_gap = gap;
        std::printf("  t=%-12.6f task=%-6llu core=%u queue_cost=%.4f "
                    "offline_wbg=%.4f gap=%+.2f%%\n",
                    e.time_s, static_cast<unsigned long long>(e.task), e.core,
                    e.f1, offline, gap * 100.0);
        break;
      }
      default:
        break;
    }
  }
  if (decisions > 0) {
    std::printf("%zu audited decisions: mean gap %+.2f%%, worst %+.2f%%\n",
                decisions, sum_gap / static_cast<double>(decisions) * 100.0,
                worst_gap * 100.0);
  } else {
    std::printf("no non-interactive LMC placements to audit\n");
  }

  // End-to-end: what the run actually cost vs a clairvoyant batch plan
  // over every recorded task (all arrive at 0 — a bound the online
  // governor cannot reach when arrivals are spread out).
  if (finished > 0 && !arrivals.empty()) {
    std::vector<core::Task> all;
    for (const auto& [id, a] : arrivals) {
      all.push_back(core::Task{.id = id, .cycles = a.u0});
    }
    const core::Plan plan = core::workload_based_greedy(all, tables);
    const Money offline = core::evaluate_plan(plan, tables).total();
    const Money realized = re * realized_energy + rt * realized_turnaround;
    std::printf("end-to-end: realized cost %.4f (energy %.1f J, turnaround "
                "%.1f s over %zu tasks)\n",
                realized, realized_energy, realized_turnaround, finished);
    std::printf("            offline WBG bound %.4f", offline);
    if (offline > 0.0) {
      std::printf(" -> realized gap %+.2f%%", (realized / offline - 1.0) * 100.0);
    }
    std::printf("\n");
  }
  return 0;
}

// ---------------------------------------------------------------- drift

/// Aggregates the kHwPlanned/kHwSpan pairs of a `.dfr` v2 recording into
/// calibration-error ratios, then re-plans the recorded workload with a
/// measurement-corrected model (energy-per-cycle scaled by the observed
/// energy ratio, time-per-cycle by the duration ratio) and reports which
/// placement/rate decisions WBG would flip and what the model error cost.
int cmd_drift(const obs::Recording& rec, const util::Args& args) {
  struct DimAgg {
    double predicted = 0.0;
    double measured = 0.0;
    std::size_t spans = 0;
    [[nodiscard]] double ratio() const {
      return predicted > 0.0 ? measured / predicted : 0.0;
    }
  };
  DimAgg cycles, duration, energy;
  std::map<core::TaskId, Event> planned;
  std::map<std::string, std::size_t> source_census;
  std::size_t spans = 0, model_spans = 0;

  for (const Event& e : rec.events) {
    switch (static_cast<EventType>(e.type)) {
      case EventType::kHwPlanned:
        planned[e.task] = e;
        break;
      case EventType::kHwSpan: {
        const auto it = planned.find(e.task);
        if (it == planned.end()) break;
        const Event& p = it->second;
        ++spans;
        const auto counter_src = obs::hw::decode_counter_source(e.aux);
        const auto time_src = obs::hw::decode_time_source(e.aux);
        const auto energy_src = obs::hw::decode_energy_source(e.aux);
        ++source_census[std::string("counter=") + to_string(counter_src)];
        ++source_census[std::string("time=") + to_string(time_src)];
        ++source_census[std::string("energy=") + to_string(energy_src)];
        bool any_measured = false;
        if (obs::hw::is_measured(counter_src)) {
          cycles.predicted += static_cast<double>(p.u0);
          cycles.measured += static_cast<double>(e.u0);
          ++cycles.spans;
          any_measured = true;
        }
        if (obs::hw::is_measured(time_src)) {
          duration.predicted += p.f1;
          duration.measured += e.f1;
          ++duration.spans;
          any_measured = true;
        }
        if (obs::hw::is_measured(energy_src)) {
          energy.predicted += p.f0;
          energy.measured += e.f0;
          ++energy.spans;
          any_measured = true;
        }
        if (!any_measured) ++model_spans;
        break;
      }
      default:
        break;
    }
  }
  DVFS_REQUIRE(spans > 0,
               "recording has no hw telemetry spans (record with "
               "dvfs_execute --hw ... --record-out)");

  std::printf("drift: %zu telemetry spans (%zu fully model-charged)\n",
              spans, model_spans);
  const auto print_dim = [](const char* name, const DimAgg& d) {
    if (d.spans > 0) {
      std::printf("  %-8s measured/predicted = %.6f over %zu spans\n", name,
                  d.ratio(), d.spans);
    } else {
      std::printf("  %-8s no measured spans (model-charged)\n", name);
    }
  };
  print_dim("cycles", cycles);
  print_dim("duration", duration);
  print_dim("energy", energy);
  for (const auto& [label, n] : source_census) {
    std::printf("    source %-22s %zu\n", label.c_str(), n);
  }

  // Re-plan the recorded workload with the measurement-corrected model.
  // An unmeasured dimension keeps its modeled curve (scale 1): the
  // correction only applies what was actually observed.
  const auto begin = rec.first_of(EventType::kRunBegin);
  DVFS_REQUIRE(begin.has_value() && begin->core > 0,
               "recording has no run_begin event");
  const std::size_t cores = begin->core;
  const double re = args.get_double("re", 0.4);
  const double rt = args.get_double("rt", 0.1);
  const core::EnergyModel base =
      tools::model_from_flag(args.get_string("model", "table2"));
  const double energy_scale = energy.spans > 0 ? energy.ratio() : 1.0;
  const double time_scale = duration.spans > 0 ? duration.ratio() : 1.0;
  std::vector<double> epc, tpc;
  for (std::size_t i = 0; i < base.num_rates(); ++i) {
    epc.push_back(base.energy_per_cycle(i) * energy_scale);
    tpc.push_back(base.time_per_cycle(i) * time_scale);
  }
  const core::EnergyModel corrected(base.rates(), epc, tpc);

  std::vector<core::Task> tasks;
  for (const auto& [id, p] : planned) {
    tasks.push_back(core::Task{.id = id, .cycles = p.u0});
  }
  const std::vector<core::CostTable> base_tables(
      cores, core::CostTable(base, core::CostParams{re, rt}));
  const std::vector<core::CostTable> corrected_tables(
      cores, core::CostTable(corrected, core::CostParams{re, rt}));
  const core::Plan base_plan = core::workload_based_greedy(tasks, base_tables);
  const core::Plan corrected_plan =
      core::workload_based_greedy(tasks, corrected_tables);

  std::map<core::TaskId, std::pair<std::size_t, std::size_t>> base_at;
  for (std::size_t c = 0; c < base_plan.cores.size(); ++c) {
    for (const core::ScheduledTask& st : base_plan.cores[c].sequence) {
      base_at[st.task_id] = {c, st.rate_idx};
    }
  }
  std::size_t flipped = 0;
  for (std::size_t c = 0; c < corrected_plan.cores.size(); ++c) {
    for (const core::ScheduledTask& st : corrected_plan.cores[c].sequence) {
      const auto it = base_at.find(st.task_id);
      if (it == base_at.end() ||
          it->second != std::make_pair(c, st.rate_idx)) {
        ++flipped;
      }
    }
  }
  // Price both plans under the corrected (believed-true) cost tables:
  // the delta is what trusting the uncorrected model costs.
  const Money base_cost =
      core::evaluate_plan(base_plan, corrected_tables).total();
  const Money corrected_cost =
      core::evaluate_plan(corrected_plan, corrected_tables).total();
  std::printf("replan (%zu tasks, %zu cores, Re=%g Rt=%g): %zu decision(s) "
              "flip under the corrected model\n",
              tasks.size(), cores, re, rt, flipped);
  std::printf("  cost of recorded-model plan, corrected prices: %.6f\n",
              base_cost);
  std::printf("  cost of corrected re-plan:                     %.6f\n",
              corrected_cost);
  std::printf("  model-error cost delta:                        %+.6f\n",
              base_cost - corrected_cost);

  if (args.has("json-out")) {
    obs::Json::Object sources;
    for (const auto& [label, n] : source_census) {
      sources.emplace(label, obs::Json(static_cast<std::uint64_t>(n)));
    }
    const obs::Json doc(obs::Json::Object{
        {"schema", obs::Json("dvfs-drift-v1")},
        {"spans", obs::Json(obs::Json::Object{
                      {"total", obs::Json(static_cast<std::uint64_t>(spans))},
                      {"model_only",
                       obs::Json(static_cast<std::uint64_t>(model_spans))}})},
        {"ratios",
         obs::Json(obs::Json::Object{{"cycles", obs::Json(cycles.ratio())},
                                     {"duration", obs::Json(duration.ratio())},
                                     {"energy", obs::Json(energy.ratio())}})},
        {"sources", obs::Json(std::move(sources))},
        {"replan",
         obs::Json(obs::Json::Object{
             {"tasks", obs::Json(static_cast<std::uint64_t>(tasks.size()))},
             {"cores", obs::Json(static_cast<std::uint64_t>(cores))},
             {"re", obs::Json(re)},
             {"rt", obs::Json(rt)},
             {"flipped", obs::Json(static_cast<std::uint64_t>(flipped))},
             {"recorded_plan_cost", obs::Json(base_cost)},
             {"corrected_plan_cost", obs::Json(corrected_cost)},
             {"cost_delta", obs::Json(base_cost - corrected_cost)}})}});
    const std::string path = args.get_string("json-out");
    obs::write_json_file(path, doc);
    std::printf("wrote drift report to %s\n", path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------- prof

/// Renders the kProfSample runs of a v5 recording: top-N functions by
/// self samples, per-stage and per-shard share tables (each summing to
/// exactly 100% of retained samples), and optionally the folded-stack
/// file flamegraph.pl consumes. Symbol names come from the recording's
/// "DFRS" epilogue; unnamed frames fall back to hex.
int cmd_prof(const obs::Recording& rec, const util::Args& args) {
  namespace prof = obs::prof;
  const std::vector<prof::StackSample> samples =
      prof::samples_from_events(rec.events);
  DVFS_REQUIRE(!samples.empty(),
               "recording has no CPU samples (v5 recordings from runs with "
               "--profile-out or --serve carry them)");
  const prof::TableSymbolizer sym(rec.symbols);
  const prof::Report report = prof::build_report(samples, sym);

  double t_begin = samples.front().t_s, t_end = samples.front().t_s;
  for (const prof::StackSample& s : samples) {
    t_begin = std::min(t_begin, s.t_s);
    t_end = std::max(t_end, s.t_s);
  }
  std::printf("%llu samples over %.3f s\n",
              static_cast<unsigned long long>(report.samples),
              t_end - t_begin);
  // The profiler's exact accounting rides in the metrics epilogue.
  if (rec.metrics) {
    const std::uint64_t dropped =
        rec.metrics->counter("obs.prof.dropped").value();
    std::printf("ring drops: %llu (exact; samples lost before collection)\n",
                static_cast<unsigned long long>(dropped));
  }

  const std::uint64_t top = args.get_u64("top", 20);
  std::printf("%-10s %-10s function\n", "self", "cum");
  std::uint64_t shown = 0;
  for (const prof::Report::Entry& e : report.by_function) {
    if (shown++ >= top) break;
    std::printf("%-10llu %-10llu %s\n",
                static_cast<unsigned long long>(e.self),
                static_cast<unsigned long long>(e.cum), e.name.c_str());
  }
  if (report.by_function.size() > top) {
    std::printf("  ... %zu more (raise --top)\n",
                report.by_function.size() - top);
  }

  const double denom = static_cast<double>(report.samples);
  std::printf("by stage:\n");
  for (const auto& [stage, n] : report.by_stage) {
    std::printf("  %-10s %-10llu %.1f%%\n", prof::to_string(stage),
                static_cast<unsigned long long>(n),
                static_cast<double>(n) / denom * 100.0);
  }
  std::printf("by shard:\n");
  for (const auto& [shard, n] : report.by_shard) {
    if (shard == prof::kNoShard) {
      std::printf("  %-10s %-10llu %.1f%%\n", "(none)",
                  static_cast<unsigned long long>(n),
                  static_cast<double>(n) / denom * 100.0);
    } else {
      std::printf("  shard %-4u %-10llu %.1f%%\n", shard,
                  static_cast<unsigned long long>(n),
                  static_cast<double>(n) / denom * 100.0);
    }
  }

  if (args.has("folded")) {
    const std::string path = args.get_string("folded");
    const std::string folded = prof::folded_stacks(samples, sym);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    DVFS_REQUIRE(f != nullptr, "cannot open " + path);
    std::fwrite(folded.data(), 1, folded.size(), f);
    std::fclose(f);
    std::printf("wrote folded stacks to %s (flamegraph.pl ready)\n",
                path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------- health

/// Replays the v3 kHealthSample stream through the *same* SloEngine the
/// live monitor ran, cross-checking at every step that the offline state
/// machine lands where the live one did (u0 carries the live after-state)
/// and that the rule config matches (task carries the rule-name hash).
int cmd_health(const obs::Recording& rec, const util::Args& args) {
  namespace health = obs::health;
  const std::vector<health::Rule> rules =
      health::load_rules(args.get_string("health-config", ""));
  health::SloEngine engine(rules);

  std::size_t samples = 0, transitions = 0, recorded_alerts = 0;
  for (const Event& e : rec.events) {
    const auto type = static_cast<EventType>(e.type);
    if (type == EventType::kAlert) {
      ++recorded_alerts;
      continue;
    }
    if (type != EventType::kHealthSample) continue;
    const std::size_t idx = e.aux;
    DVFS_REQUIRE(idx < rules.size(),
                 "health sample references rule index " + std::to_string(idx) +
                     " but this config has only " +
                     std::to_string(rules.size()) +
                     " rules (was the recording made with a different "
                     "--health-config?)");
    DVFS_REQUIRE(e.task == health::rule_hash(rules[idx].name),
                 "rule-name hash mismatch at index " + std::to_string(idx) +
                     " (" + rules[idx].name +
                     "): the recording was made with a different health "
                     "config; pass the matching --health-config");
    const health::SloEngine::Evaluation ev =
        engine.step(idx, e.time_s, e.f0, e.f1);
    ++samples;
    DVFS_REQUIRE(
        static_cast<std::uint64_t>(ev.after) == e.u0,
        "offline replay diverged from the live monitor on rule " +
            rules[idx].name + " at t=" + std::to_string(e.time_s) +
            " (offline " + health::to_string(ev.after) + ", recorded " +
            health::to_string(static_cast<health::AlertState>(e.u0)) + ")");
    if (ev.transition()) {
      ++transitions;
      std::printf("t=%-12.6f alert %-24s %s -> %s (short=%g long=%g, %s %g)\n",
                  ev.t, rules[idx].name.c_str(),
                  health::to_string(ev.before), health::to_string(ev.after),
                  ev.short_value, ev.long_value,
                  health::to_string(rules[idx].op), rules[idx].threshold);
    }
  }
  DVFS_REQUIRE(samples > 0,
               "recording has no health samples (record one with "
               "dvfs_simulate/dvfs_execute --health-config ... --record-out)");
  DVFS_REQUIRE(transitions == recorded_alerts,
               "offline replay derived " + std::to_string(transitions) +
                   " transitions but the recording carries " +
                   std::to_string(recorded_alerts) + " alert events");
  std::printf("replayed %zu health samples, %zu transitions, all states "
              "match the live monitor\n",
              samples, transitions);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::printf("final: %-24s %s\n", rules[i].name.c_str(),
                health::to_string(engine.state(i)));
  }
  std::printf("firing at end: %zu\n", engine.firing_count());
  return 0;
}

constexpr const char* kUsage =
    "usage: dvfs_inspect <info|replay|trace|explain|audit|drift|health|prof> "
    "--in run.dfr\n"
    "  info     recording header, per-channel counters and event census\n"
    "  replay   --trace-out t.json --metrics-out m.json (byte-identical to\n"
    "           the live run's --trace-out/--metrics-out)\n"
    "  trace    [--task <id> | --slowest N] [--trace-out t.json]: rebuild\n"
    "           per-task request timelines from v4 service recordings with\n"
    "           the per-stage latency breakdown and admission critical\n"
    "           path; export the selection as Chrome trace JSON\n"
    "  explain  --task <id>: that task's decisions, candidates and timeline\n"
    "  audit    [--model table2|cubic:<n>] [--re R] [--rt R]: offline WBG\n"
    "           replan of each recorded placement + end-to-end gap\n"
    "  drift    [--model SPEC] [--re R] [--rt R] [--json-out d.json]:\n"
    "           summarize predicted-vs-measured telemetry ratios (v2\n"
    "           recordings from dvfs_execute --hw) and re-plan with the\n"
    "           measurement-corrected model, reporting flipped decisions\n"
    "           and the model-error cost delta\n"
    "  health   [--health-config rules.json]: replay the recorded SLO\n"
    "           evaluations (v3) through the engine offline, verify every\n"
    "           state against the live monitor, print alert transitions\n"
    "  prof     [--top N] [--folded out.folded]: render the v5 CPU samples\n"
    "           as top-N self/cumulative tables, per-stage and per-shard\n"
    "           shares, and optionally folded stacks for flamegraph.pl\n";

}  // namespace

int main(int argc, char** argv) {
  return dvfs::tools::run_tool([&] {
    const dvfs::util::Args args(argc, argv,
                                {"in", "trace-out", "metrics-out", "task",
                                 "slowest", "model", "re", "rt", "json-out",
                                 "health-config", "top", "folded", "help"});
    if (args.has("help") || args.positional().empty()) {
      std::fputs(kUsage, stdout);
      return args.has("help") ? 0 : 2;
    }
    const std::string cmd = args.positional().front();
    const dvfs::obs::Recording rec =
        dvfs::obs::Recording::load(args.get_string("in"));
    if (cmd == "info") return cmd_info(rec);
    if (cmd == "replay") return cmd_replay(rec, args);
    if (cmd == "trace") return cmd_trace(rec, args);
    if (cmd == "explain") return cmd_explain(rec, args);
    if (cmd == "audit") return cmd_audit(rec, args);
    if (cmd == "drift") return cmd_drift(rec, args);
    if (cmd == "health") return cmd_health(rec, args);
    if (cmd == "prof") return cmd_prof(rec, args);
    DVFS_REQUIRE(false,
                 "unknown subcommand (want "
                 "info|replay|trace|explain|audit|drift|health|prof): " +
                     cmd);
    return 2;
  });
}
