/// \file dvfs_fuzz.cpp
/// \brief Differential fuzzer CLI.
///
/// Drives randomized instances through the oracle pairs (production
/// algorithm vs independent reference), shrinks any counterexample to a
/// minimal instance, and prints the seed plus a paste-ready regression
/// test. See docs/testing.md.
///
///   dvfs_fuzz --oracle all --instances 500 --seed 7
///   dvfs_fuzz --oracle ltl_vs_bf --instances 2000 --artifact-dir out/
///   dvfs_fuzz --replay ../tests/corpus          # deterministic re-check
///   dvfs_fuzz --oracle ltl_vs_bf --inject ltl-off-by-one   # demo: must FAIL
///
/// Exit codes: 0 all checks passed, 1 a counterexample was found (or a
/// replayed corpus file failed), 2 usage/precondition error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dvfs/proptest/proptest.h"
#include "dvfs/util/args.h"
#include "tool_common.h"

namespace {

namespace pt = dvfs::proptest;

constexpr const char* kUsage = R"(usage: dvfs_fuzz [options]
  --oracle NAME|all     oracle pair to fuzz (default: all)
  --instances N         instances per oracle (default: 500)
  --seed S              base seed (default: 1)
  --artifact-dir DIR    write shrunk counterexamples here
                        (default: fuzz-artifacts)
  --replay PATH         replay a .corpus file or a directory of them
  --inject WHAT         swap in a known-broken subject to demo detection
                        (ltl-off-by-one)
  --emit                write every generated (and passing) instance to the
                        artifact dir as .corpus files — seeds a new corpus
  --list                print oracle names and exit
)";

std::vector<std::string> oracle_selection(const std::string& flag) {
  if (flag != "all") {
    DVFS_REQUIRE(
        std::any_of(std::begin(pt::kOracleNames), std::end(pt::kOracleNames),
                    [&](const char* n) { return flag == n; }),
        "unknown oracle `" + flag + "` (try --list)");
    return {flag};
  }
  return {std::begin(pt::kOracleNames), std::end(pt::kOracleNames)};
}

int replay(const std::string& path, const pt::OracleHooks& hooks) {
  std::vector<std::string> files;
  if (std::filesystem::is_directory(path)) {
    files = pt::corpus_files(path);
    DVFS_REQUIRE(!files.empty(), "no .corpus files under " + path);
  } else {
    files.push_back(path);
  }
  int failures = 0;
  for (const std::string& file : files) {
    const pt::Verdict verdict = pt::replay_corpus_file(file, hooks);
    if (verdict) {
      ++failures;
      std::cout << "FAIL " << file << "\n  " << *verdict << '\n';
    } else {
      std::cout << "ok   " << file << '\n';
    }
  }
  std::cout << files.size() << " corpus file(s), " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return dvfs::tools::run_tool([&]() -> int {
    const dvfs::util::Args args(argc, argv,
                                {"oracle", "instances", "seed", "artifact-dir",
                                 "replay", "inject", "emit", "list", "help"});
    if (args.has("help")) {
      std::cout << kUsage;
      return 0;
    }
    if (args.has("list")) {
      for (const char* n : pt::kOracleNames) std::cout << n << '\n';
      return 0;
    }

    pt::OracleHooks hooks;
    if (args.has("inject")) {
      const std::string what = args.get_string("inject");
      DVFS_REQUIRE(what == "ltl-off-by-one",
                   "unknown injection `" + what + "`");
      hooks.single_core = [](std::span<const dvfs::core::Task> ts,
                             const dvfs::core::CostTable& t) {
        return pt::inject::longest_task_last_off_by_one(ts, t);
      };
    }

    if (args.has("replay")) {
      return replay(args.get_string("replay"), hooks);
    }

    const std::size_t instances = args.get_u64("instances", 500);
    const std::uint64_t seed = args.get_u64("seed", 1);
    const std::string artifact_dir =
        args.get_string("artifact-dir", "fuzz-artifacts");

    if (args.has("emit")) {
      // Corpus bootstrap: generate, verify, and save instances verbatim.
      std::filesystem::create_directories(artifact_dir);
      for (const std::string& oracle :
           oracle_selection(args.get_string("oracle", "all"))) {
        for (std::size_t i = 0; i < instances; ++i) {
          const std::uint64_t s = pt::derive_seed(seed, i);
          const pt::Instance inst = pt::generate_instance(oracle, s);
          const pt::Verdict verdict = pt::check_instance(inst, hooks);
          DVFS_REQUIRE(!verdict,
                       "refusing to emit a failing instance: " + *verdict);
          char name[64];
          std::snprintf(name, sizeof name, "%s-%016llx.corpus",
                        oracle.c_str(), static_cast<unsigned long long>(s));
          std::ofstream os(artifact_dir + "/" + name);
          pt::write_instance(inst, os);
          std::cout << "emitted " << artifact_dir << '/' << name << '\n';
        }
      }
      return 0;
    }

    bool any_failed = false;
    std::size_t total = 0;
    for (const std::string& oracle :
         oracle_selection(args.get_string("oracle", "all"))) {
      pt::FuzzOptions opts;
      opts.oracle = oracle;
      opts.instances = instances;
      opts.base_seed = seed;
      opts.artifact_dir = artifact_dir;
      opts.hooks = hooks;
      opts.log = &std::cout;
      const pt::FuzzReport report = pt::run_fuzz(opts);
      total += report.ran;
      if (report.failed) {
        any_failed = true;
      } else {
        std::cout << "ok   " << oracle << ": " << report.ran
                  << " instances\n";
      }
    }
    std::cout << total << " instance(s) total, "
              << (any_failed ? "counterexample found" : "all passed") << '\n';
    return any_failed ? 1 : 0;
  });
}
