/// dvfs_plan: compute the optimal batch plan (Workload Based Greedy) for a
/// set of tasks and write it as CSV.
///
///   dvfs_plan --tasks batch.csv --cores 4 --re 0.1 --rt 0.4 --out plan.csv
///
/// Flags:
///   --tasks   input trace CSV (batch tasks: arrival 0)   (required)
///   --out     output plan CSV                            (required)
///   --cores   number of identical cores                  (default 4)
///   --re      money per joule                            (default 0.1)
///   --rt      money per second of waiting                (default 0.4)
///   --model   table2 | cubic:<n>                         (default table2)
///   --spec    use the paper's 24 Table I workloads instead of --tasks
#include <cstdio>
#include <set>
#include <vector>

#include "dvfs/core/batch_multi.h"
#include "dvfs/core/plan_io.h"
#include "dvfs/workload/spec2006int.h"
#include "dvfs/workload/trace.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  return tools::run_tool([&] {
    const util::Args args(
        argc, argv, {"tasks", "out", "cores", "re", "rt", "model", "spec"});
    const std::string out = args.get_string("out");
    const std::size_t cores = args.get_u64("cores", 4);
    const core::CostParams cp{args.get_double("re", 0.1),
                              args.get_double("rt", 0.4)};
    const core::EnergyModel model =
        tools::model_from_flag(args.get_string("model", "table2"));

    std::vector<core::Task> tasks;
    if (args.has("spec")) {
      tasks = workload::spec_batch_tasks();
    } else {
      const workload::Trace trace =
          workload::read_csv_file(args.get_string("tasks"));
      tasks = trace.tasks();
      for (core::Task& t : tasks) {
        DVFS_REQUIRE(t.arrival == 0.0,
                     "batch planning needs arrival-0 tasks (got task " +
                         std::to_string(t.id) + " at t=" +
                         std::to_string(t.arrival) + ")");
      }
    }

    const std::vector<core::CostTable> tables(cores,
                                              core::CostTable(model, cp));
    const core::Plan plan = core::workload_based_greedy(tasks, tables);
    core::write_plan_csv_file(plan, out);

    const core::PlanCost cost = core::evaluate_plan(plan, tables);
    std::printf("%zu tasks on %zu cores -> %s\n", tasks.size(), cores,
                out.c_str());
    std::printf("model cost: %.2f (energy %.2f + time %.2f); energy %.0f J; "
                "makespan %.0f s\n",
                cost.total(), cost.energy_cost, cost.time_cost, cost.energy,
                cost.makespan);
    return 0;
  });
}
