/// Ablation A12: live model validation on real threads.
///
/// A time-dilated rerun of the Fig. 1 idea on the actual machine: the WBG
/// plan for the 24 Table I workloads executes on four real worker threads
/// (dvfs::rt), with frequency emulated as model-time spinning. The wall
/// clock then *measures* what the model predicted. Drift between the two
/// is real-world noise (scheduler jitter, clock overhead, co-tenants) —
/// the quantity the paper's Fig. 1 calls the model error.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/rt/executor.h"
#include "dvfs/workload/spec2006int.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_rt_validation", argc, argv);
  constexpr std::size_t kCores = 4;
  constexpr double kTimeScale = 1e-3;  // 3400 model-seconds -> ~3.4 s wall

  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  const core::CostParams cp{0.1, 0.4};
  const std::vector<core::CostTable> tables(kCores,
                                            core::CostTable(model, cp));
  const auto tasks = workload::spec_batch_tasks();
  const core::Plan plan = core::workload_based_greedy(tasks, tables);
  const core::PlanCost predicted = core::evaluate_plan(plan, tables);

  rt::RealtimeExecutor exec(model, {.time_scale = kTimeScale,
                                    .pin_threads = true});
  const rt::RtResult measured = exec.execute(plan);

  bench::print_header(
      "A12: WBG plan on real threads (time scale 1e-3, 4 workers)");
  std::printf("model makespan (scaled): %8.3f s\n",
              predicted.makespan * kTimeScale);
  std::printf("wall makespan:           %8.3f s (%+.2f%%)\n",
              measured.wall_makespan,
              (measured.wall_makespan / (predicted.makespan * kTimeScale) -
               1.0) * 100.0);
  std::printf("tasks executed:          %zu of %zu\n", measured.tasks.size(),
              tasks.size());
  std::printf("worst per-task drift:    %.2f%%\n",
              measured.worst_relative_drift() * 100.0);
  std::printf("model energy:            %.0f J (charged per cycles*E(p))\n",
              measured.model_energy);

  // Turnaround comparison: the per-task wall finish times vs the model's.
  std::map<core::TaskId, Seconds> model_finish;
  for (const core::CorePlan& c : plan.cores) {
    Seconds clock = 0.0;
    for (const core::ScheduledTask& st : c.sequence) {
      clock += model.task_time(st.cycles, st.rate_idx);
      model_finish[st.task_id] = clock * kTimeScale;
    }
  }
  // Per-task finish drift normalized by the makespan: millisecond-scale
  // thread-spawn jitter would swamp a ratio against the *earliest* tasks'
  // own (tiny) finish times, but against the schedule length it is the
  // right fidelity metric.
  const Seconds span = predicted.makespan * kTimeScale;
  double worst_schedule_drift = 0.0;
  for (const rt::RtTaskRecord& t : measured.tasks) {
    worst_schedule_drift = std::max(
        worst_schedule_drift, std::abs(t.finish - model_finish[t.id]) / span);
  }
  std::printf("worst finish drift:      %.2f%% of the makespan\n",
              worst_schedule_drift * 100.0);
  const bool ok = worst_schedule_drift < 0.10;
  std::printf("\nmodel tracks real execution within 10%% of the schedule: "
              "%s\n",
              ok ? "yes" : "NO (noisy machine?)");
  bench::BenchRow row("wbg_on_threads");
  row.set_wall_ns(measured.wall_makespan * 1e9)
      .set_energy_j(measured.model_energy)
      .counter("tasks_executed", static_cast<double>(measured.tasks.size()))
      .counter("worst_task_drift", measured.worst_relative_drift())
      .counter("worst_finish_drift", worst_schedule_drift);
  reporter.add(std::move(row));
  reporter.write();
  return 0;  // informational: noisy CI boxes should not fail the suite
}
