/// Ablation A8: LMC vs full WBG rebalancing (Section IV's rejected
/// alternative).
///
/// The paper chooses LMC over replanning with WBG on every arrival
/// because migration overhead "could impact the performance". This bench
/// quantifies that choice: WBG-rebalance with free migration is the
/// quality upper bound; charging a per-migration penalty (cold caches,
/// queue surgery) shows where LMC's no-migration design overtakes it. The
/// scheduler's own decision time is reported too (a full replan is
/// O(n log n) per arrival versus LMC's O(R log n)).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/governors/wbg_rebalance_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/generators.h"

namespace {

using namespace dvfs;
constexpr std::size_t kCores = 4;
using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_migration", argc, argv);
  const core::CostParams cp{0.4, 0.1};
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  workload::JudgegirlConfig cfg;
  cfg.duration = 900.0;
  cfg.non_interactive_tasks = 384;
  cfg.interactive_tasks = 25262;
  const workload::Trace trace = workload::generate_judgegirl(cfg, 2014);

  struct Row {
    const char* name;
    sim::SimResult result;
    std::size_t migrations;
    double wall_ms;
  };
  std::vector<Row> rows;

  auto run = [&](const char* name, auto&& make_policy) {
    auto policy = make_policy();
    sim::Engine engine(std::vector<core::EnergyModel>(kCores, model),
                       sim::ContentionModel::none());
    const auto t0 = Clock::now();
    sim::SimResult r = engine.run(trace, policy);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::size_t migrations = 0;
    if constexpr (requires { policy.migrations(); }) {
      migrations = policy.migrations();
    }
    rows.push_back(Row{name, std::move(r), migrations, ms});
  };

  const std::vector<core::CostTable> tables(kCores,
                                            core::CostTable(model, cp));
  run("LMC", [&] { return governors::LmcPolicy(tables); });
  run("WBG-0", [&] { return governors::WbgRebalancePolicy(tables, 0); });
  // 50M cycles per migration ~ 17 ms at 3 GHz of cache-refill + bookkeeping.
  run("WBG-50M",
      [&] { return governors::WbgRebalancePolicy(tables, 50'000'000); });
  // 500M cycles ~ heavy state (checkpoint/restore-style migration).
  run("WBG-500M",
      [&] { return governors::WbgRebalancePolicy(tables, 500'000'000); });

  bench::print_header(
      "A8: LMC vs WBG-rebalance (free and penalized migration)");
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "policy", "total cost",
              "vs LMC", "migrations", "sim wall ms", "energy(J)");
  bench::print_rule(76);
  const Money lmc_cost = rows[0].result.total_cost(cp);
  for (const Row& row : rows) {
    std::printf("%-10s %12.0f %11.1f%% %12zu %12.1f %12.0f\n", row.name,
                row.result.total_cost(cp),
                (row.result.total_cost(cp) / lmc_cost - 1.0) * 100.0,
                row.migrations, row.wall_ms, row.result.busy_energy);
    bench::BenchRow r(row.name);
    r.set_wall_ns(row.wall_ms * 1e6)
        .set_cost(row.result.total_cost(cp))
        .set_energy_j(row.result.busy_energy)
        .set_turnaround_s(row.result.total_turnaround())
        .counter("migrations", static_cast<double>(row.migrations));
    reporter.add(std::move(r));
  }
  std::printf(
      "\nReading: WBG-0 (free migration) bounds LMC's optimality gap from\n"
      "below; the penalized rows show the overhead the paper worried about\n"
      "eroding that edge. Wall time is the whole simulated half-exam.\n");
  reporter.write();
  return 0;
}
