/// Ablation A7: the deadline-constrained problem (Theorems 1-2).
///
/// Times the exact solver on Partition-shaped gadgets of growing size —
/// the NP-completeness proof predicts exponential growth on hard (no-
/// partition) instances — and measures how often the polynomial heuristic
/// finds a witness on feasible ones.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/deadline.h"

namespace {

using namespace dvfs;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_deadline", argc, argv);
  std::mt19937_64 rng(1);

  bench::print_header("A7a: exact Deadline-SingleCore on Partition gadgets");
  std::printf("%6s %16s %16s %20s\n", "n", "feasible (ms)", "infeasible (ms)",
              "(hard = odd-sum instance)");
  bench::print_rule(64);
  for (const std::size_t n : {8u, 12u, 16u, 20u}) {
    // Feasible: duplicated values always partition evenly.
    std::vector<std::uint64_t> feasible;
    for (std::size_t i = 0; i < n / 2; ++i) {
      const std::uint64_t v = 1 + rng() % 1000;
      feasible.push_back(v);
      feasible.push_back(v);
    }
    // Infeasible: odd total, forcing the solver to exhaust the space.
    std::vector<std::uint64_t> infeasible(n, 2);
    infeasible[0] = 3;

    auto t0 = Clock::now();
    const bool f = core::solve_partition_via_scheduler(feasible).has_value();
    const double feasible_ms = ms_since(t0);
    t0 = Clock::now();
    const bool g = core::solve_partition_via_scheduler(infeasible).has_value();
    const double infeasible_ms = ms_since(t0);
    std::printf("%6zu %16.3f %16.3f   feasible=%d infeasible=%d\n", n,
                feasible_ms, infeasible_ms, f ? 1 : 0, g ? 1 : 0);
    bench::BenchRow row("partition_gadget");
    row.param("n", static_cast<std::uint64_t>(n))
        .set_wall_ns(infeasible_ms * 1e6)
        .counter("feasible_ms", feasible_ms)
        .counter("infeasible_ms", infeasible_ms);
    reporter.add(std::move(row));
  }

  bench::print_header("A7b: heuristic vs exact on random feasible gadgets");
  std::size_t heuristic_hits = 0;
  std::size_t exact_hits = 0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 7; ++i) {
      const std::uint64_t v = 1 + rng() % 50;
      values.push_back(v);
      values.push_back(v);  // guarantees a perfect partition exists
    }
    const core::DeadlineInstance inst =
        core::partition_to_deadline_single(values);
    if (core::solve_deadline_single_exact(inst).has_value()) ++exact_hits;
    if (core::solve_deadline_single_heuristic(inst).has_value()) {
      ++heuristic_hits;
    }
  }
  std::printf("exact success:     %zu/%d (must be %d: instances are "
              "feasible by construction)\n",
              exact_hits, kTrials, kTrials);
  std::printf("heuristic success: %zu/%d (incomplete but sound; the gap is "
              "the price of polynomial time)\n",
              heuristic_hits, kTrials);
  bench::BenchRow hits("heuristic_vs_exact");
  hits.counter("exact_hits", static_cast<double>(exact_hits))
      .counter("heuristic_hits", static_cast<double>(heuristic_hits))
      .counter("trials", kTrials);
  reporter.add(std::move(hits));

  bench::print_header("A7c: exact Deadline-MultiCore (Theorem 2 gadget)");
  for (const std::size_t n : {12u, 20u, 28u}) {
    std::vector<std::uint64_t> values;
    for (std::size_t i = 0; i < n / 2; ++i) {
      const std::uint64_t v = 1 + rng() % 1000;
      values.push_back(v);
      values.push_back(v);
    }
    const auto t0 = Clock::now();
    const bool ok =
        core::solve_deadline_multi_exact(core::partition_to_deadline_multi(values))
            .has_value();
    std::printf("n=%2zu: %s in %.3f ms\n", n,
                ok ? "schedulable" : "NOT schedulable (bug)", ms_since(t0));
  }
  reporter.write();
  return exact_hits == kTrials ? 0 : 1;
}
