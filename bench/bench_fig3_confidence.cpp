/// Fig. 3 with error bars: the paper evaluates LMC on one proprietary
/// trace; this bench replays the comparison over 16 independently seeded
/// Judgegirl-scale traces (in parallel on a thread pool) and reports the
/// mean +/- 95% CI of each normalized metric, showing the Fig. 3
/// conclusions are a property of the workload *regime*, not of one lucky
/// trace.
#include <cstdio>

#include "bench_util.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/parallel/seed_sweep.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/generators.h"

namespace {

using namespace dvfs;
constexpr std::size_t kCores = 4;
constexpr std::size_t kReplications = 16;

parallel::MetricMap measure(std::uint64_t seed) {
  const core::CostParams cp{0.4, 0.1};
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  // 1/4-scale traces keep 16 replications quick; the regime (burst shape,
  // task mix, per-core load) matches the headline bench.
  workload::JudgegirlConfig cfg;
  cfg.duration = 450.0;
  cfg.non_interactive_tasks = 192;
  cfg.interactive_tasks = 12631;
  const workload::Trace trace = workload::generate_judgegirl(cfg, seed);

  auto run = [&](sim::Policy& policy) {
    sim::Engine engine(std::vector<core::EnergyModel>(kCores, model),
                       sim::ContentionModel::none());
    return engine.run(trace, policy);
  };
  governors::LmcPolicy lmc(
      std::vector<core::CostTable>(kCores, core::CostTable(model, cp)));
  governors::FifoPolicy olb(
      {.placement = governors::FifoPolicy::Placement::kEarliestReady,
       .freq = governors::FifoPolicy::FreqMode::kMax});
  governors::FifoPolicy od(
      {.placement = governors::FifoPolicy::Placement::kRoundRobin,
       .freq = governors::FifoPolicy::FreqMode::kOndemand});
  const sim::SimResult r_lmc = run(lmc);
  const sim::SimResult r_olb = run(olb);
  const sim::SimResult r_od = run(od);

  return parallel::MetricMap{
      {"olb/lmc energy", r_olb.energy_cost(cp) / r_lmc.energy_cost(cp)},
      {"olb/lmc time", r_olb.time_cost(cp) / r_lmc.time_cost(cp)},
      {"olb/lmc total", r_olb.total_cost(cp) / r_lmc.total_cost(cp)},
      {"od/lmc energy", r_od.energy_cost(cp) / r_lmc.energy_cost(cp)},
      {"od/lmc time", r_od.time_cost(cp) / r_lmc.time_cost(cp)},
      {"od/lmc total", r_od.total_cost(cp) / r_lmc.total_cost(cp)},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_fig3_confidence", argc, argv);
  bench::print_header(
      "Fig. 3 with error bars: baseline cost relative to LMC over 16 seeded "
      "traces");
  parallel::ThreadPool pool;
  const auto stats = parallel::sweep_seeds(pool, kReplications, 3000, measure);
  std::printf("%-18s %10s %12s %10s %10s   %s\n", "metric", "mean",
              "+/-95%CI", "min", "max", "(>1 = LMC cheaper)");
  bench::print_rule(78);
  for (const auto& [name, s] : stats) {
    std::printf("%-18s %10.3f %12.3f %10.3f %10.3f\n", name.c_str(), s.mean,
                s.ci95(), s.min, s.max);
    bench::BenchRow row(name);
    row.counter("mean", s.mean)
        .counter("ci95", s.ci95())
        .counter("min", s.min)
        .counter("max", s.max);
    reporter.add(std::move(row));
  }
  // The reproduction claim: LMC wins on every metric in expectation, and
  // the total-cost win is outside the confidence interval.
  const bool wins =
      stats.at("olb/lmc total").mean - stats.at("olb/lmc total").ci95() > 1.0 &&
      stats.at("od/lmc total").mean - stats.at("od/lmc total").ci95() > 1.0;
  std::printf("\nLMC total-cost win significant at ~95%%: %s\n",
              wins ? "yes" : "NO");
  reporter.write();
  return wins ? 0 : 1;
}
