/// Reproduces Fig. 3: online-mode cost comparison of Least Marginal Cost
/// (LMC) against Opportunistic Load Balancing (OLB) and On-demand (OD).
///
/// Setup follows Section V-B: a Judgegirl-scale exam trace (768
/// non-interactive submissions + 50525 interactive requests over half an
/// hour, five problems), four cores, Re = 0.4 cents/J, Rt = 0.1 cents/s.
/// OLB places on the earliest-ready core at the highest frequency; OD
/// assigns round-robin with the Linux ondemand rule; LMC is the paper's
/// heuristic. The trace itself is synthetic (the original is proprietary)
/// with the published population sizes; see DESIGN.md for the
/// substitution rationale.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/generators.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_fig3", argc, argv);
  constexpr std::size_t kCores = 4;
  const core::CostParams cp{0.4, 0.1};
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();

  const workload::Trace trace =
      workload::generate_judgegirl(workload::JudgegirlConfig{}, 2014);
  std::printf("trace: %zu interactive + %zu non-interactive tasks, "
              "%.0f s horizon\n",
              trace.count(core::TaskClass::kInteractive),
              trace.count(core::TaskClass::kNonInteractive), trace.horizon());

  auto engine = [&] {
    return sim::Engine(std::vector<core::EnergyModel>(kCores, model),
                       sim::ContentionModel::none());
  };

  sim::SimResult lmc;
  {
    sim::Engine e = engine();
    governors::LmcPolicy policy(
        std::vector<core::CostTable>(kCores, core::CostTable(model, cp)));
    lmc = e.run(trace, policy);
  }
  sim::SimResult olb;
  {
    sim::Engine e = engine();
    governors::FifoPolicy policy(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kMax});
    olb = e.run(trace, policy);
  }
  sim::SimResult od;
  {
    sim::Engine e = engine();
    governors::FifoPolicy policy(
        {.placement = governors::FifoPolicy::Placement::kRoundRobin,
         .freq = governors::FifoPolicy::FreqMode::kOndemand});
    od = e.run(trace, policy);
  }

  bench::print_header(
      "Fig. 3: Cost Comparison of Scheduling Methods (online, normalized to LMC)");
  const std::vector<bench::PolicyOutcome> rows{
      bench::outcome_from("LMC", lmc, cp),
      bench::outcome_from("OLB", olb, cp),
      bench::outcome_from("OD", od, cp),
  };
  bench::print_normalized(rows);
  std::printf("\n");
  bench::print_deltas(rows[0], rows[1]);  // paper: -11%% energy, -31%% time
  bench::print_deltas(rows[0], rows[2]);  // paper: -11%% energy, -46%% time
  std::printf("\nmean interactive turnaround: LMC %.4f s, OLB %.4f s, "
              "OD %.4f s\n",
              lmc.mean_turnaround(core::TaskClass::kInteractive),
              olb.mean_turnaround(core::TaskClass::kInteractive),
              od.mean_turnaround(core::TaskClass::kInteractive));
  std::printf("mean submission turnaround:  LMC %.3f s, OLB %.3f s, "
              "OD %.3f s\n",
              lmc.mean_turnaround(core::TaskClass::kNonInteractive),
              olb.mean_turnaround(core::TaskClass::kNonInteractive),
              od.mean_turnaround(core::TaskClass::kNonInteractive));
  std::printf("\nfrequency residency (share of busy time):\n");
  bench::print_rate_share("LMC", lmc, model.rates());
  bench::print_rate_share("OLB", olb, model.rates());
  bench::print_rate_share("OD", od, model.rates());
  const std::size_t n_int = trace.count(core::TaskClass::kInteractive);
  std::printf("\ninteractive 2s-deadline misses: LMC %zu, OLB %zu, OD %zu "
              "(of %zu)\n",
              lmc.deadline_misses(core::TaskClass::kInteractive),
              olb.deadline_misses(core::TaskClass::kInteractive),
              od.deadline_misses(core::TaskClass::kInteractive), n_int);
  std::printf("interactive p95/p99 latency: LMC %.3f/%.3f s, OLB %.3f/%.3f "
              "s, OD %.3f/%.3f s\n",
              lmc.turnaround_percentile(core::TaskClass::kInteractive, 0.95),
              lmc.turnaround_percentile(core::TaskClass::kInteractive, 0.99),
              olb.turnaround_percentile(core::TaskClass::kInteractive, 0.95),
              olb.turnaround_percentile(core::TaskClass::kInteractive, 0.99),
              od.turnaround_percentile(core::TaskClass::kInteractive, 0.95),
              od.turnaround_percentile(core::TaskClass::kInteractive, 0.99));
  for (const bench::PolicyOutcome& o : rows) reporter.add(o);
  reporter.write();
  return 0;
}
