/// Ablation A9: heterogeneous platforms.
///
/// The paper states both WBG (Theorem 5) and LMC (Section IV) handle
/// heterogeneous multi-core systems; its evaluation only shows the
/// homogeneous i7-950. This bench exercises the heterogeneous paths at
/// scale on a big.LITTLE-style machine: two fast/hungry cores (i7-like
/// Table II) plus two slow/frugal cores (Exynos-like cubic model).
///
///  * batch: WBG on the mixed platform vs the naive "pretend homogeneous"
///    round-robin using only the big cores' model, and vs big-cores-only;
///  * online: LMC vs OLB/OD on the same mixed platform.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/governors/planned_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/generators.h"
#include "dvfs/workload/spec2006int.h"

namespace {

using namespace dvfs;

// Two i7-like cores + two LITTLE cores (lower rates, far less energy per
// cycle: kappa tuned so a LITTLE core at 1.7 GHz draws ~3 W).
std::vector<core::EnergyModel> biglittle() {
  const core::EnergyModel big = core::EnergyModel::icpp2014_table2();
  const core::EnergyModel little = core::EnergyModel::cubic(
      core::RateSet({0.6, 0.9, 1.2, 1.5, 1.7}), 0.55, 0.35);
  return {big, big, little, little};
}

std::vector<core::CostTable> tables_for(
    const std::vector<core::EnergyModel>& models, const core::CostParams& cp) {
  std::vector<core::CostTable> tables;
  tables.reserve(models.size());
  for (const core::EnergyModel& m : models) tables.emplace_back(m, cp);
  return tables;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_heterogeneous", argc, argv);
  const std::vector<core::EnergyModel> models = biglittle();

  // ---------------------------------------------------------------- batch
  {
    const core::CostParams cp{0.1, 0.4};
    const auto tables = tables_for(models, cp);
    const auto tasks = workload::spec_batch_tasks();

    const core::Plan het = core::workload_based_greedy(tasks, tables);
    const core::PlanCost het_cost = core::evaluate_plan(het, tables);

    // Baseline 1: ignore the LITTLE cores entirely (big cores only).
    const std::vector<core::CostTable> big_only(2, tables[0]);
    const core::Plan big_plan = core::workload_based_greedy(tasks, big_only);
    const core::PlanCost big_cost = core::evaluate_plan(big_plan, big_only);

    // Baseline 2: spread heaviest-first round-robin over all 4 cores,
    // pricing positions with the big-core table (heterogeneity-blind).
    const core::Plan blind = core::round_robin_homogeneous(tasks, tables[0], 4);
    const core::PlanCost blind_cost = core::evaluate_plan(blind, tables);

    bench::print_header("A9a: batch WBG on a big.LITTLE platform");
    std::printf("%-24s %14s %12s %12s\n", "plan", "total cost",
                "energy (J)", "makespan");
    bench::print_rule(66);
    std::printf("%-24s %14.1f %12.0f %12.0f\n", "WBG heterogeneous",
                het_cost.total(), het_cost.energy, het_cost.makespan);
    std::printf("%-24s %14.1f %12.0f %12.0f\n", "big cores only",
                big_cost.total(), big_cost.energy, big_cost.makespan);
    std::printf("%-24s %14.1f %12.0f %12.0f\n", "heterogeneity-blind RR",
                blind_cost.total(), blind_cost.energy, blind_cost.makespan);
    std::printf("\nWBG vs big-only: %+.1f%% cost; vs blind RR: %+.1f%% cost "
                "(negative = WBG cheaper)\n",
                (het_cost.total() / big_cost.total() - 1.0) * 100.0,
                (het_cost.total() / blind_cost.total() - 1.0) * 100.0);
    // How much work lands on the LITTLE cores?
    Cycles little_cycles = 0;
    Cycles all_cycles = 0;
    for (std::size_t j = 0; j < het.cores.size(); ++j) {
      for (const core::ScheduledTask& st : het.cores[j].sequence) {
        all_cycles += st.cycles;
        if (j >= 2) little_cycles += st.cycles;
      }
    }
    std::printf("share of cycles on LITTLE cores under WBG: %.1f%%\n",
                100.0 * static_cast<double>(little_cycles) /
                    static_cast<double>(all_cycles));
    for (const auto& [name, c] :
         {std::pair<const char*, const core::PlanCost&>{"wbg_het", het_cost},
          {"big_only", big_cost},
          {"blind_rr", blind_cost}}) {
      bench::BenchRow row(name);
      row.param("mode", "batch").set_cost(c.total()).set_energy_j(c.energy);
      reporter.add(std::move(row));
    }
  }

  // --------------------------------------------------------------- online
  {
    const core::CostParams cp{0.4, 0.1};
    const auto tables = tables_for(models, cp);
    workload::JudgegirlConfig cfg;
    cfg.duration = 900.0;
    cfg.non_interactive_tasks = 384;
    cfg.interactive_tasks = 25262;
    const workload::Trace trace = workload::generate_judgegirl(cfg, 99);

    auto run = [&](sim::Policy& policy) {
      sim::Engine engine(models, sim::ContentionModel::none());
      return engine.run(trace, policy);
    };
    governors::LmcPolicy lmc(tables);
    governors::FifoPolicy olb(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kMax});
    governors::FifoPolicy od(
        {.placement = governors::FifoPolicy::Placement::kRoundRobin,
         .freq = governors::FifoPolicy::FreqMode::kOndemand});
    const sim::SimResult r_lmc = run(lmc);
    const sim::SimResult r_olb = run(olb);
    const sim::SimResult r_od = run(od);

    bench::print_header("A9b: online LMC vs baselines on big.LITTLE");
    const std::vector<bench::PolicyOutcome> rows{
        bench::outcome_from("LMC", r_lmc, cp),
        bench::outcome_from("OLB", r_olb, cp),
        bench::outcome_from("OD", r_od, cp),
    };
    bench::print_normalized(rows);
    std::printf("\nLMC mean interactive turnaround %.4f s (OLB %.4f, OD "
                "%.4f)\n",
                r_lmc.mean_turnaround(core::TaskClass::kInteractive),
                r_olb.mean_turnaround(core::TaskClass::kInteractive),
                r_od.mean_turnaround(core::TaskClass::kInteractive));
    std::printf("LMC utilization big: %.0f%%/%.0f%%  little: %.0f%%/%.0f%%\n",
                100 * r_lmc.utilization(0), 100 * r_lmc.utilization(1),
                100 * r_lmc.utilization(2), 100 * r_lmc.utilization(3));
    for (const bench::PolicyOutcome& o : rows) {
      reporter.add(o, {{"mode", obs::Json("online")}});
    }
  }
  reporter.write();
  return 0;
}
