/// Reproduces Table II: the batch-mode processing-rate parameters of the
/// Intel i7-950 — per-cycle energy E(p) and time T(p) per rate — plus the
/// derived per-core busy power and a comparison against the analytic
/// cubic-power model used for sweeps.
#include <cstdio>

#include "bench_util.h"
#include "dvfs/core/energy_model.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_table2", argc, argv);
  const core::EnergyModel m = core::EnergyModel::icpp2014_table2();
  bench::print_header("Table II: Parameters in Batch Mode (i7-950)");
  std::printf("%-12s", "p_k (GHz)");
  for (std::size_t i = 0; i < m.num_rates(); ++i) {
    std::printf(" %8.1f", m.rates()[i]);
  }
  std::printf("\n%-12s", "E(p_k) nJ");
  for (std::size_t i = 0; i < m.num_rates(); ++i) {
    std::printf(" %8.3f", m.energy_per_cycle(i) * 1e9);
  }
  std::printf("\n%-12s", "T(p_k) ns");
  for (std::size_t i = 0; i < m.num_rates(); ++i) {
    std::printf(" %8.3f", m.time_per_cycle(i) * 1e9);
  }
  std::printf("\n%-12s", "power (W)");
  for (std::size_t i = 0; i < m.num_rates(); ++i) {
    std::printf(" %8.2f", m.busy_power(i));
  }
  std::printf("\n");

  bench::print_header(
      "Analytic cubic model fitted to the same rate set (for sweeps)");
  // kappa and static floor chosen to bracket Table II at the end points.
  const core::EnergyModel cubic =
      core::EnergyModel::cubic(m.rates(), 0.64, 1.6);
  std::printf("%-14s %10s %10s %10s\n", "p (GHz)", "tbl2 nJ", "cubic nJ",
              "rel err");
  bench::print_rule(48);
  for (std::size_t i = 0; i < m.num_rates(); ++i) {
    const double t2 = m.energy_per_cycle(i) * 1e9;
    const double cb = cubic.energy_per_cycle(i) * 1e9;
    std::printf("%-14.1f %10.3f %10.3f %9.1f%%\n", m.rates()[i], t2, cb,
                (cb / t2 - 1.0) * 100.0);
    bench::BenchRow row("rate");
    row.param("p_ghz", m.rates()[i])
        .counter("energy_nj_per_cycle", t2)
        .counter("time_ns_per_cycle", m.time_per_cycle(i) * 1e9)
        .counter("busy_power_w", m.busy_power(i))
        .counter("cubic_energy_nj_per_cycle", cb);
    reporter.add(std::move(row));
  }
  reporter.write();
  return 0;
}
