/// bench_service_throughput: open-loop admission throughput of the
/// sharded scheduling service (svc::SchedulingService).
///
/// Producer threads submit a fixed batch of tasks as fast as the
/// admission rings accept them (open loop: no waiting for execution —
/// the shards place continuously while producers hammer submit), so the
/// measured rate is the service's sustained intake: ring push + shard
/// LMC placement, end to end. Reported per configuration:
///
///   * submissions/min  — accepted tasks / wall, scaled to the ROADMAP
///     target (the run fails outright below 1M/min, CI hardware's floor);
///   * p99 admission latency (µs) — submit() to shard placement, from
///     the svc.admission.latency_us histogram. Open loop keeps the rings
///     saturated, so this bounds ring residency under peak load.
///
/// The largest configuration runs twice: once bare and once with the
/// sampling CPU profiler armed at its default 100 Hz (the always-on
/// serve-mode setting), so "profiling is cheap enough to leave on" is a
/// gated claim — the profiled row must clear the same 1M/min floor.
///
/// Rows carry wall_ns (gated ±25% by bench_compare.py) and the
/// throughput/latency counters; cost stays 0 — producer interleave makes
/// per-shard queue cost run-to-run nondeterministic, and the gate treats
/// any cost delta as a regression.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/energy_model.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/obs/prof.h"
#include "dvfs/svc/service.h"

namespace {

using namespace dvfs;

struct Config {
  std::size_t shards;
  std::size_t cores;
  std::size_t producers;
  std::size_t tasks;  // total, split across producers
};

struct Outcome {
  double wall_ns = 0.0;
  double per_min = 0.0;
  double p99_us = 0.0;
  std::uint64_t accepted = 0;
  std::uint64_t retries = 0;
  std::uint64_t prof_samples = 0;
  std::uint64_t prof_dropped = 0;
};

Outcome run_config(const Config& cfg, bool profiled = false) {
  obs::Registry registry;
  std::unique_ptr<obs::prof::CpuProfiler> prof;
  if (profiled) {
    obs::prof::CpuProfiler::Options popts;
    popts.registry = &registry;
    prof = std::make_unique<obs::prof::CpuProfiler>(popts);
    prof->start();  // shard workers self-register when they spawn
  }
  svc::ServiceOptions opts;
  opts.shards = cfg.shards;
  opts.cores = cfg.cores;
  // A modest ring bounds worst-case admission latency (residency is at
  // most ring_capacity placements deep) while staying large enough that
  // producers rarely spin.
  opts.ring_capacity = std::size_t{1} << 10;
  opts.steal_ratio = 0.0;  // measure pure admission, not migration
  opts.registry = &registry;
  svc::SchedulingService svc(core::EnergyModel::icpp2014_table2(),
                             core::CostParams{0.4, 0.1}, opts);
  svc.start();

  const std::size_t per_producer = cfg.tasks / cfg.producers;
  std::vector<std::uint64_t> retries(cfg.producers, 0);
  bench::WallTimer timer;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    producers.emplace_back([&svc, &retries, p, per_producer] {
      std::uint64_t spins = 0;
      for (std::size_t i = 0; i < per_producer; ++i) {
        const core::TaskId id = p * per_producer + i + 1;
        // Open loop with spin-retry: a full ring costs a yield, never a
        // dropped task — the bench measures sustained intake.
        while (!svc.submit(id, 1'000'000 + (id % 64) * 250'000).accepted) {
          ++spins;
          std::this_thread::yield();
        }
      }
      retries[p] = spins;
    });
  }
  for (auto& t : producers) t.join();
  // Producers done; the wall for "sustained submissions" stops when the
  // last submit was accepted. Drain (shards finish the backlog) after.
  const double wall_ns = timer.elapsed_ns();
  svc.drain();

  Outcome out;
  if (prof != nullptr) {
    prof->stop();
    out.prof_samples = prof->collected();
    out.prof_dropped = prof->dropped();
  }
  out.wall_ns = wall_ns;
  out.accepted = svc.submitted();
  out.per_min = static_cast<double>(out.accepted) / (wall_ns / 1e9) * 60.0;
  out.p99_us = static_cast<double>(
      registry.histogram("svc.admission.latency_us")
          .percentile_upper_bound(0.99)
          .value_or(0));
  for (const std::uint64_t r : retries) out.retries += r;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_service_throughput", argc, argv);
  bench::print_header("scheduling service: open-loop admission throughput");
  std::printf("%7s %6s %9s %8s %16s %12s %10s\n", "shards", "cores",
              "producers", "tasks", "submissions/min", "p99-adm(us)",
              "wall(ms)");
  bench::print_rule();

  const std::vector<Config> configs = {
      {2, 4, 2, 400'000},
      {4, 8, 2, 400'000},
  };
  constexpr double kFloorPerMin = 1e6;  // ROADMAP item 1 acceptance bar
  bool floor_met = true;
  for (const Config& cfg : configs) {
    const Outcome out = run_config(cfg);
    std::printf("%7zu %6zu %9zu %8zu %16.0f %12.0f %10.1f\n", cfg.shards,
                cfg.cores, cfg.producers, cfg.tasks, out.per_min, out.p99_us,
                out.wall_ns / 1e6);
    floor_met = floor_met && out.per_min >= kFloorPerMin;

    bench::BenchRow row("OpenLoopSubmit");
    row.param("shards", static_cast<std::uint64_t>(cfg.shards))
        .param("cores", static_cast<std::uint64_t>(cfg.cores))
        .param("producers", static_cast<std::uint64_t>(cfg.producers))
        .param("tasks", static_cast<std::uint64_t>(cfg.tasks))
        .set_wall_ns(out.wall_ns)
        .counter("submissions_per_min", out.per_min)
        .counter("p99_admission_latency_us", out.p99_us)
        .counter("accepted", static_cast<double>(out.accepted))
        .counter("full_ring_retries", static_cast<double>(out.retries));
    reporter.add(std::move(row));
  }
  // The always-on claim: same largest configuration, profiler sampling
  // every shard worker at 100 Hz. Subject to the identical floor.
  {
    const Config cfg = configs.back();
    const Outcome out = run_config(cfg, /*profiled=*/true);
    std::printf("%7zu %6zu %9zu %8zu %16.0f %12.0f %10.1f  (profiled, "
                "%llu samples, %llu dropped)\n",
                cfg.shards, cfg.cores, cfg.producers, cfg.tasks, out.per_min,
                out.p99_us, out.wall_ns / 1e6,
                static_cast<unsigned long long>(out.prof_samples),
                static_cast<unsigned long long>(out.prof_dropped));
    floor_met = floor_met && out.per_min >= kFloorPerMin;

    bench::BenchRow row("OpenLoopSubmitProfiled100Hz");
    row.param("shards", static_cast<std::uint64_t>(cfg.shards))
        .param("cores", static_cast<std::uint64_t>(cfg.cores))
        .param("producers", static_cast<std::uint64_t>(cfg.producers))
        .param("tasks", static_cast<std::uint64_t>(cfg.tasks))
        .set_wall_ns(out.wall_ns)
        .counter("submissions_per_min", out.per_min)
        .counter("p99_admission_latency_us", out.p99_us)
        .counter("accepted", static_cast<double>(out.accepted))
        .counter("full_ring_retries", static_cast<double>(out.retries))
        .counter("prof_samples", static_cast<double>(out.prof_samples))
        .counter("prof_dropped", static_cast<double>(out.prof_dropped));
    reporter.add(std::move(row));
  }
  reporter.write();

  if (!floor_met) {
    std::fprintf(stderr,
                 "FAIL: sustained admission below %.0f submissions/min\n",
                 kFloorPerMin);
    return 1;
  }
  std::printf("floor: every configuration sustained >= %.1e "
              "submissions/min\n", kFloorPerMin);
  return 0;
}
