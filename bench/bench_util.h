/// \file bench_util.h
/// \brief Shared helpers for the experiment-reproduction binaries.
///
/// Each bench binary regenerates one table or figure of the paper and
/// prints it in a fixed-width text form so runs can be diffed. Normalized
/// rows follow the paper's figures: the proposed scheduler's bar is 1.00
/// and baselines are reported relative to it.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/rate_set.h"
#include "dvfs/obs/json.h"
#include "dvfs/sim/metrics.h"

namespace dvfs::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// One policy's measured outcome in a comparison figure.
struct PolicyOutcome {
  std::string name;
  Joules energy = 0.0;        ///< busy (idle-deducted) joules
  Seconds turnaround = 0.0;   ///< sum of per-task turnaround
  Seconds makespan = 0.0;
  Money energy_cost = 0.0;
  Money time_cost = 0.0;

  [[nodiscard]] Money total_cost() const { return energy_cost + time_cost; }
};

inline PolicyOutcome outcome_from(const std::string& name,
                                  const sim::SimResult& r,
                                  const core::CostParams& cp) {
  PolicyOutcome o;
  o.name = name;
  o.energy = r.busy_energy;
  o.turnaround = r.total_turnaround();
  o.makespan = r.end_time;
  o.energy_cost = r.energy_cost(cp);
  o.time_cost = r.time_cost(cp);
  return o;
}

/// Prints the figure-style normalized comparison: first row is the
/// reference (1.00 everywhere).
inline void print_normalized(const std::vector<PolicyOutcome>& rows) {
  DVFS_REQUIRE(!rows.empty(), "no rows to print");
  const PolicyOutcome& ref = rows.front();
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "policy", "time-cost",
              "energy-cost", "total-cost", "energy(J)", "makespan(s)");
  print_rule();
  for (const PolicyOutcome& row : rows) {
    std::printf("%-10s %12.3f %12.3f %12.3f %12.1f %12.1f\n",
                row.name.c_str(), row.time_cost / ref.time_cost,
                row.energy_cost / ref.energy_cost,
                row.total_cost() / ref.total_cost(), row.energy,
                row.makespan);
  }
}

/// Frequency-residency row: what fraction of busy time a policy spent at
/// each rate (the "which frequencies did it actually pick" view).
inline void print_rate_share(const std::string& name,
                             const sim::SimResult& r,
                             const core::RateSet& rates) {
  const std::vector<double> share = r.rate_share();
  std::printf("%-10s", name.c_str());
  for (std::size_t i = 0; i < share.size(); ++i) {
    std::printf("  %.1fGHz:%5.1f%%", rates[i], share[i] * 100.0);
  }
  std::printf("\n");
}

/// "X% less energy / Y% slowdown"-style deltas of `a` relative to `b`,
/// matching how the paper words its findings.
inline void print_deltas(const PolicyOutcome& a, const PolicyOutcome& b) {
  const double de = (1.0 - a.energy_cost / b.energy_cost) * 100.0;
  const double dt = (1.0 - a.time_cost / b.time_cost) * 100.0;
  const double dc = (1.0 - a.total_cost() / b.total_cost()) * 100.0;
  std::printf("%s vs %s: %+.1f%% energy, %+.1f%% time, %+.1f%% total cost "
              "(positive = %s better)\n",
              a.name.c_str(), b.name.c_str(), de, dt, dc, a.name.c_str());
}

// --------------------------------------------------------------------------
// Machine-readable reporting (schema "dvfs-bench-v1")
//
// Every bench binary routes its results through a BenchReporter alongside
// the human-readable tables. Passing `--json <path>` (or `--json=<path>`)
// writes:
//
//   {"schema": "dvfs-bench-v1", "suite": "<binary>", "rows": [
//     {"name": ..., "params": {...}, "wall_ns": ..., "cost": ...,
//      "energy_j": ..., "turnaround_s": ..., "counters": {...}}, ...]}
//
// Rows always carry every field (zero when not applicable) so downstream
// tooling — tools/bench_compare.py in particular — never branches on
// presence. Rows are matched across runs by (name, params).
// --------------------------------------------------------------------------

/// Wall-clock stopwatch for wall_ns measurements.
class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  void reset() { t0_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// One measurement in a bench report. Fluent setters so call sites read
/// as a single expression.
struct BenchRow {
  explicit BenchRow(std::string row_name) : name(std::move(row_name)) {}

  BenchRow& param(const std::string& key, obs::Json value) {
    params.insert_or_assign(key, std::move(value));
    return *this;
  }
  BenchRow& set_wall_ns(double ns) {
    wall_ns = ns;
    return *this;
  }
  BenchRow& set_cost(double c) {
    cost = c;
    return *this;
  }
  BenchRow& set_energy_j(double e) {
    energy_j = e;
    return *this;
  }
  BenchRow& set_turnaround_s(double t) {
    turnaround_s = t;
    return *this;
  }
  BenchRow& counter(const std::string& key, double value) {
    counters.insert_or_assign(key, obs::Json(value));
    return *this;
  }

  std::string name;
  obs::Json::Object params;
  double wall_ns = 0.0;
  double cost = 0.0;
  double energy_j = 0.0;
  double turnaround_s = 0.0;
  obs::Json::Object counters;
};

class BenchReporter {
 public:
  /// Scans argv for `--json <path>` / `--json=<path>`; reporting is a
  /// no-op without the flag, so benches stay zero-cost by default.
  BenchReporter(std::string suite, int argc, const char* const* argv)
      : suite_(std::move(suite)) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg.starts_with("--json=")) {
        path_ = std::string(arg.substr(7));
      }
    }
  }

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] const std::string& suite() const { return suite_; }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  void add(BenchRow row) { rows_.push_back(std::move(row)); }

  /// Convenience for the sim-comparison benches: one row per policy.
  void add(const PolicyOutcome& outcome, obs::Json::Object params = {},
           double wall_ns = 0.0) {
    BenchRow row(outcome.name);
    row.params = std::move(params);
    row.set_wall_ns(wall_ns)
        .set_cost(outcome.total_cost())
        .set_energy_j(outcome.energy)
        .set_turnaround_s(outcome.turnaround);
    add(std::move(row));
  }

  [[nodiscard]] obs::Json to_json() const {
    obs::Json::Array rows;
    rows.reserve(rows_.size());
    for (const BenchRow& r : rows_) {
      obs::Json::Object row;
      row.emplace("name", obs::Json(r.name));
      row.emplace("params", obs::Json(r.params));
      row.emplace("wall_ns", obs::Json(r.wall_ns));
      row.emplace("cost", obs::Json(r.cost));
      row.emplace("energy_j", obs::Json(r.energy_j));
      row.emplace("turnaround_s", obs::Json(r.turnaround_s));
      row.emplace("counters", obs::Json(r.counters));
      rows.emplace_back(std::move(row));
    }
    obs::Json::Object root;
    root.emplace("schema", obs::Json("dvfs-bench-v1"));
    root.emplace("suite", obs::Json(suite_));
    root.emplace("rows", obs::Json(std::move(rows)));
    return obs::Json(std::move(root));
  }

  /// Writes the report if `--json` was given. Idempotent; the destructor
  /// calls it as a safety net so early-returning benches still report.
  void write() {
    written_ = true;
    if (path_.empty()) return;
    obs::write_json_file(path_, to_json());
    std::printf("bench report (%zu rows) -> %s\n", rows_.size(),
                path_.c_str());
  }

  ~BenchReporter() {
    if (written_) return;
    try {
      write();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // A destructor must not throw; the bench already printed its
      // human-readable output, so losing the JSON copy is survivable.
    }
  }

 private:
  std::string suite_;
  std::string path_;
  std::vector<BenchRow> rows_;
  bool written_ = false;
};

}  // namespace dvfs::bench
