/// \file bench_util.h
/// \brief Shared helpers for the experiment-reproduction binaries.
///
/// Each bench binary regenerates one table or figure of the paper and
/// prints it in a fixed-width text form so runs can be diffed. Normalized
/// rows follow the paper's figures: the proposed scheduler's bar is 1.00
/// and baselines are reported relative to it.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/rate_set.h"
#include "dvfs/sim/metrics.h"

namespace dvfs::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// One policy's measured outcome in a comparison figure.
struct PolicyOutcome {
  std::string name;
  Joules energy = 0.0;        ///< busy (idle-deducted) joules
  Seconds turnaround = 0.0;   ///< sum of per-task turnaround
  Seconds makespan = 0.0;
  Money energy_cost = 0.0;
  Money time_cost = 0.0;

  [[nodiscard]] Money total_cost() const { return energy_cost + time_cost; }
};

inline PolicyOutcome outcome_from(const std::string& name,
                                  const sim::SimResult& r,
                                  const core::CostParams& cp) {
  PolicyOutcome o;
  o.name = name;
  o.energy = r.busy_energy;
  o.turnaround = r.total_turnaround();
  o.makespan = r.end_time;
  o.energy_cost = r.energy_cost(cp);
  o.time_cost = r.time_cost(cp);
  return o;
}

/// Prints the figure-style normalized comparison: first row is the
/// reference (1.00 everywhere).
inline void print_normalized(const std::vector<PolicyOutcome>& rows) {
  DVFS_REQUIRE(!rows.empty(), "no rows to print");
  const PolicyOutcome& ref = rows.front();
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "policy", "time-cost",
              "energy-cost", "total-cost", "energy(J)", "makespan(s)");
  print_rule();
  for (const PolicyOutcome& row : rows) {
    std::printf("%-10s %12.3f %12.3f %12.3f %12.1f %12.1f\n",
                row.name.c_str(), row.time_cost / ref.time_cost,
                row.energy_cost / ref.energy_cost,
                row.total_cost() / ref.total_cost(), row.energy,
                row.makespan);
  }
}

/// Frequency-residency row: what fraction of busy time a policy spent at
/// each rate (the "which frequencies did it actually pick" view).
inline void print_rate_share(const std::string& name,
                             const sim::SimResult& r,
                             const core::RateSet& rates) {
  const std::vector<double> share = r.rate_share();
  std::printf("%-10s", name.c_str());
  for (std::size_t i = 0; i < share.size(); ++i) {
    std::printf("  %.1fGHz:%5.1f%%", rates[i], share[i] * 100.0);
  }
  std::printf("\n");
}

/// "X% less energy / Y% slowdown"-style deltas of `a` relative to `b`,
/// matching how the paper words its findings.
inline void print_deltas(const PolicyOutcome& a, const PolicyOutcome& b) {
  const double de = (1.0 - a.energy_cost / b.energy_cost) * 100.0;
  const double dt = (1.0 - a.time_cost / b.time_cost) * 100.0;
  const double dc = (1.0 - a.total_cost() / b.total_cost()) * 100.0;
  std::printf("%s vs %s: %+.1f%% energy, %+.1f%% time, %+.1f%% total cost "
              "(positive = %s better)\n",
              a.name.c_str(), b.name.c_str(), de, dt, dc, a.name.c_str());
}

}  // namespace dvfs::bench
