/// Reproduces Fig. 2: batch-mode cost comparison of Workload Based Greedy
/// (WBG) against Opportunistic Load Balancing (OLB) and Power Saving (PS).
///
/// Setup follows Section V-A3: the 24 Table I workloads on four cores,
/// Re = 0.1 cent/J, Rt = 0.4 cent/s, full five-rate Table II set for WBG
/// and OLB; PS is limited to the lower half of the rates ({1.6, 2.0, 2.4}
/// GHz). OLB and PS place tasks on the earliest-ready core and let the
/// Linux ondemand rule (85% threshold, 1 s sampling) drive frequencies;
/// WBG executes its precomputed plan. All three run on the contention-
/// enabled simulator, mirroring the paper's on-machine measurement.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/planned_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/spec2006int.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_fig2", argc, argv);
  constexpr std::size_t kCores = 4;
  const core::CostParams cp{0.1, 0.4};
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  const auto tasks = workload::spec_batch_tasks();
  const workload::Trace trace(tasks);

  auto engine = [&] {
    return sim::Engine(std::vector<core::EnergyModel>(kCores, model),
                       sim::ContentionModel::icpp2014_quadcore());
  };

  // WBG: plan then execute.
  const std::vector<core::CostTable> tables(kCores,
                                            core::CostTable(model, cp));
  const core::Plan plan = core::workload_based_greedy(tasks, tables);
  sim::SimResult wbg;
  {
    sim::Engine e = engine();
    governors::PlannedBatchPolicy policy(plan);
    wbg = e.run(trace, policy);
  }
  // OLB: earliest-ready placement, ondemand frequencies, full rate range.
  sim::SimResult olb;
  {
    sim::Engine e = engine();
    governors::FifoPolicy policy(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kOndemand});
    olb = e.run(trace, policy);
  }
  // PS: ondemand over the lower half of the rate set (cap = 2.4 GHz).
  sim::SimResult ps;
  {
    sim::Engine e = engine();
    governors::FifoPolicy policy(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kOndemand,
         .rate_cap = 2});
    ps = e.run(trace, policy);
  }

  bench::print_header(
      "Fig. 2: Cost Comparison of Scheduling Methods (batch, normalized to WBG)");
  const std::vector<bench::PolicyOutcome> rows{
      bench::outcome_from("WBG", wbg, cp),
      bench::outcome_from("OLB", olb, cp),
      bench::outcome_from("PS", ps, cp),
  };
  bench::print_normalized(rows);
  std::printf("\n");
  bench::print_deltas(rows[0], rows[1]);  // paper: -46%% energy, +4%% time-ish
  bench::print_deltas(rows[0], rows[2]);  // paper: -27%% energy, -13%% time
  std::printf("\nfrequency residency (share of busy time):\n");
  bench::print_rate_share("WBG", wbg, model.rates());
  bench::print_rate_share("OLB", olb, model.rates());
  bench::print_rate_share("PS", ps, model.rates());
  for (const bench::PolicyOutcome& o : rows) reporter.add(o);
  reporter.write();
  return 0;
}
