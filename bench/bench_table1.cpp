/// Reproduces Table I: average execution times of the 24 SPEC CPU2006int
/// workloads at 1.6 GHz, plus the derived cycle counts the schedulers
/// consume (L = seconds * 1.6 GHz, the paper's estimation method).
#include <cstdio>

#include "bench_util.h"
#include "dvfs/workload/spec2006int.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_table1", argc, argv);
  bench::print_header(
      "Table I: Average Execution Times of the Workloads (seconds)");
  std::printf("%-12s %10s %12s %18s\n", "benchmark", "input", "seconds",
              "cycles (derived)");
  bench::print_rule(56);
  double total_seconds = 0.0;
  Cycles total_cycles = 0;
  for (const workload::SpecWorkload& w : workload::spec2006int()) {
    const Cycles cycles = workload::spec_cycles(w);
    std::printf("%-12s %10s %12.3f %18llu\n", std::string(w.benchmark).c_str(),
                to_string(w.input), w.avg_seconds_at_1_6ghz,
                static_cast<unsigned long long>(cycles));
    total_seconds += w.avg_seconds_at_1_6ghz;
    total_cycles += cycles;
    bench::BenchRow row(std::string(w.benchmark));
    row.param("input", to_string(w.input))
        .counter("seconds_at_1_6ghz", w.avg_seconds_at_1_6ghz)
        .counter("cycles", static_cast<double>(cycles));
    reporter.add(std::move(row));
  }
  bench::print_rule(56);
  std::printf("%-12s %10s %12.3f %18llu\n", "total", "", total_seconds,
              static_cast<unsigned long long>(total_cycles));
  bench::BenchRow total("total");
  total.counter("seconds_at_1_6ghz", total_seconds)
      .counter("cycles", static_cast<double>(total_cycles));
  reporter.add(std::move(total));
  reporter.write();
  return 0;
}
