/// Ablation A6: optimality check — WBG and Longest Task Last against
/// exhaustive search on random instances (Theorems 3-5 say the gap is
/// exactly zero).
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/core/batch_single.h"

namespace {

using namespace dvfs;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_optimality_gap", argc, argv);
  std::mt19937_64 rng(20140901);
  std::uniform_int_distribution<Cycles> cyc(1, 100000);

  bench::print_header("A6: optimality gap vs exhaustive search");

  // Single core: LTL vs full order+rate brute force.
  double worst_single = 0.0;
  const core::CostTable single(core::EnergyModel::partition_gadget(),
                               core::CostParams{0.7, 0.3});
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<core::Task> tasks;
    const int n = 1 + static_cast<int>(rng() % 6);
    for (int i = 0; i < n; ++i) {
      tasks.push_back(
          core::Task{.id = static_cast<core::TaskId>(i), .cycles = cyc(rng)});
    }
    const Money fast =
        core::evaluate_single(core::longest_task_last(tasks, single), single)
            .total();
    const Money ref =
        core::evaluate_single(core::brute_force_single(tasks, single), single)
            .total();
    worst_single = std::max(worst_single, fast / ref - 1.0);
  }
  std::printf("single-core LTL vs brute force over 40 instances: "
              "worst gap %.3e (expected 0)\n", worst_single);

  // Multi core heterogeneous: WBG vs exhaustive assignment.
  double worst_multi = 0.0;
  const std::vector<core::CostTable> tables{
      core::CostTable(
          core::EnergyModel(core::RateSet({0.5, 1.0}), {1.0, 4.0}, {2.0, 1.0}),
          core::CostParams{0.6, 0.4}),
      core::CostTable(core::EnergyModel(core::RateSet({0.4, 0.8}),
                                        {1.5, 6.0}, {2.5, 1.25}),
                      core::CostParams{0.6, 0.4}),
      core::CostTable(core::EnergyModel(core::RateSet({0.6, 1.2}),
                                        {0.8, 3.2}, {5.0 / 3, 5.0 / 6}),
                      core::CostParams{0.6, 0.4}),
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<core::Task> tasks;
    const int n = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < n; ++i) {
      tasks.push_back(
          core::Task{.id = static_cast<core::TaskId>(i), .cycles = cyc(rng)});
    }
    const Money fast =
        core::evaluate_plan(core::workload_based_greedy(tasks, tables), tables)
            .total();
    const Money ref =
        core::evaluate_plan(core::brute_force_assignment(tasks, tables),
                            tables)
            .total();
    worst_multi = std::max(worst_multi, fast / ref - 1.0);
  }
  std::printf("3-core heterogeneous WBG vs brute force over 40 instances: "
              "worst gap %.3e (expected 0)\n", worst_multi);

  const bool ok = worst_single < 1e-9 && worst_multi < 1e-9;
  std::printf("\noptimality: %s\n", ok ? "EXACT (Theorems 3-5 hold)"
                                       : "GAP FOUND (bug!)");
  bench::BenchRow single_row("single_core_ltl");
  single_row.counter("worst_gap", worst_single);
  reporter.add(std::move(single_row));
  bench::BenchRow multi_row("multi_core_wbg");
  multi_row.counter("worst_gap", worst_multi);
  reporter.add(std::move(multi_row));
  reporter.write();
  return ok ? 0 : 1;
}
