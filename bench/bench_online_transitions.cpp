/// Ablation A14: online scheduling when DVFS transitions stall the core.
///
/// A11 showed batch plans barely care about transition costs; the online
/// mode is more exposed because LMC changes a core's frequency far more
/// often (positional re-rating on every queue change, max-rate bursts for
/// interactive work). This bench sweeps the per-transition stall from 0
/// to 10 ms on the Judgegirl-scale trace and reports whether LMC's lead
/// over OLB (which pins everything at one frequency and never pays a
/// stall after boot) survives.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/generators.h"

namespace {

using namespace dvfs;
constexpr std::size_t kCores = 4;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_online_transitions", argc, argv);
  const core::CostParams cp{0.4, 0.1};
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  workload::JudgegirlConfig cfg;
  cfg.duration = 900.0;
  cfg.non_interactive_tasks = 384;
  cfg.interactive_tasks = 25262;
  const workload::Trace trace = workload::generate_judgegirl(cfg, 2014);

  bench::print_header(
      "A14: online LMC vs OLB under per-transition stalls");
  std::printf("%-12s %14s %14s %12s\n", "stall", "LMC cost", "OLB cost",
              "LMC vs OLB");
  bench::print_rule(58);
  for (const double latency : {0.0, 1e-5, 1e-4, 1e-3, 1e-2}) {
    auto run = [&](sim::Policy& policy) {
      sim::Engine engine(std::vector<core::EnergyModel>(kCores, model),
                         sim::ContentionModel::none(), 0.0, latency);
      return engine.run(trace, policy);
    };
    governors::LmcPolicy lmc(
        std::vector<core::CostTable>(kCores, core::CostTable(model, cp)));
    governors::FifoPolicy olb(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kMax});
    const Money lmc_cost = run(lmc).total_cost(cp);
    const Money olb_cost = run(olb).total_cost(cp);
    std::printf("%-12.5f %14.0f %14.0f %+11.1f%%\n", latency, lmc_cost,
                olb_cost, (1.0 - lmc_cost / olb_cost) * 100.0);
    bench::BenchRow row("lmc_vs_olb");
    row.param("stall_s", latency)
        .set_cost(lmc_cost)
        .counter("olb_cost", olb_cost);
    reporter.add(std::move(row));
  }
  std::printf(
      "\nReading: per-core DVFS hardware transitions are tens of\n"
      "microseconds; LMC's advantage is intact there and only erodes once\n"
      "stalls reach the millisecond range — rate-churn is not a hidden\n"
      "cost of the paper's design at realistic latencies.\n");
  reporter.write();
  return 0;
}
