/// Ablation A5: scalability of the schedulers in cores and tasks, and the
/// Theorem 4 <-> Theorem 5 equivalence (round-robin equals WBG on
/// homogeneous cores).
///
/// Reports WBG planning wall time (the O(n log n + n log R) part the paper
/// cares about), per-task planning cost at increasing scales, and confirms
/// the homogeneous RR plan cost matches WBG's to float precision.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/workload/generators.h"

namespace {

using namespace dvfs;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_scalability", argc, argv);
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  const core::CostParams cp{0.1, 0.4};

  bench::print_header("A5a: WBG planning time vs tasks and cores");
  std::printf("%10s %8s %14s %14s %16s\n", "tasks", "cores", "plan (ms)",
              "us/task", "total cost");
  bench::print_rule(68);
  for (const std::size_t cores : {2u, 4u, 16u, 64u}) {
    const std::vector<core::CostTable> tables(cores,
                                              core::CostTable(model, cp));
    for (const std::size_t n : {100u, 1000u, 10000u, 100000u}) {
      workload::BatchConfig cfg;
      cfg.num_tasks = n;
      const auto tasks = workload::generate_batch(cfg, 77);
      const auto t0 = Clock::now();
      const core::Plan plan = core::workload_based_greedy(tasks, tables);
      const double ms = ms_since(t0);
      const core::PlanCost cost = core::evaluate_plan(plan, tables);
      std::printf("%10zu %8zu %14.2f %14.3f %16.1f\n", n, cores, ms,
                  ms * 1000.0 / static_cast<double>(n), cost.total());
      bench::BenchRow row("wbg_plan");
      row.param("cores", static_cast<std::uint64_t>(cores))
          .param("tasks", static_cast<std::uint64_t>(n))
          .set_wall_ns(ms * 1e6)
          .set_cost(cost.total());
      reporter.add(std::move(row));
    }
  }

  bench::print_header(
      "A5b: Theorem 4 vs Theorem 5 - RR equals WBG on homogeneous cores");
  std::printf("%10s %8s %16s %16s %10s\n", "tasks", "cores", "RR cost",
              "WBG cost", "equal?");
  bench::print_rule(66);
  bool all_equal = true;
  for (const std::size_t cores : {2u, 4u, 8u}) {
    const std::vector<core::CostTable> tables(cores,
                                              core::CostTable(model, cp));
    for (const std::size_t n : {24u, 500u, 5000u}) {
      workload::BatchConfig cfg;
      cfg.num_tasks = n;
      cfg.shape = workload::BatchShape::kLognormal;
      const auto tasks = workload::generate_batch(cfg, 13);
      const auto rr =
          core::evaluate_plan(core::round_robin_homogeneous(
                                  tasks, tables[0], cores),
                              tables[0]);
      const auto wbg = core::evaluate_plan(
          core::workload_based_greedy(tasks, tables), tables);
      const bool equal = almost_equal(rr.total(), wbg.total(), 1e-9, 1e-9);
      all_equal = all_equal && equal;
      std::printf("%10zu %8zu %16.1f %16.1f %10s\n", n, cores, rr.total(),
                  wbg.total(), equal ? "yes" : "NO");
      bench::BenchRow row("rr_vs_wbg");
      row.param("cores", static_cast<std::uint64_t>(cores))
          .param("tasks", static_cast<std::uint64_t>(n))
          .set_cost(wbg.total())
          .counter("rr_cost", rr.total())
          .counter("equal", equal ? 1.0 : 0.0);
      reporter.add(std::move(row));
    }
  }
  std::printf("\nTheorem 4/5 equivalence on homogeneous cores: %s\n",
              all_equal ? "HOLDS" : "VIOLATED");
  reporter.write();
  return all_equal ? 0 : 1;
}
