/// Ablation A3: per-arrival decision overhead of Least Marginal Cost.
///
/// The paper motivates the Algorithm 4-6 machinery by the need to keep the
/// scheduler's own overhead negligible against millisecond-scale requests.
/// Measures the full placement decision (probe R cores, insert at the
/// argmin) against queue depth and core count, plus the Eq. 27 interactive
/// choice.
/// Also measures the flight recorder riding along: the raw SPSC record()
/// hot path, and a full placement with the per-core candidate vector
/// captured — the exact extra work LmcPolicy does when `--record-out` is
/// active. The recorded variant must stay within the wall-time gate of
/// the bare one; "cheap enough to leave on" is a gated claim, not a hope.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "bench_gbench.h"
#include "dvfs/core/online_lmc.h"
#include "dvfs/obs/hw_telemetry.h"
#include "dvfs/obs/recorder.h"

namespace {

using namespace dvfs;

core::LmcScheduler prefilled(std::size_t cores, std::size_t per_core,
                             std::uint64_t seed) {
  core::LmcScheduler lmc(std::vector<core::CostTable>(
      cores, core::CostTable(core::EnergyModel::icpp2014_table2(),
                             core::CostParams{0.4, 0.1})));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  for (std::size_t i = 0; i < cores * per_core; ++i) {
    lmc.place_non_interactive(cyc(rng), i);
  }
  return lmc;
}

void BM_PlaceNonInteractive(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  auto lmc = prefilled(cores, depth, 11);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  core::TaskId id = 1'000'000;
  for (auto _ : state) {
    const auto p = lmc.place_non_interactive(cyc(rng), id++);
    // Remove it again so depth stays constant across iterations.
    lmc.erase(p.core, p.ref);
  }
}
BENCHMARK(BM_PlaceNonInteractive)
    ->ArgsProduct({{1, 4, 16}, {16, 256, 4096}});

void BM_RecorderRecord(benchmark::State& state) {
  obs::Recorder rec(1, obs::Recorder::kDefaultCapacity);
  obs::RecorderChannel& ch = rec.channel(0);
  obs::dfr::Event e{
      .type = static_cast<std::uint8_t>(obs::dfr::EventType::kCandidate),
      .core = 2,
      .task = 42,
      .f0 = 1.5};
  std::size_t pending = 0;
  for (auto _ : state) {
    e.time_s += 1.0;
    benchmark::DoNotOptimize(ch.record(e));
    // Amortized consumer: empty the ring before it fills so every
    // iteration exercises the store path, never the tail-drop path.
    if (++pending == ch.capacity() - 1) {
      rec.drain();
      rec.clear();
      pending = 0;
    }
  }
}
BENCHMARK(BM_RecorderRecord);

void BM_PlaceNonInteractiveRecorded(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  auto lmc = prefilled(cores, depth, 11);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  core::TaskId id = 1'000'000;
  obs::Recorder rec(1, obs::Recorder::kDefaultCapacity);
  obs::RecorderChannel& ch = rec.channel(0);
  std::vector<Money> probed;
  std::size_t pending = 0;
  for (auto _ : state) {
    const auto p = lmc.place_non_interactive(cyc(rng), id++, {}, &probed);
    for (std::size_t j = 0; j < probed.size(); ++j) {
      ch.record({.type = static_cast<std::uint8_t>(
                     obs::dfr::EventType::kCandidate),
                 .flags = j == p.core ? obs::dfr::kFlagChosen
                                      : std::uint8_t{0},
                 .core = static_cast<std::uint16_t>(j),
                 .task = id,
                 .f0 = probed[j]});
    }
    ch.record({.type = static_cast<std::uint8_t>(
                   obs::dfr::EventType::kPlacement),
               .core = static_cast<std::uint16_t>(p.core),
               .task = id,
               .f0 = p.marginal});
    lmc.erase(p.core, p.ref);
    pending += probed.size() + 1;
    if (pending >= ch.capacity() - (cores + 1)) {
      rec.drain();
      rec.clear();
      pending = 0;
    }
  }
}
BENCHMARK(BM_PlaceNonInteractiveRecorded)
    ->ArgsProduct({{1, 4, 16}, {16, 256, 4096}});

// Placement with hardware-telemetry span sampling riding along: the
// timer-backed provider (two CLOCK_THREAD_CPUTIME_ID reads plus the span
// bookkeeping) is the unprivileged path every worker thread takes when
// `--hw` is on, so it is the overhead that must stay within the same
// 25% wall gate as the bare placement. Rows are gated once they enter
// bench/baselines (new rows pass with a note until the next refresh).
void BM_PlaceNonInteractiveSampled(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  auto lmc = prefilled(cores, depth, 11);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  core::TaskId id = 1'000'000;
  obs::hw::LinuxHwProvider provider(
      {.counters = obs::hw::LinuxHwProvider::Counters::kTimer,
       .energy = obs::hw::LinuxHwProvider::Energy::kModel,
       .respect_env = false});
  const std::unique_ptr<obs::hw::ThreadTelemetry> telemetry =
      provider.open_thread_telemetry(0);
  for (auto _ : state) {
    const Cycles c = cyc(rng);
    const obs::hw::SpanPrediction predicted{c, 1e-6, 1e-6};
    telemetry->begin_span(predicted);
    const auto p = lmc.place_non_interactive(c, id++);
    benchmark::DoNotOptimize(telemetry->end_span(predicted));
    lmc.erase(p.core, p.ref);
  }
}
BENCHMARK(BM_PlaceNonInteractiveSampled)
    ->ArgsProduct({{1, 4, 16}, {16, 256, 4096}});

void BM_ChooseInteractiveCore(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  auto lmc = prefilled(cores, 256, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmc.choose_interactive_core(3'000'000));
  }
}
BENCHMARK(BM_ChooseInteractiveCore)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return dvfs::bench::run_gbench_main("bench_lmc_overhead", argc, argv);
}
