/// Ablation A3: per-arrival decision overhead of Least Marginal Cost.
///
/// The paper motivates the Algorithm 4-6 machinery by the need to keep the
/// scheduler's own overhead negligible against millisecond-scale requests.
/// Measures the full placement decision (probe R cores, insert at the
/// argmin) against queue depth and core count, plus the Eq. 27 interactive
/// choice.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bench_gbench.h"
#include "dvfs/core/online_lmc.h"

namespace {

using namespace dvfs;

core::LmcScheduler prefilled(std::size_t cores, std::size_t per_core,
                             std::uint64_t seed) {
  core::LmcScheduler lmc(std::vector<core::CostTable>(
      cores, core::CostTable(core::EnergyModel::icpp2014_table2(),
                             core::CostParams{0.4, 0.1})));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  for (std::size_t i = 0; i < cores * per_core; ++i) {
    lmc.place_non_interactive(cyc(rng), i);
  }
  return lmc;
}

void BM_PlaceNonInteractive(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  auto lmc = prefilled(cores, depth, 11);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  core::TaskId id = 1'000'000;
  for (auto _ : state) {
    const auto p = lmc.place_non_interactive(cyc(rng), id++);
    // Remove it again so depth stays constant across iterations.
    lmc.erase(p.core, p.ref);
  }
}
BENCHMARK(BM_PlaceNonInteractive)
    ->ArgsProduct({{1, 4, 16}, {16, 256, 4096}});

void BM_ChooseInteractiveCore(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  auto lmc = prefilled(cores, 256, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmc.choose_interactive_core(3'000'000));
  }
}
BENCHMARK(BM_ChooseInteractiveCore)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return dvfs::bench::run_gbench_main("bench_lmc_overhead", argc, argv);
}
