/// Reproduces Fig. 1: model verification — the cost predicted by the
/// analytic model ("Sim") versus the measured execution ("Exp").
///
/// Setup follows Section V-A2: the 24 Table I workloads, two frequencies
/// (1.6 and 3.0 GHz), Re = 0.1, Rt = 0.4, a WBG-generated plan, four
/// cores. The paper's "Exp" bar is a real machine; here it is the event
/// simulator with the shared-resource contention model enabled
/// (ContentionModel::icpp2014_quadcore()), which reproduces the mechanism
/// the paper blames for its ~8% gap. "Sim" disables contention, which
/// matches the analytic plan cost exactly.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/governors/planned_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/sim/power_meter.h"
#include "dvfs/workload/spec2006int.h"

int main(int argc, char** argv) {
  using namespace dvfs;
  bench::BenchReporter reporter("bench_fig1", argc, argv);
  constexpr std::size_t kCores = 4;
  const core::CostParams cp{0.1, 0.4};

  // Two-frequency restriction of Table II: {1.6, 3.0} GHz.
  const core::EnergyModel full = core::EnergyModel::icpp2014_table2();
  const core::EnergyModel two_rates(
      core::RateSet({1.6, 3.0}),
      {full.energy_per_cycle(0), full.energy_per_cycle(4)},
      {full.time_per_cycle(0), full.time_per_cycle(4)});

  const std::vector<core::CostTable> tables(kCores,
                                            core::CostTable(two_rates, cp));
  const auto tasks = workload::spec_batch_tasks();
  const core::Plan plan = core::workload_based_greedy(tasks, tables);
  const core::PlanCost analytic = core::evaluate_plan(plan, tables);

  // The "Exp" measurement goes through the wall-power-meter pipeline the
  // paper used (sampled power trace, idle baseline deducted), not through
  // the simulator's internal ledger — reproducing the methodology, not
  // just the number.
  constexpr double kIdleWatts = 2.0;  // per-core share of the idle machine
  auto execute = [&](sim::ContentionModel contention, Joules* metered) {
    sim::Engine engine(std::vector<core::EnergyModel>(kCores, two_rates),
                       contention, kIdleWatts);
    governors::PlannedBatchPolicy policy(plan);
    sim::PowerTracingPolicy meter(policy, kIdleWatts);
    sim::SimResult r = engine.run(workload::Trace(tasks), meter);
    if (metered != nullptr) {
      *metered = meter.integrate_idle_deducted(r.end_time);
    }
    return r;
  };
  Joules metered_sim = 0.0;
  Joules metered_exp = 0.0;
  const sim::SimResult sim_run =
      execute(sim::ContentionModel::none(), &metered_sim);
  const sim::SimResult exp_run =
      execute(sim::ContentionModel::icpp2014_quadcore(), &metered_exp);

  bench::print_header("Fig. 1: Simulation vs Experiment (normalized to Sim)");
  const std::vector<bench::PolicyOutcome> rows{
      bench::outcome_from("Sim", sim_run, cp),
      bench::outcome_from("Exp", exp_run, cp),
  };
  bench::print_normalized(rows);
  std::printf("\nanalytic plan cost: %.2f; Sim run cost: %.2f "
              "(must agree to float precision)\n",
              analytic.total(), rows[0].total_cost());
  std::printf("Exp/Sim total-cost gap: %+.1f%% (paper: ~+8%%)\n",
              (rows[1].total_cost() / rows[0].total_cost() - 1.0) * 100.0);
  std::printf("\nwall-meter readings (idle-deducted): Sim %.0f J, Exp %.0f J"
              " — internal ledger: %.0f / %.0f J\n"
              "(meter < ledger by exactly idle_watts x busy-seconds: "
              "deducting the idle baseline also strips the idle share of "
              "busy cores — the systematic bias of the paper's wall-meter "
              "methodology, which cancels in normalized comparisons)\n",
              metered_sim, metered_exp, sim_run.busy_energy,
              exp_run.busy_energy);
  for (const bench::PolicyOutcome& o : rows) reporter.add(o);
  reporter.write();
  return 0;
}
