/// Ablation A2: the Algorithm 4-6 structure gives O(|P-hat| + log N)
/// insert/delete with a Theta(1) running cost, versus recomputing the cost
/// from scratch after each change (O(N)).
///
/// Benchmarked operations, each at several queue sizes N:
///   insert_erase/maintained — one insert + one erase, cached cost kept
///   insert_erase/recompute  — same churn but paying an O(N) recompute
///   cost_query              — reading the running total (Theta(1))
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bench_gbench.h"
#include "dvfs/core/dynamic_sched.h"

namespace {

using namespace dvfs;

core::CostTable online_table() {
  return core::CostTable(core::EnergyModel::icpp2014_table2(),
                         core::CostParams{0.4, 0.1});
}

core::DynamicSingleCoreScheduler prefilled(std::size_t n, std::uint64_t seed) {
  core::DynamicSingleCoreScheduler q(online_table());
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  for (std::size_t i = 0; i < n; ++i) {
    q.insert(cyc(rng), i);
  }
  return q;
}

void BM_InsertEraseMaintained(benchmark::State& state) {
  auto q = prefilled(static_cast<std::size_t>(state.range(0)), 42);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  for (auto _ : state) {
    const auto ref = q.insert(cyc(rng), 1'000'000);
    benchmark::DoNotOptimize(q.total_cost());
    q.erase(ref);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InsertEraseMaintained)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oLogN);

void BM_InsertEraseRecompute(benchmark::State& state) {
  auto q = prefilled(static_cast<std::size_t>(state.range(0)), 42);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<Cycles> cyc(1'000'000, 10'000'000'000ULL);
  for (auto _ : state) {
    const auto ref = q.insert(cyc(rng), 1'000'000);
    benchmark::DoNotOptimize(q.recompute_cost());  // the O(N) alternative
    q.erase(ref);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InsertEraseRecompute)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oN);

void BM_CostQuery(benchmark::State& state) {
  const auto q = prefilled(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.total_cost());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CostQuery)
    ->RangeMultiplier(16)
    ->Range(16, 65536)
    ->Complexity(benchmark::o1);

}  // namespace

int main(int argc, char** argv) {
  return dvfs::bench::run_gbench_main("bench_dynamic_cost", argc, argv);
}
