/// Ablation A11: does the paper's free-DVFS-transition assumption matter?
///
/// Real per-core DVFS transitions stall the core (10 us - 10 ms depending
/// on the platform) and burn regulator energy. This bench sweeps the
/// transition latency and reports, for the 24 Table I workloads on one
/// core:
///   * the cost of the switch-aware DP plan,
///   * the cost of the paper's (switch-oblivious) LTL plan evaluated
///     under the true transition costs,
///   * how many distinct frequencies each plan uses.
/// The gap between the two rows is what modeling transitions buys.
#include <cstdio>
#include <random>
#include <set>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_switch_cost.h"
#include "dvfs/workload/spec2006int.h"

namespace {

using namespace dvfs;

std::size_t distinct_rates(const core::CorePlan& plan) {
  std::set<std::size_t> rates;
  for (const core::ScheduledTask& st : plan.sequence) rates.insert(st.rate_idx);
  return rates.size();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_switch_cost", argc, argv);
  const core::CostTable table(core::EnergyModel::icpp2014_table2(),
                              core::CostParams{0.1, 0.4});
  const auto tasks = workload::spec_batch_tasks();
  const core::CorePlan oblivious = core::longest_task_last(tasks, table);

  bench::print_header(
      "A11: DVFS transition costs (24 Table I workloads, single core)");
  std::printf("%-14s %16s %16s %10s %10s %12s\n", "stall / switch",
              "aware cost", "oblivious cost", "gap", "rates", "(aware)");
  bench::print_rule(84);
  for (const double latency : {0.0, 1e-5, 1e-3, 0.1, 1.0, 10.0}) {
    // Transition energy scales with the stall (regulator ramp at ~20 W).
    const core::SwitchCost sc{latency, 20.0 * latency};
    const core::CorePlan aware =
        core::single_core_with_switch_cost(tasks, table, sc);
    const Money aware_cost =
        core::evaluate_single_with_switch_cost(aware, table, sc).total();
    const Money oblivious_cost =
        core::evaluate_single_with_switch_cost(oblivious, table, sc).total();
    std::printf("%-14.5f %16.1f %16.1f %+9.2f%% %6zu/%zu\n", latency,
                aware_cost, oblivious_cost,
                (oblivious_cost / aware_cost - 1.0) * 100.0,
                distinct_rates(aware), distinct_rates(oblivious));
    bench::BenchRow row("table1_tasks");
    row.param("stall_s", latency)
        .set_cost(aware_cost)
        .counter("oblivious_cost", oblivious_cost);
    reporter.add(std::move(row));
  }
  std::printf(
      "\nReading: Table I workloads run for minutes, so even absurd stalls\n"
      "are noise. The assumption is only stressed when tasks shrink toward\n"
      "the transition latency:\n");

  // Second sweep: 400 request-sized tasks (1.6M-160M cycles, i.e. 1-100 ms
  // at 1.6 GHz) where millisecond transitions are a real fraction of the
  // work.
  {
    std::vector<core::Task> small;
    std::mt19937_64 rng(5);
    for (core::TaskId i = 0; i < 400; ++i) {
      small.push_back(core::Task{
          .id = i, .cycles = 1'600'000 + rng() % 160'000'000});
    }
    const core::CorePlan small_oblivious =
        core::longest_task_last(small, table);
    bench::print_header("A11b: same sweep with 1-100 ms tasks");
    std::printf("%-14s %16s %16s %10s %10s\n", "stall / switch", "aware cost",
                "oblivious cost", "gap", "rates");
    bench::print_rule(72);
    for (const double latency : {0.0, 1e-4, 1e-3, 1e-2, 0.1}) {
      const core::SwitchCost sc{latency, 20.0 * latency};
      const core::CorePlan aware =
          core::single_core_with_switch_cost(small, table, sc);
      const Money aware_cost =
          core::evaluate_single_with_switch_cost(aware, table, sc).total();
      const Money oblivious_cost =
          core::evaluate_single_with_switch_cost(small_oblivious, table, sc)
              .total();
      std::printf("%-14.5f %16.3f %16.3f %+9.2f%% %6zu/%zu\n", latency,
                  aware_cost, oblivious_cost,
                  (oblivious_cost / aware_cost - 1.0) * 100.0,
                  distinct_rates(aware), distinct_rates(small_oblivious));
      bench::BenchRow row("small_tasks");
      row.param("stall_s", latency)
          .set_cost(aware_cost)
          .counter("oblivious_cost", oblivious_cost);
      reporter.add(std::move(row));
    }
  }
  reporter.write();
  return 0;
}
