/// Ablation A13: the discretization gap — discrete per-core DVFS rates
/// versus the YDS continuous-speed optimum the paper's Related Work cites
/// (Yao et al.).
///
/// For random deadline instances on the Theorem 1 gadget machine (two
/// rates following P = 4 s^3 exactly), the minimum discrete-rate energy
/// (found by budget bisection over the exact solver) is compared against
/// the YDS lower bound; then the same question is asked with 3, 5, and 9
/// rates on the cubic curve to show the gap closing as the rate set gets
/// finer — the quantitative version of "discrete DVFS is almost as good
/// as ideal speed scaling".
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/deadline.h"
#include "dvfs/core/yds.h"

namespace {

using namespace dvfs;

// Rates on the curve E(s) = 4 s^2 per cycle (P = 4 s^3), spanning
// [0.5, 1.0] like the gadget, with `n` evenly spaced steps.
core::EnergyModel cubic_rates(std::size_t n) {
  std::vector<Rate> rates;
  std::vector<double> e;
  std::vector<double> t;
  for (std::size_t i = 0; i < n; ++i) {
    const double s =
        0.5 + 0.5 * static_cast<double>(i) / static_cast<double>(n - 1);
    rates.push_back(s);
    e.push_back(4.0 * s * s);
    t.push_back(1.0 / s);
  }
  return core::EnergyModel(core::RateSet(std::move(rates)), std::move(e),
                           std::move(t));
}

double min_discrete_energy(const std::vector<core::Task>& tasks,
                           const core::EnergyModel& model) {
  double total = 0.0;
  for (const core::Task& t : tasks) total += static_cast<double>(t.cycles);
  double lo = 0.0;
  double hi = 16.0 * total;  // everything at the fastest rate and then some
  for (int it = 0; it < 45; ++it) {
    const double mid = (lo + hi) / 2.0;
    const core::DeadlineInstance inst{tasks, model, std::max(mid, 1e-9)};
    if (core::solve_deadline_single_exact(inst).has_value()) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_yds", argc, argv);
  std::mt19937_64 rng(20140902);
  std::uniform_int_distribution<Cycles> cyc(1, 40);

  bench::print_header(
      "A13: discrete-DVFS energy vs the YDS continuous optimum");
  std::printf("%8s %16s %18s %12s  %s\n", "rates", "one-rate/task",
              "preemptive split", "instances",
              "(mean energy gap over the continuous YDS ideal)");
  bench::print_rule(84);

  for (const std::size_t num_rates : {2u, 3u, 5u, 9u}) {
    const core::EnergyModel model = cubic_rates(num_rates);
    double sum_gap = 0.0;
    double max_gap = 0.0;
    double sum_preemptive_gap = 0.0;
    constexpr int kTrials = 25;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<core::Task> tasks;
      const std::size_t n = 3 + rng() % 5;
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const Cycles c = cyc(rng);
        total += static_cast<double>(c);
        tasks.push_back(core::Task{.id = i, .cycles = c, .deadline = 0.0});
      }
      // Staggered deadlines whose required speeds fall INSIDE the rate
      // span [0.5, 1.0]: outside it, the comparison would measure the
      // rate floor/ceiling, not discretization.
      double cum = 0.0;
      std::uniform_real_distribution<double> target_speed(0.55, 0.95);
      for (core::Task& t : tasks) {
        cum += static_cast<double>(t.cycles);
        t.deadline = cum / target_speed(rng);
      }
      std::sort(tasks.begin(), tasks.end(),
                [](const core::Task& a, const core::Task& b) {
                  return a.deadline < b.deadline;
                });
      const double discrete = min_discrete_energy(tasks, model);
      const core::YdsSchedule yds = core::yds_schedule(tasks);
      const double continuous = yds.energy(4.0, 3.0);
      const double preemptive =
          core::discrete_energy(core::round_to_discrete(yds, model), model);
      const double gap = discrete / continuous - 1.0;
      sum_gap += gap;
      max_gap = std::max(max_gap, gap);
      sum_preemptive_gap += preemptive / continuous - 1.0;
    }
    std::printf("%8zu %15.2f%% %17.2f%% %12d\n", num_rates,
                100.0 * sum_gap / kTrials,
                100.0 * sum_preemptive_gap / kTrials, kTrials);
    bench::BenchRow row("discretization_gap");
    row.param("rates", static_cast<std::uint64_t>(num_rates))
        .counter("mean_gap", sum_gap / kTrials)
        .counter("max_gap", max_gap)
        .counter("mean_preemptive_gap", sum_preemptive_gap / kTrials);
    reporter.add(std::move(row));
  }
  std::printf(
      "\nReading: the gap between the best discrete-rate schedule and the\n"
      "YDS continuous ideal shrinks steadily as the rate set refines —\n"
      "the cost of the paper's discrete-rate model is bounded by the\n"
      "platform's frequency granularity, not by the scheduling.\n");
  reporter.write();
  return 0;
}
