/// \file bench_gbench.h
/// \brief BENCHMARK_MAIN() replacement that adds `--json` reporting.
///
/// The microbenches use google-benchmark for timing but must still emit
/// the repo-wide dvfs-bench-v1 report (bench_util.h) so the CI regression
/// gate treats them like every other bench binary. run_gbench_main()
/// strips `--json` before benchmark::Initialize (which rejects unknown
/// flags), runs the normal console reporting, and mirrors each iteration
/// run — name, ns/iteration, user counters — into a BenchReporter row.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dvfs::bench {

/// Console reporter that also records every iteration run as a BenchRow.
class ReporterBridge : public benchmark::ConsoleReporter {
 public:
  explicit ReporterBridge(BenchReporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Aggregates (mean/median/stddev) would double-count with the raw
      // iteration runs; report the latter, which exist unconditionally.
      if (run.run_type != Run::RT_Iteration) continue;
      BenchRow row(run.benchmark_name());
      // Default time unit is nanoseconds, so adjusted real time is the
      // familiar ns/iteration figure the console prints.
      row.set_wall_ns(run.GetAdjustedRealTime());
      for (const auto& [name, counter] : run.counters) {
        row.counter(name, counter.value);
      }
      out_.add(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter& out_;
};

/// Drop-in main body: like BENCHMARK_MAIN() plus dvfs-bench-v1 output.
inline int run_gbench_main(const std::string& suite, int argc, char** argv) {
  BenchReporter reporter(suite, argc, argv);

  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      ++i;  // also drop the flag's value
      continue;
    }
    if (arg.starts_with("--json=")) continue;
    filtered.push_back(argv[i]);
  }
  filtered.push_back(nullptr);  // argv contract: argv[argc] == nullptr
  int filtered_argc = static_cast<int>(filtered.size()) - 1;

  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             filtered.data())) {
    return 1;
  }
  ReporterBridge bridge(reporter);
  benchmark::RunSpecifiedBenchmarks(&bridge);
  benchmark::Shutdown();
  reporter.write();
  return 0;
}

}  // namespace dvfs::bench
