/// Ablation A4: sensitivity of the Fig. 2/Fig. 3 conclusions to the cost
/// weights Re (money per joule) and Rt (money per second of waiting).
///
/// The paper picks Re:Rt = 1:4 for batch and 4:1 for online; this sweep
/// shows where the winners and the chosen frequencies move as the ratio
/// varies, including the extremes (energy-only and latency-only pricing).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/governors/planned_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/generators.h"
#include "dvfs/workload/spec2006int.h"

namespace {

using namespace dvfs;
constexpr std::size_t kCores = 4;

void batch_sweep(bench::BenchReporter& reporter) {
  bench::print_header("A4a: batch WBG vs OLB vs PS across Re:Rt");
  std::printf("%-12s %12s %12s %12s %16s\n", "Re:Rt", "WBG/OLB", "WBG/PS",
              "WBG rates", "(cost ratios; <1 = WBG cheaper)");
  bench::print_rule(70);
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  const auto tasks = workload::spec_batch_tasks();
  const workload::Trace trace(tasks);

  for (const auto& [re, rt] : std::vector<std::pair<double, double>>{
           {1.0, 0.01}, {1.0, 0.1}, {0.1, 0.4}, {0.1, 1.0}, {0.01, 1.0}}) {
    const core::CostParams cp{re, rt};
    const std::vector<core::CostTable> tables(kCores,
                                              core::CostTable(model, cp));
    const core::Plan plan = core::workload_based_greedy(tasks, tables);

    auto run = [&](sim::Policy& policy) {
      sim::Engine e(std::vector<core::EnergyModel>(kCores, model),
                    sim::ContentionModel::icpp2014_quadcore());
      return e.run(trace, policy);
    };
    governors::PlannedBatchPolicy wbg_p(plan);
    governors::FifoPolicy olb_p(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kOndemand});
    governors::FifoPolicy ps_p(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kOndemand,
         .rate_cap = 2});
    const auto wbg = run(wbg_p);
    const auto olb = run(olb_p);
    const auto ps = run(ps_p);

    // How many distinct rates does the WBG plan use? (crossover indicator)
    std::vector<bool> used(model.num_rates(), false);
    for (const core::CorePlan& c : plan.cores) {
      for (const core::ScheduledTask& st : c.sequence) used[st.rate_idx] = true;
    }
    std::string rates;
    for (std::size_t i = 0; i < used.size(); ++i) {
      if (used[i]) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "%.1f ", model.rates()[i]);
        rates += buf;
      }
    }
    std::printf("%5.2f:%-6.2f %12.3f %12.3f   %s\n", re, rt,
                wbg.total_cost(cp) / olb.total_cost(cp),
                wbg.total_cost(cp) / ps.total_cost(cp), rates.c_str());
    bench::BenchRow row("batch");
    row.param("re", re)
        .param("rt", rt)
        .set_cost(wbg.total_cost(cp))
        .set_energy_j(wbg.busy_energy)
        .counter("wbg_over_olb", wbg.total_cost(cp) / olb.total_cost(cp))
        .counter("wbg_over_ps", wbg.total_cost(cp) / ps.total_cost(cp));
    reporter.add(std::move(row));
  }
}

void online_sweep(bench::BenchReporter& reporter) {
  bench::print_header("A4b: online LMC vs OLB vs OD across Re:Rt");
  std::printf("%-12s %12s %12s\n", "Re:Rt", "LMC/OLB", "LMC/OD");
  bench::print_rule(40);
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  workload::JudgegirlConfig cfg;
  // A 1/6-scale trace keeps the sweep quick while preserving the regime.
  cfg.duration = 300.0;
  cfg.non_interactive_tasks = 128;
  cfg.interactive_tasks = 8420;
  const workload::Trace trace = workload::generate_judgegirl(cfg, 2014);

  for (const auto& [re, rt] : std::vector<std::pair<double, double>>{
           {1.0, 0.01}, {0.4, 0.1}, {0.1, 0.1}, {0.1, 0.4}, {0.01, 1.0}}) {
    const core::CostParams cp{re, rt};
    auto run = [&](sim::Policy& policy) {
      sim::Engine e(std::vector<core::EnergyModel>(kCores, model),
                    sim::ContentionModel::none());
      return e.run(trace, policy);
    };
    governors::LmcPolicy lmc_p(
        std::vector<core::CostTable>(kCores, core::CostTable(model, cp)));
    governors::FifoPolicy olb_p(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kMax});
    governors::FifoPolicy od_p(
        {.placement = governors::FifoPolicy::Placement::kRoundRobin,
         .freq = governors::FifoPolicy::FreqMode::kOndemand});
    const auto lmc = run(lmc_p);
    const auto olb = run(olb_p);
    const auto od = run(od_p);
    std::printf("%5.2f:%-6.2f %12.3f %12.3f\n", re, rt,
                lmc.total_cost(cp) / olb.total_cost(cp),
                lmc.total_cost(cp) / od.total_cost(cp));
    bench::BenchRow row("online");
    row.param("re", re)
        .param("rt", rt)
        .set_cost(lmc.total_cost(cp))
        .set_energy_j(lmc.busy_energy)
        .counter("lmc_over_olb", lmc.total_cost(cp) / olb.total_cost(cp))
        .counter("lmc_over_od", lmc.total_cost(cp) / od.total_cost(cp));
    reporter.add(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_sweep_rert", argc, argv);
  batch_sweep(reporter);
  online_sweep(reporter);
  reporter.write();
  return 0;
}
