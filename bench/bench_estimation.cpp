/// Ablation A10: how much does LMC lose when cycle requirements are
/// estimated rather than known?
///
/// The paper assumes "the number of cycles needed to complete a task is
/// known because it can be estimated by profiling" (Section II-A) and, for
/// submissions, "by taking average of the previous completed submissions"
/// (Section V-B). This bench quantifies the robustness of that assumption:
/// LMC schedules on noisy estimates (multiplicative lognormal error of
/// growing sigma), on a constant prior (no information beyond the mean),
/// and on the paper's own historical-average method, all executing the
/// same real workload; the oracle and the OLB baseline frame the results.
#include <cmath>
#include <memory>
#include <cstdio>
#include <random>

#include "bench_util.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/sim/engine.h"
#include "dvfs/workload/estimator.h"
#include "dvfs/workload/generators.h"

namespace {

using namespace dvfs;
constexpr std::size_t kCores = 4;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_estimation", argc, argv);
  const core::CostParams cp{0.4, 0.1};
  const core::EnergyModel model = core::EnergyModel::icpp2014_table2();
  workload::JudgegirlConfig cfg;
  cfg.duration = 900.0;
  cfg.non_interactive_tasks = 384;
  cfg.interactive_tasks = 25262;
  const workload::Trace trace = workload::generate_judgegirl(cfg, 777);
  auto report = [&reporter](const std::string& name, Money cost) {
    bench::BenchRow row(name);
    row.set_cost(cost);
    reporter.add(std::move(row));
  };

  const std::vector<core::CostTable> tables(kCores,
                                            core::CostTable(model, cp));
  auto run = [&](sim::Policy& policy) {
    sim::Engine engine(std::vector<core::EnergyModel>(kCores, model),
                       sim::ContentionModel::none());
    return engine.run(trace, policy);
  };

  bench::print_header("A10: LMC under cycle-estimation error");
  std::printf("%-22s %14s %10s\n", "estimator", "total cost", "vs oracle");
  bench::print_rule(50);

  Money oracle_cost = 0.0;
  {
    governors::LmcPolicy policy(tables);  // oracle
    oracle_cost = run(policy).total_cost(cp);
    std::printf("%-22s %14.0f %9.1f%%\n", "oracle (paper)", oracle_cost, 0.0);
    report("oracle", oracle_cost);
  }

  for (const double sigma : {0.2, 0.5, 1.0, 2.0}) {
    // Deterministic per-task noise: hash the id into a lognormal factor.
    governors::LmcPolicy policy(
        tables, [sigma](const core::Task& t) {
          std::mt19937_64 rng(t.id * 0x9e3779b97f4a7c15ULL + 1);
          std::lognormal_distribution<double> noise(-sigma * sigma / 2.0,
                                                    sigma);
          const double est = static_cast<double>(t.cycles) * noise(rng);
          return est < 1.0 ? Cycles{1} : static_cast<Cycles>(est);
        });
    const Money cost = run(policy).total_cost(cp);
    char label[32];
    std::snprintf(label, sizeof label, "noisy (sigma=%.1f)", sigma);
    std::printf("%-22s %14.0f %+9.1f%%\n", label, cost,
                (cost / oracle_cost - 1.0) * 100.0);
    bench::BenchRow row("noisy");
    row.param("sigma", sigma).set_cost(cost);
    reporter.add(std::move(row));
  }

  {
    // No per-task information at all: every submission looks like the
    // configured mean, every query like the interactive mean.
    governors::LmcPolicy policy(tables, [&](const core::Task& t) {
      return static_cast<Cycles>(t.klass == core::TaskClass::kInteractive
                                     ? cfg.interactive_mean_cycles
                                     : cfg.base_judge_cycles * 2.2);
    });
    const Money cost = run(policy).total_cost(cp);
    std::printf("%-22s %14.0f %+9.1f%%\n", "constant prior", cost,
                (cost / oracle_cost - 1.0) * 100.0);
    report("constant_prior", cost);
  }

  {
    // The paper's method: running average of completed submissions (one
    // global category — the policy does not know the problem id).
    auto history = std::make_shared<workload::HistoricalAverageEstimator>(
        1, static_cast<Cycles>(cfg.base_judge_cycles));
    governors::LmcPolicy policy(
        tables,
        [history, &cfg](const core::Task& t) {
          return t.klass == core::TaskClass::kInteractive
                     ? static_cast<Cycles>(cfg.interactive_mean_cycles)
                     : history->estimate(0);
        },
        [history](core::TaskId, Cycles actual) { history->record(0, actual); });
    const Money cost = run(policy).total_cost(cp);
    std::printf("%-22s %14.0f %+9.1f%%\n", "historical average", cost,
                (cost / oracle_cost - 1.0) * 100.0);
    report("historical_average", cost);
  }

  {
    governors::FifoPolicy policy(
        {.placement = governors::FifoPolicy::Placement::kEarliestReady,
         .freq = governors::FifoPolicy::FreqMode::kMax});
    const Money cost = run(policy).total_cost(cp);
    std::printf("%-22s %14.0f %+9.1f%%  <- the bar to beat\n",
                "OLB (no estimates)", cost,
                (cost / oracle_cost - 1.0) * 100.0);
    report("olb", cost);
  }
  std::printf("\nReading: LMC degrades gracefully with estimation error and "
              "stays ahead of OLB\neven with a constant prior — the paper's "
              "estimability assumption is load-bearing\nbut not fragile.\n");
  reporter.write();
  return 0;
}
