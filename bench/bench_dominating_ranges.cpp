/// Ablation A1: Algorithm 1 runs in Theta(|P|).
///
/// Compares three ways to obtain the optimal rate per backward position:
///   envelope        — Algorithm 1 (one convex-hull pass over |P| lines)
///   naive_table     — argmin over |P| rates for each of K positions
///   envelope_lookup — best_rate() queries against the prebuilt ranges
/// The paper's claim is that the construction itself is Theta(|P|),
/// independent of how many positions are later queried.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_gbench.h"
#include "dvfs/core/cost_model.h"
#include "dvfs/ds/lower_envelope.h"

namespace {

using namespace dvfs;

core::EnergyModel model_with_rates(std::size_t n) {
  std::vector<Rate> rates;
  rates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates.push_back(0.5 + 0.2 * static_cast<double>(i));
  }
  return core::EnergyModel::cubic(core::RateSet(std::move(rates)), 0.8, 0.9);
}

std::vector<ds::Line> lines_for(const core::EnergyModel& m,
                                const core::CostParams& cp) {
  std::vector<ds::Line> lines;
  for (std::size_t i = 0; i < m.num_rates(); ++i) {
    lines.push_back(ds::Line{cp.rt * m.time_per_cycle(i),
                             cp.re * m.energy_per_cycle(i), i});
  }
  return lines;
}

void BM_EnvelopeConstruction(benchmark::State& state) {
  const auto m = model_with_rates(static_cast<std::size_t>(state.range(0)));
  const core::CostParams cp{0.3, 0.7};
  const auto lines = lines_for(m, cp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::lower_envelope_integer(lines));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnvelopeConstruction)->RangeMultiplier(2)->Range(2, 256)
    ->Complexity(benchmark::oN);

void BM_NaiveArgminTable(benchmark::State& state) {
  // Building a best-rate table for K positions by brute force: O(K * |P|).
  const auto m = model_with_rates(static_cast<std::size_t>(state.range(0)));
  const core::CostParams cp{0.3, 0.7};
  const auto lines = lines_for(m, cp);
  constexpr std::size_t kPositions = 1024;
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t k = 1; k <= kPositions; ++k) {
      acc += ds::argmin_line_at(lines, k);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveArgminTable)->RangeMultiplier(2)->Range(2, 256)
    ->Complexity(benchmark::oN);

void BM_BestRateLookup(benchmark::State& state) {
  const auto m = model_with_rates(static_cast<std::size_t>(state.range(0)));
  const core::CostTable table(m, core::CostParams{0.3, 0.7});
  std::size_t k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.best_rate(k));
    k = k % 100000 + 1;
  }
}
BENCHMARK(BM_BestRateLookup)->RangeMultiplier(4)->Range(2, 128);

// Full CostTable construction with the process-wide memo defeated each
// iteration: envelope + range sort + small-k table, the price the first
// table on a new rate configuration pays.
void BM_CostTableConstructionCold(benchmark::State& state) {
  const auto m = model_with_rates(static_cast<std::size_t>(state.range(0)));
  const core::CostParams cp{0.3, 0.7};
  for (auto _ : state) {
    core::CostTable::clear_shared_cache();
    core::CostTable table(m, cp);
    benchmark::DoNotOptimize(&table);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CostTableConstructionCold)->RangeMultiplier(2)->Range(2, 256)
    ->Complexity(benchmark::oN);

// Same construction hitting the shared cache: what the 2nd..Rth core of a
// homogeneous platform (and every rebuilt table on an unchanged rate set)
// pays after the memoization — a key comparison plus a shared_ptr copy.
void BM_CostTableConstructionMemoized(benchmark::State& state) {
  const auto m = model_with_rates(static_cast<std::size_t>(state.range(0)));
  const core::CostParams cp{0.3, 0.7};
  const core::CostTable warm(m, cp);  // populate the cache entry
  for (auto _ : state) {
    core::CostTable table(m, cp);
    benchmark::DoNotOptimize(&table);
  }
}
BENCHMARK(BM_CostTableConstructionMemoized)->RangeMultiplier(2)->Range(2, 256);

// The ds-layer single-slot memo: a get() on an unchanged rate set is one
// element-wise key comparison, no hull pass.
void BM_MemoizedEnvelopeHit(benchmark::State& state) {
  const auto m = model_with_rates(static_cast<std::size_t>(state.range(0)));
  const core::CostParams cp{0.3, 0.7};
  const auto lines = lines_for(m, cp);
  ds::MemoizedEnvelope memo;
  (void)memo.get(lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&memo.get(lines));
  }
}
BENCHMARK(BM_MemoizedEnvelopeHit)->RangeMultiplier(2)->Range(2, 256);

}  // namespace

int main(int argc, char** argv) {
  return dvfs::bench::run_gbench_main("bench_dominating_ranges", argc, argv);
}
