/// \file mpsc_ring.h
/// \brief Bounded lock-free multi-producer/single-consumer ring.
///
/// The admission path of the scheduling service (svc/service.h): any
/// number of submitter threads (HTTP handler, bench producers, peer
/// shards forwarding stolen work) push fixed-size messages into the ring
/// of the shard that owns the task; the shard's worker thread is the only
/// consumer.
///
/// The design is the classic bounded sequence-number queue (Vyukov),
/// restricted to one consumer:
///
///  * every slot carries an atomic sequence number. A slot whose
///    sequence equals the producer's ticket is free; a producer claims
///    the ticket with one CAS on `tail_`, writes the payload, and
///    publishes by storing `ticket + 1` with release order;
///  * the consumer owns `head_` outright (no atomicity needed beyond the
///    acquire load of the slot sequence that makes the payload visible)
///    and recycles a slot by storing `ticket + capacity` back into it;
///  * a full ring rejects the push (`try_push` returns false) instead of
///    blocking or overwriting — admission backpressure is a first-class
///    outcome that the service surfaces as HTTP 503, so the ring must
///    report it, not hide it.
///
/// Progress: push is lock-free (a stalled producer between CAS and
/// publish delays only consumption past its slot, never other
/// producers), pop is wait-free. Per-producer FIFO order is preserved;
/// cross-producer order is the CAS arrival order.
///
/// `T` must be trivially copyable — the ring is a transport for POD
/// messages, mirroring the flight recorder's fixed-size-event rule.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

#include "dvfs/common.h"

namespace dvfs::svc {

template <typename T>
class MpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring messages are copied as raw payloads");

 public:
  /// Capacity rounds up to a power of two (minimum 2). Throws on 0.
  explicit MpscRing(std::size_t capacity) {
    DVFS_REQUIRE(capacity > 0, "ring capacity must be positive");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::make_unique<Slot[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Multi-producer push. Returns false when the ring is full (the
  /// message is NOT enqueued; the caller owns the backpressure policy).
  bool try_push(const T& value) noexcept {
    std::uint64_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[ticket & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(ticket);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.seq.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `ticket`; retry with the fresh value.
      } else if (dif < 0) {
        // The slot still holds an unconsumed message from one lap ago:
        // the ring is full *unless* the tail moved while we looked (a
        // slow producer's slot can read stale for one check).
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == ticket) return false;
        ticket = tail;
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop. Returns false when no published message is
  /// ready (an in-flight producer that claimed but not yet published the
  /// head slot also reads as "not ready" — never spin-wait on it).
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(head + 1) < 0) {
      return false;
    }
    out = slot.value;
    slot.seq.store(head + mask_ + 1, std::memory_order_release);
    head_.store(head + 1, std::memory_order_relaxed);
    return true;
  }

  /// Single-consumer batch pop: fills `out` front-to-back, returns the
  /// number of messages moved (0 when the ring reads empty).
  std::size_t pop_batch(std::span<T> out) noexcept {
    std::size_t n = 0;
    while (n < out.size() && try_pop(out[n])) ++n;
    return n;
  }

  /// Consumer-side emptiness probe (exact for the consumer; a snapshot
  /// for anyone else — the drain coordinator polls it for quiescence).
  [[nodiscard]] bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_relaxed);
  }

  /// Messages currently in flight (published or claimed). Approximate
  /// under concurrency; exact once producers quiesce.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail -
                                    head_.load(std::memory_order_relaxed));
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  /// Next ticket a producer will claim.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  /// Next slot the consumer will read. Only the consumer writes it;
  /// atomic (relaxed) so `empty()`/`size()` snapshots from other threads
  /// are race-free.
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

}  // namespace dvfs::svc
