/// \file service.h
/// \brief Long-running sharded LMC scheduling service (daemon mode).
///
/// Promotes the paper's run-to-completion Least Marginal Cost scheduler
/// into an online service that admits a continuous task stream:
///
///  * **Admission.** `submit()` routes each task by a stable hash of its
///    id to one of N shards and pushes a fixed-size message into that
///    shard's lock-free MPSC ring (svc/mpsc_ring.h). A full ring rejects
///    the submission — backpressure is returned to the caller (the HTTP
///    layer answers 503), never silently queued.
///
///  * **Shards.** Each shard owns a contiguous subset of the platform's
///    cores and runs a private `core::LmcScheduler` over exactly those
///    cores — its own flat range trees, cost tables, and envelope
///    caches. One worker thread per shard drains its ring in batches and
///    places every task with the Eq. 27 / Algorithm 4–6 machinery,
///    untouched. All LMC state is thread-confined: no locks on the
///    decision path, and a sharded run over a partitioned core set makes
///    *identical* decisions to N independent schedulers (the
///    differential oracle in test_svc_service.cpp holds this).
///
///  * **Work stealing.** Shards publish their queue cost after every
///    batch. An idle shard whose cost has fallen behind the richest
///    shard's by `steal_ratio` posts a steal *request* into the rich
///    shard's ring; the rich shard pops tasks from its own queues (its
///    thread owns them) and forwards them as ordinary submissions to the
///    requester. Stealing is therefore pure message passing — shard
///    state never crosses a thread boundary.
///
///  * **Drain.** `drain()` closes admission, lets every in-flight
///    message (including outstanding steals) reach a queue, then stops
///    the workers. Queued-but-unexecuted decisions stay queryable; the
///    caller flushes the recorder/metrics epilogue afterwards. This is
///    what `dvfs_execute --serve` runs on SIGINT/SIGTERM.
///
/// Everything observable goes through the metrics registry (`svc.*`
/// counters/gauges/histograms; `svc.admission.latency_us` feeds the
/// builtin `admission-latency-p99` health rule) and, when a recorder is
/// attached, one flight-recorder channel per shard.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/online_lmc.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/obs/reqtrace.h"
#include "dvfs/svc/mpsc_ring.h"

namespace dvfs::obs {
class Recorder;
class RecorderChannel;
}  // namespace dvfs::obs

namespace dvfs::svc {

/// Fixed-size admission-ring message (POD, like a recorder event).
struct Msg {
  enum class Kind : std::uint8_t {
    kSubmit = 0,        ///< place `id`/`cycles` on the receiving shard
    kStealRequest = 1,  ///< `from_shard` asks for up to `steal_want` tasks
  };
  Kind kind = Kind::kSubmit;
  bool stolen = false;  ///< submit forwarded by a rich shard's steal reply
  std::uint16_t from_shard = 0;
  std::uint16_t steal_want = 0;
  core::TaskId id = 0;
  Cycles cycles = 0;
  /// steady-clock nanoseconds at the ring push of *this hop* (a steal
  /// forward resets it); admission latency is measured against the
  /// placement instant.
  std::uint64_t enqueue_ns = 0;
  /// steady-clock nanoseconds at the original submission boundary.
  /// Rides in the message because the shard worker — the only thread
  /// allowed to write the shard's SPSC recorder channel — emits the
  /// ingress span event after dequeue. 0 on steal forwards (the ingress
  /// event was already emitted on the first hop).
  std::uint64_t recv_ns = 0;
  /// 64-bit request-trace id assigned at ingress; preserved across
  /// steal hops (0 when the origin's status entry was already evicted).
  std::uint64_t trace = 0;
};

/// Where a task ended up, queryable via `status()` / GET /schedule/{id}.
struct TaskStatus {
  enum class State : std::uint8_t {
    kQueued = 0,
    kCompleted = 1,
    kRunning = 2,  ///< virtual execution in progress (time_scale > 0)
  };
  State state = State::kQueued;
  std::uint16_t shard = 0;
  std::uint16_t core = 0;  ///< global core index
  std::uint16_t rate_idx = 0;
  bool stolen = false;  ///< placed after a work-steal migration
  Cycles cycles = 0;
  Money marginal = 0.0;  ///< exact queue-cost delta of the placement
  std::uint64_t trace = 0;  ///< request-trace id assigned at ingress
  double placed_s = 0.0;    ///< placement instant (steady s since start)
};

[[nodiscard]] const char* to_string(TaskStatus::State s);

struct ServiceOptions {
  std::size_t shards = 2;
  /// Total platform cores, partitioned contiguously across shards
  /// (shard i owns [i*cores/shards, (i+1)*cores/shards)). Must be
  /// >= shards.
  std::size_t cores = 4;
  /// Per-shard admission ring slots (rounds up to a power of two).
  std::size_t ring_capacity = std::size_t{1} << 16;
  /// Max ring messages a shard handles per loop iteration. 0 starves the
  /// shard on purpose (never drains while serving) — the backpressure /
  /// 503 smoke-test hook; `drain()` still flushes.
  std::size_t max_batch = 256;
  /// Steal when the richest shard's queue cost exceeds an idle shard's
  /// by this factor. 0 disables work stealing.
  double steal_ratio = 4.0;
  /// The rich shard must hold at least this many queued tasks before
  /// anyone bothers stealing from it.
  std::size_t steal_min_queue = 8;
  /// Bound on remembered task decisions; oldest entries are evicted
  /// first (a long-running daemon cannot keep every ticket forever).
  std::size_t status_capacity = std::size_t{1} << 20;
  /// Wall seconds per model second of *virtual execution*: > 0 lets each
  /// shard pop its queue fronts as their scaled durations elapse, so a
  /// serving daemon's queues drain. 0 = placement-only (queues grow
  /// until drained; what the differential oracle and the admission
  /// bench want).
  double time_scale = 0.0;
  /// Metrics sink; nullptr = obs::Registry::global().
  obs::Registry* registry = nullptr;
};

class SchedulingService {
 public:
  /// Homogeneous platform: every core is priced by `model` under
  /// `params` (heterogeneous shards would take per-core tables; the
  /// sharding machinery does not care).
  SchedulingService(core::EnergyModel model, core::CostParams params,
                    ServiceOptions options);
  ~SchedulingService();

  SchedulingService(const SchedulingService&) = delete;
  SchedulingService& operator=(const SchedulingService&) = delete;

  /// Attach before start(): shard i records kTaskArrival/kPlacement
  /// events into `recorder->channel(i)` (the recorder needs at least
  /// `shards()` channels).
  void set_recorder(obs::Recorder* recorder);

  /// Spawns the shard worker threads. Throws if already started.
  void start();

  struct Ticket {
    bool accepted = false;
    std::uint16_t shard = 0;
    /// Request-trace id assigned at ingress (0 when rejected).
    std::uint64_t trace = 0;
  };

  /// Lock-free admission from any thread. Rejects (accepted = false)
  /// when the target shard's ring is full or the service is draining.
  Ticket submit(core::TaskId id, Cycles cycles);

  /// Closes admission, waits until every in-flight message (submissions
  /// and steals) has been handled, then joins the workers. Idempotent.
  /// Shards flush their rings with a real batch size even under
  /// max_batch = 0.
  void drain();

  /// Decision lookup; nullopt for unknown (or evicted) ids.
  [[nodiscard]] std::optional<TaskStatus> status(core::TaskId id) const;

  /// The shard submit() would route `id` to — exposed so tests can
  /// reconstruct per-shard admission streams, and so clients can aim at
  /// a shard deliberately.
  [[nodiscard]] static std::size_t route(core::TaskId id,
                                         std::size_t shards);

  [[nodiscard]] std::size_t shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t cores() const { return options_.cores; }
  [[nodiscard]] bool draining() const {
    return phase_.load(std::memory_order_acquire) != Phase::kRunning;
  }

  /// Monotonic run counters (relaxed; exact after drain()).
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t rejected() const;
  [[nodiscard]] std::uint64_t placed() const;
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::uint64_t stolen() const;

  /// Per-shard introspection (tests, /metrics labels).
  [[nodiscard]] Money shard_queue_cost(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_queue_len(std::size_t shard) const;

  /// Live per-task request timelines (always-on; bounded like the status
  /// store). Backs `GET /tasks/{id}/trace`.
  [[nodiscard]] const obs::reqtrace::TraceStore& traces() const {
    return traces_;
  }
  /// Per-histogram exemplar slots; pass to the two-argument
  /// `prometheus_text()` so `/metrics` links buckets to trace ids.
  [[nodiscard]] const obs::reqtrace::ExemplarStore& exemplars() const {
    return exemplars_;
  }

 private:
  enum class Phase : std::uint8_t { kIdle, kRunning, kDraining, kStopped };

  struct Shard;

  void worker(Shard& shard);
  void handle_submit(Shard& shard, const Msg& msg, std::uint64_t dequeue_ns);
  void serve_steal(Shard& shard, const Msg& msg);
  void maybe_request_steal(Shard& shard);
  void virtual_execute(Shard& shard);
  void publish_gauges(Shard& shard);
  [[nodiscard]] double now_s() const;
  void status_upsert(core::TaskId id, const TaskStatus& st);

  core::EnergyModel model_;
  core::CostParams params_;
  ServiceOptions options_;
  obs::Registry* registry_ = nullptr;
  obs::Recorder* recorder_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<Phase> phase_{Phase::kIdle};
  /// Submitters currently between the admission phase-gate and their ring
  /// push; drain() waits for this to hit zero after flipping the phase so
  /// no accepted ticket can land in a ring the drain no longer watches.
  std::atomic<std::uint64_t> inflight_submits_{0};
  std::chrono::steady_clock::time_point start_time_{};

  // Status store, striped by the admission route so a stolen task is
  // still found under its original stripe. Mutex-per-stripe: writes come
  // from one shard thread at placement rate, reads from HTTP lookups.
  struct StatusStripe {
    mutable std::mutex mu;
    std::unordered_map<core::TaskId, TaskStatus> by_id;
    std::vector<core::TaskId> fifo;  ///< insertion order, for eviction
    std::size_t evict_cursor = 0;
  };
  std::vector<std::unique_ptr<StatusStripe>> status_;

  // Request tracing: id source, live timelines, per-bucket exemplars.
  std::atomic<std::uint64_t> trace_seq_{0};
  obs::reqtrace::TraceStore traces_;
  obs::reqtrace::ExemplarStore exemplars_;

  // svc.* instruments, resolved once.
  obs::Counter& submitted_;
  obs::Counter& rejected_;
  obs::Counter& placed_;
  obs::Counter& completed_;
  obs::Counter& stolen_;
  obs::Counter& steal_requests_;
  obs::Counter& status_evicted_;
  obs::Histogram& admission_latency_us_;
  obs::Histogram& batch_size_;
  obs::Histogram& queue_wait_us_;
  obs::reqtrace::ExemplarSeries& admission_exemplars_;
  obs::reqtrace::ExemplarSeries& queue_wait_exemplars_;
};

}  // namespace dvfs::svc
