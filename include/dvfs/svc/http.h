/// \file http.h
/// \brief The scheduling service's HTTP API, as routes on the metrics
///        server.
///
/// `dvfs_execute --serve` historically wired these handlers inline;
/// extracting them lets tests drive the real API over a real socket
/// without spawning the tool. The endpoints:
///
///   POST /submit            {"id":N,"cycles":N} or {"tasks":[...]}
///                           → 202 {"accepted":a,"rejected":r}
///                           (503 when everything bounced — pure
///                           backpressure), 400 on malformed JSON
///   GET  /schedule/{id}     → 200 placement decision JSON (state,
///                           shard, core, rate_idx, stolen, trace_id,
///                           ...) | 400 bad id | 404 unknown
///   GET  /tasks/{id}/trace  → 200 reconstructed request timeline JSON
///                           (steps with per-stage durations, steal
///                           hops, the admission critical stage) | 400 |
///                           404 unknown or evicted
///
/// Handlers run on the server thread and only touch the service's
/// thread-safe surfaces (submit, status store, trace store).
#pragma once

#include "dvfs/obs/promtext.h"
#include "dvfs/svc/service.h"

namespace dvfs::svc {

/// Registers POST /submit, GET /schedule/{id} and GET /tasks/{id}/trace
/// on `server`. Call before `server.start()`; `svc` must outlive the
/// server.
void register_service_routes(obs::MetricsHttpServer& server,
                             SchedulingService& svc);

}  // namespace dvfs::svc
