/// \file hw_telemetry.h
/// \brief Hardware telemetry providers: per-thread performance counters
///        and RAPL energy readings behind one testable abstraction.
///
/// The paper's optimality story (Thm. 3-5) rests on two modeled inputs —
/// per-task cycle counts and the per-rate energy curve E(p) — and until
/// now everything the repo reported (metrics, traces, `.dfr` recordings)
/// was a *prediction* from those models. This layer closes the Section V
/// validation loop on live hardware and, crucially, stays honest about
/// provenance: every measurement carries a `Source` label, and when a
/// privilege or platform gap forces a fallback the value is explicitly
/// labeled `model` — never silently passed off as measured.
///
/// Providers, in the selection order `LinuxHwProvider` tries them:
///
///  * cycles/instructions — `perf_event_open` attached to the calling
///    worker thread (source `perf`). Needs
///    /proc/sys/kernel/perf_event_paranoid <= 2 (or CAP_PERFMON);
///    otherwise falls back to `CLOCK_THREAD_CPUTIME_ID` for the span
///    duration (source `thread_timer`) with cycles charged from the
///    model (source `model`).
///  * energy — RAPL via /sys/class/powercap (`intel-rapl:N/energy_uj`,
///    package + core domains, wraparound-safe against
///    `max_energy_range_uj`; source `rapl`). Package counters are
///    chip-wide, so the executor divides a span's delta by the number of
///    concurrently busy workers (`energy_is_shared`). Unreadable files
///    (non-root, containers, non-Intel) fall back to model-charged
///    energy (source `model`).
///  * `FakeHwProvider` — replays a deterministic counter stream derived
///    from the span predictions with configurable skew factors, so every
///    consumer code path (drift gauges, `.dfr` v2 events,
///    `dvfs_inspect drift`) is testable in CI without privileges.
///
/// Setting the environment variable `DVFS_HW_FORCE_FALLBACK=1` makes
/// `LinuxHwProvider` behave as if perf and RAPL were unavailable — CI
/// uses it to pin down the unprivileged code path deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::obs::hw {

/// Where a telemetry value came from. Part of the `.dfr` v2 format
/// (encoded into kHwSpan's aux field): append only, never renumber.
enum class Source : std::uint8_t {
  kUnavailable = 0,  ///< no value at all
  kPerf = 1,         ///< perf_event_open hardware counter
  kThreadTimer = 2,  ///< CLOCK_THREAD_CPUTIME_ID
  kRapl = 3,         ///< /sys/class/powercap energy_uj
  kModel = 4,        ///< charged from the energy model (a prediction)
  kFake = 5,         ///< deterministic test provider
};

[[nodiscard]] constexpr const char* to_string(Source s) {
  switch (s) {
    case Source::kUnavailable: return "unavailable";
    case Source::kPerf: return "perf";
    case Source::kThreadTimer: return "thread_timer";
    case Source::kRapl: return "rapl";
    case Source::kModel: return "model";
    case Source::kFake: return "fake";
  }
  return "?";
}

/// True when the value was observed rather than predicted. The fake
/// provider counts as measured: it stands in for hardware in tests, and
/// drift arithmetic must treat its stream the way it would treat perf's.
[[nodiscard]] constexpr bool is_measured(Source s) {
  return s == Source::kPerf || s == Source::kThreadTimer ||
         s == Source::kRapl || s == Source::kFake;
}

/// What the model expects a task-execution span to cost. Passed to the
/// provider so fallback paths can charge the model *explicitly* (and the
/// fake provider can replay it, skewed or verbatim).
struct SpanPrediction {
  Cycles cycles = 0;
  Seconds seconds = 0.0;  ///< wall seconds (already time-scaled)
  Joules joules = 0.0;
};

/// What one span actually cost, each dimension labeled with provenance.
struct SpanMeasurement {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  ///< 0 when the source cannot count them
  Seconds seconds = 0.0;
  Joules joules = 0.0;
  Source counter_source = Source::kUnavailable;  ///< cycles/instructions
  Source time_source = Source::kUnavailable;
  Source energy_source = Source::kUnavailable;
  /// True when `joules` is a chip-wide (package) delta that the caller
  /// must attribute across concurrently busy workers.
  bool energy_is_shared = false;

  /// Realized cycles-per-instruction; 0 when instructions are unknown.
  [[nodiscard]] double cpi() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
};

/// Pack the three source labels into a `.dfr` kHwSpan aux field
/// (5 bits each: counter | time << 5 | energy << 10).
[[nodiscard]] constexpr std::uint16_t encode_sources(Source counter,
                                                     Source time,
                                                     Source energy) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned>(counter) | (static_cast<unsigned>(time) << 5) |
      (static_cast<unsigned>(energy) << 10));
}
[[nodiscard]] constexpr Source decode_counter_source(std::uint16_t aux) {
  return static_cast<Source>(aux & 0x1f);
}
[[nodiscard]] constexpr Source decode_time_source(std::uint16_t aux) {
  return static_cast<Source>((aux >> 5) & 0x1f);
}
[[nodiscard]] constexpr Source decode_energy_source(std::uint16_t aux) {
  return static_cast<Source>((aux >> 10) & 0x1f);
}

/// Per-worker-thread sampling session. begin_span()/end_span() bracket
/// one task execution; both run on the owning worker thread only.
class ThreadTelemetry {
 public:
  virtual ~ThreadTelemetry() = default;
  virtual void begin_span(const SpanPrediction& predicted) = 0;
  [[nodiscard]] virtual SpanMeasurement end_span(
      const SpanPrediction& predicted) = 0;
};

/// Factory for per-thread sessions. open_thread_telemetry() is called on
/// the worker thread itself (perf counters attach to the calling thread)
/// and must be thread-safe; it never returns null — a provider that can
/// measure nothing returns a session that charges the model, labeled so.
class HwProvider {
 public:
  virtual ~HwProvider() = default;
  [[nodiscard]] virtual std::unique_ptr<ThreadTelemetry>
  open_thread_telemetry(std::size_t worker) = 0;
  /// Human-readable provider summary ("perf+rapl", "timer+model", ...).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Wraparound-safe reader of /sys/class/powercap RAPL energy counters.
/// Scans `root` for `intel-rapl:N` package domains (plus their `core`
/// subdomains) at construction; read() returns joules accumulated since
/// construction, correcting for counter wrap against max_energy_range_uj.
/// Thread-safe (reads serialize on an internal mutex).
class RaplReader {
 public:
  explicit RaplReader(std::string root = "/sys/class/powercap");

  /// True when at least one readable package domain was found.
  [[nodiscard]] bool available() const { return !domains_.empty(); }
  [[nodiscard]] std::size_t num_packages() const;

  struct Reading {
    Joules package_j = 0.0;  ///< sum over package domains since construction
    Joules core_j = 0.0;     ///< sum over core subdomains since construction
    bool has_core = false;
  };
  /// Throws nothing; a domain whose file turns unreadable mid-run keeps
  /// its last value (the delta freezes rather than going negative).
  [[nodiscard]] Reading read();

 private:
  struct Domain {
    std::string energy_path;
    std::uint64_t max_range_uj = 0;
    std::uint64_t last_uj = 0;
    std::uint64_t accumulated_uj = 0;
    bool is_core = false;
  };
  std::mutex mu_;
  std::vector<Domain> domains_;
};

/// Creates `<dir>/intel-rapl:P[/intel-rapl:P:0]/{name,energy_uj,
/// max_energy_range_uj}` files mimicking the powercap sysfs layout, for
/// tests and rehearsals (same idiom as cpufreq::make_fake_sysfs_tree).
void make_fake_powercap_tree(const std::string& dir, std::size_t packages,
                             bool with_core_domain,
                             std::uint64_t max_range_uj = 65532610987ULL);

/// The real-hardware provider: perf counters + RAPL with honest,
/// per-dimension fallback.
class LinuxHwProvider final : public HwProvider {
 public:
  enum class Counters : std::uint8_t {
    kAuto,   ///< perf, else thread timer
    kPerf,   ///< perf only as a *request*; still falls back, labeled
    kTimer,  ///< never try perf
    kModel,  ///< charge the model (explicit no-measurement mode)
  };
  enum class Energy : std::uint8_t {
    kAuto,   ///< RAPL, else model
    kRapl,   ///< RAPL only as a request; still falls back, labeled
    kModel,  ///< charge the model
  };
  struct Options {
    Counters counters = Counters::kAuto;
    Energy energy = Energy::kAuto;
    std::string powercap_root = "/sys/class/powercap";
    /// Honour DVFS_HW_FORCE_FALLBACK=1 (forces timer+model). CI sets the
    /// variable to pin the unprivileged path; tests may opt out.
    bool respect_env = true;
  };

  LinuxHwProvider() : LinuxHwProvider(Options{}) {}
  explicit LinuxHwProvider(Options options);

  [[nodiscard]] std::unique_ptr<ThreadTelemetry> open_thread_telemetry(
      std::size_t worker) override;
  [[nodiscard]] std::string describe() const override;

  /// The energy backend actually selected (resolved at construction).
  [[nodiscard]] bool rapl_active() const { return rapl_ != nullptr; }

 private:
  Options options_;
  std::unique_ptr<RaplReader> rapl_;  // null => model-charged energy
};

/// Deterministic provider for tests and CI: replays the span predictions
/// back as "measurements", each dimension multiplied by its skew factor.
/// With all skews at 1.0 the measured stream equals the model exactly, so
/// every drift ratio must read 1.0 to the last bit.
class FakeHwProvider final : public HwProvider {
 public:
  struct Config {
    double cycles_skew = 1.0;
    double time_skew = 1.0;
    double energy_skew = 1.0;
    double ipc = 1.0;  ///< instructions = round(cycles * ipc)
  };

  FakeHwProvider() : FakeHwProvider(Config{}) {}
  explicit FakeHwProvider(Config config);

  [[nodiscard]] std::unique_ptr<ThreadTelemetry> open_thread_telemetry(
      std::size_t worker) override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Builds a provider from a `--hw` flag spec:
///   "auto" | "perf" | "timer" | "model"        -> LinuxHwProvider modes
///   "fake" | "fake:cycles=A,time=B,energy=C,ipc=D" -> FakeHwProvider
///   "off"                                      -> nullptr (no telemetry)
/// Throws dvfs::PreconditionError on garbage.
[[nodiscard]] std::unique_ptr<HwProvider> make_provider(
    const std::string& spec);

}  // namespace dvfs::obs::hw
