/// \file recorder.h
/// \brief Always-on binary flight recorder for scheduler decisions.
///
/// The recorder answers "why did the governor do that?" after the fact:
/// the sim engine, the governors, and the real-thread executor push
/// fixed-size events (task lifecycle, frequency transitions, and each
/// placement decision *with its full candidate vector*) into per-producer
/// SPSC ring buffers. Recording a decision costs one 48-byte store per
/// candidate — cheap enough to leave on in production, which is the whole
/// point: the interesting run is never the one you remembered to
/// instrument.
///
/// Concurrency model: one `RecorderChannel` per producer thread (the sim
/// engine is single-threaded and uses channel 0; the rt executor gives
/// each worker its own channel). Each channel is a classic single-
/// producer/single-consumer ring — the producer publishes with a
/// release store of the tail, the consumer acquires it — so the hot path
/// is wait-free and lock-free. When a ring fills, events are tail-dropped
/// (the oldest prefix survives, so a recording always starts at the run
/// boundary) and a relaxed atomic drop counter keeps an exact count.
///
/// `Recorder::drain()` moves ring contents into an in-memory log;
/// `write_file()` emits the `.dfr` format described in
/// recorder_format.h, including a binary snapshot of the metrics
/// registry so `dvfs_inspect replay` can reproduce `--metrics-out`
/// byte-for-byte. `Recording::load()` + `replay_to_trace()` invert the
/// pipeline: they rebuild the exact TraceWriter call sequence the live
/// engine would have made.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/recorder_format.h"

namespace dvfs::obs {

class TraceWriter;

/// One single-producer/single-consumer event ring. Producers call
/// `record()`; only `Recorder::drain()` consumes. Capacity is rounded up
/// to a power of two.
class RecorderChannel {
 public:
  explicit RecorderChannel(std::size_t capacity);

  RecorderChannel(const RecorderChannel&) = delete;
  RecorderChannel& operator=(const RecorderChannel&) = delete;

  /// Wait-free push. On a full ring the event is dropped (tail-drop: the
  /// already-recorded prefix is preserved) and the drop counter bumped.
  /// Returns false iff dropped.
  bool record(const dfr::Event& e) noexcept;

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events that made it into the ring (recorded + dropped = attempts).
  /// Survives drain(), so it feeds the v4 per-channel summary table.
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  friend class Recorder;

  /// Consumer side: moves everything currently published into `out`.
  void drain_into(std::vector<dfr::Event>& out);

  std::vector<dfr::Event> slots_;
  std::size_t mask_ = 0;
  // head_ = next slot to consume, tail_ = next slot to fill. Producer
  // writes the slot, then publishes with a release store of tail_; the
  // consumer's acquire load of tail_ makes the slot contents visible.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> recorded_{0};
};

/// Owns the per-producer channels and assembles recordings.
class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Recorder(std::size_t num_channels = 1,
                    std::size_t capacity_per_channel = kDefaultCapacity);

  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  [[nodiscard]] RecorderChannel& channel(std::size_t i);

  /// Appends one more channel with its own capacity — for a producer
  /// whose events must survive the main rings overflowing (the health
  /// monitor: a drop storm in channel 0 is exactly what it reports on).
  /// Call before producers start; not thread-safe against record().
  RecorderChannel& add_channel(std::size_t capacity);

  /// Consumes every channel into the in-memory log, merging by event
  /// timestamp (stable: ties keep channel order, and a single channel —
  /// the simulator — is already monotone, so its order is untouched).
  /// Call from the consumer thread only, after producers have quiesced.
  void drain();

  /// Total events dropped across all channels (exact; relaxed counters).
  [[nodiscard]] std::uint64_t events_dropped() const noexcept;
  /// Events drained so far.
  [[nodiscard]] const std::vector<dfr::Event>& events() const {
    return events_;
  }

  /// Discards the drained in-memory log (channels and drop counters are
  /// untouched), so a long-lived recorder can be reused across runs.
  void clear() { events_.clear(); }

  /// Captures `registry` so the written file can reproduce a
  /// `--metrics-out` dump. Call after the run completes, before
  /// `write_file()` and before anything else touches the registry.
  void capture_metrics(const Registry& registry);

  /// Captures an address → symbol-name table written as the v5 "DFRS"
  /// epilogue, so kProfSample frames stay readable after the process
  /// (and its ASLR layout) is gone. Entries with empty names are kept —
  /// "we looked and found nothing" is itself worth recording.
  void capture_symbols(
      std::vector<std::pair<std::uint64_t, std::string>> symbols);

  /// Writes header + drained events + metrics epilogue. Throws
  /// dvfs::PreconditionError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::unique_ptr<RecorderChannel>> channels_;
  std::vector<dfr::Event> events_;

  struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<Registry::HistogramSnapshot> histograms;
  };
  std::optional<MetricsSnapshot> metrics_;
  std::vector<std::pair<std::uint64_t, std::string>> symbols_;
};

/// A `.dfr` file loaded back into memory.
struct Recording {
  dfr::FileHeader header;
  std::vector<dfr::Event> events;

  /// (v4) Per-channel {recorded, dropped} counters, in channel order.
  /// Empty for v1–v3 files, which carried only the aggregate totals.
  std::vector<dfr::ChannelStats> channels;

  /// (v5) Symbol table from the "DFRS" epilogue: code address → name for
  /// kProfSample frames. Empty when the file carried none.
  std::vector<std::pair<std::uint64_t, std::string>> symbols;

  /// Metrics epilogue, if the file has one (kept in a registry so it
  /// re-serializes through the same code path as a live dump).
  std::shared_ptr<Registry> metrics;

  /// Non-empty when the file carried an epilogue that could not be parsed
  /// (torn tail after a crash mid-write). The event prefix is still
  /// loaded; `metrics` stays null.
  std::string epilogue_note;

  /// Parses `path`. Throws dvfs::PreconditionError on bad magic, an
  /// unsupported version (accepted: kMinFormatVersion..kFormatVersion),
  /// or truncation mid-record. A torn metrics epilogue is tolerated: the
  /// events load and `epilogue_note` says why the metrics did not.
  static Recording load(const std::string& path);

  [[nodiscard]] std::optional<dfr::Event> first_of(dfr::EventType t) const;
};

/// Rebuilds the Chrome-trace call sequence the live engine performs, so
/// replaying a recording yields byte-identical trace JSON. `writer` must
/// be empty.
void replay_to_trace(const Recording& rec, TraceWriter& writer);

}  // namespace dvfs::obs
