/// \file trace.h
/// \brief Chrome trace_event JSON export for simulation timelines.
///
/// Produces the JSON Object Format understood by chrome://tracing and
/// Perfetto (ui.perfetto.dev): a `traceEvents` array of phase-coded
/// events. The writer models one process (the simulation) whose threads
/// are the simulated cores plus one "governor" track:
///
///   * complete events (ph "X") — task execution spans on a core;
///   * instant events (ph "i") — frequency changes, governor decisions;
///   * counter events (ph "C") — busy-core count over time;
///   * metadata events (ph "M") — human-readable track names.
///
/// Timestamps are microseconds, the unit the format specifies; the engine
/// converts simulated seconds with a fixed 1e6 factor, so one trace
/// second equals one simulated second in the viewer.
///
/// The writer buffers events in memory and serializes on demand. It is
/// not thread-safe: one writer belongs to one engine (which is itself
/// single-threaded per run). Attach with Engine::set_trace_writer —
/// passing nullptr detaches, making tracing togglable at runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvfs/obs/json.h"

namespace dvfs::obs {

class TraceWriter {
 public:
  /// A finished span of work on track `tid` (core index): ts/duration in
  /// microseconds.
  void complete(std::int64_t tid, std::string name, double ts_us,
                double dur_us, Json::Object args = {});

  /// A point-in-time marker (frequency change, governor decision).
  void instant(std::int64_t tid, std::string name, double ts_us,
               Json::Object args = {});

  /// A sampled counter series (rendered as an area chart).
  void counter(std::string name, double ts_us, double value);

  /// Names track `tid` in the viewer (metadata event).
  void thread_name(std::int64_t tid, std::string name);

  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
  [[nodiscard]] Json to_json() const;

  void write_file(const std::string& path) const;

 private:
  struct Event {
    char ph = 'X';
    std::int64_t tid = 0;
    double ts = 0.0;
    double dur = 0.0;  // complete events only
    std::string name;
    Json::Object args;
  };
  static constexpr std::int64_t kPid = 1;

  std::vector<Event> events_;
};

}  // namespace dvfs::obs
