/// \file json.h
/// \brief Minimal JSON value, writer and parser for the observability
///        layer.
///
/// Every machine-readable artifact this repo emits — metric snapshots,
/// Chrome trace_event files, bench reports — goes through this one value
/// type, so the schema lives in code rather than in hand-formatted printf
/// strings. The parser exists so tests can load what the writers emitted
/// and assert on structure (round-trip validation), without an external
/// dependency. Objects keep their keys sorted (std::map), which makes the
/// emitted text deterministic and diffable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  Json(double d) : v_(d) {}              // NOLINT(google-explicit-constructor)
  Json(int i)                            // NOLINT(google-explicit-constructor)
      : v_(static_cast<double>(i)) {}
  Json(std::int64_t i)                   // NOLINT(google-explicit-constructor)
      : v_(static_cast<double>(i)) {}
  Json(std::uint64_t u)                  // NOLINT(google-explicit-constructor)
      : v_(static_cast<double>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}  // NOLINT
  Json(std::string s) : v_(std::move(s)) {}    // NOLINT
  Json(Array a) : v_(std::move(a)) {}          // NOLINT
  Json(Object o) : v_(std::move(o)) {}         // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const {
    DVFS_REQUIRE(is_bool(), "JSON value is not a bool");
    return std::get<bool>(v_);
  }
  [[nodiscard]] double as_double() const {
    DVFS_REQUIRE(is_number(), "JSON value is not a number");
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    DVFS_REQUIRE(is_string(), "JSON value is not a string");
    return std::get<std::string>(v_);
  }
  [[nodiscard]] Array& as_array() {
    DVFS_REQUIRE(is_array(), "JSON value is not an array");
    return std::get<Array>(v_);
  }
  [[nodiscard]] const Array& as_array() const {
    DVFS_REQUIRE(is_array(), "JSON value is not an array");
    return std::get<Array>(v_);
  }
  [[nodiscard]] Object& as_object() {
    DVFS_REQUIRE(is_object(), "JSON value is not an object");
    return std::get<Object>(v_);
  }
  [[nodiscard]] const Object& as_object() const {
    DVFS_REQUIRE(is_object(), "JSON value is not an object");
    return std::get<Object>(v_);
  }

  /// Object member access; inserts null for a missing key (object only).
  Json& operator[](const std::string& key) { return as_object()[key]; }

  [[nodiscard]] bool contains(const std::string& key) const {
    return is_object() && as_object().contains(key);
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto& o = as_object();
    const auto it = o.find(key);
    DVFS_REQUIRE(it != o.end(), "missing JSON key: " + key);
    return it->second;
  }
  [[nodiscard]] const Json& at(std::size_t index) const {
    const auto& a = as_array();
    DVFS_REQUIRE(index < a.size(), "JSON array index out of range");
    return a[index];
  }
  [[nodiscard]] std::size_t size() const {
    if (is_array()) return as_array().size();
    if (is_object()) return as_object().size();
    DVFS_REQUIRE(false, "JSON value has no size");
    return 0;  // unreachable
  }

  void push_back(Json v) { as_array().push_back(std::move(v)); }

  /// Serializes; `indent < 0` gives compact one-line output, otherwise a
  /// pretty-printed form with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws PreconditionError on malformed input.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Writes `value` (plus a trailing newline) to `path`, failing loudly.
void write_json_file(const std::string& path, const Json& value,
                     int indent = 1);

/// Reads and parses a JSON file.
Json read_json_file(const std::string& path);

}  // namespace dvfs::obs
