/// \file metrics.h
/// \brief Lock-cheap metrics: counters, gauges, and log-bucketed
///        histograms behind a process-wide registry.
///
/// Design rules, in order of importance:
///
///  1. The hot path is one relaxed atomic RMW. Instrumented code (the sim
///     engine's event loop, a governor's placement decision) resolves its
///     metric once — typically at construction — and then calls
///     `add()`/`observe()` on the returned reference, which never takes a
///     lock and never allocates.
///  2. Registration is the only synchronized operation. `counter(name)`
///     et al. take a mutex, get-or-create the entry, and hand back a
///     reference that stays valid for the registry's lifetime (node-based
///     storage; entries are never removed).
///  3. Snapshots are approximate by construction: a concurrent writer may
///     land an increment between two reads. That is the correct trade for
///     instrumentation — the alternative (stopping the world) would make
///     the metrics change what they measure.
///
/// Histograms use fixed log2 buckets: bucket 0 holds the value 0 and
/// bucket i >= 1 holds [2^(i-1), 2^i). Exact enough for latency
/// distributions spanning nanoseconds to seconds, and `observe()` stays a
/// bit-scan plus three relaxed adds.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/obs/json.h"

namespace dvfs::obs {

/// Monotonic event count. Thread-safe; increments are relaxed atomics.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (queue depth, configured core count).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log2-bucket histogram of non-negative integer samples.
class Histogram {
 public:
  /// Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  /// 64-bit values need bit_width up to 64, hence 65 buckets.
  static constexpr std::size_t kNumBuckets = 65;

  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive lower bound of bucket `i`.
  static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    DVFS_REQUIRE(i < kNumBuckets, "bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Upper bound of the bucket containing the nearest-rank p-quantile
  /// (p in [0, 1]), or nullopt when the histogram is empty — an empty
  /// histogram has no quantiles, and reporting 0 would be
  /// indistinguishable from a real all-zero distribution.
  ///
  /// Error bound: the true quantile q lies in the log2 bucket whose
  /// inclusive bounds this returns, so
  ///
  ///     q <= percentile_upper_bound(p) < 2 * max(q, 1)
  ///
  /// i.e. the reported value is never below the true quantile and
  /// overshoots by strictly less than one power of two (a factor of 2).
  /// Within any bucket the report is exact for the bucket's top value.
  [[nodiscard]] std::optional<std::uint64_t> percentile_upper_bound(
      double p) const;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  /// Overwrites this histogram with a previously captured state (count,
  /// sum, and (bucket_lower, bucket_count) pairs). Used by the flight
  /// recorder to rebuild a registry snapshot on replay; the rebuilt
  /// histogram then serializes through the exact same to_json path as
  /// the live one, so derived fields (mean, p50, p99) match bit for bit.
  void restore(std::uint64_t count, std::uint64_t sum,
               const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                   bucket_counts);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide named metrics. One global instance serves the whole
/// program (`Registry::global()`); tests may build private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime. A name registered as one metric kind cannot be reused as
  /// another.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Dump of every metric:
  ///   {"counters": {name: n}, "gauges": {name: x},
  ///    "histograms": {name: {count, sum, mean, p50, p99,
  ///                          buckets: [[lower, n], ...nonzero only]}}}
  /// mean/p50/p99 are omitted while a histogram is empty (no data is not
  /// the same as 0).
  [[nodiscard]] Json to_json() const;

  /// Zeroes every metric (registration survives). Tests and bench
  /// binaries use this to scope counts to one run.
  void reset_all();

  /// Consistent point-in-time copies of every registered metric, for
  /// consumers that need raw values rather than JSON (the flight
  /// recorder's binary epilogue, the Prometheus text encoder). Each call
  /// snapshots under the registration mutex.
  struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (inclusive lower bound, samples) for each non-empty bucket,
    /// ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters_snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges_snapshot()
      const;
  [[nodiscard]] std::vector<HistogramSnapshot> histograms_snapshot() const;

 private:
  mutable std::mutex mu_;
  // std::map nodes are address-stable across later insertions.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dvfs::obs
