/// \file recorder_format.h
/// \brief On-disk format of the `.dfr` flight-recorder files.
///
/// A recording is a self-contained binary artifact:
///
///   [FileHeader]                 32 bytes, magic "DFR1" + version byte
///   [ChannelStats * num_channels] (v4+) per-channel {recorded, dropped}
///                                counters, 16 bytes each
///   [Event * header.event_count] fixed 48-byte records, time-ordered
///   [symbol epilogue]            optional (v5+): address → symbol-name
///                                table (magic "DFRS") so kProfSample
///                                frames symbolize offline, after ASLR
///                                made the raw addresses meaningless
///   [metrics epilogue]           optional: the final metrics-registry
///                                snapshot (magic "DFRM"), so a recording
///                                can reproduce `--metrics-out` exactly
///
/// Every event is fixed-size and trivially copyable so the hot path is a
/// single 48-byte store into a preallocated ring slot — no allocation, no
/// formatting, no branching on payload shape. Variable-size information
/// (the per-core candidate vector of a governor decision) is expressed as
/// a *run* of fixed-size kCandidate events followed by one kPlacement
/// event, all tagged with the same task id.
///
/// Integers and doubles are stored in native (little-endian on every
/// supported target) byte order; the version byte guards against reading
/// a recording with a mismatched layout. Bump kFormatVersion whenever
/// Event, FileHeader, or the epilogue encoding changes shape.
#pragma once

#include <cstdint>
#include <type_traits>

namespace dvfs::obs::dfr {

/// "DFR1" little-endian. The '1' is cosmetic; the real version gate is
/// FileHeader::version.
inline constexpr std::uint32_t kFileMagic = 0x31524644u;
/// "DFRM": starts the optional metrics-snapshot epilogue.
inline constexpr std::uint32_t kMetricsMagic = 0x4d524644u;
/// "DFRS": starts the optional (v5+) symbol-table epilogue. Like "DFRM"
/// it begins with 'D' — a byte no small EventType value can produce —
/// so the unfinalized-stream scanner can spot it mid-stream.
inline constexpr std::uint32_t kSymbolsMagic = 0x53524644u;
/// v2 added the hardware-telemetry events kHwPlanned/kHwSpan; v3 added
/// the SLO-engine events kHealthSample/kAlert; v4 added the request-
/// tracing span events kSubmitRecv..kExecEnd and a per-channel
/// {recorded, dropped} summary table between the header and the event
/// stream (so a starved shard ring is attributable after the channels
/// were merged); v5 added the CPU-profiler event kProfSample and the
/// optional "DFRS" symbol epilogue between the events and the metrics
/// epilogue. Event and FileHeader layouts are unchanged across all
/// bumps, so readers accept every version from kMinFormatVersion up —
/// a pre-v4 reader would reject a v4 file on the version byte rather
/// than misparse the table as events.
inline constexpr std::uint8_t kFormatVersion = 5;
inline constexpr std::uint8_t kMinFormatVersion = 1;

/// What a 48-byte record means. Values are part of the format: append
/// only, never renumber.
enum class EventType : std::uint8_t {
  kNone = 0,
  /// Run boundary. core = number of simulated cores.
  kRunBegin = 1,
  /// Cost parameters of the attached policy. aux = PolicyKind,
  /// f0 = Re, f1 = Rt, core = core count the policy manages.
  kParams = 2,
  /// A task entered the system. task = id, u0 = cycles, aux = TaskClass,
  /// f0 = deadline (may be +inf), time = arrival.
  kTaskArrival = 3,
  /// A task began (or resumed) executing. f0 = remaining cycles.
  kTaskStart = 4,
  /// An execution span closed (completion or preemption). f0 = span start
  /// time in seconds; kFlagPreempted distinguishes the two.
  kSpanEnd = 5,
  /// A task completed. f0 = busy joules attributed to the task,
  /// f1 = turnaround seconds.
  kTaskFinish = 6,
  /// A core's frequency actually changed. f0 = new rate in GHz.
  kFreqChange = 7,
  /// A policy callback returned. aux = DecisionKind, f0 = wall-clock
  /// nanoseconds spent inside the callback, f1 = busy cores afterwards.
  kDecision = 8,
  /// One evaluated alternative of a placement decision. core = the
  /// candidate core, f0 = its marginal cost (Eq. 27 for interactive
  /// arrivals, the exact queue-cost delta for non-interactive ones,
  /// drain seconds for the OLB baseline); kFlagChosen marks the winner.
  kCandidate = 9,
  /// The decision itself. aux = DecisionScope, core = chosen core,
  /// f0 = chosen marginal cost, f1 = total queue cost after placement
  /// (LMC non-interactive only; 0 elsewhere), u0 = estimated cycles.
  kPlacement = 10,
  /// A WBG full replan. u0 = tasks replanned, aux = migrations caused.
  kReplan = 11,
  /// (v2) What the model predicted an execution span would cost, emitted
  /// just before the span runs. u0 = predicted cycles, f0 = predicted
  /// joules, f1 = predicted wall seconds (time-scaled).
  kHwPlanned = 12,
  /// (v2) What hardware telemetry measured for the span, emitted at span
  /// end. u0 = measured cycles, f0 = measured joules (already attributed
  /// across busy workers when the meter is package-wide), f1 = measured
  /// seconds, aux = the three provenance labels packed 5 bits each
  /// (see obs::hw::encode_sources).
  kHwSpan = 13,
  /// (v3) One SLO-rule evaluation by the health monitor. aux = rule
  /// index, task = FNV-1a hash of the rule name (guards replay against a
  /// mismatched rule config), f0/f1 = the evaluated short-/long-window
  /// signal values (NaN when the signal had no data), u0 = the
  /// health::AlertState after this evaluation. time_s is the monitor's
  /// wall-clock seconds since it started — its own axis, distinct from
  /// the simulated/scaled time of the scheduler events.
  kHealthSample = 14,
  /// (v3) An alert state transition. aux = rule index, task = rule-name
  /// hash, flags = the previous health::AlertState, u0 = the new one,
  /// f0/f1 = the short-/long-window values that triggered the change.
  kAlert = 15,
  /// (v4) Request-tracing span events. All of them carry task = task id
  /// and u0 = the 64-bit trace id assigned at ingress, and share the
  /// service's steady-clock-seconds-since-start time axis. Because
  /// ingress-stage timestamps ride inside the admission message and are
  /// recorded by the shard worker after dequeue, a single channel's
  /// stream is no longer strictly time-ordered — reconstruction sorts
  /// per task id.
  ///
  /// A task was accepted at the submission boundary (HTTP ingress or
  /// direct submit()). time = the ingress instant.
  kSubmitRecv = 16,
  /// The admission message was pushed onto a shard's MPSC ring.
  /// core = shard index, time = the push instant. Emitted once per hop
  /// (a steal forward re-enqueues, so stolen tasks have two).
  kRingEnqueue = 17,
  /// The shard worker popped the message from its ring. core = shard
  /// index, time = the batch-pop instant.
  kRingDequeue = 18,
  /// The task migrated shards through a work-steal forward. aux = the
  /// shard it left (the steal victim), core = the shard it joined,
  /// time = the forward instant.
  kStealHop = 19,
  /// The task entered a per-core run queue after placement.
  /// core = global core index, rate_idx = assigned rate step,
  /// u0 here = queue depth after insertion (trace id travels in the
  /// adjacent kPlacement/kSubmitRecv events for this type only).
  kShardQueue = 20,
  /// Virtual execution began. core = global core index.
  kExecBegin = 21,
  /// Virtual execution finished. core = global core index, f0 = the
  /// span's begin time in seconds (mirrors the kSpanEnd convention).
  kExecEnd = 22,
  /// (v5) One stack frame of a sampling-profiler CPU sample. A sample is
  /// a *run* of kProfSample events sharing time_s/task: rate_idx is the
  /// frame index counted from the leaf (rate_idx == 0 starts a new
  /// sample), u0 = the frame's code address (symbolized offline via the
  /// "DFRS" epilogue), task = kernel thread id, core = the shard the
  /// thread was serving (0xffff = unattributed), aux = the
  /// prof::Stage marker active when the timer fired, time_s = seconds
  /// since the profiler started (its own axis, like kHealthSample).
  kProfSample = 23,
};

/// Bit flags (Event::flags).
inline constexpr std::uint8_t kFlagPreempted = 0x01;
inline constexpr std::uint8_t kFlagChosen = 0x02;
/// kPlacement by the scheduling service for a task that migrated shards
/// through a work-steal forward (flag addition only — no version bump).
inline constexpr std::uint8_t kFlagStolen = 0x04;

/// Which policy callback a kDecision event closed (Event::aux).
enum class DecisionKind : std::uint16_t {
  kOnArrival = 0,
  kOnComplete = 1,
  kOnTimer = 2,
};

[[nodiscard]] constexpr const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kOnArrival: return "on_arrival";
    case DecisionKind::kOnComplete: return "on_complete";
    case DecisionKind::kOnTimer: return "on_timer";
  }
  return "?";
}

/// What kind of placement a kPlacement/kCandidate run describes
/// (Event::aux).
enum class DecisionScope : std::uint16_t {
  kNonInteractive = 0,  ///< LMC queue insertion (marginal-cost argmin)
  kInteractive = 1,     ///< Eq. 27 core choice
  kFifo = 2,            ///< OLB/ondemand baseline placement
  kPlanned = 3,         ///< planned-batch dispatch
};

/// Which policy emitted a kParams event (Event::aux).
enum class PolicyKind : std::uint16_t {
  kLmc = 0,
  kWbgRebalance = 1,
  kFifo = 2,
  kPlannedBatch = 3,
};

/// One fixed-size recorded event. Meaning of the payload fields depends
/// on `type` (documented per EventType above); unused fields are zero.
struct Event {
  std::uint8_t type = 0;   ///< EventType
  std::uint8_t flags = 0;  ///< kFlag* bits
  std::uint16_t core = 0;
  std::uint16_t rate_idx = 0;
  std::uint16_t aux = 0;
  double time_s = 0.0;  ///< simulated (or wall) seconds since run start
  std::uint64_t task = 0;
  std::uint64_t u0 = 0;
  double f0 = 0.0;
  double f1 = 0.0;
};
static_assert(sizeof(Event) == 48, "Event is part of the .dfr format");
static_assert(std::is_trivially_copyable_v<Event>,
              "events are written as raw bytes");

/// File prologue. `event_count` and `dropped` are back-patched when the
/// recording is finalized; a crash mid-write leaves event_count = ~0,
/// which readers treat as "stream: read events until the epilogue magic
/// or EOF".
struct FileHeader {
  std::uint32_t magic = kFileMagic;
  std::uint8_t version = kFormatVersion;
  std::uint8_t reserved0[3] = {0, 0, 0};
  std::uint32_t num_channels = 1;
  std::uint32_t reserved1 = 0;
  std::uint64_t event_count = 0;
  std::uint64_t dropped = 0;
};
static_assert(sizeof(FileHeader) == 32, "FileHeader is part of the format");

/// (v4) One per-channel summary record. `num_channels` of these follow
/// the header, in channel order. `recorded` counts events that made it
/// into the ring (so recorded + dropped = everything the producer tried
/// to record); `dropped` is that channel's share of header.dropped.
struct ChannelStats {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};
static_assert(sizeof(ChannelStats) == 16,
              "ChannelStats is part of the v4 format");

/// (v5) Symbol-table epilogue layout, after kSymbolsMagic:
///   u32 entry_count, then entry_count * (u64 address, u16 name_len,
///   name bytes). Addresses are the raw u0 values of kProfSample events
///   from this recording; names are whatever the symbolizer produced
///   (mangled or demangled). Torn-tolerant like the metrics epilogue: a
///   partial table downgrades to an epilogue note, the events still load.
///
/// Metrics-epilogue entry kinds (one byte each, after kMetricsMagic and a
/// u32 entry count). Layouts:
///   kCounter:   u16 name_len, name, u64 value
///   kGauge:     u16 name_len, name, f64 value
///   kHistogram: u16 name_len, name, u64 count, u64 sum, u32 n,
///               n * (u64 bucket_lower, u64 bucket_count)
enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

}  // namespace dvfs::obs::dfr
