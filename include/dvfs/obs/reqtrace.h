/// \file reqtrace.h
/// \brief Per-task request tracing across the sharded scheduling service.
///
/// Aggregate histograms answer "how slow is admission p99"; this layer
/// answers "why was *this* task slow". Every submitted task gets a 64-bit
/// trace id at ingress, and each lifecycle stage — submission receipt,
/// admission-ring enqueue/dequeue, steal migration, LMC placement, run-
/// queue insertion, virtual execution — becomes one `Step` on the task's
/// timeline. The same step stream exists in two places:
///
///  * **Live**: the service appends steps into a bounded `TraceStore`,
///    which backs `GET /tasks/{id}/trace` while the daemon runs.
///  * **Recorded**: shard workers emit the steps as `.dfr` v4 events
///    (dfr::EventType::kSubmitRecv..kExecEnd), so `build_timelines()`
///    can reconstruct every task's causal chain from a recording —
///    including after a crash, since the channels are drained through
///    the ordinary flight-recorder path.
///
/// A `Timeline` derives per-stage durations by walking consecutive steps
/// and attributing each gap to the stage it ended at; the durations
/// telescope, so their sum equals the end-to-end latency (a property the
/// tests gate). `ExemplarStore` closes the loop from aggregates back to
/// traces: histogram observation sites record the trace id of a recent
/// sample per log2 bucket, and `prometheus_text()` attaches them as
/// OpenMetrics-style exemplars — a firing `admission-latency-p99` alert
/// links directly to one concrete offending trace.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dvfs/obs/json.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/obs/recorder_format.h"

namespace dvfs::obs::reqtrace {

/// One lifecycle stage. Order is the canonical within-instant order: two
/// steps with the same timestamp sort by stage, which makes a chain like
/// placement → steal-forward (same observed instant) reconstruct in
/// causal order.
enum class Stage : std::uint8_t {
  kSubmitRecv = 0,   ///< accepted at the submission boundary
  kStealHop = 1,     ///< migrated shards via a work-steal forward
  kRingEnqueue = 2,  ///< pushed onto a shard's admission ring
  kRingDequeue = 3,  ///< popped by the shard worker
  kPlacement = 4,    ///< LMC placement decision
  kShardQueue = 5,   ///< entered the chosen core's run queue
  kExecBegin = 6,    ///< virtual execution began
  kExecEnd = 7,      ///< virtual execution finished
};

[[nodiscard]] const char* to_string(Stage s);

/// One timeline entry. `a`/`b` are stage-specific details:
///   kRingEnqueue/kRingDequeue: a = shard
///   kStealHop:                 a = from shard, b = to shard
///   kPlacement:                a = global core, b = rate index
///   kShardQueue:               a = global core, b = queue depth after
///   kExecBegin/kExecEnd:       a = global core
struct Step {
  Stage stage = Stage::kSubmitRecv;
  double t_s = 0.0;  ///< steady seconds since service start
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Where a task's end-to-end latency went. Stage gaps are attributed to
/// the step that *closed* them, so the fields telescope:
/// `total()` == last step time − first step time (modulo fp rounding).
struct Durations {
  double ingress_s = 0.0;     ///< submit accepted → ring push
  double ring_wait_s = 0.0;   ///< ring push → worker pop (all hops)
  double placement_s = 0.0;   ///< worker pop → placement decision
  double steal_wait_s = 0.0;  ///< queued on the victim → steal forward
  double queue_wait_s = 0.0;  ///< last placement → execution begin
  double exec_s = 0.0;        ///< execution begin → end

  [[nodiscard]] double total() const {
    return ingress_s + ring_wait_s + placement_s + steal_wait_s +
           queue_wait_s + exec_s;
  }
};

/// A task's reconstructed lifecycle: time-sorted steps plus derived
/// stage accounting.
struct Timeline {
  std::uint64_t task = 0;
  std::uint64_t trace_id = 0;
  std::vector<Step> steps;  ///< sorted by (t_s, stage)

  [[nodiscard]] bool stolen() const { return hops() > 0; }
  [[nodiscard]] std::size_t hops() const;
  [[nodiscard]] double begin_s() const;
  [[nodiscard]] double end_s() const;
  [[nodiscard]] double end_to_end_s() const { return end_s() - begin_s(); }
  [[nodiscard]] Durations durations() const;
  /// The admission stage (ingress / ring_wait / placement / steal_wait)
  /// that dominated this task's submit→placement path.
  [[nodiscard]] const char* admission_critical_stage() const;
};

/// Canonicalizes `steps` in place: sort by (t_s, stage).
void sort_steps(std::vector<Step>& steps);

/// Rebuilds one timeline per traced task from a drained/loaded event
/// stream. Only tasks that carry at least one v4 trace event participate
/// (a plain simulator recording yields no timelines); their kPlacement
/// events join the timeline as Stage::kPlacement. Returned sorted by
/// task id.
[[nodiscard]] std::vector<Timeline> build_timelines(
    const std::vector<dfr::Event>& events);

/// Full JSON rendering: steps (with per-step `dt_s`), the stage
/// duration breakdown, and the admission critical stage. Trace ids are
/// 16-hex-digit strings (64-bit values do not survive JSON doubles).
[[nodiscard]] Json timeline_json(const Timeline& t);

/// `0x1234...` / `1234...` 16-hex-digit rendering and parsing of trace
/// ids.
[[nodiscard]] std::string trace_id_hex(std::uint64_t id);
[[nodiscard]] std::optional<std::uint64_t> parse_trace_id(
    std::string_view text);

/// Bounded live per-task step store (the data behind
/// `GET /tasks/{id}/trace`). Striped like the service's status store:
/// appends come from shard workers at placement rate, reads from HTTP
/// lookups. Oldest tasks are evicted per stripe once `capacity` tasks
/// are held.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity, std::size_t stripes = 16);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Appends steps to `task`'s timeline (creating it on first touch).
  void append(std::uint64_t task, std::uint64_t trace_id,
              std::initializer_list<Step> steps);

  /// Snapshot of a task's timeline so far; steps come back canonically
  /// sorted. nullopt for unknown (or evicted) tasks.
  [[nodiscard]] std::optional<Timeline> get(std::uint64_t task) const;

  /// Timelines evicted to stay within capacity (exact; relaxed).
  [[nodiscard]] std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t trace_id = 0;
    std::vector<Step> steps;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> by_task;
    std::vector<std::uint64_t> fifo;
    std::size_t evict_cursor = 0;
  };

  [[nodiscard]] Stripe& stripe_for(std::uint64_t task) const;

  std::size_t per_stripe_capacity_;
  mutable std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> evicted_{0};
};

/// One recent sample that landed in a histogram bucket, with the trace
/// id that produced it.
struct Exemplar {
  std::uint64_t trace_id = 0;
  std::uint64_t value = 0;
  double t_s = 0.0;
};

/// Per-bucket exemplar slots for one histogram family. `observe()` is a
/// handful of relaxed stores guarded by a seqlock-style version counter,
/// cheap enough to run alongside every `Histogram::observe()`. Readers
/// retry a few times and give up (no exemplar this scrape) rather than
/// spin. Two producers racing on the same bucket may interleave fields;
/// each field still comes from a real observation in that bucket, which
/// is all an exemplar promises.
class ExemplarSeries {
 public:
  void observe(std::uint64_t value, std::uint64_t trace_id,
               double t_s) noexcept;
  [[nodiscard]] std::optional<Exemplar> bucket(std::size_t i) const noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> t_bits{0};
  };
  std::array<Slot, Histogram::kNumBuckets> slots_{};
};

/// Exemplar series keyed by registry histogram name (the same dotted
/// name, label block included). Get-or-create is mutexed like Registry
/// registration; the returned reference stays valid for the store's
/// lifetime.
class ExemplarStore {
 public:
  ExemplarStore() = default;
  ExemplarStore(const ExemplarStore&) = delete;
  ExemplarStore& operator=(const ExemplarStore&) = delete;

  ExemplarSeries& series(const std::string& histogram_name);
  [[nodiscard]] const ExemplarSeries* find(
      const std::string& histogram_name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ExemplarSeries> series_;
};

}  // namespace dvfs::obs::reqtrace
