/// \file drift.h
/// \brief Online predicted-vs-measured drift tracking for the rt executor.
///
/// Every executed task span yields a (SpanPrediction, SpanMeasurement)
/// pair; the tracker folds them into aggregate measured/predicted ratios
/// per dimension — cycles, duration, energy — and publishes them through
/// the ordinary metrics registry so the Prometheus endpoint and `.dfr`
/// epilogue pick them up for free:
///
///   gauges      rt.drift.cycles_ratio / duration_ratio / energy_ratio
///               (aggregate sum(measured)/sum(predicted); 0 until the
///               first *measured* sample — model-charged fallback values
///               never masquerade as drift-free measurements)
///   histograms  rt.drift.{cycles,duration,energy}_ratio_ppm
///               (per-span ratio * 1e6, log2-bucketed)
///               rt.hw.cpi_milli (realized CPI * 1000, when the counter
///               source reports instructions)
///   counters    rt.hw.spans_measured / rt.hw.spans_model
///
/// A dimension only contributes when its `Source` satisfies
/// `is_measured()`; spans whose every dimension fell back to the model
/// count under `rt.hw.spans_model` and move no ratio. With the fake
/// provider replaying predictions verbatim, every ratio is exactly 1.0 —
/// the property `dvfs_inspect drift` and the ctest gate rely on.
#pragma once

#include <cstdint>
#include <mutex>

#include "dvfs/obs/hw_telemetry.h"
#include "dvfs/obs/metrics.h"

namespace dvfs::obs::hw {

/// Aggregate drift state, returned by DriftTracker::summary() and carried
/// on rt::RtResult. Ratios are 0 when that dimension never measured.
struct DriftSummary {
  double cycles_ratio = 0.0;
  double duration_ratio = 0.0;
  double energy_ratio = 0.0;
  std::uint64_t spans_measured = 0;
  std::uint64_t spans_model = 0;
};

/// Thread-safe accumulator. Construct once per run (metric references are
/// resolved up front), then call observe() from any worker thread.
class DriftTracker {
 public:
  explicit DriftTracker(Registry& registry);

  /// Folds one completed span in and refreshes the published gauges.
  void observe(const SpanPrediction& predicted,
               const SpanMeasurement& measured);

  [[nodiscard]] DriftSummary summary() const;

 private:
  struct Dim {
    double predicted_sum = 0.0;
    double measured_sum = 0.0;
    [[nodiscard]] double ratio() const {
      return predicted_sum > 0.0 ? measured_sum / predicted_sum : 0.0;
    }
  };

  mutable std::mutex mu_;
  Dim cycles_, duration_, energy_;
  std::uint64_t spans_measured_ = 0;
  std::uint64_t spans_model_ = 0;

  Gauge& cycles_gauge_;
  Gauge& duration_gauge_;
  Gauge& energy_gauge_;
  Histogram& cycles_ppm_;
  Histogram& duration_ppm_;
  Histogram& energy_ppm_;
  Histogram& cpi_milli_;
  Counter& measured_counter_;
  Counter& model_counter_;
};

}  // namespace dvfs::obs::hw
