/// \file timeseries.h
/// \brief Fixed-memory in-process time-series retention for the metrics
///        registry, the substrate the SLO engine evaluates over.
///
/// The metrics registry answers "what is the value now"; burn-rate
/// alerting needs "how did it move over the last N seconds". A
/// `TimeSeriesStore` closes that gap without growing a database: every
/// tracked metric gets a `SeriesRing` — a fixed-capacity ring of
/// (timestamp, value) samples — and `sample()` appends one point per
/// metric from a registry snapshot. Memory is bounded by construction:
/// `num_series * capacity * sizeof(Sample)`, independent of run length;
/// when a ring fills, the oldest sample is overwritten.
///
/// Windowed queries (`window_stats`, `delta`, `rate`,
/// `quantile_over_window`) operate on the samples with
/// `t >= now - window_s`. They return NaN when the window holds too few
/// samples to answer — "no data" must stay distinguishable from 0, or an
/// alert on a rate would fire (or stay silent) on an empty window.
///
/// Threading: a store is owned by one sampling thread (the health
/// monitor's). The *registry* snapshots it reads are themselves
/// thread-safe; the store adds no locking of its own.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dvfs/obs/metrics.h"

namespace dvfs::obs {

/// Fixed-capacity ring of (timestamp, value) samples with monotone
/// timestamps (enforced) and windowed aggregation.
class SeriesRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit SeriesRing(std::size_t capacity = kDefaultCapacity);

  struct Sample {
    double t = 0.0;
    double v = 0.0;
  };

  /// Appends a sample; `t` must be >= the previous sample's time. On a
  /// full ring the oldest sample is evicted.
  void push(double t, double v);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  /// i = 0 is the oldest retained sample.
  [[nodiscard]] Sample at(std::size_t i) const;
  [[nodiscard]] Sample back() const;

  /// The samples with t >= now - window_s, oldest first.
  [[nodiscard]] std::vector<Sample> window(double now,
                                           double window_s) const;

  struct WindowStats {
    std::size_t count = 0;
    /// All NaN when count == 0.
    double min = 0.0, max = 0.0, mean = 0.0;
    double first = 0.0, last = 0.0;
    double first_t = 0.0, last_t = 0.0;
  };
  [[nodiscard]] WindowStats window_stats(double now, double window_s) const;

  /// last - first over the window; NaN with fewer than two samples.
  [[nodiscard]] double delta(double now, double window_s) const;
  /// delta / elapsed seconds between the first and last window samples;
  /// NaN with fewer than two samples or zero elapsed time.
  [[nodiscard]] double rate(double now, double window_s) const;
  /// Nearest-rank quantile (q in [0, 1]) of the window's sample values;
  /// NaN on an empty window.
  [[nodiscard]] double quantile_over_window(double now, double window_s,
                                            double q) const;

 private:
  /// Count of leading (oldest) samples strictly before `cutoff`.
  [[nodiscard]] std::size_t skip_before(double cutoff) const;

  std::vector<Sample> slots_;
  std::size_t head_ = 0;  // index of the oldest sample
  std::size_t size_ = 0;
};

/// Nearest-rank quantile of a registry histogram snapshot, mirroring
/// `Histogram::percentile_upper_bound` (inclusive upper bound of the
/// log2 bucket holding the rank-`ceil(p*n)` sample). NaN when empty —
/// the windowed consumers need "no data" to stay out of comparisons.
[[nodiscard]] double snapshot_percentile(
    const Registry::HistogramSnapshot& snapshot, double p);

/// Retains one `SeriesRing` per metric of a registry. `sample()` pushes
/// the current value of every counter and gauge, plus one derived series
/// per tracked histogram quantile (`track_quantile`).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(
      std::size_t capacity_per_series = SeriesRing::kDefaultCapacity);

  /// Key of the derived series for `histogram`'s q-quantile.
  [[nodiscard]] static std::string quantile_key(const std::string& histogram,
                                                double q);

  /// Registers a histogram quantile to derive on every `sample()` call.
  /// Idempotent.
  void track_quantile(const std::string& histogram, double q);

  /// Appends one sample at time `now` for every counter, gauge, and
  /// tracked histogram quantile in `registry`.
  void sample(const Registry& registry, double now);

  /// nullptr when the key has never been sampled.
  [[nodiscard]] const SeriesRing* find(const std::string& key) const;
  /// Get-or-create, for tests and manual feeds.
  [[nodiscard]] SeriesRing& series(const std::string& key);

  [[nodiscard]] std::size_t num_series() const { return series_.size(); }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::size_t capacity_;
  std::uint64_t samples_ = 0;
  std::vector<std::pair<std::string, double>> tracked_;
  std::map<std::string, SeriesRing> series_;
};

}  // namespace dvfs::obs
