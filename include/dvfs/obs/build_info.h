/// \file build_info.h
/// \brief The standard `build_info` gauge: a constant-1 metric whose
///        labels carry the build's identity (version, compiler, build
///        type), following the Prometheus convention for exposing version
///        information as labels rather than values.
#pragma once

#include <string>

namespace dvfs::obs {

class Registry;

/// The fully labeled registry name, e.g.
/// `build_info{version="1.0.0",compiler="GNU 13.2.0",build_type="Release"}`.
/// Label values are escaped for Prometheus text exposition.
[[nodiscard]] const std::string& build_info_metric_name();

/// Registers the gauge in `registry` and sets it to 1. Idempotent.
void register_build_info(Registry& registry);

}  // namespace dvfs::obs
