/// \file promtext.h
/// \brief Prometheus text exposition (format 0.0.4) for the metrics
///        registry, plus a dependency-free HTTP scrape endpoint.
///
/// `prometheus_text()` renders every registered metric:
///
///   * counters  → `dvfs_<name>_total` (monotone, `# TYPE ... counter`);
///   * gauges    → `dvfs_<name>`;
///   * histograms→ `dvfs_<name>_bucket{le="..."}` with cumulative counts
///     over the registry's log2 buckets (le = inclusive bucket upper
///     bound, closing with `le="+Inf"`), plus `_sum` and `_count`.
///
/// Registry names are dotted (`sim.tasks.started`); exposition names
/// replace every non-alphanumeric byte with `_` and prepend the `dvfs_`
/// namespace, so `sim.tasks.started` scrapes as
/// `dvfs_sim_tasks_started_total`.
///
/// A registry name may carry a literal label block —
/// `build_info{version="1.0.0"}` — built with `prometheus_labels()`
/// (which escapes the values). Only the part before `{` is mangled; for
/// counters the `_total` suffix is inserted before the label block, as
/// the exposition format requires.
///
/// `MetricsHttpServer` is the transport: a blocking accept loop on a
/// background thread speaking just enough HTTP/1.1 for `curl` and a
/// Prometheus scraper — GET against a registered route returns that
/// handler's response (`/metrics` and `/` serve the supplied body
/// callback as `text/plain; version=0.0.4`), anything else 404. Every
/// response carries Content-Type and an exact Content-Length, and a
/// request whose `Accept` header rules out the handler's media type gets
/// 406. POSIX sockets only; no third-party dependency, in keeping with
/// the repo rule that observability must not add libraries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <utility>

namespace dvfs::obs {

class Registry;

/// Renders `registry` in Prometheus text exposition format 0.0.4.
[[nodiscard]] std::string prometheus_text(const Registry& registry);

/// `sim.tasks.started` → `dvfs_sim_tasks_started` (no kind suffix).
/// A `{...}` label block, if present, passes through unmangled.
[[nodiscard]] std::string prometheus_name(const std::string& registry_name);

/// Renders `{k="v",...}` with label *values* escaped per the exposition
/// format (backslash, double quote, newline). Keys must already be valid
/// label names. Empty list renders as "".
[[nodiscard]] std::string prometheus_labels(
    std::initializer_list<std::pair<std::string, std::string>> labels);

/// Minimal scrape endpoint. Construct, `start()`, `stop()` (also runs on
/// destruction). Handlers run on the server thread per request — keep
/// them pure snapshot renders.
class MetricsHttpServer {
 public:
  struct Options {
    std::string host = "0.0.0.0";
    /// 0 binds an ephemeral port; read the real one from `port()` after
    /// `start()` (tests use this to avoid collisions).
    std::uint16_t port = 9464;
  };
  using BodyFn = std::function<std::string()>;

  /// What one route answers. The server adds Content-Length (always,
  /// from body.size()) and Connection: close.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  /// Registers `body` under `/metrics` and `/`, served as
  /// `text/plain; version=0.0.4; charset=utf-8`.
  MetricsHttpServer(Options options, BodyFn body);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Registers (or replaces) a GET route under an exact path, e.g.
  /// `/healthz`. Call before `start()`; routes are not guarded against
  /// the serving thread.
  void add_route(const std::string& path, Handler handler);

  /// True when an `Accept` request header admits `mime` (a bare media
  /// type like "text/plain"): exact match, `type/*`, or `*/*`, ignoring
  /// parameters such as q-values (a match with `q=0` still counts — this
  /// is deliberately the minimal useful subset of RFC 9110 content
  /// negotiation). An empty header admits everything.
  [[nodiscard]] static bool accept_allows(const std::string& accept_header,
                                          const std::string& mime);

  /// Binds, listens, and spawns the accept thread. Throws
  /// dvfs::PreconditionError when the address cannot be bound.
  void start();

  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// The bound port (resolves ephemeral binds). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

 private:
  void serve_loop();
  void handle_client(int client);

  Options options_;
  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Parses a `--listen` flag: ":9464", "9464", or "host:9464". Port 0 is
/// allowed (ephemeral). Throws dvfs::PreconditionError on garbage.
[[nodiscard]] MetricsHttpServer::Options parse_listen(const std::string& spec);

}  // namespace dvfs::obs
