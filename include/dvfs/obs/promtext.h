/// \file promtext.h
/// \brief Prometheus text exposition (format 0.0.4) for the metrics
///        registry, plus a dependency-free HTTP scrape endpoint.
///
/// `prometheus_text()` renders every registered metric:
///
///   * counters  → `dvfs_<name>_total` (monotone, `# TYPE ... counter`);
///   * gauges    → `dvfs_<name>`;
///   * histograms→ `dvfs_<name>_bucket{le="..."}` with cumulative counts
///     over the registry's log2 buckets (le = inclusive bucket upper
///     bound, closing with `le="+Inf"`), plus `_sum` and `_count`.
///
/// Registry names are dotted (`sim.tasks.started`); exposition names
/// replace every non-alphanumeric byte with `_` and prepend the `dvfs_`
/// namespace, so `sim.tasks.started` scrapes as
/// `dvfs_sim_tasks_started_total`.
///
/// A registry name may carry a literal label block —
/// `build_info{version="1.0.0"}` — built with `prometheus_labels()`
/// (which escapes the values). Only the part before `{` is mangled; for
/// counters the `_total` suffix is inserted before the label block, as
/// the exposition format requires.
///
/// `MetricsHttpServer` is the transport: a blocking accept loop on a
/// background thread speaking just enough HTTP/1.1 for `curl` and a
/// Prometheus scraper — GET `/metrics` returns the body the supplied
/// callback produces, anything else 404. POSIX sockets only; no
/// third-party dependency, in keeping with the repo rule that
/// observability must not add libraries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <thread>
#include <utility>

namespace dvfs::obs {

class Registry;

/// Renders `registry` in Prometheus text exposition format 0.0.4.
[[nodiscard]] std::string prometheus_text(const Registry& registry);

/// `sim.tasks.started` → `dvfs_sim_tasks_started` (no kind suffix).
/// A `{...}` label block, if present, passes through unmangled.
[[nodiscard]] std::string prometheus_name(const std::string& registry_name);

/// Renders `{k="v",...}` with label *values* escaped per the exposition
/// format (backslash, double quote, newline). Keys must already be valid
/// label names. Empty list renders as "".
[[nodiscard]] std::string prometheus_labels(
    std::initializer_list<std::pair<std::string, std::string>> labels);

/// Minimal scrape endpoint. Construct, `start()`, `stop()` (also runs on
/// destruction). The body callback runs on the server thread per request
/// — keep it a pure snapshot render.
class MetricsHttpServer {
 public:
  struct Options {
    std::string host = "0.0.0.0";
    /// 0 binds an ephemeral port; read the real one from `port()` after
    /// `start()` (tests use this to avoid collisions).
    std::uint16_t port = 9464;
  };
  using BodyFn = std::function<std::string()>;

  MetricsHttpServer(Options options, BodyFn body);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Throws
  /// dvfs::PreconditionError when the address cannot be bound.
  void start();

  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// The bound port (resolves ephemeral binds). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

 private:
  void serve_loop();

  Options options_;
  BodyFn body_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Parses a `--listen` flag: ":9464", "9464", or "host:9464". Port 0 is
/// allowed (ephemeral). Throws dvfs::PreconditionError on garbage.
[[nodiscard]] MetricsHttpServer::Options parse_listen(const std::string& spec);

}  // namespace dvfs::obs
