/// \file promtext.h
/// \brief Prometheus text exposition (format 0.0.4) for the metrics
///        registry, plus a dependency-free HTTP scrape endpoint.
///
/// `prometheus_text()` renders every registered metric:
///
///   * counters  → `dvfs_<name>_total` (monotone, `# TYPE ... counter`);
///   * gauges    → `dvfs_<name>`;
///   * histograms→ `dvfs_<name>_bucket{le="..."}` with cumulative counts
///     over the registry's log2 buckets (le = inclusive bucket upper
///     bound, closing with `le="+Inf"`), plus `_sum` and `_count`.
///
/// Registry names are dotted (`sim.tasks.started`); exposition names
/// replace every non-alphanumeric byte with `_` and prepend the `dvfs_`
/// namespace, so `sim.tasks.started` scrapes as
/// `dvfs_sim_tasks_started_total`.
///
/// A registry name may carry a literal label block —
/// `build_info{version="1.0.0"}` — built with `prometheus_labels()`
/// (which escapes the values). Only the part before `{` is mangled; for
/// counters the `_total` suffix is inserted before the label block, as
/// the exposition format requires.
///
/// `MetricsHttpServer` is the transport: a blocking accept loop on a
/// background thread speaking just enough HTTP/1.1 for `curl` and a
/// Prometheus scraper — a request against a registered route returns
/// that handler's response (`/metrics` and `/` serve the supplied body
/// callback as `text/plain; version=0.0.4`), anything else 404. Routes
/// are method-aware (a known path hit with the wrong verb gets 405) and
/// may be registered as exact paths or as prefixes (`/schedule/` matches
/// `/schedule/42`; the longest prefix wins). The reader loops on
/// `recv()` until the blank line ends the headers and Content-Length
/// bytes of body have arrived — a POST split across arbitrarily many TCP
/// segments (or fed byte-at-a-time) parses identically to a single-read
/// request; oversized headers answer 400, an oversized body 413, and a
/// handler that throws 500. Every response carries Content-Type and an
/// exact Content-Length, and a request whose `Accept` header rules out
/// the handler's media type gets 406. POSIX sockets only; no third-party
/// dependency, in keeping with the repo rule that observability must not
/// add libraries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

namespace dvfs::obs {

class Registry;

namespace reqtrace {
class ExemplarStore;
}  // namespace reqtrace

/// Renders `registry` in Prometheus text exposition format 0.0.4.
[[nodiscard]] std::string prometheus_text(const Registry& registry);

/// Same, with OpenMetrics-style exemplars: a histogram bucket line whose
/// family has a matching series in `exemplars` (same registry name) and
/// a recorded sample for that bucket gets
/// `... # {trace_id="<16 hex>"} <value> <t_s>` appended — the trace id
/// of a recent bucket-crossing task, so an aggregate percentile links to
/// one concrete trace. `exemplars == nullptr` renders identically to the
/// plain overload.
[[nodiscard]] std::string prometheus_text(
    const Registry& registry, const reqtrace::ExemplarStore* exemplars);

/// `sim.tasks.started` → `dvfs_sim_tasks_started` (no kind suffix).
/// A `{...}` label block, if present, passes through unmangled.
[[nodiscard]] std::string prometheus_name(const std::string& registry_name);

/// Renders `{k="v",...}` with label *values* escaped per the exposition
/// format (backslash, double quote, newline). Keys must already be valid
/// label names. Empty list renders as "".
[[nodiscard]] std::string prometheus_labels(
    std::initializer_list<std::pair<std::string, std::string>> labels);

/// Minimal scrape endpoint. Construct, `start()`, `stop()` (also runs on
/// destruction). Handlers run on the server thread per request — keep
/// them pure snapshot renders.
class MetricsHttpServer {
 public:
  struct Options {
    std::string host = "0.0.0.0";
    /// 0 binds an ephemeral port; read the real one from `port()` after
    /// `start()` (tests use this to avoid collisions).
    std::uint16_t port = 9464;
  };
  using BodyFn = std::function<std::string()>;

  /// What one route answers. The server adds Content-Length (always,
  /// from body.size()) and Connection: close.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  /// A fully parsed request, as handed to a RequestHandler. `path` is
  /// the request target with any `?query` stripped (so routes match
  /// `/debug/pprof/profile?seconds=5`); `body` is the complete
  /// Content-Length-delimited payload.
  struct Request {
    std::string method;
    std::string path;
    std::string query;  ///< raw query string, '?' stripped ("" if absent)
    std::string body;
    std::string accept;  ///< raw Accept header ("" when absent)
    /// `query` split on '&', keys/values percent-decoded with '+' → space,
    /// in request order. Duplicate keys are kept; bad escapes pass
    /// through literally (lenient — a scrape must not 400 over stray %).
    std::vector<std::pair<std::string, std::string>> params;

    /// First value of `name` in `params`; nullptr when absent.
    [[nodiscard]] const std::string* param(const std::string& name) const {
      for (const auto& [k, v] : params) {
        if (k == name) return &v;
      }
      return nullptr;
    }
  };
  using RequestHandler = std::function<Response(const Request&)>;

  /// Header-section and body size caps. A request whose headers exceed
  /// the former answers 400; a Content-Length beyond the latter 413.
  static constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

  /// Registers `body` under `/metrics` and `/`, served as
  /// `text/plain; version=0.0.4; charset=utf-8`.
  MetricsHttpServer(Options options, BodyFn body);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Registers (or replaces) a GET route under an exact path, e.g.
  /// `/healthz`. Call before `start()`; routes are not guarded against
  /// the serving thread.
  void add_route(const std::string& path, Handler handler);

  /// Method-aware exact route: `add_route("POST", "/submit", ...)`.
  /// A request that matches the path but not the method answers 405.
  void add_route(const std::string& method, const std::string& path,
                 RequestHandler handler);

  /// Method-aware prefix route: `add_prefix_route("GET", "/schedule/",
  /// ...)` matches every path starting with the prefix (longest
  /// registered prefix wins; exact routes always win over prefixes).
  void add_prefix_route(const std::string& method, const std::string& prefix,
                        RequestHandler handler);

  /// True when an `Accept` request header admits `mime` (a bare media
  /// type like "text/plain"): exact match, `type/*`, or `*/*`, ignoring
  /// parameters such as q-values (a match with `q=0` still counts — this
  /// is deliberately the minimal useful subset of RFC 9110 content
  /// negotiation). An empty header admits everything.
  [[nodiscard]] static bool accept_allows(const std::string& accept_header,
                                          const std::string& mime);

  /// Binds, listens, and spawns the accept thread. Throws
  /// dvfs::PreconditionError when the address cannot be bound.
  void start();

  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// The bound port (resolves ephemeral binds). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

 private:
  void serve_loop();
  void handle_client(int client);
  /// Reads one request off the socket, tolerating arbitrary read
  /// fragmentation. Returns false when the connection died or the
  /// request was malformed beyond answering (`error` carries a ready
  /// response for recoverable protocol errors: 400 / 413).
  bool read_request(int client, Request& out, Response& error);
  [[nodiscard]] Response dispatch(const Request& req) const;

  Options options_;
  /// path → method → handler (exact matches).
  std::map<std::string, std::map<std::string, RequestHandler>> routes_;
  /// (method, prefix, handler); longest matching prefix wins.
  std::vector<std::tuple<std::string, std::string, RequestHandler>>
      prefix_routes_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Parses a `--listen` flag: ":9464", "9464", or "host:9464". Port 0 is
/// allowed (ephemeral). Throws dvfs::PreconditionError on garbage.
[[nodiscard]] MetricsHttpServer::Options parse_listen(const std::string& spec);

}  // namespace dvfs::obs
