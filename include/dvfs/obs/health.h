/// \file health.h
/// \brief SLO engine and burn-rate alerting over the metrics registry.
///
/// Three layers, each usable alone:
///
///  1. **Rules** — a declarative description of one health objective: a
///     signal (how to read a value out of the time-series store), a
///     comparison against a threshold, and multi-window burn-rate
///     semantics. The condition *breaches* only when the signal exceeds
///     the threshold over BOTH the short and the long window — the
///     standard SRE construction: the short window reacts quickly, the
///     long window keeps one noisy sample from paging anyone.
///  2. **SloEngine** — evaluates rules against a `TimeSeriesStore` and
///     advances a per-rule alert state machine:
///
///         ok → pending → firing → resolved → ok
///
///     `pending` holds until the breach has persisted `for_s` seconds;
///     `firing` holds until `keep_firing_s` seconds have passed without a
///     breach (hysteresis: flapping input must not flap the alert);
///     `resolved` is the one-tick transition back to `ok`. The state
///     machine is deterministic in its inputs (t, short value, long
///     value), which is what lets `dvfs_inspect health` replay a
///     recording through the *same* engine offline.
///  3. **HealthMonitor** — the live wiring: a background thread samples
///     the registry into a store every `period_s`, evaluates the engine,
///     publishes per-alert state gauges (`alert.state{alert="..."}`,
///     scraping as `dvfs_alert_state`), and records one `kHealthSample`
///     event per rule per tick (plus a `kAlert` event per transition)
///     into a flight-recorder channel.
///
/// Rule configs load from JSON (`schema: dvfs-health-v1`); with no config
/// the built-in rules cover the scheduler's four health axes: governor
/// cost overhead, queue-wait p99, recorder drop rate, and hw-drift ratio
/// deviation.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dvfs/obs/json.h"
#include "dvfs/obs/timeseries.h"

namespace dvfs::obs {
class RecorderChannel;
}  // namespace dvfs::obs

namespace dvfs::obs::health {

/// How a rule reads its value from the store at evaluation time `t` for
/// a window of `w` seconds.
enum class SignalKind : std::uint8_t {
  /// Windowed aggregation (Signal::agg) of a gauge's samples.
  kGauge = 0,
  /// Per-second increase of a counter over the window.
  kCounterRate = 1,
  /// delta(metric) / delta(sum of denominators) over the window.
  kCounterRatio = 2,
  /// last(metric) / last(sum of denominators) — cumulative since start,
  /// so a burst stays visible after the window slides past it (the drop-
  /// rate rule wants exactly that latching behavior).
  kCounterRatioTotal = 3,
  /// Windowed aggregation of a histogram quantile sampled each tick.
  kHistogramQuantile = 4,
};

/// Aggregation of a window's samples (kGauge / kHistogramQuantile).
enum class Agg : std::uint8_t {
  kLast = 0,
  kMean = 1,
  kMax = 2,
  kMin = 3,
  kQuantile = 4,  ///< Signal::agg_quantile over the window
};

enum class Op : std::uint8_t { kGreater = 0, kLess = 1 };

enum class AlertState : std::uint8_t {
  kOk = 0,
  kPending = 1,
  kFiring = 2,
  kResolved = 3,  ///< one-tick transition state; decays to kOk
};

[[nodiscard]] const char* to_string(SignalKind k);
[[nodiscard]] const char* to_string(Agg a);
[[nodiscard]] const char* to_string(Op o);
[[nodiscard]] const char* to_string(AlertState s);

struct Signal {
  SignalKind kind = SignalKind::kGauge;
  /// Registry metric name (gauge, counter, or histogram per `kind`).
  std::string metric;
  /// Ratio kinds: the denominator is the sum of these counters.
  std::vector<std::string> denominator;
  /// kHistogramQuantile: which quantile series to derive.
  double quantile = 0.99;
  Agg agg = Agg::kLast;
  double agg_quantile = 0.5;
  /// When finite, the compared value is |aggregate - center| (deviation
  /// alerts, e.g. a drift *ratio* centered on 1.0).
  double center = 0.0;
  bool has_center = false;
  /// Drop samples whose value is exactly 0 before aggregating — for
  /// gauges where 0 means "not measured yet" (the drift ratios).
  bool ignore_zero = false;
};

struct Rule {
  std::string name;
  std::string summary;
  Signal signal;
  Op op = Op::kGreater;
  double threshold = 0.0;
  double short_window_s = 1.0;
  double long_window_s = 5.0;
  /// Breach must persist this long before pending becomes firing.
  double for_s = 0.0;
  /// Firing persists until this long has passed without a breach.
  double keep_firing_s = 0.0;
  std::string severity = "page";
};

/// FNV-1a of the rule name; stored in each health event so offline
/// replay can detect a mismatched rule config.
[[nodiscard]] std::uint64_t rule_hash(const std::string& name);

/// The five built-in health axes (six rules: both drift dimensions).
[[nodiscard]] std::vector<Rule> builtin_rules();

/// Parses a `dvfs-health-v1` config document. Throws PreconditionError
/// on schema violations (unknown kind/agg/op, non-positive windows, ...).
[[nodiscard]] std::vector<Rule> rules_from_json(const Json& doc);

/// Inverse of rules_from_json (docs and round-trip tests).
[[nodiscard]] Json rules_to_json(const std::vector<Rule>& rules);

/// "" or "builtin" yields builtin_rules(); anything else reads the path.
[[nodiscard]] std::vector<Rule> load_rules(const std::string& path_or_empty);

class SloEngine {
 public:
  explicit SloEngine(std::vector<Rule> rules);

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  /// Registers the histogram quantiles the rules need on `store`.
  void prepare(TimeSeriesStore& store) const;

  struct Evaluation {
    std::size_t rule = 0;
    double t = 0.0;
    /// NaN when the signal had no data in that window.
    double short_value = 0.0;
    double long_value = 0.0;
    AlertState before = AlertState::kOk;
    AlertState after = AlertState::kOk;
    [[nodiscard]] bool transition() const { return before != after; }
  };

  /// Evaluates every rule against the store at time `t` (one tick).
  std::vector<Evaluation> evaluate(const TimeSeriesStore& store, double t);

  /// Advances one rule's state machine from externally supplied window
  /// values — the exact function `evaluate` uses, exposed so a recording
  /// of (t, short, long) tuples replays deterministically offline.
  Evaluation step(std::size_t rule_index, double t, double short_value,
                  double long_value);

  [[nodiscard]] AlertState state(std::size_t rule_index) const;
  [[nodiscard]] std::size_t firing_count() const;

  /// Writes `alert.state{alert="<name>"}` gauges (0=ok, 1=pending,
  /// 2=firing; resolved publishes as 0) plus `health.firing` into
  /// `registry`.
  void publish(Registry& registry) const;

  /// Machine-readable status (the `/healthz` body): schema
  /// dvfs-healthz-v1. NaN window values serialize as null.
  [[nodiscard]] Json status_json(double t) const;

 private:
  struct RuleState {
    AlertState state = AlertState::kOk;
    bool breaching = false;    ///< was a breach active last tick
    double breach_since = 0.0;
    double last_breach_t = 0.0;
    bool ever_breached = false;
    double short_value = 0.0;  ///< last evaluated (NaN = no data)
    double long_value = 0.0;
  };

  [[nodiscard]] double signal_value(const Signal& signal,
                                    const TimeSeriesStore& store, double t,
                                    double window_s) const;

  std::vector<Rule> rules_;
  std::vector<RuleState> states_;
};

/// Background sampler + evaluator. Construct, optionally `set_channel`,
/// `start()`; `settle()` then `stop()` before reading final state.
class HealthMonitor {
 public:
  struct Options {
    /// Sampling/evaluation period (wall-clock seconds).
    double period_s = 0.5;
    std::size_t series_capacity = SeriesRing::kDefaultCapacity;
  };

  HealthMonitor(Registry& registry, std::vector<Rule> rules);
  HealthMonitor(Registry& registry, std::vector<Rule> rules, Options options);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Flight-recorder destination for kHealthSample/kAlert events. Give
  /// the monitor its *own* channel: health events must survive the main
  /// ring overflowing (that overflow is one of the alerts).
  void set_channel(RecorderChannel* channel) { channel_ = channel; }

  void start();
  /// Joins the thread after one final tick, so the published gauges and
  /// any recorded events reflect the end state. Idempotent.
  void stop();
  /// Synchronous extra ticks (at period_s cadence) until no rule is
  /// pending, bounded by the largest for_s plus two periods. Lets a
  /// short run's alerts reach their terminal state before `stop()`.
  void settle();
  /// One synchronous sample + evaluate tick (usable without start()).
  void tick();

  [[nodiscard]] std::size_t firing_count() const {
    return firing_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool healthy() const { return firing_count() == 0; }
  [[nodiscard]] std::uint64_t ticks() const {
    return tick_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<Rule>& rules() const;
  [[nodiscard]] std::vector<AlertState> states() const;
  [[nodiscard]] Json status_json() const;

 private:
  void tick_locked(double t);
  [[nodiscard]] double now_s() const;

  Registry& registry_;
  Options options_;
  SloEngine engine_;
  TimeSeriesStore store_;
  RecorderChannel* channel_ = nullptr;

  std::atomic<std::size_t> firing_{0};
  std::atomic<std::uint64_t> tick_count_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace dvfs::obs::health
