/// \file prof.h
/// \brief Always-on sampling CPU profiler with scheduler-stage
///        attribution and dependency-free pprof export.
///
/// The metrics/tracing layers say *that* a stage regressed; the profiler
/// says *where the CPU went* inside it (Eq. 27 scan vs. range-tree ops
/// vs. ring churn vs. HTTP parsing). Design:
///
///  * **Sampling.** Each profiled thread owns a per-thread POSIX timer
///    (`timer_create` on the thread's CPU clock, `SIGEV_THREAD_ID`
///    delivery) firing SIGPROF at a configurable rate (default 100 Hz).
///    CPU-clock timers only advance while the thread burns CPU, so idle
///    threads cost nothing and samples *are* CPU time.
///
///  * **Signal safety.** The SIGPROF handler does nothing but walk frame
///    pointers from the interrupted context (bounds-checked against the
///    thread's stack, captured at registration) and push one fixed-size
///    `Sample` into that thread's lock-free SPSC ring — the recorder-ring
///    idiom: release-store publish, tail-drop on full with an exact
///    relaxed drop counter. No allocation, no locks, no registry lookups
///    (the handler may interrupt a thread mid-`record()` on a shared
///    channel, which is exactly why it gets its own rings). A collector
///    thread drains the rings every few milliseconds.
///
///  * **Attribution.** Thread-local stage/shard markers — plain TLS
///    stores, set by the scheduler at drain/placement/steal/exec
///    boundaries — ride inside every sample, so profiles break down by
///    pipeline stage and join against PR 8 trace timelines.
///
///  * **Surfacing.** Samples persist as `.dfr` v5 `kProfSample` event
///    runs (plus a "DFRS" symbol epilogue for offline reading), export
///    as gzipped pprof `profile.proto` (hand-rolled varint writer — the
///    observability layer adds no libraries) behind
///    `GET /debug/pprof/profile?seconds=N`, and render as folded stacks
///    / top-N tables via `dvfs_inspect prof`.
///
/// Everything here is Linux-specific (timer_create + SIGEV_THREAD_ID,
/// /proc/self/maps), like the rest of the serving stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dvfs/obs/recorder_format.h"

namespace dvfs::obs {

class MetricsHttpServer;
class RecorderChannel;
class Registry;
class Counter;

namespace prof {

/// Which part of the scheduling pipeline the thread was executing when
/// the sample timer fired. Coarser than the reqtrace::Stage *event*
/// points on purpose: these are durations a thread lives inside, not
/// instants a task passes through. Values are recorded in `.dfr` files
/// (Event::aux of kProfSample): append only, never renumber.
enum class Stage : std::uint8_t {
  kNone = 0,       ///< unmarked (thread never set a stage)
  kIdle = 1,       ///< worker idle loop (backoff/yield)
  kDrain = 2,      ///< popping + routing admission-ring batches
  kPlacement = 3,  ///< LMC placement (Eq. 27 / range-tree work)
  kExec = 4,       ///< (virtual) execution bookkeeping
  kSteal = 5,      ///< serving a work-steal request
  kHttp = 6,       ///< HTTP request handling
};
inline constexpr std::size_t kNumStages = 7;

[[nodiscard]] const char* to_string(Stage s);

/// Shard marker value for "not serving any shard".
inline constexpr std::uint16_t kNoShard = 0xffff;

/// Thread-local attribution markers. Plain TLS bytes so the stores are
/// branch-free and safe to read from the signal handler; cheap enough to
/// leave in the hot path whether or not a profiler is running.
namespace detail {
extern thread_local std::uint8_t tls_stage;
extern thread_local std::uint16_t tls_shard;
}  // namespace detail

inline void set_stage(Stage s) noexcept {
  detail::tls_stage = static_cast<std::uint8_t>(s);
}
[[nodiscard]] inline Stage current_stage() noexcept {
  return static_cast<Stage>(detail::tls_stage);
}
inline void set_shard(std::uint16_t shard) noexcept {
  detail::tls_shard = shard;
}

/// RAII stage marker: restores the previous stage on scope exit, so
/// nested scopes (placement inside a drain batch) attribute correctly.
class ScopedStage {
 public:
  explicit ScopedStage(Stage s) noexcept : prev_(detail::tls_stage) {
    set_stage(s);
  }
  ~ScopedStage() { detail::tls_stage = prev_; }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  std::uint8_t prev_;
};

/// One fixed-size stack sample, exactly what the signal handler writes
/// into its ring slot. Frames are leaf-first; frames[0] is the
/// interrupted PC.
struct Sample {
  static constexpr std::size_t kMaxFrames = 32;
  double t_s = 0.0;  ///< seconds on the profiler's axis (start() = 0)
  std::uint32_t tid = 0;
  std::uint16_t shard = kNoShard;
  std::uint8_t stage = 0;  ///< Stage
  std::uint8_t num_frames = 0;
  std::uint64_t frames[kMaxFrames] = {};
};

/// A decoded sample with a variable-length stack (leaf first).
struct StackSample {
  double t_s = 0.0;
  std::uint32_t tid = 0;
  std::uint16_t shard = kNoShard;
  Stage stage = Stage::kNone;
  std::vector<std::uint64_t> frames;
};

/// Registers the calling thread with the profiler's static thread pool:
/// captures its kernel tid, CPU clock, and stack bounds, and — when a
/// profiler is running — arms its sample timer immediately. Returns an
/// inactive guard when the pool is full or the thread is already
/// registered. The guard unregisters on destruction (the thread's
/// not-yet-collected samples survive until the next collector pass).
class ThreadGuard {
 public:
  ThreadGuard() = default;
  ThreadGuard(ThreadGuard&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  ThreadGuard& operator=(ThreadGuard&& other) noexcept;
  ~ThreadGuard() { release(); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

  [[nodiscard]] bool active() const noexcept { return slot_ != nullptr; }
  void release() noexcept;

 private:
  friend ThreadGuard profile_current_thread();
  explicit ThreadGuard(void* slot) noexcept : slot_(slot) {}
  void* slot_ = nullptr;
};

[[nodiscard]] ThreadGuard profile_current_thread();

/// Pushes a synthetic sample through the calling thread's ring — the
/// exact producer path the signal handler uses, minus the signal. The
/// thread must hold an active ThreadGuard. Returns false when the ring
/// was full (the drop is counted exactly, like a real sample drop).
bool inject_sample(const Sample& s);

/// The sampling profiler. At most one instance may be running at a time
/// (the SIGPROF plumbing is process-global); construct/destroy freely.
class CpuProfiler {
 public:
  struct Options {
    /// Samples per second of *CPU time* per thread.
    int hz = 100;
    /// Retained decoded samples; oldest evicted first (exact counter).
    std::size_t window_capacity = std::size_t{1} << 16;
    /// When set, every collected sample is also appended as a
    /// kProfSample event run (one event per frame). The profiler's
    /// collector is the only producer on this channel.
    RecorderChannel* channel = nullptr;
    /// Metrics sink for obs.prof.*; nullptr = Registry::global().
    Registry* registry = nullptr;
  };

  CpuProfiler();
  explicit CpuProfiler(Options options);
  ~CpuProfiler();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Installs the SIGPROF handler (once, process-wide), arms a timer on
  /// every registered thread, and starts the collector thread. Throws
  /// dvfs::PreconditionError when another profiler is already running.
  void start();

  /// Disarms all timers, runs a final collection pass, and joins the
  /// collector. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] int hz() const noexcept { return options_.hz; }

  /// Seconds on the profiler's time axis (0 at the most recent start()).
  [[nodiscard]] double now_s() const noexcept;

  /// Synchronous collection pass — what the collector thread runs every
  /// few milliseconds. Exposed so tests (and the HTTP handler) can make
  /// "everything sampled so far is visible" a deterministic statement.
  void collect_now();

  /// Retained samples with t_s >= since_s, oldest first.
  [[nodiscard]] std::vector<StackSample> samples_since(double since_s) const;
  [[nodiscard]] std::vector<StackSample> all_samples() const {
    return samples_since(0.0);
  }

  /// Exact accounting: retained + evicted = collected; dropped counts
  /// ring overflows (samples that never reached the collector).
  [[nodiscard]] std::uint64_t collected() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::uint64_t evicted() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Options options_;
};

// ------------------------------------------------------------ encoding

/// Appends one StackSample as a kProfSample event run to `events`
/// (rate_idx = leaf-first frame index; rate_idx == 0 starts a sample).
void append_sample_events(const StackSample& s,
                          std::vector<dfr::Event>& events);

/// Decodes kProfSample event runs back into samples; non-profile events
/// are ignored, so it takes a whole recording's event stream.
[[nodiscard]] std::vector<StackSample> samples_from_events(
    const std::vector<dfr::Event>& events);

/// Sorted unique frame addresses across `samples`.
[[nodiscard]] std::vector<std::uint64_t> unique_addresses(
    const std::vector<StackSample>& samples);

// -------------------------------------------------------- symbolization

/// Address → human-readable name. Injected so offline readers can use
/// the recording's symbol table and tests stay deterministic.
class Symbolizer {
 public:
  virtual ~Symbolizer() = default;
  /// "" when the address cannot be named (renderers fall back to hex).
  [[nodiscard]] virtual std::string symbolize(std::uint64_t addr) const = 0;
};

/// Live-process symbolizer: dladdr for the symbol name (demangled when
/// possible), /proc/self/maps for a module+offset fallback.
class DladdrSymbolizer final : public Symbolizer {
 public:
  DladdrSymbolizer();
  [[nodiscard]] std::string symbolize(std::uint64_t addr) const override;

 private:
  struct Region {
    std::uint64_t start = 0;
    std::uint64_t limit = 0;
    std::string file;
  };
  std::vector<Region> regions_;
};

/// Table symbolizer over a loaded recording's "DFRS" epilogue.
class TableSymbolizer final : public Symbolizer {
 public:
  explicit TableSymbolizer(
      std::vector<std::pair<std::uint64_t, std::string>> table);
  [[nodiscard]] std::string symbolize(std::uint64_t addr) const override;

 private:
  std::vector<std::pair<std::uint64_t, std::string>> table_;
};

/// Builds the "DFRS" table for `Recorder::capture_symbols`: every unique
/// frame address in `samples`, named by `sym`.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
symbol_table(const std::vector<StackSample>& samples, const Symbolizer& sym);

// ------------------------------------------------------------- export

/// One executable mapping, for pprof's Mapping table.
struct MappingInfo {
  std::uint64_t start = 0;
  std::uint64_t limit = 0;
  std::uint64_t offset = 0;
  std::string file;
};

/// Executable (r-xp) regions of the live process.
[[nodiscard]] std::vector<MappingInfo> read_proc_self_maps();

struct PprofOptions {
  int hz = 100;
  /// Wall-clock nanoseconds of the profile start; 0 keeps golden tests
  /// byte-stable.
  std::int64_t time_nanos = 0;
  /// Wrap the serialized profile in a gzip container (pprof
  /// auto-detects; stored-deflate blocks, so still dependency-free).
  bool gzip = true;
  std::vector<MappingInfo> mappings;
};

/// Serializes `samples` as pprof `profile.proto`: sample types
/// samples/count + cpu/nanoseconds (period = 1e9 / hz), locations and
/// functions deduplicated, stage/shard/thread attached as labels.
[[nodiscard]] std::string encode_pprof(const std::vector<StackSample>& samples,
                                       const Symbolizer& sym,
                                       const PprofOptions& options);

/// RFC 1952 container around stored (uncompressed) deflate blocks, with
/// a real CRC32 — every gzip reader accepts it, and it needs no zlib.
[[nodiscard]] std::string gzip_stored(std::string_view raw);

/// Brendan-Gregg folded stacks ("root;caller;leaf count\n" per line),
/// ready for flamegraph.pl / speedscope. Unknown frames render as hex.
[[nodiscard]] std::string folded_stacks(
    const std::vector<StackSample>& samples, const Symbolizer& sym);

// ------------------------------------------------------------- reports

/// Aggregations behind `dvfs_inspect prof`. Shares are exact: the
/// by_stage and by_shard counts each sum to `samples`.
struct Report {
  std::uint64_t samples = 0;
  struct Entry {
    std::string name;
    std::uint64_t self = 0;
    std::uint64_t cum = 0;
  };
  std::vector<Entry> by_function;  ///< sorted by self desc, then cum
  std::vector<std::pair<Stage, std::uint64_t>> by_stage;
  /// shard id (kNoShard = unattributed) → samples.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> by_shard;
};

[[nodiscard]] Report build_report(const std::vector<StackSample>& samples,
                                  const Symbolizer& sym);

// ---------------------------------------------------------------- HTTP

/// Registers `GET /debug/pprof/profile` on `server`: blocks for
/// `?seconds=N` (default 1, clamped to [0, 30]) of wall time, then
/// answers the window's samples as gzipped pprof. 503 when `prof` is
/// not running. The serving thread registers itself for profiling on
/// first request (stage kHttp), so HTTP parsing shows up in profiles.
void register_pprof_route(MetricsHttpServer& server, CpuProfiler& prof);

}  // namespace prof
}  // namespace dvfs::obs
