/// \file args.h
/// \brief Minimal command-line flag parsing for the dvfs tools.
///
/// Supports `--flag value`, `--flag=value` and boolean `--flag`. Strict:
/// unknown flags, missing required flags and malformed values are
/// reported (PreconditionError) rather than ignored — a scheduling tool
/// silently dropping `--rate-cap` would be worse than one that refuses
/// to run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::util {

class Args {
 public:
  /// Parses argv-style input (argv[0] is the program name and skipped).
  /// `known_flags` is the complete set of accepted flag names (without
  /// the leading dashes).
  Args(int argc, const char* const* argv,
       const std::set<std::string>& known_flags);

  /// True if the flag appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& flag) const {
    return values_.contains(flag);
  }

  /// Value accessors; get_* without a default require the flag.
  [[nodiscard]] std::string get_string(const std::string& flag) const;
  [[nodiscard]] std::string get_string(const std::string& flag,
                                       const std::string& fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& flag) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& flag,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& flag) const;
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;

  /// Positional arguments (non-flag tokens), in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dvfs::util
