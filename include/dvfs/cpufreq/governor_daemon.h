/// \file governor_daemon.h
/// \brief In-kernel frequency-governor emulation over a CpufreqBackend.
///
/// The paper's baselines rely on Linux's ondemand governor, and its setup
/// instructions revolve around *disabling* it. This daemon is the thing
/// being disabled: it periodically samples per-CPU load and moves each
/// core's frequency according to the core's current governor —
///
///   ondemand      load > threshold: jump to the highest frequency;
///                 otherwise step down one level (Section V-A3's words),
///   conservative  step up one level above the up-threshold, step down
///                 one below the down-threshold (gradual in both
///                 directions),
///   powersave     hold the lowest frequency,
///   performance   hold the highest frequency,
///   userspace     never touched — the scheduler owns the frequency.
///
/// Driving it against SimulatedCpufreq gives a self-contained testbed;
/// against a fake sysfs tree it exercises the identical file protocol a
/// kernel driver would update.
#pragma once

#include <span>
#include <vector>

#include "dvfs/cpufreq/cpufreq.h"

namespace dvfs::cpufreq {

class GovernorDaemon {
 public:
  struct Config {
    /// ondemand's load threshold (the paper uses 85%).
    double ondemand_threshold = 0.85;
    /// conservative's hysteresis band.
    double conservative_up = 0.80;
    double conservative_down = 0.20;
  };

  /// Does not take ownership; `backend` must outlive the daemon.
  /// (Two overloads rather than a default argument: the nested Config's
  /// member initializers are incomplete inside the enclosing class.)
  explicit GovernorDaemon(CpufreqBackend& backend);
  GovernorDaemon(CpufreqBackend& backend, Config config);

  /// One sampling period: `load_per_cpu[i]` in [0, 1] is CPU i's busy
  /// fraction over the elapsed period. Applies every non-userspace
  /// governor's frequency decision through the backend.
  void tick(std::span<const double> load_per_cpu);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// In-kernel transition: unlike scaling_setspeed, a governor may move
  /// the frequency regardless of the governor file's value.
  void transition(std::size_t cpu, KHz target);

  CpufreqBackend& backend_;
  Config config_;
};

}  // namespace dvfs::cpufreq
