/// \file cpufreq.h
/// \brief Per-core frequency control in the Linux cpufreq style
///        (Section V, "Evaluation" preamble).
///
/// The paper drives per-core DVFS exactly the way a Linux userspace
/// scheduler must: write `userspace` into
/// /sys/devices/system/cpu/cpuX/cpufreq/scaling_governor to disable the
/// kernel's automatic scaling, write the target frequency into
/// scaling_setspeed (restricted to scaling_available_frequencies), and
/// verify it via scaling_cur_freq. This module reproduces that protocol
/// behind an interface with two backends:
///
///  * SysfsCpufreq  — performs real file I/O against a configurable root
///    prefix. Pointed at /sys/devices/system/cpu it controls actual
///    hardware; pointed at a fake tree (see make_fake_sysfs_tree) it is
///    fully unit-testable. The code path is identical either way.
///  * SimulatedCpufreq — an in-memory model for simulator-driven runs.
///
/// Frequencies are kilohertz throughout, matching the sysfs ABI.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/core/rate_set.h"

namespace dvfs::cpufreq {

using KHz = std::uint64_t;

/// kHz <-> the library's GHz rate values.
[[nodiscard]] constexpr KHz ghz_to_khz(Rate ghz) {
  return static_cast<KHz>(ghz * 1e6 + 0.5);
}
[[nodiscard]] constexpr Rate khz_to_ghz(KHz khz) {
  return static_cast<Rate>(khz) / 1e6;
}

/// The governors the paper's evaluation touches.
enum class GovernorKind : std::uint8_t {
  kUserspace,    ///< frequencies pinned by the scheduler (the paper's mode)
  kOndemand,     ///< Linux load-threshold governor (baseline)
  kPowersave,    ///< lowest-frequency governor
  kPerformance,  ///< highest-frequency governor
  kConservative, ///< gradual-step variant of ondemand
};

[[nodiscard]] const char* to_string(GovernorKind g);
[[nodiscard]] GovernorKind governor_from_string(std::string_view name);

/// Abstract per-core frequency control surface.
class CpufreqBackend {
 public:
  virtual ~CpufreqBackend() = default;

  [[nodiscard]] virtual std::size_t num_cpus() const = 0;

  /// scaling_available_frequencies, ascending.
  [[nodiscard]] virtual std::vector<KHz> available_khz(std::size_t cpu) const = 0;

  /// scaling_cur_freq.
  [[nodiscard]] virtual KHz current_khz(std::size_t cpu) const = 0;

  /// scaling_governor (read).
  [[nodiscard]] virtual GovernorKind governor(std::size_t cpu) const = 0;

  /// scaling_governor (write).
  virtual void set_governor(std::size_t cpu, GovernorKind g) = 0;

  /// scaling_setspeed: only honoured under the userspace governor, and the
  /// value must be one of available_khz (both checked, mirroring the
  /// kernel's behaviour).
  virtual void set_speed(std::size_t cpu, KHz khz) = 0;

  /// In-kernel frequency transition (cpufreq driver "target" call): what a
  /// governor like ondemand performs internally. Not gated on the
  /// userspace governor; the frequency must still be in the table. User
  /// code should use set_speed; GovernorDaemon uses this.
  virtual void driver_set_speed(std::size_t cpu, KHz khz) = 0;
};

/// In-memory backend for simulations and tests.
class SimulatedCpufreq final : public CpufreqBackend {
 public:
  SimulatedCpufreq(std::size_t num_cpus, std::vector<KHz> available);

  /// Convenience: derive the frequency table from a RateSet (GHz -> kHz).
  SimulatedCpufreq(std::size_t num_cpus, const core::RateSet& rates);

  [[nodiscard]] std::size_t num_cpus() const override { return cpus_.size(); }
  [[nodiscard]] std::vector<KHz> available_khz(std::size_t cpu) const override;
  [[nodiscard]] KHz current_khz(std::size_t cpu) const override;
  [[nodiscard]] GovernorKind governor(std::size_t cpu) const override;
  void set_governor(std::size_t cpu, GovernorKind g) override;
  void set_speed(std::size_t cpu, KHz khz) override;
  void driver_set_speed(std::size_t cpu, KHz khz) override;

 private:
  struct CpuState {
    GovernorKind governor = GovernorKind::kOndemand;
    KHz current = 0;
  };
  void check_cpu(std::size_t cpu) const;

  std::vector<KHz> available_;
  std::vector<CpuState> cpus_;
};

/// File-backed backend speaking the sysfs cpufreq ABI under `root`
/// (default: the real /sys/devices/system/cpu).
class SysfsCpufreq final : public CpufreqBackend {
 public:
  explicit SysfsCpufreq(std::string root = "/sys/devices/system/cpu");

  [[nodiscard]] std::size_t num_cpus() const override { return num_cpus_; }
  [[nodiscard]] std::vector<KHz> available_khz(std::size_t cpu) const override;
  [[nodiscard]] KHz current_khz(std::size_t cpu) const override;
  [[nodiscard]] GovernorKind governor(std::size_t cpu) const override;
  void set_governor(std::size_t cpu, GovernorKind g) override;
  void set_speed(std::size_t cpu, KHz khz) override;
  void driver_set_speed(std::size_t cpu, KHz khz) override;

  [[nodiscard]] const std::string& root() const { return root_; }

 private:
  [[nodiscard]] std::string cpufreq_dir(std::size_t cpu) const;

  std::string root_;
  std::size_t num_cpus_ = 0;
};

/// Creates `<dir>/cpuX/cpufreq/...` files mimicking a per-core DVFS
/// machine, for tests, examples and dry runs. Initial governor is
/// `ondemand`, initial speed the highest frequency (the kernel default
/// after boot-time ramp-up).
void make_fake_sysfs_tree(const std::string& dir, std::size_t num_cpus,
                          std::span<const KHz> available);

/// High-level controller implementing the paper's experiment setup: switch
/// every core to `userspace` and pin the frequencies a scheduling plan
/// chose.
class PlatformController {
 public:
  /// Does not take ownership; `backend` must outlive the controller.
  PlatformController(CpufreqBackend& backend, core::RateSet rates);

  /// Disables automatic scaling on every core (scaling_governor <-
  /// userspace), as the paper does before each experiment.
  void disable_automatic_scaling();

  /// Pins core `cpu` to rate index `rate_idx` of the rate set and verifies
  /// the change via scaling_cur_freq (throws on mismatch).
  void pin(std::size_t cpu, std::size_t rate_idx);

  /// Pins all cores at once; `rate_idx_per_core[j]` applies to core j.
  void pin_all(std::span<const std::size_t> rate_idx_per_core);

  [[nodiscard]] const core::RateSet& rates() const { return rates_; }

 private:
  CpufreqBackend& backend_;
  core::RateSet rates_;
};

}  // namespace dvfs::cpufreq
