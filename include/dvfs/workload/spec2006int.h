/// \file spec2006int.h
/// \brief The paper's batch-mode workloads (Table I).
///
/// The batch experiments use SPEC CPU2006int: 12 benchmarks, each with its
/// `train` and `ref` input, giving 24 workloads. The paper measures each
/// workload's average wall time over ten runs at the lowest frequency
/// (1.6 GHz) and converts it to a cycle count as time * frequency. Table I
/// is reproduced verbatim; the cycle conversion happens here the same way.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "dvfs/core/task.h"

namespace dvfs::workload {

/// Which of the two SPEC input sets a row refers to.
enum class SpecInput : std::uint8_t { kTrain, kRef };

[[nodiscard]] constexpr const char* to_string(SpecInput in) {
  return in == SpecInput::kTrain ? "train" : "ref";
}

/// One Table I row half: a benchmark with one input set and its measured
/// average execution time at 1.6 GHz.
struct SpecWorkload {
  std::string_view benchmark;
  SpecInput input;
  Seconds avg_seconds_at_1_6ghz;
};

/// All 24 Table I workloads (12 benchmarks x {train, ref}), in the paper's
/// row order (train rows first within each benchmark).
[[nodiscard]] std::span<const SpecWorkload> spec2006int();

/// Cycle count of a workload: avg seconds x measurement frequency
/// (1.6 GHz), exactly as the paper estimates L_k.
[[nodiscard]] Cycles spec_cycles(const SpecWorkload& w);

/// The 24 workloads as batch tasks (ids 0..23 in Table I order).
[[nodiscard]] std::vector<core::Task> spec_batch_tasks();

/// Only the `ref` or only the `train` workloads as batch tasks.
[[nodiscard]] std::vector<core::Task> spec_batch_tasks(SpecInput input);

}  // namespace dvfs::workload
