/// \file trace.h
/// \brief Online-mode workload traces and their CSV serialization.
///
/// A trace is a time-ordered stream of task arrivals — the input of the
/// paper's event-driven simulator (Section V-B). The canonical disk format
/// is CSV with the header `id,arrival,cycles,class[,deadline]` so traces
/// can be inspected, filtered, and re-fed with ordinary tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dvfs/core/task.h"

namespace dvfs::workload {

/// A full online workload: tasks ordered by non-decreasing arrival time.
class Trace {
 public:
  Trace() = default;

  /// Takes ownership; sorts by (arrival, id) so callers may append in any
  /// order. Validates every task.
  explicit Trace(std::vector<core::Task> tasks);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const std::vector<core::Task>& tasks() const { return tasks_; }
  [[nodiscard]] const core::Task& operator[](std::size_t i) const {
    DVFS_REQUIRE(i < tasks_.size(), "trace index out of range");
    return tasks_[i];
  }

  [[nodiscard]] std::size_t count(core::TaskClass klass) const;

  /// Time of the last arrival (0 for an empty trace).
  [[nodiscard]] Seconds horizon() const {
    return tasks_.empty() ? 0.0 : tasks_.back().arrival;
  }

  /// Total cycles across all tasks.
  [[nodiscard]] Cycles total_cycles() const;

  /// Merges two traces, preserving arrival order.
  [[nodiscard]] static Trace merge(const Trace& a, const Trace& b);

  /// Tasks arriving in [from, to), re-based so the window starts at time
  /// 0 (deadlines shift with their tasks). For studying one phase of a
  /// bursty trace — e.g. only the end-of-exam rush.
  [[nodiscard]] Trace slice(Seconds from, Seconds to) const;

 private:
  std::vector<core::Task> tasks_;
};

/// Writes `id,arrival,cycles,class,deadline` rows (deadline column omitted
/// per row when infinite).
void write_csv(const Trace& trace, std::ostream& os);
void write_csv_file(const Trace& trace, const std::string& path);

/// Parses the format produced by write_csv. Throws PreconditionError on
/// malformed rows (wrong arity, non-numeric fields, unknown class names).
[[nodiscard]] Trace read_csv(std::istream& is);
[[nodiscard]] Trace read_csv_file(const std::string& path);

}  // namespace dvfs::workload
