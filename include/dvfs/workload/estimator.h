/// \file estimator.h
/// \brief Cycle-requirement estimation (Section V-B).
///
/// The online scheduler needs L_k at arrival time. The paper obtains it two
/// ways: interactive request kinds are profiled offline ("we can profile
/// the CPU cycles required to complete these kinds of tasks while building
/// the system"), and non-interactive submissions are predicted from the
/// running average of previously completed submissions. Both estimators
/// live here so the simulator (or a real dispatcher) can schedule with
/// estimates while charging actual costs.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::workload {

/// Offline profiling table: request kind -> measured average cycles.
class ProfileEstimator {
 public:
  /// Registers (or replaces) a profiled kind.
  void set_profile(const std::string& kind, Cycles avg_cycles) {
    DVFS_REQUIRE(avg_cycles > 0, "profiled cycles must be positive");
    profiles_[kind] = avg_cycles;
  }

  [[nodiscard]] bool has_profile(const std::string& kind) const {
    return profiles_.contains(kind);
  }

  /// Estimate for a kind; requires the kind to be profiled.
  [[nodiscard]] Cycles estimate(const std::string& kind) const {
    const auto it = profiles_.find(kind);
    DVFS_REQUIRE(it != profiles_.end(), "kind not profiled: " + kind);
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return profiles_.size(); }

 private:
  std::unordered_map<std::string, Cycles> profiles_;
};

/// Running mean of completed work per category (e.g. per exam problem):
/// "we can still predict the resource requirement of a newly arrived
/// non-interactive task by taking average of the previous completed
/// submissions."
class HistoricalAverageEstimator {
 public:
  /// `categories`: number of distinct streams (problems). `prior`: the
  /// estimate returned before any completion is observed in a category.
  HistoricalAverageEstimator(std::size_t categories, Cycles prior)
      : prior_(prior), sums_(categories, 0.0), counts_(categories, 0) {
    DVFS_REQUIRE(categories >= 1, "need at least one category");
    DVFS_REQUIRE(prior >= 1, "prior must be positive");
  }

  [[nodiscard]] std::size_t categories() const { return sums_.size(); }

  /// Records the measured cost of a completed task.
  void record(std::size_t category, Cycles actual) {
    DVFS_REQUIRE(category < sums_.size(), "category out of range");
    DVFS_REQUIRE(actual > 0, "actual cycles must be positive");
    sums_[category] += static_cast<double>(actual);
    counts_[category] += 1;
  }

  /// Current estimate for a category (the prior until data arrives).
  [[nodiscard]] Cycles estimate(std::size_t category) const {
    DVFS_REQUIRE(category < sums_.size(), "category out of range");
    if (counts_[category] == 0) return prior_;
    const double mean =
        sums_[category] / static_cast<double>(counts_[category]);
    return mean < 1.0 ? Cycles{1} : static_cast<Cycles>(mean);
  }

  [[nodiscard]] std::size_t observations(std::size_t category) const {
    DVFS_REQUIRE(category < sums_.size(), "category out of range");
    return counts_[category];
  }

 private:
  Cycles prior_;
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
};

}  // namespace dvfs::workload
