/// \file stats.h
/// \brief Workload characterization: the numbers a scheduling evaluation
///        should print next to its results.
///
/// The paper describes its trace with population counts only; a
/// reproduction needs the load story too (a scheduler comparison at 10%
/// utilization says nothing). analyze() summarizes a trace per task
/// class, and offered_load() converts cycle demand into utilization of a
/// given platform — including the peak-window load that determines
/// whether queues ever build.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/core/energy_model.h"
#include "dvfs/workload/trace.h"

namespace dvfs::workload {

/// Distribution summary of one task class within a trace.
struct ClassStats {
  std::size_t count = 0;
  Cycles total_cycles = 0;
  Cycles min_cycles = 0;
  Cycles max_cycles = 0;
  double mean_cycles = 0.0;
  Cycles p50_cycles = 0;  ///< median
  Cycles p95_cycles = 0;
  Cycles p99_cycles = 0;
};

struct TraceStats {
  Seconds horizon = 0.0;  ///< last arrival time
  ClassStats interactive;
  ClassStats non_interactive;
  ClassStats batch;

  [[nodiscard]] const ClassStats& of(core::TaskClass klass) const {
    switch (klass) {
      case core::TaskClass::kInteractive: return interactive;
      case core::TaskClass::kNonInteractive: return non_interactive;
      case core::TaskClass::kBatch: return batch;
    }
    return batch;  // unreachable
  }
};

/// Per-class distribution summary. O(n log n).
[[nodiscard]] TraceStats analyze(const Trace& trace);

/// Average offered load of the trace on `cores` identical cores running at
/// rate index `rate_idx`: total execution time demanded divided by
/// available core-seconds over the horizon. > 1 means the platform cannot
/// keep up on average.
[[nodiscard]] double offered_load(const Trace& trace,
                                  const core::EnergyModel& model,
                                  std::size_t rate_idx, std::size_t cores);

/// Maximum offered load over any window of `window` seconds (sliding over
/// arrival times; work is attributed to its arrival instant). Detects the
/// burst the mean hides. O(n) after sorting (the trace is arrival-sorted).
[[nodiscard]] double peak_offered_load(const Trace& trace,
                                       const core::EnergyModel& model,
                                       std::size_t rate_idx,
                                       std::size_t cores, Seconds window);

}  // namespace dvfs::workload
