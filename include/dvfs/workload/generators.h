/// \file generators.h
/// \brief Synthetic workload generation for the online-mode experiments.
///
/// The paper evaluates the online mode on a proprietary trace from
/// Judgegirl, NTU's online judging system: half an hour of a final exam
/// with five problems, 768 non-interactive tasks (code submissions to be
/// judged) and 50525 interactive tasks (problem browsing / score queries
/// needing an immediate acknowledgement). The trace itself is not
/// published, so JudgegirlConfig synthesizes a trace with the same
/// population sizes, an exam-shaped arrival process (activity swells
/// toward the deadline), per-problem submission cost distributions, and
/// millisecond-scale interactive requests. LMC's decisions depend only on
/// arrival times, task classes, and cycle counts, which is exactly what
/// the generator controls.
///
/// Poisson and batch generators cover sensitivity sweeps beyond the
/// paper's headline experiment. All generators are deterministic given a
/// seed.
#pragma once

#include <cstdint>
#include <vector>

#include "dvfs/workload/trace.h"

namespace dvfs::workload {

/// Memoryless arrival stream of one task class.
struct PoissonConfig {
  double arrivals_per_second = 1.0;
  Seconds duration = 60.0;
  core::TaskClass klass = core::TaskClass::kNonInteractive;
  /// Cycle counts are log-normally distributed (service times in real
  /// request systems are heavy-tailed): exp(N(log_mean, log_sigma)).
  double log_mean_cycles = 20.0;  // e^20 ~ 0.5e9 cycles
  double log_sigma = 1.0;
  Cycles min_cycles = 1;
  core::TaskId first_id = 0;
};

[[nodiscard]] Trace generate_poisson(const PoissonConfig& cfg,
                                     std::uint64_t seed);

/// Judgegirl-scale exam trace (defaults reproduce the paper's Section V-B
/// population: 768 non-interactive + 50525 interactive over 1800 s with 5
/// problems).
struct JudgegirlConfig {
  Seconds duration = 1800.0;
  std::size_t num_problems = 5;
  std::size_t non_interactive_tasks = 768;
  std::size_t interactive_tasks = 50525;

  /// Exam-burst shape: arrival density rises linearly so that the last
  /// minutes are `burstiness` times busier than the first (1.0 = uniform).
  /// The default reproduces a final-exam deadline rush: the system is
  /// lightly loaded early and oversubscribed near the end, which is the
  /// regime where the paper's Fig. 3 gaps between LMC and the baselines
  /// appear (deep queues are what ordering and rate policy act on).
  double burstiness = 8.0;

  /// Judging cost of a submission to problem p: lognormal around
  /// base_judge_cycles * (1 + p * problem_spread). The default base is
  /// 3e9 cycles (1 s at 3 GHz); spread 0.6 makes problem 5 judge about
  /// 3.4x longer than problem 1, and the heavy sigma (1.4) gives the
  /// fat-tailed judging times real submissions show (a tight loop
  /// vs. a near-timeout brute-force answer).
  double base_judge_cycles = 3e9;
  double problem_spread = 0.6;
  double judge_log_sigma = 1.4;

  /// Interactive requests (problem views, score queries): full dynamic
  /// page handling, ~80 ms at 3 GHz, narrow spread. They need a prompt
  /// acknowledgement, not judging.
  double interactive_mean_cycles = 2.5e8;
  double interactive_log_sigma = 0.3;

  /// Firm response deadline for interactive tasks, seconds after arrival
  /// ("early and firm deadlines", Sec. II-A). Policies do not act on it;
  /// SimResult::deadline_misses reports how often each policy blew it.
  Seconds interactive_deadline = 2.0;
};

[[nodiscard]] Trace generate_judgegirl(const JudgegirlConfig& cfg,
                                       std::uint64_t seed);

/// Batch workloads for sweeps (all arrivals at 0).
enum class BatchShape : std::uint8_t {
  kUniform,    ///< cycles uniform in [min, max]
  kLognormal,  ///< heavy-tailed around the geometric midpoint of [min, max]
  kBimodal,    ///< mix of short (near min) and long (near max) tasks
};

struct BatchConfig {
  std::size_t num_tasks = 24;
  BatchShape shape = BatchShape::kUniform;
  Cycles min_cycles = 1'000'000;
  Cycles max_cycles = 10'000'000'000;
};

[[nodiscard]] std::vector<core::Task> generate_batch(const BatchConfig& cfg,
                                                     std::uint64_t seed);

}  // namespace dvfs::workload
