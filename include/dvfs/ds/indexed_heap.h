/// \file indexed_heap.h
/// \brief d-ary min-heap with stable handles, decrease/increase-key and
///        erase.
///
/// Two places in this codebase need more than std::priority_queue offers:
///
///  * Workload Based Greedy (Algorithm 3) repeatedly pops the cheapest
///    per-core marginal cost C_j(k) and pushes the core's next C_j(k+1).
///  * The event-driven simulator must *cancel* pending task-completion
///    events when a preempting interactive task arrives or a queue is
///    reordered (Section IV), which requires erase-by-handle.
///
/// Keys are doubles; ties are broken by insertion sequence so simulation
/// runs are deterministic. The arity is 4: pop-heavy workloads (event
/// queues) trade slightly more comparisons per level for half the levels
/// and better cache behaviour than a binary heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::ds {

template <typename Value>
class IndexedHeap {
 public:
  /// Stable identifier for an element; valid until pop()/erase() removes it.
  using Handle = std::size_t;
  static constexpr Handle kNullHandle = static_cast<Handle>(-1);

  IndexedHeap() = default;

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Inserts and returns a handle. O(log n).
  Handle push(double key, Value value) {
    const Handle h = allocate_slot();
    slots_[h].key = key;
    slots_[h].value = std::move(value);
    slots_[h].seq = next_seq_++;
    slots_[h].pos = heap_.size();
    heap_.push_back(h);
    sift_up(heap_.size() - 1);
    return h;
  }

  /// Smallest element (key ties: earliest push wins).
  [[nodiscard]] double top_key() const {
    DVFS_REQUIRE(!heap_.empty(), "heap is empty");
    return slots_[heap_[0]].key;
  }
  [[nodiscard]] const Value& top() const {
    DVFS_REQUIRE(!heap_.empty(), "heap is empty");
    return slots_[heap_[0]].value;
  }
  [[nodiscard]] Handle top_handle() const {
    DVFS_REQUIRE(!heap_.empty(), "heap is empty");
    return heap_[0];
  }

  /// Removes and returns the smallest element. O(log n).
  Value pop() {
    DVFS_REQUIRE(!heap_.empty(), "heap is empty");
    const Handle h = heap_[0];
    Value out = std::move(slots_[h].value);
    remove_at(0);
    free_slot(h);
    return out;
  }

  /// Removes an arbitrary element by handle. O(log n).
  Value erase(Handle h) {
    DVFS_REQUIRE(contains(h), "invalid or stale handle");
    Value out = std::move(slots_[h].value);
    remove_at(slots_[h].pos);
    free_slot(h);
    return out;
  }

  /// Re-keys an element in place. O(log n).
  void update_key(Handle h, double new_key) {
    DVFS_REQUIRE(contains(h), "invalid or stale handle");
    const double old = slots_[h].key;
    slots_[h].key = new_key;
    // Sequence is deliberately kept: a re-keyed element retains its original
    // tie-breaking age.
    if (new_key < old) {
      sift_up(slots_[h].pos);
    } else {
      sift_down(slots_[h].pos);
    }
  }

  [[nodiscard]] double key(Handle h) const {
    DVFS_REQUIRE(contains(h), "invalid or stale handle");
    return slots_[h].key;
  }
  [[nodiscard]] const Value& value(Handle h) const {
    DVFS_REQUIRE(contains(h), "invalid or stale handle");
    return slots_[h].value;
  }
  [[nodiscard]] Value& value(Handle h) {
    DVFS_REQUIRE(contains(h), "invalid or stale handle");
    return slots_[h].value;
  }

  /// True if `h` names a live element.
  [[nodiscard]] bool contains(Handle h) const {
    return h < slots_.size() && slots_[h].pos != kNullHandle;
  }

  void clear() {
    heap_.clear();
    slots_.clear();
    free_list_.clear();
    next_seq_ = 0;
  }

  /// Checks the heap property and handle/position consistency. Test support.
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (slots_[heap_[i]].pos != i) return false;
      if (i > 0 && less(heap_[i], heap_[(i - 1) / kArity])) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kArity = 4;

  struct Slot {
    double key = 0.0;
    Value value{};
    std::uint64_t seq = 0;
    std::size_t pos = kNullHandle;  // kNullHandle marks a free slot
  };

  [[nodiscard]] bool less(Handle a, Handle b) const {
    if (slots_[a].key != slots_[b].key) return slots_[a].key < slots_[b].key;
    return slots_[a].seq < slots_[b].seq;
  }

  Handle allocate_slot() {
    if (!free_list_.empty()) {
      const Handle h = free_list_.back();
      free_list_.pop_back();
      return h;
    }
    slots_.emplace_back();
    return slots_.size() - 1;
  }

  void free_slot(Handle h) {
    slots_[h].pos = kNullHandle;
    free_list_.push_back(h);
  }

  void remove_at(std::size_t pos) {
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      place(heap_[last], pos);
      heap_.pop_back();
      // The moved element may need to travel either direction.
      sift_up(pos);
      sift_down(slots_[heap_[pos]].pos);
    } else {
      heap_.pop_back();
    }
  }

  void place(Handle h, std::size_t pos) {
    heap_[pos] = h;
    slots_[h].pos = pos;
  }

  void sift_up(std::size_t pos) {
    const Handle h = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!less(h, heap_[parent])) break;
      place(heap_[parent], pos);
      pos = parent;
    }
    place(h, pos);
  }

  void sift_down(std::size_t pos) {
    const Handle h = heap_[pos];
    while (true) {
      const std::size_t first_child = pos * kArity + 1;
      if (first_child >= heap_.size()) break;
      std::size_t best = first_child;
      const std::size_t end =
          std::min(first_child + kArity, heap_.size());
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (less(heap_[c], heap_[best])) best = c;
      }
      if (!less(heap_[best], h)) break;
      place(heap_[best], pos);
      pos = best;
    }
    place(h, pos);
  }

  std::vector<Handle> heap_;   // heap order -> handle
  std::vector<Slot> slots_;    // handle -> element
  std::vector<Handle> free_list_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dvfs::ds
