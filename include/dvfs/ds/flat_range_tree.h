/// \file flat_range_tree.h
/// \brief Cache-conscious order-statistic tree with position-weighted
///        aggregates (flat B+-tree replacement for range_tree.h).
///
/// Drop-in replacement for the Section IV-A "single 1D range tree"
/// (`ds::RangeTree`): a multiset of weighted elements kept in *descending*
/// weight order (the paper's L^B sequence) with the two composable
/// aggregates
///
///   sum  = sum of weights                                (the paper's xi)
///   wsum = sum of (local 1-based position) * weight      (the paper's Delta)
///
/// maintained per subtree, so insert/erase/rank/select/prefix all run in
/// O(log N). The pointer-chasing treap is replaced by an implicit B+-tree
/// tuned for the LMC hot path:
///
///  * Nodes are fixed 512-byte blocks, `alignas(64)` so a node occupies
///    whole cache lines; they live in a chunked bump arena and are
///    addressed by 32-bit indices, not pointers.
///  * Leaves pack up to 28 (weight, slot) pairs; the weights form a
///    contiguous `double[]` so the per-leaf scans the queries bottom out
///    in are branch-predictable linear sweeps over one or two lines.
///  * Interior nodes store *per-child* aggregate arrays (count, sum, wsum,
///    min weight), so a root-to-leaf descent reads exactly one node per
///    level — there is no need to touch a child to decide against it.
///  * Fanout 15 / leaf capacity 28 keeps the tree 3 levels deep up to
///    ~10^5 elements (vs ~17 expected pointer hops for a treap at 10^5).
///
/// Handles are stable pointers into a separate slot arena; a slot stores
/// the element's weight, payload and owning leaf, so `weight(h)` and
/// `payload(h)` stay O(1) and handles survive node splits/merges.
///
/// Deletion rebalancing is deliberately simple: an emptied leaf is freed,
/// a leaf at <= 1/4 capacity merges into a same-parent neighbor when it
/// fits, and a single-child root collapses. Node occupancy can therefore
/// drop below the classical B-tree minimum under adversarial churn, but
/// depth never exceeds that of the historical maximum size — the right
/// trade for a scheduler queue, and the differential fuzz in
/// tests/test_flat_range_tree.cpp holds the structure to the treap's
/// behaviour under exactly this kind of churn. See docs/flat_range_tree.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dvfs/common.h"
#include "dvfs/ds/range_tree.h"  // PrefixStats (shared result type)

#include <memory>
#include <vector>

namespace dvfs::ds {

class FlatRangeTree {
 public:
  using Payload = std::uint64_t;

  /// Stable element record; handles point here, never into tree nodes.
  struct Slot {
    double weight = 0.0;
    Payload payload = 0;
    std::uint32_t leaf = 0;  ///< arena index of the owning leaf node
    std::uint32_t pad_ = 0;
  };

  /// Opaque element handle; stays valid until the element is erased.
  using Handle = Slot*;

  static constexpr std::size_t kLeafCap = 28;   ///< elements per leaf
  static constexpr std::size_t kInnerCap = 15;  ///< children per inner node

  /// `seed` is accepted (and ignored) for drop-in compatibility with the
  /// treap, whose balancing needs a priority stream; a B+-tree is
  /// deterministic by construction.
  explicit FlatRangeTree(std::uint64_t seed = 0) { (void)seed; }

  FlatRangeTree(const FlatRangeTree&) = delete;
  FlatRangeTree& operator=(const FlatRangeTree&) = delete;

  FlatRangeTree(FlatRangeTree&& other) noexcept { swap(other); }
  FlatRangeTree& operator=(FlatRangeTree&& other) noexcept {
    if (this != &other) {
      clear();
      swap(other);
    }
    return *this;
  }

  ~FlatRangeTree() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Inserts a weight, keeping descending order; equal weights are placed
  /// after existing ones (stable). Returns a handle valid until erase().
  Handle insert(double weight, Payload payload = Payload{});

  /// Removes the element behind `h`. The handle becomes invalid.
  void erase(Handle h);

  /// 1-based position of `h` in descending-weight order. O(log N).
  [[nodiscard]] std::size_t rank(Handle h) const;

  /// Handle of the element at 1-based rank k. O(log N).
  [[nodiscard]] Handle select(std::size_t k) const;

  /// Aggregates of the first k elements. O(log N); k == 0 gives zeros.
  [[nodiscard]] PrefixStats prefix(std::size_t k) const;

  /// xi([a,b]): sum of weights at ranks a..b (inclusive). Empty if a > b.
  [[nodiscard]] double range_sum(std::size_t a, std::size_t b) const;

  /// Delta([a,b]) = sum over k in [a,b] of (k - a + 1) * w_k. Empty if a > b.
  [[nodiscard]] double range_wsum(std::size_t a, std::size_t b) const;

  /// Rank a new element of `weight` would occupy if inserted now (equal
  /// weights are stable, so the new element lands after them). O(log N).
  [[nodiscard]] std::size_t insertion_rank(double weight) const;

  /// In-order neighbors (nullptr at the ends). O(1) amortized: one leaf
  /// scan, stepping through the doubly linked leaf list at boundaries.
  [[nodiscard]] Handle predecessor(Handle h) const;
  [[nodiscard]] Handle successor(Handle h) const;

  [[nodiscard]] Handle first() const;  ///< rank 1 (heaviest)
  [[nodiscard]] Handle last() const;   ///< rank N (lightest)

  [[nodiscard]] static double weight(Handle h) { return h->weight; }
  [[nodiscard]] static Payload& payload(Handle h) { return h->payload; }
  [[nodiscard]] static const Payload& payload(const Slot* h) {
    return h->payload;
  }

  void clear();

  /// Validates every structural invariant (descending order, per-child
  /// aggregates, leaf threading, parent links, slot back-references).
  /// Test-support; O(N).
  [[nodiscard]] bool validate() const;

  /// Arena introspection (test support: the differential test drives the
  /// arena across chunk boundaries and asserts handles survive).
  [[nodiscard]] std::size_t arena_node_count() const;
  [[nodiscard]] std::size_t arena_chunk_count() const {
    return node_chunks_.size();
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kNodesPerChunk = 64;  // 64 * 512 B = 32 KiB
  static constexpr std::size_t kSlotsPerChunk = 256;

  struct LeafData {
    double weight[kLeafCap];
    Slot* slot[kLeafCap];
    std::uint32_t next;  ///< leaf holding the next-lighter run (kNil at tail)
    std::uint32_t prev;
  };
  struct InnerData {
    double sum[kInnerCap];   ///< per-child subtree weight sums
    double wsum[kInnerCap];  ///< per-child local position-weighted sums
    double minw[kInnerCap];  ///< per-child minimum (= last) weight
    std::uint32_t child[kInnerCap];
    std::uint32_t cnt[kInnerCap];  ///< per-child subtree element counts
  };

  struct alignas(64) Node {
    std::uint32_t parent;
    std::uint16_t num;  ///< live elements (leaf) or children (inner)
    std::uint8_t is_leaf;
    std::uint8_t pad_;
    union {
      LeafData leaf;
      InnerData inner;
    } u;
  };
  static_assert(sizeof(Node) == 512, "node must fill whole cache lines");

  [[nodiscard]] Node& node(std::uint32_t idx) {
    return node_chunks_[idx / kNodesPerChunk][idx % kNodesPerChunk];
  }
  [[nodiscard]] const Node& node(std::uint32_t idx) const {
    return node_chunks_[idx / kNodesPerChunk][idx % kNodesPerChunk];
  }

  std::uint32_t alloc_node(bool leaf);
  void free_node(std::uint32_t idx);
  Slot* alloc_slot();
  void free_slot(Slot* s);

  /// Totals of the subtree rooted at `idx`, composed from its own arrays.
  struct Totals {
    std::uint64_t cnt = 0;
    double sum = 0.0;
    double wsum = 0.0;
    double minw = 0.0;
  };
  [[nodiscard]] Totals totals_of(std::uint32_t idx) const;

  /// Position of `child` in its parent's child array. O(fanout).
  [[nodiscard]] std::size_t child_pos(const Node& parent,
                                      std::uint32_t child) const;

  /// Rewrites the parent-side aggregate entry of `idx` (no-op at the root).
  void refresh_entry(std::uint32_t idx);

  /// refresh_entry for `idx` and every ancestor. O((K + F) log N).
  void update_path(std::uint32_t idx);

  /// Splices `child` in at `pos` among `parent_idx`'s children; the parent
  /// must have room.
  void insert_entry(std::uint32_t parent_idx, std::size_t pos,
                    std::uint32_t child);

  /// Inserts `child` at `pos` among `parent_idx`'s children, splitting
  /// ancestors as needed (parent_idx == kNil grows a new root).
  void link_child(std::uint32_t parent_idx, std::size_t pos,
                  std::uint32_t left_sibling, std::uint32_t child);

  /// Removes the child at `pos`; frees emptied ancestors and collapses a
  /// single-child root.
  void unlink_child(std::uint32_t parent_idx, std::size_t pos);

  void collapse_root();

  /// Leaf index + position of `h` inside it.
  struct Location {
    std::uint32_t leaf;
    std::size_t pos;
  };
  [[nodiscard]] Location locate(Handle h) const;

  void leaf_remove(std::uint32_t leaf_idx, std::size_t pos);
  void try_merge(std::uint32_t leaf_idx);

  void swap(FlatRangeTree& other) noexcept {
    node_chunks_.swap(other.node_chunks_);
    slot_chunks_.swap(other.slot_chunks_);
    free_nodes_.swap(other.free_nodes_);
    free_slots_.swap(other.free_slots_);
    std::swap(bump_nodes_, other.bump_nodes_);
    std::swap(bump_slots_, other.bump_slots_);
    std::swap(root_, other.root_);
    std::swap(head_leaf_, other.head_leaf_);
    std::swap(tail_leaf_, other.tail_leaf_);
    std::swap(size_, other.size_);
  }

  // Bump arenas: chunked so node addresses and slot addresses are stable
  // across growth; freed entries recycle through freelists.
  std::vector<std::unique_ptr<Node[]>> node_chunks_;
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::vector<std::uint32_t> free_nodes_;
  std::vector<Slot*> free_slots_;
  std::size_t bump_nodes_ = 0;  ///< total nodes ever bump-allocated
  std::size_t bump_slots_ = 0;

  std::uint32_t root_ = kNil;
  std::uint32_t head_leaf_ = kNil;  ///< leaf with rank 1 (heaviest)
  std::uint32_t tail_leaf_ = kNil;  ///< leaf with rank N (lightest)
  std::size_t size_ = 0;
};

}  // namespace dvfs::ds
