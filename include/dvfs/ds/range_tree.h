/// \file range_tree.h
/// \brief Order-statistic balanced tree with position-weighted aggregates.
///
/// This is the "single 1D range tree" of Section IV-A. It keeps a multiset
/// of weighted elements sorted by weight in *descending* order (the paper's
/// L^B sequence: backward position 1 holds the heaviest task), and maintains
/// two subtree aggregates:
///
///   sum  = sum of weights                                (the paper's xi)
///   wsum = sum of (local 1-based position) * weight      (the paper's Delta)
///
/// Both compose associatively (Eqs. 33-34), so insertion, deletion, rank,
/// select, and prefix/range queries all run in O(log N). Nodes are threaded
/// with predecessor/successor links for the O(1) neighbor steps Algorithms
/// 5-6 rely on, and every node handle supports an O(log N) rank() query
/// ("rank(ptr)" in the pseudo code) via parent pointers.
///
/// The balancing scheme is a treap with per-tree deterministic priorities,
/// giving expected O(log N) depth independent of insertion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>

#include "dvfs/common.h"

namespace dvfs::ds {

namespace detail {

template <typename Payload>
struct RtNode {
  double weight = 0.0;
  Payload payload{};
  std::uint64_t priority = 0;

  RtNode* left = nullptr;
  RtNode* right = nullptr;
  RtNode* parent = nullptr;

  // In-order threading (descending weight order).
  RtNode* prev = nullptr;
  RtNode* next = nullptr;

  // Subtree aggregates.
  std::size_t count = 1;
  double sum = 0.0;
  double wsum = 0.0;
};

}  // namespace detail

/// Prefix aggregate of the first k elements (descending order):
/// `sum` = xi([1,k]); `wsum` = sum over i<=k of i * w_i.
struct PrefixStats {
  std::size_t count = 0;
  double sum = 0.0;
  double wsum = 0.0;
};

template <typename Payload = std::uint64_t>
class RangeTree {
 public:
  using Node = detail::RtNode<Payload>;
  /// Opaque element handle; stays valid until the element is erased.
  using Handle = Node*;

  /// `seed` fixes the treap priority stream so runs are reproducible.
  explicit RangeTree(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : rng_(seed) {}

  RangeTree(const RangeTree&) = delete;
  RangeTree& operator=(const RangeTree&) = delete;

  RangeTree(RangeTree&& other) noexcept { swap(other); }
  RangeTree& operator=(RangeTree&& other) noexcept {
    if (this != &other) {
      clear();
      swap(other);
    }
    return *this;
  }

  ~RangeTree() { clear(); }

  [[nodiscard]] std::size_t size() const { return root_ ? root_->count : 0; }
  [[nodiscard]] bool empty() const { return root_ == nullptr; }

  /// Inserts a weight, keeping descending order; equal weights are placed
  /// after existing ones (stable). Returns a handle valid until erase().
  Handle insert(double weight, Payload payload = Payload{}) {
    Node* node = new Node;
    node->weight = weight;
    node->payload = std::move(payload);
    node->priority = rng_();
    node->sum = weight;
    node->wsum = weight;
    bst_insert(node);
    thread_link(node);
    bubble_up(node);
    return node;
  }

  /// Removes the element behind `h`. The handle becomes invalid.
  void erase(Handle h) {
    DVFS_REQUIRE(h != nullptr, "null handle");
    thread_unlink(h);
    sink_to_leaf(h);
    detach_leaf(h);
    delete h;
  }

  /// 1-based position of `h` in descending-weight order. O(log N).
  [[nodiscard]] std::size_t rank(Handle h) const {
    DVFS_REQUIRE(h != nullptr, "null handle");
    std::size_t r = count_of(h->left) + 1;
    for (const Node* x = h; x->parent != nullptr; x = x->parent) {
      if (x->parent->right == x) {
        r += count_of(x->parent->left) + 1;
      }
    }
    return r;
  }

  /// Handle of the element at 1-based rank k. O(log N).
  [[nodiscard]] Handle select(std::size_t k) const {
    DVFS_REQUIRE(k >= 1 && k <= size(), "rank out of range");
    Node* x = root_;
    while (true) {
      const std::size_t left = count_of(x->left);
      if (k <= left) {
        x = x->left;
      } else if (k == left + 1) {
        return x;
      } else {
        k -= left + 1;
        x = x->right;
      }
    }
  }

  /// Aggregates of the first k elements. O(log N); k == 0 gives zeros.
  [[nodiscard]] PrefixStats prefix(std::size_t k) const {
    DVFS_REQUIRE(k <= size(), "prefix length out of range");
    PrefixStats acc;
    const Node* x = root_;
    std::size_t base = 0;  // elements already accounted before this subtree
    while (x != nullptr && acc.count < k) {
      const std::size_t left = count_of(x->left);
      const std::size_t need = k - acc.count;
      if (need <= left) {
        x = x->left;
        continue;
      }
      // Absorb the whole left subtree plus this node.
      if (x->left != nullptr) {
        acc.sum += x->left->sum;
        acc.wsum += x->left->wsum + static_cast<double>(base) * x->left->sum;
      }
      const std::size_t pos = base + left + 1;
      acc.sum += x->weight;
      acc.wsum += static_cast<double>(pos) * x->weight;
      acc.count += left + 1;
      base = pos;
      x = x->right;
    }
    DVFS_REQUIRE(acc.count == k, "internal: prefix walk mismatch");
    return acc;
  }

  /// xi([a,b]): sum of weights at ranks a..b (inclusive). Empty if a > b.
  [[nodiscard]] double range_sum(std::size_t a, std::size_t b) const {
    if (a > b) return 0.0;
    DVFS_REQUIRE(a >= 1 && b <= size(), "range out of bounds");
    return prefix(b).sum - prefix(a - 1).sum;
  }

  /// Delta([a,b]) = sum over k in [a,b] of (k - a + 1) * w_k. Empty if a > b.
  [[nodiscard]] double range_wsum(std::size_t a, std::size_t b) const {
    if (a > b) return 0.0;
    DVFS_REQUIRE(a >= 1 && b <= size(), "range out of bounds");
    const PrefixStats hi = prefix(b);
    const PrefixStats lo = prefix(a - 1);
    const double sum = hi.sum - lo.sum;
    const double wsum_abs = hi.wsum - lo.wsum;  // sum of k * w_k
    return wsum_abs - static_cast<double>(a - 1) * sum;
  }

  /// Rank a new element of `weight` would occupy if inserted now (equal
  /// weights are stable, so the new element lands after them). O(log N).
  [[nodiscard]] std::size_t insertion_rank(double weight) const {
    std::size_t rank = 1;
    const Node* x = root_;
    while (x != nullptr) {
      if (goes_left(weight, x)) {
        x = x->left;
      } else {
        rank += count_of(x->left) + 1;
        x = x->right;
      }
    }
    return rank;
  }

  /// O(1) in-order neighbors (nullptr at the ends).
  [[nodiscard]] Handle predecessor(Handle h) const { return h->prev; }
  [[nodiscard]] Handle successor(Handle h) const { return h->next; }

  [[nodiscard]] Handle first() const { return head_; }
  [[nodiscard]] Handle last() const { return tail_; }

  [[nodiscard]] static double weight(Handle h) { return h->weight; }
  [[nodiscard]] static Payload& payload(Handle h) { return h->payload; }
  [[nodiscard]] static const Payload& payload(const Node* h) {
    return h->payload;
  }

  void clear() {
    for (Node* x = head_; x != nullptr;) {
      Node* next = x->next;
      delete x;
      x = next;
    }
    root_ = head_ = tail_ = nullptr;
  }

  /// Validates every structural invariant (BST order, heap priorities,
  /// aggregates, threading, parent links). Test-support; O(N).
  [[nodiscard]] bool validate() const {
    if (root_ == nullptr) return head_ == nullptr && tail_ == nullptr;
    if (root_->parent != nullptr) return false;
    bool ok = true;
    const Node* prev = nullptr;
    std::size_t seen = 0;
    validate_rec(root_, prev, seen, ok);
    ok = ok && seen == root_->count;
    // Threading must visit the same in-order sequence.
    const Node* t = head_;
    const Node* walked_last = nullptr;
    std::size_t threaded = 0;
    while (t != nullptr) {
      if (t->prev != walked_last) return false;
      walked_last = t;
      ++threaded;
      t = t->next;
    }
    ok = ok && threaded == seen && walked_last == tail_;
    return ok;
  }

 private:
  static std::size_t count_of(const Node* x) { return x ? x->count : 0; }
  static double sum_of(const Node* x) { return x ? x->sum : 0.0; }
  static double wsum_of(const Node* x) { return x ? x->wsum : 0.0; }

  static void pull(Node* x) {
    const std::size_t cl = count_of(x->left);
    x->count = cl + 1 + count_of(x->right);
    x->sum = sum_of(x->left) + x->weight + sum_of(x->right);
    // Right-subtree positions shift by the left count plus this node
    // (Eq. 34's (M + 1 - L) * xi term).
    x->wsum = wsum_of(x->left) + static_cast<double>(cl + 1) * x->weight +
              wsum_of(x->right) +
              static_cast<double>(cl + 1) * sum_of(x->right);
  }

  // Descending order: heavier weights to the left; ties go right so equal
  // weights keep insertion order.
  static bool goes_left(double weight, const Node* at) {
    return weight > at->weight;
  }

  void bst_insert(Node* node) {
    if (root_ == nullptr) {
      root_ = node;
      return;
    }
    Node* x = root_;
    while (true) {
      // Aggregates along the path grow by the new leaf; fix them on the way
      // down so no second pass is needed.
      Node*& child = goes_left(node->weight, x) ? x->left : x->right;
      if (child == nullptr) {
        child = node;
        node->parent = x;
        for (Node* p = x; p != nullptr; p = p->parent) pull(p);
        return;
      }
      x = child;
    }
  }

  void thread_link(Node* node) {
    // At link time `node` is a leaf; its in-order neighbors are the nearest
    // ancestors it descends from on each side.
    Node* pred = nullptr;
    Node* succ = nullptr;
    for (Node* x = node; x->parent != nullptr; x = x->parent) {
      if (x->parent->left == x) {
        if (succ == nullptr) succ = x->parent;
      } else {
        if (pred == nullptr) pred = x->parent;
      }
      if (pred && succ) break;
    }
    node->prev = pred;
    node->next = succ;
    if (pred != nullptr) {
      pred->next = node;
    } else {
      head_ = node;
    }
    if (succ != nullptr) {
      succ->prev = node;
    } else {
      tail_ = node;
    }
  }

  void thread_unlink(Node* node) {
    if (node->prev != nullptr) {
      node->prev->next = node->next;
    } else {
      head_ = node->next;
    }
    if (node->next != nullptr) {
      node->next->prev = node->prev;
    } else {
      tail_ = node->prev;
    }
    node->prev = node->next = nullptr;
  }

  void rotate_up(Node* x) {
    Node* p = x->parent;
    Node* g = p->parent;
    if (p->left == x) {
      p->left = x->right;
      if (x->right) x->right->parent = p;
      x->right = p;
    } else {
      p->right = x->left;
      if (x->left) x->left->parent = p;
      x->left = p;
    }
    p->parent = x;
    x->parent = g;
    if (g != nullptr) {
      (g->left == p ? g->left : g->right) = x;
    } else {
      root_ = x;
    }
    pull(p);
    pull(x);
    if (g != nullptr) pull(g);
  }

  void bubble_up(Node* x) {
    while (x->parent != nullptr && x->priority < x->parent->priority) {
      rotate_up(x);
    }
  }

  void sink_to_leaf(Node* x) {
    while (x->left != nullptr || x->right != nullptr) {
      Node* child;
      if (x->left == nullptr) {
        child = x->right;
      } else if (x->right == nullptr) {
        child = x->left;
      } else {
        child = (x->left->priority < x->right->priority) ? x->left : x->right;
      }
      rotate_up(child);
    }
  }

  void detach_leaf(Node* x) {
    Node* p = x->parent;
    if (p == nullptr) {
      root_ = nullptr;
      return;
    }
    (p->left == x ? p->left : p->right) = nullptr;
    x->parent = nullptr;
    for (; p != nullptr; p = p->parent) pull(p);
  }

  void validate_rec(const Node* x, const Node*& prev, std::size_t& seen,
                    bool& ok) const {
    if (x == nullptr || !ok) return;
    if (x->left != nullptr &&
        (x->left->parent != x || x->left->priority < x->priority)) {
      ok = false;
      return;
    }
    if (x->right != nullptr &&
        (x->right->parent != x || x->right->priority < x->priority)) {
      ok = false;
      return;
    }
    validate_rec(x->left, prev, seen, ok);
    if (!ok) return;
    if (prev != nullptr && prev->weight < x->weight) {
      ok = false;  // descending order violated
      return;
    }
    prev = x;
    ++seen;
    validate_rec(x->right, prev, seen, ok);
    if (!ok) return;
    // Aggregates.
    Node copy = *x;
    pull(&copy);
    if (copy.count != x->count || !almost_equal(copy.sum, x->sum, 1e-9, 1e-9) ||
        !almost_equal(copy.wsum, x->wsum, 1e-9, 1e-9)) {
      ok = false;
    }
  }

  void swap(RangeTree& other) noexcept {
    std::swap(root_, other.root_);
    std::swap(head_, other.head_);
    std::swap(tail_, other.tail_);
    std::swap(rng_, other.rng_);
  }

  Node* root_ = nullptr;
  Node* head_ = nullptr;  // rank 1 (heaviest)
  Node* tail_ = nullptr;  // rank N (lightest)
  std::mt19937_64 rng_;
};

}  // namespace dvfs::ds
