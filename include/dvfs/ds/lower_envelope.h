/// \file lower_envelope.h
/// \brief Lower envelope of linear functions over the positive integers.
///
/// This is the geometric engine behind Algorithm 1 of the paper ("Finding
/// Dominating Position Ranges"). Each discrete processing rate p induces a
/// line f_p(k) = Re*E(p) + Rt*T(p)*k over backward queue positions k; the
/// positions where rate p is the cheapest choice are exactly the integer
/// points where f_p lies on the lower envelope of all rate lines. Because
/// the lines arrive sorted by strictly decreasing slope, the envelope is
/// computable in a single Graham-scan-style stack pass: Theta(n) for n
/// lines.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::ds {

/// A line y = intercept + slope * x. `id` is caller-defined (the paper uses
/// the index of the processing rate inducing the line).
struct Line {
  double slope = 0.0;
  double intercept = 0.0;
  std::size_t id = 0;

  [[nodiscard]] double at(double x) const { return intercept + slope * x; }

  friend bool operator==(const Line&, const Line&) = default;
};

/// A contiguous range [lo, hi] of positive integers; empty() when no integer
/// point is covered. `hi == kUnbounded` denotes an infinite upper end.
struct IntegerRange {
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  std::size_t lo = 1;
  std::size_t hi = 0;

  [[nodiscard]] bool empty() const { return hi < lo; }
  [[nodiscard]] bool unbounded() const { return hi == kUnbounded; }
  [[nodiscard]] bool contains(std::size_t k) const { return lo <= k && k <= hi; }
  /// Number of integer points (undefined for unbounded ranges).
  [[nodiscard]] std::size_t count() const { return empty() ? 0 : hi - lo + 1; }

  friend bool operator==(const IntegerRange&, const IntegerRange&) = default;
};

/// Result of an envelope computation: for input line i, `range_of[i]` is the
/// set of integer x >= 1 where line i is the minimum (ties are awarded to the
/// *later* input line, matching the paper's "choose the higher processing
/// rate in case of a tie"). The non-empty ranges partition [1, inf).
struct EnvelopeResult {
  std::vector<IntegerRange> range_of;

  /// Indices of lines with a non-empty range, in increasing order of `lo`
  /// (the paper's P-hat).
  std::vector<std::size_t> active;

  /// Index of the line that wins integer position k (k >= 1). O(log n).
  [[nodiscard]] std::size_t winner(std::size_t k) const;
};

/// Computes the lower envelope of `lines` over integer positions x >= 1.
///
/// Preconditions (checked): `lines` non-empty; slopes strictly decreasing;
/// intercepts strictly increasing. These hold for lines induced by a valid
/// rate set (higher rate => strictly less time per cycle, strictly more
/// energy per cycle), and they are what makes the single-pass Theta(n)
/// construction sound.
[[nodiscard]] EnvelopeResult lower_envelope_integer(std::span<const Line> lines);

/// Brute-force reference: evaluates every line at position k and returns the
/// index of the minimum, breaking ties toward the later line. O(n) per call;
/// used by tests and by the A1 ablation bench as the naive baseline.
[[nodiscard]] std::size_t argmin_line_at(std::span<const Line> lines,
                                         std::size_t k);

/// Single-slot memo of lower_envelope_integer, keyed by the exact line
/// set. Algorithm 1 depends only on the rate configuration (through the
/// induced lines), not on the queue contents, so callers that re-derive
/// the envelope per decision can route through one of these and pay the
/// Theta(n) construction only when the rate set actually changes.
///
/// Invalidation contract (see docs/flat_range_tree.md): get() compares the
/// requested lines element-wise against the cached key — any change of
/// slope, intercept, id, order, or count rebuilds; bit-identical requests
/// are served from cache. invalidate() drops the cache unconditionally.
class MemoizedEnvelope {
 public:
  /// The envelope of `lines`, rebuilt iff `lines` differs from the cached
  /// key. The reference stays valid until the next get()/invalidate().
  const EnvelopeResult& get(std::span<const Line> lines);

  void invalidate() {
    valid_ = false;
    key_.clear();
  }

  [[nodiscard]] bool valid() const { return valid_; }

  /// Number of envelope constructions performed (cache rebuilds); test
  /// support for the stale-cache trap.
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }

 private:
  std::vector<Line> key_;
  EnvelopeResult cached_;
  std::size_t rebuilds_ = 0;
  bool valid_ = false;
};

}  // namespace dvfs::ds
