/// \file generate.h
/// \brief Random-but-reproducible instance generation, one recipe per
///        oracle pair.
///
/// Instances are drawn from a 64-bit seed through SplitMix64 only (no
/// std::*_distribution), so a printed seed reproduces the identical
/// instance on every platform. Each oracle has its own size envelope: the
/// exponential references bound the joint (tasks, rates, cores) draw so a
/// single instance stays cheap, while the polynomial oracles get much
/// larger instances.
///
/// Degeneracy is generated on purpose: single-rate sets, near-duplicate
/// rates (RateSet requires strictly increasing rates, so exact duplicates
/// are invalid by construction — near-ties at 1e-5 GHz spacing exercise
/// the same tie-breaking paths), duplicate cycle counts, heterogeneous
/// per-core tables, and bursty arrival clusters.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "dvfs/proptest/instance.h"
#include "dvfs/proptest/rng.h"

namespace dvfs::proptest {

inline constexpr const char* kOracleNames[] = {
    "ltl_vs_bf", "ltl_vs_sorted",   "wbg_vs_bf", "wbg_vs_rr",
    "envelope",  "lmc_incremental", "lmc_soa",   "sim_energy",
};

namespace gen_detail {

/// A random valid energy model with `num_rates` rates. Mixes an analytic
/// cubic recipe with a multiplicative random walk; ~15% of increments are
/// near-ties (1e-5 GHz apart) to stress tie-breaking.
inline CoreModelSpec random_model(SplitMix64& g, std::size_t num_rates) {
  CoreModelSpec spec;
  double p = g.uniform_real(0.2, 1.2);
  for (std::size_t i = 0; i < num_rates; ++i) {
    spec.rates_ghz.push_back(p);
    p += g.chance(0.15) ? g.uniform_real(1e-5, 1e-3)
                        : g.uniform_real(0.05, 1.0);
  }
  constexpr double nano = 1e-9;
  if (g.chance(0.5)) {
    // Cubic-power style: E = kappa * p^2 + static, T = 1/p. Monotone in p.
    const double kappa = g.uniform_real(0.1, 3.0);
    const double stat = g.uniform_real(0.0, 2.0);
    for (const Rate r : spec.rates_ghz) {
      spec.energy_per_cycle.push_back((kappa * r * r + stat) * nano);
      spec.time_per_cycle.push_back(nano / r);
    }
  } else {
    // Random multiplicative walk: strictly monotone regardless of how
    // close the rates are, with occasional near-flat steps.
    double e = g.uniform_real(0.5, 5.0) * nano;
    double t = g.uniform_real(0.3, 3.0) * nano;
    for (std::size_t i = 0; i < num_rates; ++i) {
      spec.energy_per_cycle.push_back(e);
      spec.time_per_cycle.push_back(t);
      const double step = g.chance(0.2) ? g.uniform_real(1e-4, 1e-2)
                                        : g.uniform_real(0.05, 1.5);
      e *= 1.0 + step;
      t /= 1.0 + (g.chance(0.2) ? g.uniform_real(1e-4, 1e-2)
                                : g.uniform_real(0.05, 1.5));
    }
  }
  return spec;
}

/// One cycle count from the instance's distribution style.
inline Cycles random_cycles(SplitMix64& g, int style) {
  switch (style) {
    case 0:  // tiny counts: maximal collision/duplicate probability
      return g.uniform_u64(1, 12);
    case 1:  // mid uniform
      return g.uniform_u64(1, 1'000'000);
    case 2:  // heavy-tailed (service-time-like)
      return std::max<Cycles>(
          1, static_cast<Cycles>(std::min(1e15, g.lognormalish(18.0, 1.5))));
    case 3:  // bimodal: interactive-ish blips vs judge-ish slabs
      return g.chance(0.5) ? g.uniform_u64(1, 1000)
                           : g.uniform_u64(1'000'000'000, 10'000'000'000ull);
    default:  // near-constant: all tasks within +-1 of a shared base
      return 1000 + g.uniform_u64(0, 2);
  }
}

/// n batch tasks (arrival 0) with ids 0..n-1.
inline std::vector<core::Task> batch_tasks(SplitMix64& g, std::size_t n) {
  const int style = static_cast<int>(g.uniform_u64(0, 4));
  std::vector<core::Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i] = core::Task{.id = i, .cycles = random_cycles(g, style)};
  }
  return tasks;
}

/// Largest rate count r with fact(n) * r^n within `budget` plan builds.
inline std::size_t max_rates_for_permutations(std::size_t n, double budget,
                                              std::size_t cap) {
  double fact = 1.0;
  for (std::size_t i = 2; i <= n; ++i) fact *= static_cast<double>(i);
  for (std::size_t r = cap; r >= 2; --r) {
    if (fact * std::pow(static_cast<double>(r), static_cast<double>(n)) <=
        budget) {
      return r;
    }
  }
  return 1;
}

/// Largest task count n with cores^n within `budget`.
inline std::size_t max_tasks_for_assignment(std::size_t cores, double budget,
                                            std::size_t cap) {
  if (cores <= 1) return cap;
  for (std::size_t n = cap; n >= 2; --n) {
    if (std::pow(static_cast<double>(cores), static_cast<double>(n)) <=
        budget) {
      return n;
    }
  }
  return 1;
}

}  // namespace gen_detail

/// Generates the instance for `oracle` from `seed`. Unknown oracle names
/// throw PreconditionError.
[[nodiscard]] inline Instance generate_instance(const std::string& oracle,
                                                std::uint64_t seed) {
  using namespace gen_detail;
  SplitMix64 g(seed);
  Instance inst;
  inst.oracle = oracle;
  inst.seed = seed;
  inst.params =
      core::CostParams{g.uniform_real(0.01, 2.0), g.uniform_real(0.01, 2.0)};

  if (oracle == "ltl_vs_bf") {
    // Full n! * r^n reference: keep the joint size under ~2^18 plans.
    const std::size_t n = g.uniform_u64(1, 6);
    const std::size_t r =
        g.uniform_u64(1, max_rates_for_permutations(n, 262144.0, 5));
    inst.cores.push_back(random_model(g, r));
    inst.tasks = batch_tasks(g, n);
  } else if (oracle == "ltl_vs_sorted") {
    // Theorem-3 order fixed, r^n rate assignments searched.
    const std::size_t n = g.uniform_u64(1, 10);
    std::size_t r = 6;
    while (r > 1 && std::pow(static_cast<double>(r),
                             static_cast<double>(n)) > 262144.0) {
      --r;
    }
    inst.cores.push_back(random_model(g, g.uniform_u64(1, r)));
    inst.tasks = batch_tasks(g, n);
  } else if (oracle == "wbg_vs_bf") {
    const std::size_t cores = g.uniform_u64(1, 4);
    const std::size_t n =
        g.uniform_u64(1, max_tasks_for_assignment(cores, 65536.0, 9));
    const bool heterogeneous = g.chance(0.7);
    for (std::size_t j = 0; j < cores; ++j) {
      if (heterogeneous || inst.cores.empty()) {
        inst.cores.push_back(random_model(g, g.uniform_u64(1, 5)));
      } else {
        inst.cores.push_back(inst.cores.front());
      }
    }
    inst.tasks = batch_tasks(g, n);
  } else if (oracle == "wbg_vs_rr") {
    // Homogeneous-only: Theorem 4 round robin is the reference.
    const std::size_t cores = g.uniform_u64(1, 6);
    const CoreModelSpec shared = random_model(g, g.uniform_u64(1, 8));
    inst.cores.assign(cores, shared);
    inst.tasks = batch_tasks(g, g.uniform_u64(1, 48));
  } else if (oracle == "envelope") {
    // Dominating ranges vs per-position argmin; tasks are irrelevant.
    inst.cores.push_back(random_model(g, g.uniform_u64(1, 24)));
  } else if (oracle == "lmc_incremental") {
    inst.cores.push_back(random_model(g, g.uniform_u64(1, 8)));
    const std::size_t n = g.uniform_u64(1, 40);
    const int style = static_cast<int>(g.uniform_u64(0, 4));
    Seconds t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += g.uniform_real(0.0, 1.0);
      inst.tasks.push_back(core::Task{.id = i,
                                      .cycles = random_cycles(g, style),
                                      .arrival = t,
                                      .klass =
                                          core::TaskClass::kNonInteractive});
    }
  } else if (oracle == "lmc_soa") {
    // Heterogeneous multi-core: the SoA scans must agree with scalar
    // per-core evaluation on every placement, including near-tied cores
    // (identical models make ties exact, so tie-breaks get exercised too).
    const std::size_t cores = g.uniform_u64(1, 4);
    const bool heterogeneous = g.chance(0.7);
    for (std::size_t j = 0; j < cores; ++j) {
      if (heterogeneous || inst.cores.empty()) {
        inst.cores.push_back(random_model(g, g.uniform_u64(1, 8)));
      } else {
        inst.cores.push_back(inst.cores.front());
      }
    }
    const std::size_t n = g.uniform_u64(1, 40);
    const int style = static_cast<int>(g.uniform_u64(0, 4));
    Seconds t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += g.uniform_real(0.0, 1.0);
      inst.tasks.push_back(
          core::Task{.id = i,
                     .cycles = random_cycles(g, style),
                     .arrival = t,
                     .klass = g.chance(0.3)
                                  ? core::TaskClass::kInteractive
                                  : core::TaskClass::kNonInteractive});
    }
  } else if (oracle == "sim_energy") {
    const std::size_t cores = g.uniform_u64(1, 3);
    for (std::size_t j = 0; j < cores; ++j) {
      inst.cores.push_back(random_model(g, g.uniform_u64(1, 5)));
    }
    const std::size_t n = g.uniform_u64(1, 30);
    const bool bursty = g.chance(0.4);
    Seconds t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Bursty traces pile several arrivals onto the same instant, which
      // stresses same-time event ordering in the engine.
      if (!bursty || g.chance(0.6)) t += g.uniform_real(0.0, 2.0);
      core::Task task{.id = i,
                      .cycles = g.uniform_u64(1'000'000, 2'000'000'000),
                      .arrival = t,
                      .klass = g.chance(0.3)
                                   ? core::TaskClass::kInteractive
                                   : core::TaskClass::kNonInteractive};
      if (task.klass == core::TaskClass::kInteractive && g.chance(0.7)) {
        task.deadline = task.arrival + g.uniform_real(0.05, 5.0);
      }
      inst.tasks.push_back(task);
    }
  } else {
    DVFS_REQUIRE(false, "unknown oracle `" + oracle + "`");
  }
  return inst;
}

}  // namespace dvfs::proptest
