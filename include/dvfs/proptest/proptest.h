/// \file proptest.h
/// \brief Umbrella header for the property-based differential-testing
///        library: deterministic RNG, instance model + serialization,
///        per-oracle generators, oracle cross-checks, greedy shrinking,
///        and the fuzz harness. See docs/testing.md for the user guide.
#pragma once

#include "dvfs/proptest/generate.h"
#include "dvfs/proptest/harness.h"
#include "dvfs/proptest/inject.h"
#include "dvfs/proptest/instance.h"
#include "dvfs/proptest/oracles.h"
#include "dvfs/proptest/rng.h"
#include "dvfs/proptest/shrink.h"
