/// \file rng.h
/// \brief Deterministic random primitives for the differential fuzzer.
///
/// Every fuzz instance must be reproducible from a printed 64-bit seed on
/// any platform and standard library. std::mt19937_64 is portable but the
/// standard *distributions* are not (libstdc++ and libc++ produce
/// different streams), so this header ships its own SplitMix64 generator
/// and the handful of fixed-algorithm draws the instance generators need.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "dvfs/common.h"

namespace dvfs::proptest {

/// SplitMix64 (Steele, Lea & Flood): full-period 64-bit generator with a
/// one-instruction state transition. Used both as the fuzzer's stream and
/// to derive independent sub-streams (one per instance index).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection-free modulo;
  /// the tiny bias is irrelevant for test-case generation and keeps the
  /// draw identical everywhere.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    DVFS_REQUIRE(lo <= hi, "uniform_u64 bounds inverted");
    const std::uint64_t span = hi - lo;
    if (span == UINT64_MAX) return next();
    return lo + next() % (span + 1);
  }

  std::size_t uniform_index(std::size_t size) {
    DVFS_REQUIRE(size > 0, "uniform_index over empty range");
    return static_cast<std::size_t>(uniform_u64(0, size - 1));
  }

  /// Uniform real in [lo, hi) from the top 53 bits.
  double uniform_real(double lo, double hi) {
    const double u =
        static_cast<double>(next() >> 11) * 0x1.0p-53;  // [0, 1)
    return lo + (hi - lo) * u;
  }

  /// exp(N(mu, sigma))-shaped heavy-tailed draw. The normal variate comes
  /// from a fixed-form sum of uniforms (Irwin-Hall, 12 terms), which is
  /// platform-stable unlike std::normal_distribution.
  double lognormalish(double mu, double sigma) {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += uniform_real(0.0, 1.0);
    return std::exp(mu + sigma * (s - 6.0));
  }

  /// True with probability `p`.
  bool chance(double p) { return uniform_real(0.0, 1.0) < p; }

  template <typename T>
  const T& pick(std::span<const T> options) {
    return options[uniform_index(options.size())];
  }

 private:
  std::uint64_t state_;
};

/// Independent stream for instance `index` of a run seeded with `base`:
/// feeding the pair through one SplitMix64 step decorrelates neighbouring
/// indices, so instance k is reproducible without replaying 0..k-1.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base,
                                               std::uint64_t index) {
  SplitMix64 mix(base ^ (0xA5A5A5A5A5A5A5A5ull + index * 0x9E3779B97F4A7C15ull));
  return mix.next();
}

}  // namespace dvfs::proptest
