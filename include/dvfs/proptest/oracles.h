/// \file oracles.h
/// \brief The differential oracle pairs.
///
/// Each oracle cross-checks a production algorithm against an independent
/// reference on one Instance and returns nullopt (pass) or a human-readable
/// mismatch description (fail). The hierarchy, strongest first:
///
///   1. exact exponential references (`brute_force_single`,
///      `brute_force_assignment`) — ground truth on tiny instances;
///   2. semi-exact references that fix one theorem and search the rest
///      (`brute_force_rates_sorted` fixes the Theorem 3 order);
///   3. independent reimplementations of the same quantity
///      (naive per-position argmin vs the envelope; full-replan cost vs
///      the incremental Eq. 32 accounting; power-meter integration vs the
///      engine's energy bookkeeping).
///
/// All comparisons are on *costs*, not on plan identity: distinct plans
/// with equal cost are both optimal (ties are common by construction),
/// and cost comparison is robust to benign tie-break divergence.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dvfs/core/batch_multi.h"
#include "dvfs/core/batch_single.h"
#include "dvfs/core/dynamic_sched.h"
#include "dvfs/core/online_lmc.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/proptest/instance.h"
#include "dvfs/proptest/rng.h"
#include "dvfs/sim/engine.h"
#include "dvfs/sim/power_meter.h"
#include "dvfs/workload/trace.h"

namespace dvfs::proptest {

/// Verdict of one oracle evaluation: nullopt = pass.
using Verdict = std::optional<std::string>;

/// Injection point: the single-core scheduler under test. The fuzz tool's
/// --inject mode swaps in a deliberately broken scratch copy to
/// demonstrate detection + shrinking end to end.
using SingleCoreSubject = std::function<core::CorePlan(
    std::span<const core::Task>, const core::CostTable&)>;

struct OracleHooks {
  SingleCoreSubject single_core;  ///< empty => core::longest_task_last
};

namespace oracle_detail {

inline bool close(double a, double b, double rel, double abs_floor) {
  return almost_equal(a, b, rel, abs_floor);
}

inline Verdict fail(std::ostringstream& os) { return os.str(); }

inline Verdict check_single_core_pair(const Instance& inst,
                                      const OracleHooks& hooks,
                                      bool sorted_reference) {
  const std::vector<core::CostTable> tables = inst.tables();
  const core::CostTable& table = tables.front();
  const SingleCoreSubject subject =
      hooks.single_core
          ? hooks.single_core
          : [](std::span<const core::Task> ts, const core::CostTable& t) {
              return core::longest_task_last(ts, t);
            };
  const core::CorePlan plan = subject(inst.tasks, table);
  core::Plan wrapped;
  wrapped.cores.push_back(plan);
  if (!core::plan_is_permutation_of(wrapped, inst.tasks, tables)) {
    std::ostringstream os;
    os << "subject plan is not a valid permutation of the input tasks";
    return fail(os);
  }
  const Money got = core::evaluate_single(plan, table).total();
  const core::CorePlan ref_plan =
      sorted_reference ? core::brute_force_rates_sorted(inst.tasks, table)
                       : core::brute_force_single(inst.tasks, table);
  const Money ref = core::evaluate_single(ref_plan, table).total();
  if (!close(got, ref, 1e-9, 1e-18)) {
    std::ostringstream os;
    os << (sorted_reference ? "longest_task_last vs brute_force_rates_sorted"
                            : "longest_task_last vs brute_force_single")
       << ": subject cost " << got << " != reference cost " << ref
       << (got > ref ? " (subject is suboptimal)"
                     : " (subject beat the exhaustive reference: evaluator "
                       "or reference bug)");
    return fail(os);
  }
  return std::nullopt;
}

inline Verdict check_wbg_vs_bf(const Instance& inst) {
  const std::vector<core::CostTable> tables = inst.tables();
  const core::Plan plan = core::workload_based_greedy(inst.tasks, tables);
  if (!core::plan_is_permutation_of(plan, inst.tasks, tables)) {
    std::ostringstream os;
    os << "WBG plan is not a valid permutation of the input tasks";
    return fail(os);
  }
  const Money got = core::evaluate_plan(plan, tables).total();
  const Money ref =
      core::evaluate_plan(core::brute_force_assignment(inst.tasks, tables),
                          tables)
          .total();
  if (!close(got, ref, 1e-9, 1e-18)) {
    std::ostringstream os;
    os << "workload_based_greedy vs brute_force_assignment: " << got
       << " != " << ref
       << (got > ref ? " (greedy is suboptimal)" : " (reference bug)");
    return fail(os);
  }
  return std::nullopt;
}

inline Verdict check_wbg_vs_rr(const Instance& inst) {
  const std::vector<core::CostTable> tables = inst.tables();
  const core::Plan wbg = core::workload_based_greedy(inst.tasks, tables);
  const core::Plan rr = core::round_robin_homogeneous(
      inst.tasks, tables.front(), tables.size());
  const Money cw = core::evaluate_plan(wbg, tables).total();
  const Money cr = core::evaluate_plan(rr, tables).total();
  // Theorems 4 and 5 both claim optimality on homogeneous platforms, so
  // the two plans must cost the same even when they differ structurally.
  if (!close(cw, cr, 1e-9, 1e-18)) {
    std::ostringstream os;
    os << "workload_based_greedy vs round_robin_homogeneous (homogeneous "
          "platform): "
       << cw << " != " << cr;
    return fail(os);
  }
  return std::nullopt;
}

inline Verdict check_envelope(const Instance& inst) {
  const core::CostTable table(inst.cores.front().model(), inst.params);
  // Structural invariants: the ranges partition [1, inf).
  const auto ranges = table.ranges();
  if (ranges.empty() || ranges.front().range.lo != 1 ||
      !ranges.back().range.unbounded()) {
    return "dominating ranges do not start at 1 / end unbounded";
  }
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].range.lo != ranges[i - 1].range.hi + 1) {
      std::ostringstream os;
      os << "dominating ranges not contiguous at index " << i;
      return fail(os);
    }
  }
  // Differential: envelope winner vs naive argmin, compared on cost.
  std::vector<std::size_t> positions;
  for (std::size_t k = 1; k <= 64; ++k) positions.push_back(k);
  for (const core::DominatingRange& r : ranges) {
    if (r.range.lo > 1) positions.push_back(r.range.lo - 1);
    positions.push_back(r.range.lo);
    if (!r.range.unbounded()) {
      positions.push_back(r.range.hi);
      positions.push_back(r.range.hi + 1);
    }
  }
  for (const std::size_t k : {std::size_t{1000}, std::size_t{100000},
                              std::size_t{10000000}}) {
    positions.push_back(k);
  }
  for (const std::size_t k : positions) {
    const std::size_t fast = table.best_rate(k);
    const std::size_t naive = table.best_rate_naive(k);
    const double cf = table.backward_cost(k, fast);
    const double cn = table.backward_cost(k, naive);
    if (!close(cf, cn, 1e-9, 1e-18)) {
      std::ostringstream os;
      os << "lower_envelope vs naive argmin at k=" << k << ": rate " << fast
         << " costs " << cf << ", naive rate " << naive << " costs " << cn;
      return fail(os);
    }
  }
  return std::nullopt;
}

inline Verdict check_lmc_incremental(const Instance& inst) {
  const core::CostTable table(inst.cores.front().model(), inst.params);
  core::DynamicSingleCoreScheduler sched(table);
  auto replanned = [&]() {
    return core::evaluate_single(sched.plan(), table).total();
  };
  auto mismatch = [&](const char* what, std::size_t step, Money a, Money b) {
    std::ostringstream os;
    os << "lmc incremental accounting: " << what << " after op " << step
       << ": " << a << " != " << b;
    return Verdict(os.str());
  };
  // Arrival phase: every insert's peek/probe marginal must match the
  // realized cost delta, and the running Eq. 32 cost must match a full
  // evaluate_single replan of the materialized queue.
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    const Cycles c = inst.tasks[i].cycles;
    const Money peek = sched.peek_marginal_insert_cost(c);
    const Money probe = sched.marginal_insert_cost(c);
    const Money before = sched.total_cost();
    (void)sched.insert(c, inst.tasks[i].id);
    const Money after = sched.total_cost();
    const double scale = std::max(1e-12, std::abs(after));
    if (!almost_equal(peek, probe, 1e-6, 1e-9 * scale)) {
      return mismatch("peek vs probe marginal", i, peek, probe);
    }
    if (!almost_equal(probe, after - before, 1e-6, 1e-9 * scale)) {
      return mismatch("probe marginal vs realized delta", i, probe,
                      after - before);
    }
    const Money replan = replanned();
    if (!almost_equal(after, replan, 1e-9, 1e-12 * scale)) {
      return mismatch("incremental cost vs full replan", i, after, replan);
    }
    if (!sched.validate()) {
      std::ostringstream os;
      os << "dynamic scheduler invariants broken after insert " << i;
      return fail(os);
    }
  }
  // Drain phase: popping the front must keep the incremental cost in
  // lockstep with the replan.
  std::size_t step = inst.tasks.size();
  while (!sched.empty()) {
    sched.erase(sched.front());
    const Money after = sched.total_cost();
    const Money replan = replanned();
    const double scale = std::max(1e-12, std::abs(after));
    if (!almost_equal(after, replan, 1e-9, 1e-12 * scale)) {
      return mismatch("incremental cost vs full replan (drain)", step, after,
                      replan);
    }
    if (!sched.validate()) {
      std::ostringstream os;
      os << "dynamic scheduler invariants broken at drain step " << step;
      return fail(os);
    }
    ++step;
  }
  return std::nullopt;
}

inline Verdict check_sim_energy(const Instance& inst) {
  std::vector<core::EnergyModel> models;
  std::vector<core::CostTable> tables;
  for (const CoreModelSpec& c : inst.cores) {
    models.push_back(c.model());
    tables.emplace_back(c.model(), inst.params);
  }
  sim::Engine engine(models, sim::ContentionModel::none());
  governors::LmcPolicy policy(tables);
  sim::PowerTracingPolicy meter(policy, /*idle_watts_per_core=*/0.0);
  const workload::Trace trace(std::vector<core::Task>(inst.tasks));
  const sim::SimResult r = engine.run(trace, meter);
  if (r.completed_count() != inst.tasks.size()) {
    std::ostringstream os;
    os << "simulation left " << (inst.tasks.size() - r.completed_count())
       << " tasks incomplete";
    return fail(os);
  }
  // Independent meter integration (step-function power trace) vs the
  // engine's exact segment-by-segment energy accounting.
  const Joules metered = meter.integrate(r.end_time);
  const double scale = std::max(1e-9, r.busy_energy);
  if (!almost_equal(metered, r.busy_energy, 1e-6, 1e-9 * scale)) {
    std::ostringstream os;
    os << "power meter integral " << metered << " != engine busy_energy "
       << r.busy_energy;
    return fail(os);
  }
  // Per-task attribution must sum back to the platform total.
  Joules per_task = 0.0;
  for (const sim::TaskRecord& t : r.tasks) per_task += t.energy;
  if (!almost_equal(per_task, r.busy_energy, 1e-6, 1e-9 * scale)) {
    std::ostringstream os;
    os << "sum of per-task energy " << per_task << " != engine busy_energy "
       << r.busy_energy;
    return fail(os);
  }
  return std::nullopt;
}

/// Distance between two doubles in units in the last place, via the
/// monotone lexicographic reinterpretation of the IEEE-754 bit pattern.
inline std::uint64_t ulp_distance(double a, double b) {
  auto ordered = [](double x) {
    const std::int64_t i = std::bit_cast<std::int64_t>(x);
    return i >= 0 ? i : std::numeric_limits<std::int64_t>::min() - i;
  };
  const std::int64_t la = ordered(a);
  const std::int64_t lb = ordered(b);
  return la >= lb ? static_cast<std::uint64_t>(la - lb)
                  : static_cast<std::uint64_t>(lb - la);
}

inline Verdict check_lmc_soa(const Instance& inst) {
  // Two schedulers fed the identical arrival sequence stay in lockstep;
  // the subject's structure-of-arrays scans are compared against scalar
  // per-core evaluation on the mirror. Decisions must match EXACTLY (the
  // SoA rewrite may not change a single placement); candidate costs must
  // match to a couple of ULPs (the scan is specified to keep the scalar
  // association, so anything beyond rounding noise is a real divergence).
  core::LmcScheduler subject(inst.tables());
  core::LmcScheduler mirror(inst.tables());
  SplitMix64 g(derive_seed(inst.seed, 0xE27));
  const std::size_t n = subject.num_cores();
  std::vector<std::size_t> extra_waiting(n);
  std::vector<Money> extra_cost(n);
  std::vector<Money> scan;
  std::vector<Money> probed;

  for (std::size_t step = 0; step < inst.tasks.size(); ++step) {
    const core::Task& task = inst.tasks[step];
    auto mismatch = [&](const char* what, std::size_t core, Money got,
                        Money want) {
      std::ostringstream os;
      os.precision(17);
      os << "lmc soa scan: " << what << " at arrival " << step << " core "
         << core << ": " << got << " != " << want;
      return Verdict(os.str());
    };
    if (task.klass == core::TaskClass::kInteractive) {
      // Executor-visible waiting work the queues don't know about.
      for (std::size_t j = 0; j < n; ++j) {
        extra_waiting[j] = g.uniform_u64(0, 5);
      }
      const std::size_t fast =
          subject.interactive_scan(task.cycles, extra_waiting, scan);
      std::size_t slow = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const Money c = mirror.interactive_marginal_cost(
            j, task.cycles, mirror.queue(j).size() + extra_waiting[j]);
        if (ulp_distance(scan[j], c) > 2) {
          return mismatch("Eq. 27 cost (scan vs scalar)", j, scan[j], c);
        }
        if (c < mirror.interactive_marginal_cost(
                    slow, task.cycles,
                    mirror.queue(slow).size() + extra_waiting[slow])) {
          slow = j;
        }
      }
      if (fast != slow) {
        std::ostringstream os;
        os << "lmc soa scan: interactive core choice at arrival " << step
           << ": scan chose " << fast << ", scalar argmin chose " << slow;
        return fail(os);
      }
      // Interactive tasks never enter the queues: no state change.
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        extra_cost[j] = g.chance(0.5) ? g.uniform_real(0.0, 1.0) : 0.0;
      }
      // Scalar reference: probe every mirror queue before any mutation.
      std::vector<Money> ref(n);
      std::size_t slow = 0;
      for (std::size_t j = 0; j < n; ++j) {
        ref[j] = mirror.queue(j).peek_marginal_insert_cost(task.cycles) +
                 extra_cost[j];
        if (ref[j] < ref[slow]) slow = j;
      }
      const core::LmcScheduler::Placement placement =
          subject.place_non_interactive(task.cycles, task.id, extra_cost,
                                        &probed);
      if (placement.core != slow) {
        std::ostringstream os;
        os << "lmc soa scan: non-interactive placement at arrival " << step
           << ": scan chose core " << placement.core
           << ", scalar argmin chose " << slow;
        return fail(os);
      }
      if (probed.size() != n) {
        std::ostringstream os;
        os << "lmc soa scan: probed vector has " << probed.size()
           << " entries, expected " << n;
        return fail(os);
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (ulp_distance(probed[j], ref[j]) > 2) {
          return mismatch("probed marginal (scan vs scalar)", j, probed[j],
                          ref[j]);
        }
      }
      if (ulp_distance(placement.marginal, ref[slow]) > 2) {
        return mismatch("chosen marginal", slow, placement.marginal,
                        ref[slow]);
      }
      // Replay the placement on the mirror to stay in lockstep.
      (void)mirror.queue(placement.core).insert(task.cycles, task.id);
    }
  }
  // Identical insert sequences must leave bit-identical queue state.
  const Money cs = subject.total_queue_cost();
  const Money cm = mirror.total_queue_cost();
  if (ulp_distance(cs, cm) > 2) {
    std::ostringstream os;
    os.precision(17);
    os << "lmc soa scan: final queue cost diverged: " << cs << " != " << cm;
    return fail(os);
  }
  return std::nullopt;
}

}  // namespace oracle_detail

/// Runs the oracle named by `inst.oracle`. Throws PreconditionError for
/// unknown names or instances invalid for their oracle.
[[nodiscard]] inline Verdict check_instance(const Instance& inst,
                                            const OracleHooks& hooks = {}) {
  using namespace oracle_detail;
  DVFS_REQUIRE(!inst.cores.empty(), "instance needs at least one core");
  if (inst.oracle == "ltl_vs_bf") {
    return check_single_core_pair(inst, hooks, /*sorted_reference=*/false);
  }
  if (inst.oracle == "ltl_vs_sorted") {
    return check_single_core_pair(inst, hooks, /*sorted_reference=*/true);
  }
  if (inst.oracle == "wbg_vs_bf") return check_wbg_vs_bf(inst);
  if (inst.oracle == "wbg_vs_rr") return check_wbg_vs_rr(inst);
  if (inst.oracle == "envelope") return check_envelope(inst);
  if (inst.oracle == "lmc_incremental") return check_lmc_incremental(inst);
  if (inst.oracle == "lmc_soa") return check_lmc_soa(inst);
  if (inst.oracle == "sim_energy") return check_sim_energy(inst);
  DVFS_REQUIRE(false, "unknown oracle `" + inst.oracle + "`");
  return std::nullopt;  // unreachable
}

}  // namespace dvfs::proptest
