/// \file inject.h
/// \brief Deliberately broken scratch copies of production algorithms.
///
/// The fuzzer's own detection and shrinking machinery needs a known bug
/// to prove it works (a fuzzer that never fires is indistinguishable from
/// a fuzzer that cannot fire). These subjects are *scratch copies* — the
/// production implementations are untouched — wired in through
/// OracleHooks by `dvfs_fuzz --inject ...` and by the self-tests in
/// test_differential.cpp.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "dvfs/core/batch_single.h"

namespace dvfs::proptest::inject {

/// Algorithm 2 with a classic off-by-one: the task at forward position k
/// is rated for backward position n - k instead of n - k + 1 (clamped to
/// 1), i.e. every task borrows the rate of the task *behind* it. Costs
/// diverge from the optimum whenever a dominating-range boundary falls
/// inside [1, n], which needs >= 2 rates and usually >= 2 tasks — exactly
/// the minimal shapes the shrinker should land on.
[[nodiscard]] inline core::CorePlan longest_task_last_off_by_one(
    std::span<const core::Task> tasks, const core::CostTable& table) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].cycles != tasks[b].cycles)
      return tasks[a].cycles < tasks[b].cycles;
    return tasks[a].id < tasks[b].id;
  });
  const std::size_t n = tasks.size();
  core::CorePlan plan;
  plan.sequence.reserve(n);
  for (std::size_t k = 1; k <= n; ++k) {
    const core::Task& t = tasks[order[k - 1]];
    const std::size_t backward = std::max<std::size_t>(n - k, 1);  // BUG
    plan.sequence.push_back(
        core::ScheduledTask{t.id, t.cycles, table.best_rate(backward)});
  }
  return plan;
}

}  // namespace dvfs::proptest::inject
