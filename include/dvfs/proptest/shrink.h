/// \file shrink.h
/// \brief Greedy counterexample minimization.
///
/// Given a failing instance and a predicate "does this instance still
/// fail?", the shrinker repeatedly applies structure-reducing
/// transformations — drop a task, halve a cycle count, drop a rate, drop
/// a core — keeping any transformation that preserves the failure, until
/// a full pass changes nothing. Every transformation strictly reduces a
/// well-founded measure (task count, total cycles, rate count, core
/// count), so termination is guaranteed; a budget additionally caps the
/// number of predicate evaluations because each evaluation may run an
/// exponential reference oracle.
#pragma once

#include <functional>
#include <vector>

#include "dvfs/proptest/instance.h"

namespace dvfs::proptest {

struct ShrinkStats {
  std::size_t predicate_calls = 0;
  std::size_t accepted = 0;
};

/// Still-failing predicate: true when the instance reproduces the failure.
using FailPredicate = std::function<bool(const Instance&)>;

namespace shrink_detail {

/// Candidate transformations, cheapest-win first. Each returns true and
/// fills `out` if the transformation applies to `inst`.
inline std::vector<Instance> candidates(const Instance& inst) {
  std::vector<Instance> out;
  // 1. Drop one task (front-to-back: early tasks tried first).
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    Instance c = inst;
    c.tasks.erase(c.tasks.begin() + static_cast<long>(i));
    out.push_back(std::move(c));
  }
  // 2. Drop one rate index from every core (keep >= 1 rate per core).
  std::size_t max_rates = 0;
  for (const CoreModelSpec& c : inst.cores) {
    max_rates = std::max(max_rates, c.rates_ghz.size());
  }
  for (std::size_t r = 0; r < max_rates; ++r) {
    Instance c = inst;
    bool applied = false;
    for (CoreModelSpec& core : c.cores) {
      if (r < core.rates_ghz.size() && core.rates_ghz.size() > 1) {
        const auto off = static_cast<long>(r);
        core.rates_ghz.erase(core.rates_ghz.begin() + off);
        core.energy_per_cycle.erase(core.energy_per_cycle.begin() + off);
        core.time_per_cycle.erase(core.time_per_cycle.begin() + off);
        applied = true;
      }
    }
    if (applied) out.push_back(std::move(c));
  }
  // 3. Drop one core (keep >= 1).
  if (inst.cores.size() > 1) {
    for (std::size_t j = 0; j < inst.cores.size(); ++j) {
      Instance c = inst;
      c.cores.erase(c.cores.begin() + static_cast<long>(j));
      out.push_back(std::move(c));
    }
  }
  // 4. Halve one task's cycles (floor at 1), then try pinning it to 1.
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    if (inst.tasks[i].cycles > 1) {
      Instance c = inst;
      c.tasks[i].cycles = std::max<Cycles>(1, c.tasks[i].cycles / 2);
      out.push_back(std::move(c));
      Instance one = inst;
      one.tasks[i].cycles = 1;
      out.push_back(std::move(one));
    }
  }
  // 5. Normalize online structure: zero arrivals, drop deadlines, make
  //    tasks non-interactive (irrelevant for batch oracles, cheap to try).
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    const core::Task& t = inst.tasks[i];
    if (t.arrival != 0.0) {
      Instance c = inst;
      c.tasks[i].arrival = 0.0;
      out.push_back(std::move(c));
    }
    if (t.has_deadline()) {
      Instance c = inst;
      c.tasks[i].deadline = kNoDeadline;
      out.push_back(std::move(c));
    }
    if (t.klass == core::TaskClass::kInteractive) {
      Instance c = inst;
      c.tasks[i].klass = core::TaskClass::kNonInteractive;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace shrink_detail

/// Shrinks `inst` (which must satisfy `still_fails`) to a local minimum.
/// `max_predicate_calls` bounds total oracle work.
[[nodiscard]] inline Instance shrink_instance(
    Instance inst, const FailPredicate& still_fails,
    ShrinkStats* stats = nullptr, std::size_t max_predicate_calls = 4000) {
  ShrinkStats local;
  ShrinkStats& s = stats ? *stats : local;
  bool changed = true;
  while (changed && s.predicate_calls < max_predicate_calls) {
    changed = false;
    for (Instance& candidate : shrink_detail::candidates(inst)) {
      if (s.predicate_calls >= max_predicate_calls) break;
      ++s.predicate_calls;
      bool fails = false;
      try {
        fails = still_fails(candidate);
      } catch (const PreconditionError&) {
        // A transformation can make an instance invalid for its oracle
        // (e.g. empty rate interplay); treat as "does not reproduce".
        fails = false;
      }
      if (fails) {
        inst = std::move(candidate);
        ++s.accepted;
        changed = true;
        break;  // restart the pass from the smaller instance
      }
    }
  }
  return inst;
}

}  // namespace dvfs::proptest
