/// \file instance.h
/// \brief The fuzzer's instance model and its text serialization.
///
/// One Instance carries everything a differential oracle needs: cost
/// weights, one energy model per core (rates + per-cycle energy/time
/// tables), and a task list (cycle counts, arrivals, classes). The same
/// struct feeds every oracle pair — batch oracles read only cycle counts,
/// online oracles also read arrivals and classes.
///
/// The serialization is a line-based text format (doubles printed with 17
/// significant digits so they round-trip bit-exactly). Shrunk
/// counterexamples are written in this format to `tests/corpus/`, where
/// ctest replays them as deterministic regression tests.
#pragma once

#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/energy_model.h"
#include "dvfs/core/task.h"

namespace dvfs::proptest {

/// Raw per-core model data; kept as plain vectors (not an EnergyModel) so
/// the shrinker can drop rates without re-validating intermediate states.
struct CoreModelSpec {
  std::vector<Rate> rates_ghz;
  std::vector<double> energy_per_cycle;
  std::vector<double> time_per_cycle;

  [[nodiscard]] core::EnergyModel model() const {
    return core::EnergyModel(core::RateSet(rates_ghz), energy_per_cycle,
                             time_per_cycle);
  }

  friend bool operator==(const CoreModelSpec&, const CoreModelSpec&) = default;
};

struct Instance {
  std::string oracle;      ///< oracle pair this instance targets
  std::uint64_t seed = 0;  ///< provenance (base seed that generated it)
  core::CostParams params;
  std::vector<CoreModelSpec> cores;
  std::vector<core::Task> tasks;

  [[nodiscard]] std::size_t num_rates() const {
    return cores.empty() ? 0 : cores.front().rates_ghz.size();
  }

  /// One CostTable per core; throws PreconditionError if a shrink or a
  /// hand-edited corpus file broke model validity.
  [[nodiscard]] std::vector<core::CostTable> tables() const {
    std::vector<core::CostTable> out;
    out.reserve(cores.size());
    for (const CoreModelSpec& c : cores) {
      out.emplace_back(c.model(), params);
    }
    return out;
  }

  friend bool operator==(const Instance&, const Instance&) = default;
};

namespace detail {

inline void write_doubles(std::ostream& os, const char* key,
                          const std::vector<double>& v) {
  os << key << ' ' << v.size();
  for (const double x : v) os << ' ' << x;
  os << '\n';
}

inline std::vector<double> read_doubles(std::istream& is, const char* key) {
  std::string tag;
  std::size_t n = 0;
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> n) && tag == key,
               std::string("corpus: expected `") + key + "` list");
  DVFS_REQUIRE(n <= 4096, "corpus: list unreasonably long");
  std::vector<double> v(n);
  for (double& x : v) {
    DVFS_REQUIRE(static_cast<bool>(is >> x), "corpus: truncated list");
  }
  return v;
}

}  // namespace detail

/// Serializes an instance (format "dvfs-fuzz v1", see file comment).
inline void write_instance(const Instance& inst, std::ostream& os) {
  os << "dvfs-fuzz v1\n";
  os << std::setprecision(17);
  os << "oracle " << inst.oracle << '\n';
  os << "seed " << inst.seed << '\n';
  os << "re " << inst.params.re << '\n';
  os << "rt " << inst.params.rt << '\n';
  os << "cores " << inst.cores.size() << '\n';
  for (const CoreModelSpec& c : inst.cores) {
    detail::write_doubles(os, "rates", c.rates_ghz);
    detail::write_doubles(os, "epc", c.energy_per_cycle);
    detail::write_doubles(os, "tpc", c.time_per_cycle);
  }
  os << "tasks " << inst.tasks.size() << '\n';
  for (const core::Task& t : inst.tasks) {
    os << t.id << ' ' << t.cycles << ' ' << t.arrival << ' ' << t.deadline
       << ' ' << to_string(t.klass) << '\n';
  }
}

[[nodiscard]] inline std::string instance_to_string(const Instance& inst) {
  std::ostringstream os;
  write_instance(inst, os);
  return os.str();
}

/// Parses the write_instance format. Throws PreconditionError on anything
/// malformed; model validity (monotone E/T, increasing rates) is *not*
/// checked here — it surfaces when tables() builds the EnergyModel.
[[nodiscard]] inline Instance parse_instance(std::istream& is) {
  Instance inst;
  std::string tag;
  std::string version;
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> version) && tag == "dvfs-fuzz" &&
                   version == "v1",
               "corpus: bad magic (want `dvfs-fuzz v1`)");
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> inst.oracle) && tag == "oracle",
               "corpus: expected `oracle`");
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> inst.seed) && tag == "seed",
               "corpus: expected `seed`");
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> inst.params.re) && tag == "re",
               "corpus: expected `re`");
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> inst.params.rt) && tag == "rt",
               "corpus: expected `rt`");
  std::size_t num_cores = 0;
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> num_cores) && tag == "cores",
               "corpus: expected `cores`");
  DVFS_REQUIRE(num_cores >= 1 && num_cores <= 64,
               "corpus: core count out of range");
  inst.cores.resize(num_cores);
  for (CoreModelSpec& c : inst.cores) {
    c.rates_ghz = detail::read_doubles(is, "rates");
    c.energy_per_cycle = detail::read_doubles(is, "epc");
    c.time_per_cycle = detail::read_doubles(is, "tpc");
  }
  std::size_t num_tasks = 0;
  DVFS_REQUIRE(static_cast<bool>(is >> tag >> num_tasks) && tag == "tasks",
               "corpus: expected `tasks`");
  DVFS_REQUIRE(num_tasks <= 100000, "corpus: task count out of range");
  inst.tasks.resize(num_tasks);
  for (core::Task& t : inst.tasks) {
    std::string deadline;  // may be "inf"; stream num_get rejects that token
    std::string klass;
    DVFS_REQUIRE(static_cast<bool>(is >> t.id >> t.cycles >> t.arrival >>
                                   deadline >> klass),
                 "corpus: truncated task row");
    char* end = nullptr;
    t.deadline = std::strtod(deadline.c_str(), &end);
    DVFS_REQUIRE(end == deadline.c_str() + deadline.size(),
                 "corpus: bad deadline `" + deadline + "`");
    if (klass == "batch") {
      t.klass = core::TaskClass::kBatch;
    } else if (klass == "interactive") {
      t.klass = core::TaskClass::kInteractive;
    } else if (klass == "non-interactive") {
      t.klass = core::TaskClass::kNonInteractive;
    } else {
      DVFS_REQUIRE(false, "corpus: unknown task class `" + klass + "`");
    }
  }
  return inst;
}

[[nodiscard]] inline Instance parse_instance(const std::string& text) {
  std::istringstream is(text);
  return parse_instance(is);
}

}  // namespace dvfs::proptest
