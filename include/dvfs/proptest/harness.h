/// \file harness.h
/// \brief The fuzz loop: generate -> check -> shrink -> report.
///
/// run_fuzz() drives `instances` randomized instances through one oracle.
/// On the first failure it shrinks the instance to a local minimum,
/// prints the reproduction seed, the minimal counterexample in corpus
/// format, and a ready-to-paste gtest regression body, and (optionally)
/// writes the counterexample to an artifact directory. Promoting such a
/// file into `tests/corpus/` turns it into a permanent regression test:
/// ctest replays every corpus file deterministically.
#pragma once

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "dvfs/proptest/generate.h"
#include "dvfs/proptest/oracles.h"
#include "dvfs/proptest/shrink.h"

namespace dvfs::proptest {

struct FuzzOptions {
  std::string oracle;
  std::size_t instances = 500;
  std::uint64_t base_seed = 1;
  std::string artifact_dir;    ///< "" = do not write counterexample files
  OracleHooks hooks;           ///< subject injection (tool's --inject mode)
  std::ostream* log = nullptr; ///< failure/progress reporting; null = silent
};

struct FuzzReport {
  std::size_t ran = 0;       ///< instances executed (stops at first failure)
  bool failed = false;
  std::uint64_t failing_seed = 0;
  std::string message;       ///< oracle mismatch description
  Instance shrunk;           ///< minimal counterexample (valid iff failed)
  ShrinkStats shrink_stats;
};

namespace harness_detail {

inline std::string seed_hex(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// A compilable gtest body reproducing the counterexample; paste into
/// tests/test_differential.cpp (or anything linking the proptest headers).
inline std::string regression_test_body(const Instance& inst) {
  std::ostringstream os;
  os << "TEST(DifferentialRegression, "
     << (inst.oracle.empty() ? std::string("Shrunk") : inst.oracle) << "_"
     << seed_hex(inst.seed) << ") {\n"
     << "  const char* corpus = R\"corpus(" << instance_to_string(inst)
     << ")corpus\";\n"
     << "  const auto verdict = dvfs::proptest::check_instance(\n"
     << "      dvfs::proptest::parse_instance(std::string(corpus)));\n"
     << "  EXPECT_FALSE(verdict.has_value()) << verdict.value_or(\"\");\n"
     << "}\n";
  return os.str();
}

}  // namespace harness_detail

/// Fuzzes one oracle; stops at (and shrinks) the first failure.
[[nodiscard]] inline FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport report;
  for (std::size_t i = 0; i < opts.instances; ++i) {
    const std::uint64_t seed = derive_seed(opts.base_seed, i);
    const Instance inst = generate_instance(opts.oracle, seed);
    const Verdict verdict = check_instance(inst, opts.hooks);
    ++report.ran;
    if (!verdict) continue;

    report.failed = true;
    report.failing_seed = seed;
    const FailPredicate still_fails = [&](const Instance& candidate) {
      return check_instance(candidate, opts.hooks).has_value();
    };
    report.shrunk =
        shrink_instance(inst, still_fails, &report.shrink_stats);
    // Re-derive the message from the shrunk instance (clearer numbers).
    report.message = check_instance(report.shrunk, opts.hooks)
                         .value_or(*verdict);

    if (!opts.artifact_dir.empty()) {
      std::filesystem::create_directories(opts.artifact_dir);
      const std::string path = opts.artifact_dir + "/" + opts.oracle + "-" +
                               harness_detail::seed_hex(seed) + ".corpus";
      std::ofstream os(path);
      write_instance(report.shrunk, os);
      if (opts.log) *opts.log << "counterexample written to " << path << '\n';
    }
    if (opts.log) {
      std::ostream& log = *opts.log;
      log << "FAIL oracle=" << opts.oracle << " instance=" << i
          << " seed=0x" << harness_detail::seed_hex(seed) << '\n'
          << "  " << report.message << '\n'
          << "  shrunk to " << report.shrunk.tasks.size() << " task(s), "
          << report.shrunk.num_rates() << " rate(s), "
          << report.shrunk.cores.size() << " core(s) ["
          << report.shrink_stats.predicate_calls << " predicate calls, "
          << report.shrink_stats.accepted << " reductions]\n"
          << "--- minimal counterexample (corpus format) ---\n"
          << instance_to_string(report.shrunk)
          << "--- ready-to-paste regression test ---\n"
          << harness_detail::regression_test_body(report.shrunk);
    }
    return report;
  }
  return report;
}

/// All `.corpus` files under `dir`, sorted by filename so replay order is
/// deterministic across runs and machines.
[[nodiscard]] inline std::vector<std::string> corpus_files(
    const std::string& dir) {
  std::vector<std::string> files;
  if (!std::filesystem::is_directory(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".corpus") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Replays one corpus file through its recorded oracle.
[[nodiscard]] inline Verdict replay_corpus_file(const std::string& path,
                                                const OracleHooks& hooks = {}) {
  std::ifstream is(path);
  DVFS_REQUIRE(is.good(), "cannot open corpus file: " + path);
  return check_instance(parse_instance(is), hooks);
}

}  // namespace dvfs::proptest
