/// \file fifo_policy.h
/// \brief The paper's baseline schedulers as one configurable policy.
///
/// Every baseline in the evaluation is "a placement rule + a frequency
/// rule + priority FIFO queues":
///
///   * Opportunistic Load Balancing (OLB, Fig. 2 & 3): place each task on
///     the core with the earliest ready-to-execute time; frequency at the
///     maximum (online mode) or governed by ondemand (batch mode).
///   * On-demand (OD, Fig. 3): round-robin placement; Linux ondemand
///     frequency rule — sample each core's load every second, jump to the
///     highest frequency when load exceeds 85%, otherwise step down one
///     level.
///   * Power Saving (PS, Fig. 2): like the batch OLB baseline but with the
///     usable frequencies clamped to the lower half of the rate set.
///
/// Interactive tasks outrank non-interactive ones: they preempt a running
/// non-interactive task and FIFO among themselves; preempted work resumes
/// once no higher-priority work remains.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dvfs/governors/cost_margin.h"
#include "dvfs/sim/engine.h"

namespace dvfs::governors {

class FifoPolicy final : public sim::Policy {
 public:
  enum class Placement : std::uint8_t {
    kEarliestReady,  ///< OLB: least pending work (cycles at the cap rate)
    kRoundRobin,     ///< OD: arrival i -> core i mod R
  };
  enum class FreqMode : std::uint8_t {
    kMax,           ///< always the cap rate
    kOndemand,      ///< Linux ondemand rule: jump to cap, step down
    kConservative,  ///< Linux conservative rule: step up AND down gradually
  };

  struct Config {
    Placement placement = Placement::kEarliestReady;
    FreqMode freq = FreqMode::kMax;
    /// Highest usable rate index; SIZE_MAX means the model's top rate.
    /// Power Saving passes the index of the last lower-half rate.
    std::size_t rate_cap = static_cast<std::size_t>(-1);
    /// Governor parameters (Section V-A3): sample period and the load
    /// threshold above which the frequency rises. Conservative also steps
    /// down below `conservative_down`.
    Seconds sample_interval = 1.0;
    double load_threshold = 0.85;
    double conservative_down = 0.20;
  };

  explicit FifoPolicy(Config config) : config_(config) {}

  void attach(sim::Engine& engine) override;
  void on_arrival(sim::Engine& engine, const core::Task& task) override;
  void on_complete(sim::Engine& engine, std::size_t core,
                   core::TaskId task) override;
  void on_timer(sim::Engine& engine) override;
  [[nodiscard]] Seconds timer_interval() const override {
    return config_.freq == FreqMode::kMax ? 0.0 : config_.sample_interval;
  }
  [[nodiscard]] bool idle() const override;

  /// Rate the governor currently holds for a core (for tests).
  [[nodiscard]] std::size_t governor_level(std::size_t core) const {
    DVFS_REQUIRE(core < per_core_.size(), "core index out of range");
    return per_core_[core].level;
  }

 private:
  struct Queued {
    core::TaskId id = 0;
    double remaining_cycles = 0.0;
  };
  struct CoreQueues {
    std::deque<Queued> interactive;
    std::deque<Queued> non_interactive;
    std::vector<Queued> preempted;  // stack: resume most recent first
    double backlog_cycles = 0.0;    // pending + running work
    std::size_t level = 0;          // ondemand's current rate index
    Seconds busy_sample = 0.0;      // cumulative busy at last tick
  };

  [[nodiscard]] std::size_t choose_core(const sim::Engine& engine,
                                        const core::Task& task);
  [[nodiscard]] std::size_t start_rate(std::size_t core) const;
  void start_next(sim::Engine& engine, std::size_t core);

  Config config_;
  std::vector<CoreQueues> per_core_;
  std::size_t cap_ = 0;        // resolved rate cap
  std::size_t rr_next_ = 0;    // round-robin cursor
  CostMarginTracker margin_;   // realized vs best drain time per placement
};

}  // namespace dvfs::governors
