/// \file wbg_rebalance_policy.h
/// \brief The migrating alternative the paper argues against (Section IV).
///
/// "Note that the Workload Based Greedy algorithm can be used to
/// redistribute all tasks to cores when a new task arrives. According to
/// Theorem 5, rearranging the tasks yields the minimum cost. However,
/// because the overhead incurred by the time and energy used to migrate
/// tasks could impact the performance, we need a lightweight strategy
/// without task migration." — this policy *is* that heavyweight strategy,
/// built so the trade-off is measurable instead of asserted:
///
///  * every non-interactive arrival triggers a full WBG replan over all
///    queued (not yet running) non-interactive tasks, migrating them
///    freely between cores;
///  * each migration charges `migration_penalty_cycles` extra work to the
///    moved task (cold caches, queue bookkeeping); zero models free
///    migration — the theoretical lower bound — and realistic penalties
///    show where LMC's no-migration design wins;
///  * interactive tasks are handled exactly like LmcPolicy (Eq. 27 core
///    choice, preemption at maximum frequency), isolating the comparison
///    to the non-interactive path.
///
/// The A8 bench (`bench_migration`) runs this against LmcPolicy.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "dvfs/core/batch_multi.h"
#include "dvfs/core/cost_model.h"
#include "dvfs/governors/cost_margin.h"
#include "dvfs/sim/engine.h"

namespace dvfs::governors {

class WbgRebalancePolicy final : public sim::Policy {
 public:
  WbgRebalancePolicy(std::vector<core::CostTable> tables,
                     Cycles migration_penalty_cycles = 0);

  void attach(sim::Engine& engine) override;
  void on_arrival(sim::Engine& engine, const core::Task& task) override;
  void on_complete(sim::Engine& engine, std::size_t core,
                   core::TaskId task) override;
  [[nodiscard]] bool idle() const override;

  /// Total number of queued-task migrations performed so far.
  [[nodiscard]] std::size_t migrations() const { return migrations_; }
  /// Number of full WBG replans performed so far.
  [[nodiscard]] std::size_t replans() const { return replans_; }

 private:
  struct Pending {
    core::TaskId id = 0;
    double remaining_cycles = 0.0;
  };
  struct QueuedTask {
    Cycles cycles = 0;        // includes accumulated migration penalties
    std::size_t home = 0;     // current core assignment
  };
  struct CoreState {
    std::deque<core::ScheduledTask> plan;  // forward order with rates
    std::deque<Pending> pending_interactive;
    std::vector<Pending> preempted;  // stack
  };

  void replan(sim::Engine& engine, const std::vector<core::Task>& extra);
  void start_next(sim::Engine& engine, std::size_t core);
  void adjust_running_rate(sim::Engine& engine, std::size_t core);
  [[nodiscard]] std::size_t choose_interactive_core(Cycles cycles) const;
  /// Eq. 27-style marginal cost of running an interactive task on core j
  /// (shared by the argmin and the flight recorder's candidate dump).
  [[nodiscard]] Money interactive_cost(std::size_t core, Cycles cycles) const;

  std::vector<core::CostTable> tables_;
  Cycles penalty_;
  std::vector<CoreState> per_core_;
  std::unordered_map<core::TaskId, QueuedTask> queued_;
  std::size_t migrations_ = 0;
  std::size_t replans_ = 0;
  CostMarginTracker margin_;  // zero by construction (argmin placement)
};

}  // namespace dvfs::governors
