/// \file planned_policy.h
/// \brief Executes a precomputed batch Plan on the simulator.
///
/// The paper's batch experiments first compute a scheduling plan (with
/// Workload Based Greedy or a baseline) and then execute it on the
/// machine, measuring wall time and wall energy. This policy is the
/// "execute it" half: each core runs its planned sequence in order at the
/// planned rates. Executed on an Engine with contention enabled, this is
/// the paper's "Experiment" bar; with ContentionModel::none() it
/// reproduces the analytic "Simulation" bar exactly (Fig. 1).
#pragma once

#include <unordered_map>
#include <vector>

#include "dvfs/core/schedule.h"
#include "dvfs/sim/engine.h"

namespace dvfs::governors {

class PlannedBatchPolicy final : public sim::Policy {
 public:
  explicit PlannedBatchPolicy(core::Plan plan);

  void attach(sim::Engine& engine) override;
  void on_arrival(sim::Engine& engine, const core::Task& task) override;
  void on_complete(sim::Engine& engine, std::size_t core,
                   core::TaskId task) override;
  [[nodiscard]] bool idle() const override;

 private:
  void try_start(sim::Engine& engine, std::size_t core);

  core::Plan plan_;
  std::unordered_map<core::TaskId, std::size_t> core_of_;
  std::vector<std::size_t> next_index_;      // per core: next plan slot
  std::unordered_map<core::TaskId, bool> arrived_;
};

}  // namespace dvfs::governors
