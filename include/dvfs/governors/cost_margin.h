/// \file cost_margin.h
/// \brief Realized-vs-best decision-cost accounting for governors.
///
/// Every placement decision has a candidate vector (the cost of putting
/// the task on each core) and a winner. For the paper's cost-driven
/// governors the winner *is* the argmin, so the realized cost equals the
/// best available one by construction; a baseline placement rule (round-
/// robin) routinely picks a worse candidate. `CostMarginTracker`
/// accumulates both sums and publishes the overhead as the gauge
/// `governor.cost.margin_ratio`:
///
///     margin_ratio = (sum(chosen) - sum(best)) / sum(chosen)
///
/// i.e. the fraction of realized decision cost that a better choice of
/// core would have avoided, in [0, 1). The SLO engine's
/// "governor-cost-overhead" rule alerts on it.
#pragma once

#include <cstdint>

#include "dvfs/obs/metrics.h"

namespace dvfs::governors {

class CostMarginTracker {
 public:
  /// The gauge name the ratio publishes under.
  static constexpr const char* kGaugeName = "governor.cost.margin_ratio";

  CostMarginTracker();

  /// Zeroes the sums and the published gauge (call from attach()).
  void reset();

  /// Accounts one decision. `best_cost` is the cheapest candidate of the
  /// same decision; an argmin policy passes chosen == best. Negative
  /// margins (float dust) clamp to zero.
  void observe(double chosen_cost, double best_cost);

  [[nodiscard]] double ratio() const;
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }

 private:
  double chosen_sum_ = 0.0;
  double best_sum_ = 0.0;
  std::uint64_t decisions_ = 0;
  obs::Gauge& gauge_;
};

}  // namespace dvfs::governors
