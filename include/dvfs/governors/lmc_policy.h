/// \file lmc_policy.h
/// \brief Least Marginal Cost as an executable simulation policy
///        (Section IV wired to the event engine).
///
/// The pure decision engine lives in core::LmcScheduler; this policy adds
/// the execution-side behaviour the paper describes:
///
///  * interactive arrivals run immediately at the chosen core's maximum
///    frequency, preempting a running non-interactive task; the preempted
///    task resumes when no interactive work remains;
///  * non-interactive arrivals enter the core's Theorem-3-ordered queue;
///    the queue's head runs with the rate of its queue position, and the
///    *running* non-interactive task is re-rated whenever its core's queue
///    length changes (a rate is a function of position, Lemma 1);
///  * interactive tasks that find their core already serving interactive
///    work wait FIFO (equal priority does not preempt).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "dvfs/core/online_lmc.h"
#include "dvfs/governors/cost_margin.h"
#include "dvfs/sim/engine.h"

namespace dvfs::governors {

class LmcPolicy final : public sim::Policy {
 public:
  /// Predicts a task's cycle requirement at arrival time. The paper
  /// obtains L_k "by profiling" or from "the average of the previous
  /// completed submissions" — i.e. the scheduler sees an *estimate* while
  /// the machine executes the real work. The default estimator is the
  /// oracle (exact cycles).
  using Estimator = std::function<Cycles(const core::Task&)>;

  /// `tables[j]` must be built on the same energy model as engine core j.
  explicit LmcPolicy(std::vector<core::CostTable> tables);

  /// LMC scheduling on estimated cycles: placement, queue order and rate
  /// choices use `estimator(task)`; execution charges the task's actual
  /// cycles. `on_completion` (optional) observes (task, actual cycles)
  /// when a non-interactive task finishes — the hook a
  /// HistoricalAverageEstimator updates itself from.
  LmcPolicy(std::vector<core::CostTable> tables, Estimator estimator,
            std::function<void(core::TaskId, Cycles)> on_completion = {});

  void attach(sim::Engine& engine) override;
  void on_arrival(sim::Engine& engine, const core::Task& task) override;
  void on_complete(sim::Engine& engine, std::size_t core,
                   core::TaskId task) override;
  [[nodiscard]] bool idle() const override;

  [[nodiscard]] const core::LmcScheduler& scheduler() const { return lmc_; }

 private:
  struct Pending {
    core::TaskId id = 0;
    double remaining_cycles = 0.0;
  };
  struct CoreState {
    std::deque<Pending> pending_interactive;
    std::vector<Pending> preempted;  // stack
  };

  /// Rate for the task that heads a queue of `queued` waiting tasks: it
  /// occupies backward position queued + 1 (itself plus those behind it).
  [[nodiscard]] std::size_t running_rate(std::size_t core) const;

  /// Re-rates the running non-interactive task after a queue change.
  void adjust_running_rate(sim::Engine& engine, std::size_t core);

  void start_next(sim::Engine& engine, std::size_t core);

  core::LmcScheduler lmc_;
  std::vector<CoreState> per_core_;
  Estimator estimator_;
  std::function<void(core::TaskId, Cycles)> on_completion_;
  CostMarginTracker margin_;  // zero by construction (argmin placement)
  // Per-arrival scratch, reused so the placement hot path stops
  // allocating: Eq. 27 extra-waiting counts, busy-core Rt offsets, and the
  // probed candidate vector handed to the flight recorder.
  std::vector<std::size_t> extra_scratch_;
  std::vector<Money> offsets_scratch_;
  std::vector<Money> probed_scratch_;
};

}  // namespace dvfs::governors
