/// \file schedule.h
/// \brief Scheduling plans and their analytic cost evaluation (Eq. 8).
///
/// A Plan fixes, for every core, the forward execution order of its tasks
/// and the rate index each task runs at. evaluate_plan() computes the exact
/// model cost: energy cost Re * sum(L_k * E(p_k)) plus temporal cost
/// Rt * sum of turnaround times, where a task's turnaround is the finish
/// time of everything before it on the same core plus its own run time
/// (batch mode: all tasks arrive at 0, cores run their queues back to
/// back).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/core/cost_model.h"
#include "dvfs/core/task.h"

namespace dvfs::core {

/// One slot of a per-core execution sequence.
struct ScheduledTask {
  TaskId task_id = 0;
  Cycles cycles = 0;
  std::size_t rate_idx = 0;

  friend bool operator==(const ScheduledTask&, const ScheduledTask&) = default;
};

/// Forward execution order for one core (index 0 runs first).
struct CorePlan {
  std::vector<ScheduledTask> sequence;

  [[nodiscard]] std::size_t size() const { return sequence.size(); }
};

/// A complete multi-core plan.
struct Plan {
  std::vector<CorePlan> cores;

  [[nodiscard]] std::size_t num_cores() const { return cores.size(); }
  [[nodiscard]] std::size_t num_tasks() const {
    std::size_t n = 0;
    for (const CorePlan& c : cores) n += c.size();
    return n;
  }
};

/// Cost breakdown of a plan under the analytic model.
struct PlanCost {
  Money energy_cost = 0.0;      ///< Re * total joules.
  Money time_cost = 0.0;        ///< Rt * sum of turnaround times.
  Joules energy = 0.0;          ///< total joules.
  Seconds total_turnaround = 0.0;  ///< sum over tasks of turnaround.
  Seconds makespan = 0.0;       ///< latest core finish time.

  [[nodiscard]] Money total() const { return energy_cost + time_cost; }
};

/// Evaluates a plan on a homogeneous platform (every core shares `table`).
[[nodiscard]] PlanCost evaluate_plan(const Plan& plan, const CostTable& table);

/// Evaluates a plan on a heterogeneous platform; `tables[j]` models core j.
[[nodiscard]] PlanCost evaluate_plan(const Plan& plan,
                                     std::span<const CostTable> tables);

/// Checks that `plan` schedules exactly the tasks in `tasks` (by id, with
/// matching cycle counts, each exactly once) and uses only valid rate
/// indices. Returns false rather than throwing so tests can assert on it.
[[nodiscard]] bool plan_is_permutation_of(const Plan& plan,
                                          std::span<const Task> tasks,
                                          std::span<const CostTable> tables);

}  // namespace dvfs::core
