/// \file rate_set.h
/// \brief Discrete per-core processing rates (Section II-B).
///
/// P = {p_1 < p_2 < ... < p_|P|} is the non-empty set of discrete
/// frequencies a core can run at. Rates are indexed; the scheduling
/// algorithms work in rate *indices* so that a rate choice is always a
/// member of P by construction.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::core {

class RateSet {
 public:
  /// Rates must be positive and strictly increasing.
  explicit RateSet(std::vector<Rate> rates_ghz) : rates_(std::move(rates_ghz)) {
    DVFS_REQUIRE(!rates_.empty(), "rate set must be non-empty");
    DVFS_REQUIRE(rates_.front() > 0.0, "rates must be positive");
    for (std::size_t i = 1; i < rates_.size(); ++i) {
      DVFS_REQUIRE(rates_[i] > rates_[i - 1],
                   "rates must be strictly increasing");
    }
  }

  RateSet(std::initializer_list<Rate> rates_ghz)
      : RateSet(std::vector<Rate>(rates_ghz)) {}

  [[nodiscard]] std::size_t size() const { return rates_.size(); }
  [[nodiscard]] Rate operator[](std::size_t idx) const {
    DVFS_REQUIRE(idx < rates_.size(), "rate index out of range");
    return rates_[idx];
  }
  [[nodiscard]] Rate lowest() const { return rates_.front(); }
  [[nodiscard]] Rate highest() const { return rates_.back(); }
  [[nodiscard]] std::size_t highest_index() const { return rates_.size() - 1; }
  [[nodiscard]] std::span<const Rate> rates() const { return rates_; }

  /// Index of the largest rate <= `p` (clamps below the minimum to index 0).
  /// Mirrors how a governor maps a requested frequency onto an available one.
  [[nodiscard]] std::size_t floor_index(Rate p) const {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < rates_.size(); ++i) {
      if (rates_[i] <= p) idx = i;
    }
    return idx;
  }

  /// Exact lookup; requires `p` to be a member of the set.
  [[nodiscard]] std::size_t index_of(Rate p) const {
    for (std::size_t i = 0; i < rates_.size(); ++i) {
      if (almost_equal(rates_[i], p)) return i;
    }
    DVFS_REQUIRE(false, "rate not in set");
    return 0;  // unreachable
  }

  /// Keeps only the lower half of the rate set: the paper's "Power Saving"
  /// baseline restricts the i7-950 to {1.6, 2.0, 2.4} GHz out of five rates,
  /// i.e. ceil(|P| / 2) of the lowest rates.
  [[nodiscard]] RateSet lower_half() const {
    const std::size_t keep = (rates_.size() + 1) / 2;
    return RateSet(std::vector<Rate>(rates_.begin(),
                                     rates_.begin() + static_cast<long>(keep)));
  }

  /// The five batch-mode rates of the paper's Intel i7-950 (Table II), GHz.
  [[nodiscard]] static RateSet i7_950() { return {1.6, 2.0, 2.4, 2.8, 3.0}; }

  /// A 12-step set matching the paper's note that each i7-950 core exposes
  /// 12 frequency choices (1.60 to 3.07 GHz).
  [[nodiscard]] static RateSet i7_950_full() {
    return {1.60, 1.73, 1.86, 2.00, 2.13, 2.26,
            2.40, 2.53, 2.66, 2.80, 2.93, 3.07};
  }

  /// The paper's ARM Exynos-4412 example range (0.2 to 1.7 GHz).
  [[nodiscard]] static RateSet exynos_4412() {
    return {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
            1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7};
  }

  friend bool operator==(const RateSet&, const RateSet&) = default;

 private:
  std::vector<Rate> rates_;
};

}  // namespace dvfs::core
