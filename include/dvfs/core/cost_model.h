/// \file cost_model.h
/// \brief Monetized cost function and the per-position cost table
///        (Sections II-C and III-B).
///
/// The cost of a schedule combines an energy cost Re (money per joule,
/// Eq. 3) and a temporal cost Rt (money per second of user waiting,
/// Eq. 4). The pivotal observation (Lemma 1) is that the per-cycle cost
/// coefficient of the task at *backward* position k,
///
///     C_B(k, p) = Re * E(p) + k * Rt * T(p)              (Eq. 20)
///
/// is independent of which task sits there, so the optimal rate for every
/// position can be precomputed from (P, E, T, Re, Rt) alone. CostTable
/// does that precomputation via the dominating-position-range construction
/// (Algorithm 1) and answers best-rate/best-cost queries in O(log |P-hat|)
/// or O(1) for cached small positions.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/core/energy_model.h"
#include "dvfs/ds/lower_envelope.h"

namespace dvfs::core {

/// Cost weights. The paper's batch experiments use Re = 0.1 cent/J and
/// Rt = 0.4 cent/s; the online experiments use Re = 0.4, Rt = 0.1.
struct CostParams {
  Money re = 0.1;  ///< money per joule of energy consumed.
  Money rt = 0.4;  ///< money per second a user waits (turnaround).

  [[nodiscard]] bool valid() const { return re > 0.0 && rt > 0.0; }

  friend bool operator==(const CostParams&, const CostParams&) = default;
};

/// One dominating position range: rate `rate_idx` is optimal for every
/// backward position k in `range` (Algorithm 1 output).
struct DominatingRange {
  std::size_t rate_idx = 0;
  ds::IntegerRange range;
};

namespace detail {
/// Immutable Algorithm 1 output, shared (via shared_ptr) between every
/// CostTable built on the same rate lines: the envelope is memoized per
/// rate configuration instead of recomputed per table, and copying a
/// CostTable no longer copies the small-k lookup table.
struct CostTablePrecomputed {
  std::vector<ds::Line> key;  ///< the inducing lines (cache identity)
  std::vector<DominatingRange> ranges;
  std::vector<std::size_t> active_rates;
  std::vector<std::size_t> small_k_cache;  ///< best rate for k = 1..size
};
}  // namespace detail

class CostTable {
 public:
  CostTable(EnergyModel model, CostParams params);

  [[nodiscard]] const EnergyModel& model() const { return model_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// C_B(k, p): per-cycle cost of running at rate index `rate_idx` in
  /// backward position k (k >= 1; k-1 tasks wait behind this one... k
  /// counts this task plus all tasks after it on the same core).
  [[nodiscard]] double backward_cost(std::size_t k, std::size_t rate_idx) const {
    DVFS_REQUIRE(k >= 1, "backward positions are 1-based");
    return params_.re * model_.energy_per_cycle(rate_idx) +
           static_cast<double>(k) * params_.rt * model_.time_per_cycle(rate_idx);
  }

  /// Forward-position form C(k, p) with n total tasks (Eq. 12):
  /// C(k, p) = C_B(n - k + 1, p).
  [[nodiscard]] double forward_cost(std::size_t k, std::size_t n,
                                    std::size_t rate_idx) const {
    DVFS_REQUIRE(k >= 1 && k <= n, "forward position out of range");
    return backward_cost(n - k + 1, rate_idx);
  }

  /// Optimal rate index for backward position k (ties to the higher rate).
  [[nodiscard]] std::size_t best_rate(std::size_t k) const;

  /// C_B(k) = min_p C_B(k, p) (Eq. 21).
  [[nodiscard]] double best_backward_cost(std::size_t k) const {
    return backward_cost(k, best_rate(k));
  }

  /// The dominating position ranges, ascending in k; their ranges partition
  /// [1, inf) and their rates are the paper's P-hat (ascending).
  [[nodiscard]] std::span<const DominatingRange> ranges() const {
    return shared_->ranges;
  }

  /// Rate indices of P-hat (rates that dominate at least one position),
  /// in ascending rate order.
  [[nodiscard]] std::span<const std::size_t> active_rates() const {
    return shared_->active_rates;
  }

  /// Brute-force reference for best_rate(); O(|P|). Used by tests and the
  /// A1 ablation bench.
  [[nodiscard]] std::size_t best_rate_naive(std::size_t k) const;

  /// Statistics of the process-wide per-rate-set envelope memo: every
  /// CostTable construction either hits an existing entry (same lines) or
  /// builds and caches a new one. Invalidation is by key: a changed rate
  /// set produces different lines and therefore a fresh entry.
  struct SharedCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] static SharedCacheStats shared_cache_stats();
  /// Drops every cached entry (tables already built keep their data alive
  /// through their shared_ptr). Test support.
  static void clear_shared_cache();

 private:
  static std::shared_ptr<const detail::CostTablePrecomputed> precompute(
      std::vector<ds::Line> lines);

  EnergyModel model_;
  CostParams params_;
  std::shared_ptr<const detail::CostTablePrecomputed> shared_;
};

}  // namespace dvfs::core
