/// \file plan_io.h
/// \brief Plan serialization for planner/executor handoff.
///
/// A batch deployment computes the WBG plan once (scheduler box) and
/// executes it elsewhere (the machine whose cpufreq gets pinned). The
/// interchange format is CSV — `core,position,task_id,cycles,rate_idx` —
/// append-friendly, diffable, and loadable with ordinary tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "dvfs/core/schedule.h"

namespace dvfs::core {

/// Writes `core,position,task_id,cycles,rate_idx` rows (position is the
/// 1-based forward slot within the core's sequence).
void write_plan_csv(const Plan& plan, std::ostream& os);
void write_plan_csv_file(const Plan& plan, const std::string& path);

/// Parses the format produced by write_plan_csv. Cores and positions may
/// appear in any order; gaps in core indices produce empty CorePlans.
/// Throws PreconditionError on malformed rows, duplicate positions, or
/// position gaps within a core.
[[nodiscard]] Plan read_plan_csv(std::istream& is);
[[nodiscard]] Plan read_plan_csv_file(const std::string& path);

}  // namespace dvfs::core
