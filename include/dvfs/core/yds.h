/// \file yds.h
/// \brief Yao-Demers-Shenker optimal speed scaling (the paper's Related
///        Work anchor, Yao et al. 1995), for common-arrival instances.
///
/// The paper's Section VI positions its deadline results against the
/// classic YDS algorithm: offline-optimal *continuous* speed scaling for
/// jobs with deadlines under convex power P(s) = c * s^alpha. Having YDS
/// here gives the deadline solvers a principled lower bound — any
/// discrete-rate schedule spends at least the YDS energy — so the
/// "discretization gap" of a real rate set becomes measurable
/// (`bench_yds`).
///
/// Implementation covers the batch case the rest of this library works
/// in (all jobs released at time 0): the critical interval is then always
/// a deadline-order prefix, found by peeling maximum-intensity prefixes:
///
///   repeat: g* = max over deadlines D of (work due by D) / (D - t0);
///           run that prefix EDF at speed g* on [t0, D*]; advance t0.
///
/// Speeds are non-increasing across peels (a classic YDS invariant the
/// tests check), every deadline is met exactly or with slack, and the
/// energy integral of c * s^alpha is minimal among all feasible speed
/// profiles.
#pragma once

#include <span>
#include <vector>

#include "dvfs/core/energy_model.h"
#include "dvfs/core/task.h"

namespace dvfs::core {

/// One job's allotted execution window at a constant speed.
struct YdsSegment {
  TaskId id = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
  double speed = 0.0;  ///< cycles per second

  [[nodiscard]] double work() const {
    return speed * (end - start);  // cycles executed in this segment
  }
};

struct YdsSchedule {
  /// Execution order (EDF within each critical interval).
  std::vector<YdsSegment> segments;

  [[nodiscard]] double max_speed() const;
  [[nodiscard]] Seconds makespan() const {
    return segments.empty() ? 0.0 : segments.back().end;
  }

  /// Energy under power c * s^alpha (watts at speed s): each segment
  /// contributes c * s^alpha * duration. alpha > 1 required (convexity is
  /// what makes YDS optimal).
  [[nodiscard]] Joules energy(double c, double alpha) const;

  /// True if every task's work completes by its deadline.
  [[nodiscard]] bool feasible(std::span<const Task> tasks) const;
};

/// Computes the YDS schedule for batch tasks (arrival 0, finite
/// deadlines; both checked). O(n^2) peeling — n is small in deadline
/// workloads, and clarity beats the O(n log n) refinement here.
[[nodiscard]] YdsSchedule yds_schedule(std::span<const Task> tasks);

/// Rounds a continuous YDS schedule onto a discrete rate set: each
/// segment's speed is emulated by splitting its window between the two
/// adjacent discrete speeds (1/T(p)) whose time-average equals it — the
/// classic construction, optimal among *preemptive* discrete-rate
/// schedules under convex power. Speeds below the slowest rate clamp to
/// it (the segment finishes early and the core idles); speeds above the
/// fastest rate make the instance infeasible for this platform
/// (PreconditionError).
[[nodiscard]] YdsSchedule round_to_discrete(const YdsSchedule& continuous,
                                            const EnergyModel& model);

/// Energy of a discrete-speed schedule priced by the model's E(p): every
/// segment speed must equal some 1/T(p_i) (checked). Counterpart of
/// YdsSchedule::energy for rounded schedules.
[[nodiscard]] Joules discrete_energy(const YdsSchedule& schedule,
                                     const EnergyModel& model);

}  // namespace dvfs::core
