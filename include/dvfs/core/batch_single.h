/// \file batch_single.h
/// \brief Optimal single-core batch scheduling (Section III-B).
///
/// Theorem 3: some optimal schedule orders tasks by non-decreasing cycle
/// count, and Lemma 1 makes the optimal rate for each position independent
/// of the workload. "Longest Task Last" (Algorithm 2) therefore sorts the
/// tasks, walks the dominating position ranges, and assigns each backward
/// position its precomputed best rate — O(|J| log |J|) total.
///
/// A brute-force reference (exhaustive over task orders and rate choices)
/// is included for property tests and the optimality-gap bench; it is
/// exponential and guarded to small instances.
#pragma once

#include <span>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/schedule.h"
#include "dvfs/core/task.h"

namespace dvfs::core {

/// Algorithm 2 ("Longest Task Last"): the optimal single-core plan.
/// Preconditions: tasks are batch tasks with positive cycle counts.
[[nodiscard]] CorePlan longest_task_last(std::span<const Task> tasks,
                                         const CostTable& table);

/// Evaluates a single-core plan's exact model cost.
[[nodiscard]] PlanCost evaluate_single(const CorePlan& core,
                                       const CostTable& table);

/// Exhaustive optimum over all n! orders and |P|^n rate assignments.
/// Requires n <= 8 (checked); test/bench support only.
[[nodiscard]] CorePlan brute_force_single(std::span<const Task> tasks,
                                          const CostTable& table);

/// Smarter exponential reference: fixes the Theorem 3 order (non-decreasing
/// cycles) but searches all |P|^n rate assignments, verifying Lemma 1
/// independently of the envelope construction. Requires n <= 12 (checked).
[[nodiscard]] CorePlan brute_force_rates_sorted(std::span<const Task> tasks,
                                                const CostTable& table);

}  // namespace dvfs::core
