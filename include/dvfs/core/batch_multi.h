/// \file batch_multi.h
/// \brief Optimal multi-core batch scheduling (Section III-C).
///
/// Homogeneous platforms: Theorem 4 — assign the R heaviest tasks to the R
/// cores at backward position 1, the next R at position 2, and so on
/// (round-robin, heaviest first).
///
/// Heterogeneous platforms: Algorithm 3, "Workload Based Greedy" (WBG) —
/// keep a min-heap of the next per-cycle position cost C_j(k) of every
/// core; repeatedly give the heaviest unassigned task to the core with the
/// cheapest next position (Theorem 5 shows this greedy is optimal).
#pragma once

#include <span>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/schedule.h"
#include "dvfs/core/task.h"

namespace dvfs::core {

/// Theorem 4 round-robin for `num_cores` identical cores.
[[nodiscard]] Plan round_robin_homogeneous(std::span<const Task> tasks,
                                           const CostTable& table,
                                           std::size_t num_cores);

/// Algorithm 3 (Workload Based Greedy); `tables[j]` models core j. Works
/// for homogeneous platforms too (pass R copies of the same table).
[[nodiscard]] Plan workload_based_greedy(std::span<const Task> tasks,
                                         std::span<const CostTable> tables);

/// Exhaustive search over all task-to-core assignments (cores^n); within a
/// core, the Theorem 3 order and per-position optimal rates are applied.
/// Requires cores^n <= 2^22 (checked); test/bench support only.
[[nodiscard]] Plan brute_force_assignment(std::span<const Task> tasks,
                                          std::span<const CostTable> tables);

}  // namespace dvfs::core
