/// \file energy_model.h
/// \brief Per-rate energy and time consumption functions (Section II-C).
///
/// E(p) is the energy in joules and T(p) the time in seconds required to
/// execute one cycle at processing rate p, with E strictly increasing and
/// T strictly decreasing in p. A task j_k run entirely at rate p costs
/// e_k = L_k * E(p) joules and t_k = L_k * T(p) seconds (Eqs. 1-2).
///
/// The canonical instance is the paper's Table II (measured on an Intel
/// i7-950 with a DW-6091 wall power meter, idle power deducted); an
/// analytic cubic-power model is provided for sweeps over arbitrary rate
/// sets, and the two-rate gadget from the Theorem 1 NP-completeness proof
/// is included for the deadline solvers and their tests.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/core/rate_set.h"

namespace dvfs::core {

class EnergyModel {
 public:
  /// `energy_per_cycle[i]` (joules) and `time_per_cycle[i]` (seconds) pair
  /// with rate index i of `rates`. Monotonicity (E up, T down) is enforced:
  /// it is both physically expected and load-bearing for the dominating-
  /// range construction (Algorithm 1 requires it).
  EnergyModel(RateSet rates, std::vector<double> energy_per_cycle,
              std::vector<double> time_per_cycle);

  [[nodiscard]] const RateSet& rates() const { return rates_; }
  [[nodiscard]] std::size_t num_rates() const { return rates_.size(); }

  /// E(p_idx): joules per cycle.
  [[nodiscard]] double energy_per_cycle(std::size_t rate_idx) const {
    DVFS_REQUIRE(rate_idx < epc_.size(), "rate index out of range");
    return epc_[rate_idx];
  }

  /// T(p_idx): seconds per cycle.
  [[nodiscard]] double time_per_cycle(std::size_t rate_idx) const {
    DVFS_REQUIRE(rate_idx < tpc_.size(), "rate index out of range");
    return tpc_[rate_idx];
  }

  /// Active (busy) power draw at a rate: E(p)/T(p) watts.
  [[nodiscard]] double busy_power(std::size_t rate_idx) const {
    return energy_per_cycle(rate_idx) / time_per_cycle(rate_idx);
  }

  /// e_k = L_k * E(p) (Eq. 1).
  [[nodiscard]] Joules task_energy(Cycles cycles, std::size_t rate_idx) const {
    return static_cast<double>(cycles) * energy_per_cycle(rate_idx);
  }

  /// t_k = L_k * T(p) (Eq. 2).
  [[nodiscard]] Seconds task_time(Cycles cycles, std::size_t rate_idx) const {
    return static_cast<double>(cycles) * time_per_cycle(rate_idx);
  }

  /// Restriction of the model to a subset of the rate indices, preserving
  /// order. Used by the Power Saving baseline (lower half of the rates).
  [[nodiscard]] EnergyModel restricted(std::size_t keep_lowest) const;

  /// Table II of the paper: p = {1.6, 2.0, 2.4, 2.8, 3.0} GHz,
  /// E = {3.375, 4.22, 5.0, 6.0, 7.1} nJ/cycle,
  /// T = {0.625, 0.5, 0.42, 0.36, 0.33} ns/cycle (converted to J and s).
  [[nodiscard]] static EnergyModel icpp2014_table2();

  /// Analytic model for an arbitrary rate set: dynamic power ~ f^3 (classic
  /// f*V^2 with V ~ f), so energy per cycle E(p) = kappa * p^2 + e_static,
  /// and T(p) = 1/p exactly. `kappa_nj_per_ghz2` is in nJ/(cycle*GHz^2);
  /// `static_nj` adds a rate-independent per-cycle energy floor.
  [[nodiscard]] static EnergyModel cubic(const RateSet& rates,
                                         double kappa_nj_per_ghz2 = 0.8,
                                         double static_nj = 1.0);

  /// The two-rate instance used in the Theorem 1 reduction: T(pl) = 2,
  /// T(ph) = 1, E(pl) = 1, E(ph) = 4 (high rate twice as fast, energy
  /// quadratic in frequency). Units are abstract.
  [[nodiscard]] static EnergyModel partition_gadget();

  friend bool operator==(const EnergyModel&, const EnergyModel&) = default;

 private:
  RateSet rates_;
  std::vector<double> epc_;  // E(p): joules per cycle
  std::vector<double> tpc_;  // T(p): seconds per cycle
};

}  // namespace dvfs::core
