/// \file task.h
/// \brief The paper's task model (Section II-A).
///
/// A task j_k is the tuple (L_k, A_k, D_k): required CPU cycles, arrival
/// time, and deadline. Batch-mode tasks all arrive at time 0 and are
/// non-preemptive; online-mode tasks are classified as interactive (early,
/// firm deadline; may preempt lower-priority work) or non-interactive.
#pragma once

#include <cstdint>
#include <string>

#include "dvfs/common.h"

namespace dvfs::core {

using TaskId = std::uint64_t;

/// Execution class of a task (Sections II-A and IV).
enum class TaskClass : std::uint8_t {
  kBatch,           ///< Batch mode: arrival 0, non-preemptive, arbitrary order.
  kInteractive,     ///< Online mode: firm deadline, preempts non-interactive.
  kNonInteractive,  ///< Online mode: no strict deadline, queued and sorted.
};

[[nodiscard]] constexpr const char* to_string(TaskClass c) {
  switch (c) {
    case TaskClass::kBatch: return "batch";
    case TaskClass::kInteractive: return "interactive";
    case TaskClass::kNonInteractive: return "non-interactive";
  }
  return "?";
}

/// Interactive tasks outrank non-interactive ones (Section II-A assumption
/// (3)); batch tasks never coexist with online tasks so their priority is
/// immaterial but defined for completeness.
[[nodiscard]] constexpr int priority_of(TaskClass c) {
  switch (c) {
    case TaskClass::kInteractive: return 1;
    case TaskClass::kBatch:
    case TaskClass::kNonInteractive: return 0;
  }
  return 0;
}

struct Task {
  TaskId id = 0;
  Cycles cycles = 0;                ///< L_k: CPU cycles to completion.
  Seconds arrival = 0.0;            ///< A_k.
  Seconds deadline = kNoDeadline;   ///< D_k; kNoDeadline if unconstrained.
  TaskClass klass = TaskClass::kBatch;

  [[nodiscard]] bool has_deadline() const { return deadline != kNoDeadline; }
  [[nodiscard]] int priority() const { return priority_of(klass); }

  friend bool operator==(const Task&, const Task&) = default;
};

/// Validates the Section II-A constraints: positive workload, and
/// D_k > A_k >= 0 whenever a deadline is present.
[[nodiscard]] inline bool is_valid(const Task& t) {
  if (t.cycles == 0) return false;
  if (t.arrival < 0.0) return false;
  if (t.has_deadline() && t.deadline <= t.arrival) return false;
  return true;
}

[[nodiscard]] inline std::string describe(const Task& t) {
  std::string s = "task#" + std::to_string(t.id) + " L=" +
                  std::to_string(t.cycles) + " A=" + std::to_string(t.arrival);
  if (t.has_deadline()) s += " D=" + std::to_string(t.deadline);
  s += " [";
  s += to_string(t.klass);
  s += "]";
  return s;
}

}  // namespace dvfs::core
