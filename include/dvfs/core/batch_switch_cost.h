/// \file batch_switch_cost.h
/// \brief Single-core batch scheduling when DVFS transitions are not free
///        (an extension beyond the paper).
///
/// The paper's model switches rates between tasks at zero cost; real
/// voltage/frequency transitions stall the core for tens of microseconds
/// and burn regulator energy. This module keeps the paper's Theorem 3
/// order (non-decreasing cycles — still the natural order; see the bench
/// for how little reordering could matter) and chooses rates with a
/// dynamic program over (task, previous rate):
///
///   dp[i][r] = min over r' of dp[i-1][r'] + position_cost(i, r) * L_i
///                              + [r != r'] * switch_penalty(i)
///
/// where a switch before forward task i delays tasks i..n by the switch
/// latency (temporal cost Rt * latency * (n - i + 1)) and adds Re *
/// switch energy. O(n * |P|^2) time, O(|P|) rolling space (we keep the
/// full table for plan recovery).
///
/// With zero switch cost the DP reproduces Longest Task Last exactly; as
/// transitions get more expensive, plans consolidate onto fewer rates
/// (ablation A11, `bench_switch_cost`).
#pragma once

#include <span>

#include "dvfs/core/batch_single.h"
#include "dvfs/core/cost_model.h"

namespace dvfs::core {

/// Cost of one rate transition on a core.
struct SwitchCost {
  Seconds latency = 0.0;  ///< core stalls this long at each rate change
  Joules energy = 0.0;    ///< regulator/PLL energy per change

  [[nodiscard]] bool free() const { return latency == 0.0 && energy == 0.0; }
};

/// Optimal-rates plan for the Theorem 3 order under `switch_cost`.
/// `initial_rate` (optional): rate the core idles at before the first
/// task; kNoInitialRate charges nothing for the first task's setting.
inline constexpr std::size_t kNoInitialRate = static_cast<std::size_t>(-1);

[[nodiscard]] CorePlan single_core_with_switch_cost(
    std::span<const Task> tasks, const CostTable& table,
    const SwitchCost& switch_cost,
    std::size_t initial_rate = kNoInitialRate);

/// Exact model cost of a single-core plan including transition penalties
/// (generalizes evaluate_single; equal to it when switch_cost.free()).
[[nodiscard]] PlanCost evaluate_single_with_switch_cost(
    const CorePlan& core, const CostTable& table,
    const SwitchCost& switch_cost,
    std::size_t initial_rate = kNoInitialRate);

/// Exhaustive reference over all |P|^n rate assignments in the Theorem 3
/// order (n <= 10 checked); test support.
[[nodiscard]] CorePlan brute_force_switch_cost(
    std::span<const Task> tasks, const CostTable& table,
    const SwitchCost& switch_cost,
    std::size_t initial_rate = kNoInitialRate);

}  // namespace dvfs::core
