/// \file online_lmc.h
/// \brief Least Marginal Cost: online task placement (Section IV).
///
/// LMC assigns each arriving task to the core whose total cost grows the
/// least, without migrating anything already queued:
///
///  * Interactive tasks run immediately at the core's maximum frequency,
///    preempting lower-priority work. The marginal cost of core j is
///    Eq. 27:  C_j^M = Re*L*E_j(pm) + Rt*L*T_j(pm) + Rt*L*T_j(pm)*N_j,
///    i.e. the task's own energy and time cost plus the delay it inflicts
///    on the N_j tasks waiting on that core. On homogeneous cores this
///    degenerates to "pick the least-loaded queue", as the paper notes.
///
///  * Non-interactive tasks are inserted into a per-core queue kept in the
///    Theorem 3 order; the insertion position follows from the sorted
///    order, and the marginal cost is the exact cost delta of the queue,
///    obtained in O(|P-hat| + log N) from the Algorithm 4-6 structure.
///    Queued tasks' rates re-adjust automatically because a rate is a
///    function of queue position (Lemma 1).
///
/// This class is the pure decision engine; the event-driven simulator (or
/// a real dispatcher) owns actual execution, preemption and resumption.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/dynamic_sched.h"
#include "dvfs/core/task.h"

namespace dvfs::core {

class LmcScheduler {
 public:
  /// `tables[j]` is core j's cost table; heterogeneous platforms pass
  /// different energy models per core.
  explicit LmcScheduler(std::vector<CostTable> tables);

  [[nodiscard]] std::size_t num_cores() const { return queues_.size(); }

  /// Outcome of a non-interactive placement.
  struct Placement {
    std::size_t core = 0;
    DynamicSingleCoreScheduler::TaskRef ref = nullptr;
    Money marginal = 0.0;
  };

  /// Places a non-interactive task on the least-marginal-cost core and
  /// returns where it went. O(R * (|P-hat| + log N)).
  Placement place_non_interactive(Cycles cycles, TaskId id);

  /// Like place_non_interactive, but adds `extra_cost[j]` to core j's
  /// probed marginal before taking the argmin. An executor uses this to
  /// charge work the queues cannot see — e.g. Rt times the remaining
  /// seconds of the task currently running on core j, which delays
  /// everything queued behind it.
  Placement place_non_interactive(Cycles cycles, TaskId id,
                                  std::span<const Money> extra_cost);

  /// Same, additionally exposing the full candidate vector: when
  /// `probed_marginals` is non-null it is resized to num_cores() and
  /// filled with every core's probed marginal (extra_cost included) —
  /// the rejected alternatives the flight recorder persists alongside
  /// the decision. Passing nullptr costs nothing extra.
  Placement place_non_interactive(Cycles cycles, TaskId id,
                                  std::span<const Money> extra_cost,
                                  std::vector<Money>* probed_marginals);

  /// Chooses the core for an interactive task per Eq. 27. `extra_waiting`
  /// optionally adds per-core waiting work the queues do not know about
  /// (e.g. interactive tasks already pending in the executor); pass empty
  /// to count only queued non-interactive tasks.
  [[nodiscard]] std::size_t choose_interactive_core(
      Cycles cycles, std::span<const std::size_t> extra_waiting = {}) const;

  /// Eq. 27 for one core (exposed for tests and introspection).
  [[nodiscard]] Money interactive_marginal_cost(std::size_t core,
                                                Cycles cycles,
                                                std::size_t waiting) const;

  /// The structure-of-arrays Eq. 27 scan choose_interactive_core() runs:
  /// fills `out[j]` with every core's marginal cost (computed branch-free
  /// over the precomputed coefficient arrays) and returns the argmin
  /// (lowest index on ties). Exposed so the `lmc_soa` differential oracle
  /// can compare the vectorized scan against the scalar
  /// interactive_marginal_cost() term by term.
  std::size_t interactive_scan(Cycles cycles,
                               std::span<const std::size_t> extra_waiting,
                               std::vector<Money>& out) const;

  /// Next non-interactive task for core j under the Theorem 3 order
  /// (fewest cycles first) with its position-optimal rate; removes it from
  /// the queue. Returns nullopt if the queue is empty.
  struct Dispatched {
    TaskId id = 0;
    Cycles cycles = 0;
    std::size_t rate_idx = 0;
  };
  std::optional<Dispatched> pop_next(std::size_t core);

  /// Removes a specific queued task (e.g. cancelled by the user).
  void erase(std::size_t core, DynamicSingleCoreScheduler::TaskRef ref);

  [[nodiscard]] DynamicSingleCoreScheduler& queue(std::size_t core) {
    DVFS_REQUIRE(core < queues_.size(), "core index out of range");
    return queues_[core];
  }
  [[nodiscard]] const DynamicSingleCoreScheduler& queue(
      std::size_t core) const {
    DVFS_REQUIRE(core < queues_.size(), "core index out of range");
    return queues_[core];
  }

  /// Sum of the per-core queue costs (Theta(R)).
  [[nodiscard]] Money total_queue_cost() const;

 private:
  std::vector<DynamicSingleCoreScheduler> queues_;
  // Structure-of-arrays Eq. 27 inputs, one entry per core: Re, Rt and the
  // max-rate energy/time per cycle. Filled once at construction; the
  // interactive scan then reads four contiguous double arrays instead of
  // chasing CostTable -> EnergyModel -> rates per candidate core. The
  // arithmetic keeps the exact association of interactive_marginal_cost()
  // so scan and scalar agree bit for bit.
  std::vector<double> re_;
  std::vector<double> rt_;
  std::vector<double> epc_max_;
  std::vector<double> tpc_max_;
  // Reusable candidate buffers: the per-arrival hot path allocates
  // nothing after the first call.
  mutable std::vector<Money> scan_;
  mutable std::vector<double> waiting_;
};

}  // namespace dvfs::core
