/// \file deadline.h
/// \brief Deadline-constrained batch scheduling (Section III-A).
///
/// Theorem 1 proves Deadline-SingleCore NP-complete by reduction from
/// Partition; Theorem 2 does the same for Deadline-MultiCore. This module
/// provides:
///
///  * the exact reduction gadgets from both proofs,
///  * an exact single-core solver (EDF order is exchange-argument optimal
///    for feasibility, so only the |P|^n rate space is searched, with
///    branch-and-bound pruning),
///  * an exact two-core solver for the Theorem 2 gadget,
///  * a polynomial heuristic (EDF + greedy rate lifting) usable at scale,
///  * solve_partition_via_scheduler(), which decides Partition by running
///    the exact scheduler on the Theorem 1 gadget — executable evidence of
///    the reduction.
///
/// NP-completeness means the exact solvers are exponential; they check
/// instance-size guards and exist for correctness evidence and the A7
/// bench, not for production scheduling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/energy_model.h"
#include "dvfs/core/schedule.h"
#include "dvfs/core/task.h"

namespace dvfs::core {

/// Decision instance of Deadline-SingleCore: order the tasks and pick a
/// rate for each, such that every task meets its deadline and total energy
/// is at most `energy_budget`.
struct DeadlineInstance {
  std::vector<Task> tasks;     ///< deadlines required (no kNoDeadline)
  EnergyModel model;
  Joules energy_budget = 0.0;
};

/// A witness schedule for a feasible instance.
struct DeadlineSolution {
  CorePlan plan;               ///< forward order with chosen rates
  Joules energy = 0.0;
  Seconds finish = 0.0;        ///< completion time of the last task
};

/// Exact solver. Returns a witness if and only if the instance is
/// feasible. Requires tasks.size() <= 24 (checked): the rate space is
/// pruned but worst-case exponential (Theorem 1 says it must be, unless
/// P = NP).
[[nodiscard]] std::optional<DeadlineSolution> solve_deadline_single_exact(
    const DeadlineInstance& instance);

/// Polynomial heuristic: EDF order, all tasks at the lowest rate, then
/// repeatedly lift the rate of the task giving the best deadline-slack
/// gain per joule until all deadlines hold (or report infeasible-for-the-
/// heuristic). Sound (a returned schedule is always valid) but incomplete.
[[nodiscard]] std::optional<DeadlineSolution> solve_deadline_single_heuristic(
    const DeadlineInstance& instance);

/// The Theorem 1 gadget for a Partition instance {a_1..a_n}: n tasks with
/// L_i = a_i, two rates with T = {2, 1} and E = {1, 4}, every deadline
/// 1.5 * S and energy budget 2.5 * S, where S = sum(a_i).
[[nodiscard]] DeadlineInstance partition_to_deadline_single(
    std::span<const std::uint64_t> values);

/// Decides Partition by scheduling the Theorem 1 gadget exactly. When a
/// partition exists, returns the indices of one subset whose sum is S/2
/// (the tasks the witness runs at the high rate).
[[nodiscard]] std::optional<std::vector<std::size_t>>
solve_partition_via_scheduler(std::span<const std::uint64_t> values);

/// The Theorem 2 gadget: two identical single-rate cores, common deadline
/// S/2; feasible iff the values admit a perfect partition.
struct DeadlineMultiInstance {
  std::vector<Task> tasks;
  EnergyModel model;      ///< single-rate model shared by both cores
  std::size_t num_cores = 2;
};

[[nodiscard]] DeadlineMultiInstance partition_to_deadline_multi(
    std::span<const std::uint64_t> values);

/// Exact feasibility for the multi-core instance (exhaustive assignment
/// with subset-sum style memoization; tasks.size() <= 28 checked).
[[nodiscard]] std::optional<Plan> solve_deadline_multi_exact(
    const DeadlineMultiInstance& instance);

}  // namespace dvfs::core
