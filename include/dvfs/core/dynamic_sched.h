/// \file dynamic_sched.h
/// \brief Single-core dynamic scheduling with O(|P-hat| + log N) updates and
///        Theta(1) total-cost queries (Section IV-A, Algorithms 4-6).
///
/// The structure keeps the pending tasks of one core in the Theorem 3
/// order (backward position 1 = heaviest = runs last) inside a range tree,
/// and per dominating position range i it maintains
///
///   a_i      first position of the range (static, from Algorithm 1),
///   b_i      last currently-occupied position in the range,
///   x_i      xi([a_i, b_i])   -- cycle mass inside the range,
///   d_i      Delta([a_i, b_i]) -- position-weighted cycle mass,
///   alpha_i / beta_i           -- handles of the boundary elements.
///
/// An insert/delete shifts at most one element across each range boundary,
/// so the boundary bookkeeping costs O(|P-hat|) plus one O(log N) tree
/// update, and the running total cost
///
///   C = sum_i [ Re*E(p_i)*x_i + Rt*T(p_i)*(d_i + (a_i - 1) * x_i) ]
///
/// (Eq. 32) is refreshed in O(|P-hat|) and read back in Theta(1).
/// This is what makes Least Marginal Cost cheap: a marginal cost is just
/// the cost delta of a probe insertion.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/schedule.h"
#include "dvfs/core/task.h"
#include "dvfs/ds/flat_range_tree.h"

namespace dvfs::core {

class DynamicSingleCoreScheduler {
 public:
  /// Cache-conscious order-statistic tree; the pointer-chasing treap in
  /// ds/range_tree.h remains as the differential-test oracle.
  using Tree = ds::FlatRangeTree;
  /// Stable reference to a queued task; valid until erase()/pop_front().
  using TaskRef = Tree::Handle;

  explicit DynamicSingleCoreScheduler(CostTable table);

  [[nodiscard]] const CostTable& table() const { return table_; }
  [[nodiscard]] std::size_t size() const { return tree_.size(); }
  [[nodiscard]] bool empty() const { return tree_.empty(); }

  /// Queues a task (Algorithm 5). O(|P-hat| + log N).
  TaskRef insert(Cycles cycles, TaskId id);

  /// Removes a queued task (Algorithm 6). O(|P-hat| + log N).
  void erase(TaskRef ref);

  /// The task that runs first under the Theorem 3 order (fewest cycles);
  /// its processing rate is best_rate(size()) -- it has size()-1 tasks
  /// queued behind it plus itself.
  [[nodiscard]] TaskRef front() const {
    DVFS_REQUIRE(!tree_.empty(), "queue is empty");
    return tree_.last();
  }

  /// Cost delta of hypothetically queueing `cycles`; implemented as an
  /// insert/erase probe, so it is exact. O(|P-hat| + log N).
  [[nodiscard]] Money marginal_insert_cost(Cycles cycles);

  /// Same quantity computed analytically without touching the structure:
  /// the new element's own positional cost plus the shift cost of every
  /// element behind it (within-range shifts pay one extra Rt*T(p) per
  /// cycle; the boundary element of each full range crosses into the next
  /// range's rate). O(|P-hat| + log N), const, allocation-free.
  [[nodiscard]] Money peek_marginal_insert_cost(Cycles cycles) const;

  /// Running total cost C of the queued tasks (Eq. 32). Theta(1).
  [[nodiscard]] Money total_cost() const { return cost_; }

  [[nodiscard]] static Cycles cycles_of(TaskRef ref) {
    return static_cast<Cycles>(Tree::weight(ref));
  }
  [[nodiscard]] static TaskId id_of(TaskRef ref) {
    return Tree::payload(ref);
  }

  /// Backward position (1 = heaviest/last-to-run) of a queued task.
  [[nodiscard]] std::size_t backward_position(TaskRef ref) const {
    return tree_.rank(ref);
  }

  /// Rate index the queued task would run at if the queue drained now.
  [[nodiscard]] std::size_t rate_of(TaskRef ref) const {
    return table_.best_rate(tree_.rank(ref));
  }

  /// Materializes the queue as a forward single-core plan (shortest first)
  /// with per-position optimal rates. O(N).
  [[nodiscard]] CorePlan plan() const;

  /// Recomputes C from scratch by walking the tree. O(N) reference used by
  /// tests and the A2 bench.
  [[nodiscard]] Money recompute_cost() const;

  /// Verifies every invariant (b_i/x_i/d_i/alpha_i/beta_i against the tree
  /// and the cached cost). Test support; O(N + |P-hat| log N).
  [[nodiscard]] bool validate() const;

 private:
  struct RangeState {
    std::size_t rate_idx = 0;      // index into the energy model's rates
    std::size_t lo = 1;            // a_i (static)
    std::size_t hi = 0;            // static upper bound; kUnbounded for last
    std::size_t b = 0;             // last occupied position; lo-1 if empty
    double x = 0.0;                // xi([lo, b])
    double d = 0.0;                // Delta([lo, b])
    TaskRef alpha = nullptr;       // element at position lo
    TaskRef beta = nullptr;        // element at position b
  };

  [[nodiscard]] std::size_t range_index_of(std::size_t position) const;
  void refresh_cost();

  CostTable table_;
  Tree tree_;
  std::vector<RangeState> ranges_;
  // Structure-of-arrays per-range Eq. 32 coefficients, parallel to
  // `ranges_`: e_coef_[i] = Re*E(p_i), t_coef_[i] = Rt*T(p_i). Hoisting
  // the products out of the model lets refresh_cost() and the peek walk
  // run branch-free over two contiguous double arrays instead of calling
  // bounds-checked model accessors per range.
  std::vector<double> e_coef_;
  std::vector<double> t_coef_;
  Money cost_ = 0.0;
};

}  // namespace dvfs::core
