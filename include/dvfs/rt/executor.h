/// \file executor.h
/// \brief Real-machine plan execution (the live analog of Section V's
///        "execute the plans on the experimental platform").
///
/// The paper validates its model by running the scheduled workloads on an
/// actual quad-core x86 box whose core frequencies it pins through
/// cpufreq. Containers and CI machines cannot change hardware frequency,
/// so this executor reproduces the *execution* half faithfully and
/// emulates the *frequency* half honestly:
///
///  * one worker std::thread per scheduled core, optionally pinned to a
///    physical CPU (sched_setaffinity), runs its sequence in plan order;
///  * each task spins a calibrated CPU-bound kernel for the model-
///    predicted duration cycles * T(rate) * time_scale — a slower rate
///    means proportionally longer real spinning, which is exactly the
///    observable behaviour of a slower core;
///  * `time_scale` compresses the experiment (1e-3 turns a 3000 s batch
///    window into 3 s of wall time) without changing relative timing;
///  * results come back as per-task wall-clock records comparable against
///    the analytic model, closing the same loop as the paper's Fig. 1.
///
/// Energy and counters are *measured* when a hardware telemetry provider
/// is attached (perf counters, RAPL via /sys/class/powercap — see
/// obs/hw_telemetry.h); anything the host cannot measure is charged from
/// the model and explicitly labeled so. Without a provider the executor
/// behaves as before: energy is charged from the model (cycles *
/// E(rate)), which is the quantity the executor's caller already decided
/// to trust.
#pragma once

#include <cstdint>
#include <vector>

#include "dvfs/core/cost_model.h"
#include "dvfs/core/schedule.h"
#include "dvfs/obs/drift.h"
#include "dvfs/obs/hw_telemetry.h"

namespace dvfs::obs {
class Recorder;
}  // namespace dvfs::obs

namespace dvfs::rt {

/// Measures how fast this machine spins the busy-work kernel, so workers
/// can spin for precise durations without calling the clock too often.
class SpinCalibrator {
 public:
  /// Runs the kernel for ~`calibration_seconds` and derives iterations/s.
  explicit SpinCalibrator(double calibration_seconds = 0.05);

  [[nodiscard]] double iterations_per_second() const { return ips_; }

  /// Spins for `seconds` of wall time; returns the kernel's accumulated
  /// value (forces the work to be real). Checks the clock every chunk.
  static std::uint64_t spin_for(Seconds seconds, double ips);

 private:
  double ips_ = 0.0;
};

/// One executed task's wall-clock record.
struct RtTaskRecord {
  core::TaskId id = 0;
  std::size_t core = 0;
  std::size_t rate_idx = 0;
  Seconds planned_seconds = 0.0;  ///< model: cycles * T(rate) * time_scale
  Seconds start = 0.0;            ///< wall time since run start
  Seconds finish = 0.0;
  Joules model_energy = 0.0;      ///< cycles * E(rate)
  /// Hardware telemetry for the span, when a provider was attached;
  /// sources stay kUnavailable otherwise.
  obs::hw::SpanMeasurement measured;
};

struct RtResult {
  std::vector<RtTaskRecord> tasks;  ///< completion order (cross-core)
  Seconds wall_makespan = 0.0;
  Joules model_energy = 0.0;
  /// Aggregate measured/predicted ratios; zeros without a provider.
  obs::hw::DriftSummary drift;

  /// Largest |measured - planned| / planned over all tasks: how far real
  /// execution drifted from the model (scheduler jitter, clock overhead).
  [[nodiscard]] double worst_relative_drift() const;
};

class RealtimeExecutor {
 public:
  struct Config {
    /// Wall seconds per model second (1.0 = real time).
    double time_scale = 1.0;
    /// Pin worker j to CPU (j mod hardware cores). Best-effort: failures
    /// (e.g. restricted cgroups) are ignored, execution stays correct.
    bool pin_threads = false;
  };

  /// `model` prices every core (homogeneous executor; heterogeneous plans
  /// execute per their own rate indices).
  RealtimeExecutor(core::EnergyModel model, Config config);

  /// Runs `plan` to completion on real threads and returns the records.
  /// Throws if the plan uses rate indices the model lacks.
  [[nodiscard]] RtResult execute(const core::Plan& plan) const;

  /// Attaches a flight recorder for subsequent execute() calls; nullptr
  /// detaches. The recorder must have at least one channel per plan core
  /// — each worker thread is the single producer of its own channel, so
  /// the wait-free SPSC contract holds with real concurrency. Events use
  /// wall-clock seconds since run start as their timestamp.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Attaches a hardware telemetry provider for subsequent execute()
  /// calls; nullptr detaches. Each worker opens its own per-thread
  /// session (open_thread_telemetry runs on the worker thread, as perf
  /// requires), spans are bracketed around the spin, drift ratios are
  /// tracked in the global registry, and — when a recorder is also
  /// attached — kHwPlanned/kHwSpan events are emitted (`.dfr` v2).
  void set_hw_provider(obs::hw::HwProvider* provider) {
    hw_provider_ = provider;
  }

 private:
  core::EnergyModel model_;
  Config config_;
  SpinCalibrator calibrator_;
  obs::Recorder* recorder_ = nullptr;
  obs::hw::HwProvider* hw_provider_ = nullptr;
};

}  // namespace dvfs::rt
