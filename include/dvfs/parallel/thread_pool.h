/// \file thread_pool.h
/// \brief Fixed-size work-queue thread pool.
///
/// The evaluation harness re-runs whole simulations across seeds, policies
/// and platform shapes; each run is independent and seconds-scale, so a
/// plain pool of worker threads over a mutex-protected queue is the right
/// tool (coarse tasks, no work stealing needed).
///
/// Concurrency style follows the C++ Core Guidelines: think in tasks, not
/// threads (CP.4); RAII for joining (CP.25: workers are joined in the
/// destructor, never detached) and for locking (CP.20: every lock is a
/// scoped lock); condition variables always wait under a predicate
/// (CP.42).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "dvfs/common.h"

namespace dvfs::parallel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: pending tasks that never ran are abandoned, but all
  /// *running* tasks complete and every worker is joined.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Schedules `fn(args...)` and returns a future for its result.
  /// Exceptions thrown by the task are delivered through the future.
  template <typename Fn, typename... Args>
  [[nodiscard]] auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Result = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [f = std::forward<Fn>(fn),
         ... a = std::forward<Args>(args)]() mutable -> Result {
          return std::invoke(std::move(f), std::move(a)...);
        });
    std::future<Result> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      DVFS_REQUIRE(!stopping_, "pool is shutting down");
      queue_.emplace_back([task]() { (*task)(); });
    }
    ready_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) on the pool and blocks until all complete.
  /// The first exception (if any) is rethrown after every task finished.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dvfs::parallel
