/// \file seed_sweep.h
/// \brief Replicated experiments: run a seeded measurement many times in
///        parallel and aggregate the distribution.
///
/// The paper evaluates its online mode on a single proprietary trace; a
/// reproduction should show its conclusions are not an artifact of one
/// random trace. SeedSweep runs `measure(seed)` for a range of seeds on a
/// ThreadPool and reports mean / stddev / min / max per metric, which the
/// confidence bench (`bench_fig3_confidence`) turns into error bars.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/parallel/thread_pool.h"

namespace dvfs::parallel {

/// Summary statistics of one metric across replications.
struct Stats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;

  /// Half-width of a ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95() const {
    if (n < 2) return 0.0;
    return 1.96 * stddev / std::sqrt(static_cast<double>(n));
  }
};

/// Computes Stats over raw samples.
[[nodiscard]] Stats summarize(const std::vector<double>& samples);

/// One replication's named metrics (e.g. {"lmc_cost", ...}).
using MetricMap = std::map<std::string, double>;

/// Runs `measure` for seeds [first_seed, first_seed + replications) on
/// `pool` and aggregates each metric across replications. Every metric
/// name must appear in every replication (checked). Deterministic:
/// results depend only on the seeds, not on scheduling order.
[[nodiscard]] std::map<std::string, Stats> sweep_seeds(
    ThreadPool& pool, std::size_t replications, std::uint64_t first_seed,
    const std::function<MetricMap(std::uint64_t seed)>& measure);

}  // namespace dvfs::parallel
