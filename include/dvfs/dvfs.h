/// \file dvfs.h
/// \brief Umbrella header for the percore-dvfs-sched library.
///
/// Pulls in the full public API:
///  - dvfs::core       task/energy/cost models and the paper's schedulers
///  - dvfs::ds         data-structure substrates (range tree, envelope, heap)
///  - dvfs::sim        event-driven multi-core DVFS simulator
///  - dvfs::governors  scheduling policies (LMC, OLB, On-demand, plans)
///  - dvfs::cpufreq    sysfs-style per-core frequency control
///  - dvfs::workload   Table I data, trace generation and estimation
#pragma once

#include "dvfs/common.h"
#include "dvfs/core/batch_multi.h"
#include "dvfs/core/batch_single.h"
#include "dvfs/core/batch_switch_cost.h"
#include "dvfs/core/cost_model.h"
#include "dvfs/core/deadline.h"
#include "dvfs/core/dynamic_sched.h"
#include "dvfs/core/energy_model.h"
#include "dvfs/core/online_lmc.h"
#include "dvfs/core/plan_io.h"
#include "dvfs/core/rate_set.h"
#include "dvfs/core/schedule.h"
#include "dvfs/core/task.h"
#include "dvfs/core/yds.h"
#include "dvfs/cpufreq/cpufreq.h"
#include "dvfs/cpufreq/governor_daemon.h"
#include "dvfs/ds/flat_range_tree.h"
#include "dvfs/ds/indexed_heap.h"
#include "dvfs/ds/lower_envelope.h"
#include "dvfs/ds/range_tree.h"
#include "dvfs/governors/fifo_policy.h"
#include "dvfs/governors/lmc_policy.h"
#include "dvfs/governors/planned_policy.h"
#include "dvfs/governors/wbg_rebalance_policy.h"
#include "dvfs/parallel/seed_sweep.h"
#include "dvfs/parallel/thread_pool.h"
#include "dvfs/rt/executor.h"
#include "dvfs/util/args.h"
#include "dvfs/sim/contention.h"
#include "dvfs/sim/engine.h"
#include "dvfs/sim/metrics.h"
#include "dvfs/sim/power_meter.h"
#include "dvfs/workload/estimator.h"
#include "dvfs/workload/generators.h"
#include "dvfs/workload/spec2006int.h"
#include "dvfs/workload/stats.h"
#include "dvfs/workload/trace.h"
