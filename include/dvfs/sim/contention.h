/// \file contention.h
/// \brief Shared-resource interference model (Section V-A2).
///
/// The paper's Fig. 1 finds real executions cost ~8% more than the
/// analytic model predicts and attributes the gap to (a) co-running tasks
/// competing for last-level cache and memory bandwidth and (b) execution
/// time not scaling perfectly with frequency. This model reproduces
/// mechanism (a): while `b` cores are busy simultaneously, every busy core
/// executes cycles slower by the factor
///
///     f(b) = 1 + alpha * (b - 1)
///
/// (one busy core runs interference-free). Busy power is unchanged, so
/// stretched time raises both the time and the energy of the run — exactly
/// the direction and rough magnitude of the paper's observed gap when
/// alpha is calibrated so a fully-loaded quad core pays ~8%.
#pragma once

#include <cstddef>

#include "dvfs/common.h"

namespace dvfs::sim {

class ContentionModel {
 public:
  /// `alpha` = per-co-runner slowdown. Zero disables contention (ideal
  /// machine, matching the analytic cost model exactly).
  explicit ContentionModel(double alpha = 0.0) : alpha_(alpha) {
    DVFS_REQUIRE(alpha >= 0.0, "slowdown cannot be negative");
  }

  [[nodiscard]] double alpha() const { return alpha_; }

  /// Execution-time stretch while `busy_cores` cores run concurrently.
  [[nodiscard]] double factor(std::size_t busy_cores) const {
    if (busy_cores <= 1) return 1.0;
    return 1.0 + alpha_ * static_cast<double>(busy_cores - 1);
  }

  /// No interference at all (the paper's simulator).
  [[nodiscard]] static ContentionModel none() { return ContentionModel(0.0); }

  /// Calibrated so 4 co-running cores are ~8% slower (the paper's measured
  /// model-vs-reality gap on the quad-core i7-950).
  [[nodiscard]] static ContentionModel icpp2014_quadcore() {
    return ContentionModel(0.08 / 3.0);
  }

 private:
  double alpha_;
};

}  // namespace dvfs::sim
