/// \file metrics.h
/// \brief Per-task and aggregate measurements of a simulation run.
///
/// Mirrors the paper's measurement methodology: energy is the integral of
/// power over the run with the idle baseline kept separate (the paper
/// deducts the idle wall-power reading), time is per-task turnaround
/// (completion minus arrival — the online experiments score each task's
/// completion, not the makespan), and cost converts both through Re/Rt.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/common.h"
#include "dvfs/core/cost_model.h"
#include "dvfs/core/task.h"

namespace dvfs::sim {

struct TaskRecord {
  core::TaskId id = 0;
  core::TaskClass klass = core::TaskClass::kBatch;
  Cycles cycles = 0;
  Seconds arrival = 0.0;
  Seconds deadline = kNoDeadline;  ///< from the trace; policies may ignore it
  Seconds first_start = -1.0;  ///< -1 until the task first runs
  Seconds finish = -1.0;       ///< -1 until completion
  Joules energy = 0.0;         ///< busy energy attributed to this task
  std::size_t preemptions = 0;

  /// Completed after its deadline, or never completed despite having one.
  [[nodiscard]] bool missed_deadline() const {
    if (deadline == kNoDeadline) return false;
    return !completed() || finish > deadline;
  }

  [[nodiscard]] bool started() const { return first_start >= 0.0; }
  [[nodiscard]] bool completed() const { return finish >= 0.0; }
  [[nodiscard]] Seconds turnaround() const {
    DVFS_REQUIRE(completed(), "task not completed");
    return finish - arrival;
  }
  [[nodiscard]] Seconds waiting() const {
    DVFS_REQUIRE(started(), "task never started");
    return first_start - arrival;
  }
};

/// Everything a simulation run produces.
struct SimResult {
  std::vector<TaskRecord> tasks;
  Joules busy_energy = 0.0;  ///< integral of busy power (idle deducted)
  Joules idle_energy = 0.0;  ///< idle-power integral, reported separately
  Seconds end_time = 0.0;    ///< completion of the last event (makespan)

  /// rate_residency[core][rate_idx] = busy seconds core spent at that rate
  /// (the frequency-residency histogram a power analyst would pull from
  /// hardware counters).
  std::vector<std::vector<Seconds>> rate_residency;

  /// Per-core total busy seconds (sum over rates of the residency row).
  [[nodiscard]] Seconds busy_seconds(std::size_t core) const;

  /// Fraction of all busy time spent at each rate index, aggregated over
  /// cores (rows may have different lengths on heterogeneous platforms;
  /// the result is sized to the longest row). Empty if nothing ran.
  [[nodiscard]] std::vector<double> rate_share() const;

  /// Mean utilization of a core over [0, end_time].
  [[nodiscard]] double utilization(std::size_t core) const;

  [[nodiscard]] std::size_t completed_count() const;

  /// Sum of turnaround over completed tasks, optionally one class only.
  [[nodiscard]] Seconds total_turnaround() const;
  [[nodiscard]] Seconds total_turnaround(core::TaskClass klass) const;

  [[nodiscard]] Seconds mean_turnaround(core::TaskClass klass) const;

  /// Tasks of `klass` that blew their deadline (finished late or never).
  [[nodiscard]] std::size_t deadline_misses(core::TaskClass klass) const;

  /// Turnaround percentile over completed tasks of `klass` (p in [0, 1];
  /// 0.5 = median, 0.99 = tail latency). Requires at least one completed
  /// task of the class.
  [[nodiscard]] Seconds turnaround_percentile(core::TaskClass klass,
                                              double p) const;

  /// Re * busy_energy (the paper's idle-deducted methodology).
  [[nodiscard]] Money energy_cost(const core::CostParams& p) const {
    return p.re * busy_energy;
  }
  /// Rt * total turnaround of completed tasks.
  [[nodiscard]] Money time_cost(const core::CostParams& p) const {
    return p.rt * total_turnaround();
  }
  [[nodiscard]] Money total_cost(const core::CostParams& p) const {
    return energy_cost(p) + time_cost(p);
  }
};

}  // namespace dvfs::sim
