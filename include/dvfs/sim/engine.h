/// \file engine.h
/// \brief Event-driven multi-core DVFS simulator (Section V-B).
///
/// The paper evaluates the online mode with an event-driven simulator
/// whose events are task arrivals and completions; this engine generalizes
/// that with preemption, mid-flight frequency changes, periodic governor
/// timers, and the contention model needed for the Fig. 1 experiment.
///
/// Division of labour: the engine owns *mechanism* — per-core execution
/// progress, cancellable completion events, energy integration, task
/// records. A Policy owns *strategy* — which core a task goes to, what
/// runs next, at which rate. The paper's schedulers (LMC, OLB, On-demand,
/// Power Saving, WBG plan execution) are Policy implementations in
/// dvfs::governors.
///
/// Execution model: core j at rate index r executes 1 / (T_j(r) * f(b))
/// cycles per second while b cores are busy (f from ContentionModel), and
/// draws busy power E_j(r) / T_j(r) watts. Between events all state is
/// constant, so progress integrates exactly.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dvfs/core/energy_model.h"
#include "dvfs/core/task.h"
#include "dvfs/ds/indexed_heap.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/sim/contention.h"
#include "dvfs/sim/metrics.h"
#include "dvfs/workload/trace.h"

namespace dvfs::obs {
class RecorderChannel;
class TraceWriter;
}  // namespace dvfs::obs

namespace dvfs::sim {

class Engine;

/// Scheduling strategy driven by the engine's events.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Called once before the run starts (after cores are configured).
  virtual void attach(Engine& engine) { (void)engine; }

  /// A task from the trace has arrived. The policy may start it, queue it
  /// internally, preempt something, or re-rate running work.
  virtual void on_arrival(Engine& engine, const core::Task& task) = 0;

  /// Core `core` finished `task` and is now idle.
  virtual void on_complete(Engine& engine, std::size_t core,
                           core::TaskId task) = 0;

  /// Periodic callback every timer_interval() seconds (if positive).
  virtual void on_timer(Engine& engine) { (void)engine; }
  [[nodiscard]] virtual Seconds timer_interval() const { return 0.0; }

  /// False while the policy still holds queued work (keeps timers alive
  /// when all cores happen to be idle).
  [[nodiscard]] virtual bool idle() const { return true; }
};

class Engine {
 public:
  /// One energy model per core (homogeneous platforms pass copies).
  /// `idle_watts` is the per-core idle power, integrated separately.
  /// `dvfs_transition_latency`: a core stalls this long (no progress,
  /// busy power at the new rate) whenever its frequency changes — set
  /// non-zero to drop the paper's free-transition assumption online
  /// (ablation A14). The first task after boot pays nothing.
  Engine(std::vector<core::EnergyModel> models, ContentionModel contention,
         double idle_watts = 0.0, Seconds dvfs_transition_latency = 0.0);

  // ------------------------------------------------------------- topology
  [[nodiscard]] std::size_t num_cores() const { return cores_.size(); }
  [[nodiscard]] const core::EnergyModel& model(std::size_t core) const;
  [[nodiscard]] const ContentionModel& contention() const {
    return contention_;
  }

  // ------------------------------------------------- policy control surface
  /// Begins (or resumes) `task` on an idle core. `remaining` may be less
  /// than the task's total cycles when resuming preempted work.
  void start(std::size_t core, core::TaskId task, double remaining_cycles,
             std::size_t rate_idx);

  struct Preempted {
    core::TaskId task = 0;
    double remaining_cycles = 0.0;
  };
  /// Stops the task running on `core` and returns what is left of it.
  [[nodiscard]] Preempted preempt(std::size_t core);

  /// Changes the rate of the running task (per-core DVFS mid-flight).
  void set_rate(std::size_t core, std::size_t rate_idx);

  [[nodiscard]] bool busy(std::size_t core) const;
  [[nodiscard]] core::TaskId running_task(std::size_t core) const;
  [[nodiscard]] std::size_t current_rate(std::size_t core) const;
  [[nodiscard]] double remaining_cycles(std::size_t core) const;

  /// Current simulated time (valid during callbacks).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Total busy seconds core `core` has accumulated; governors sample the
  /// difference between ticks to compute loading.
  [[nodiscard]] Seconds cumulative_busy_seconds(std::size_t core) const;

  /// Record of a task seen so far this run (by id).
  [[nodiscard]] const TaskRecord& record(core::TaskId task) const;

  // ---------------------------------------------------------- observability
  /// Attaches a Chrome-trace writer for subsequent runs; nullptr detaches
  /// (tracing is togglable at runtime). The engine does not own the
  /// writer, which must outlive any run it observes. Each run appends
  /// task spans (per-core tracks), frequency-change instants, governor
  /// decision instants, and a busy-core counter series.
  void set_trace_writer(obs::TraceWriter* writer) { trace_ = writer; }
  [[nodiscard]] obs::TraceWriter* trace_writer() const { return trace_; }

  /// Attaches a flight-recorder channel (see dvfs/obs/recorder.h);
  /// nullptr detaches. The engine is the channel's single producer and
  /// pushes fixed-size events for the run boundary, task lifecycle,
  /// frequency transitions, and governor-decision timing. Policies reach
  /// the same channel through `recorder()` to append their candidate
  /// vectors, so one recording interleaves mechanism and strategy in
  /// decision order.
  void set_recorder(obs::RecorderChannel* channel) { recorder_ = channel; }
  [[nodiscard]] obs::RecorderChannel* recorder() const { return recorder_; }

  // ---------------------------------------------------------------- running
  /// Simulates `trace` to completion under `policy` and returns the
  /// metrics. The engine is reusable: each run starts from idle cores.
  SimResult run(const workload::Trace& trace, Policy& policy);

 private:
  struct CoreState {
    bool busy = false;
    std::size_t record_idx = 0;   // into result_.tasks
    double remaining = 0.0;       // cycles
    std::size_t rate_idx = 0;
    std::size_t last_rate = kNoRate;  // persists across idle gaps
    Seconds stall_remaining = 0.0;    // pending DVFS transition stall
    ds::IndexedHeap<std::size_t>::Handle completion_event =
        ds::IndexedHeap<std::size_t>::kNullHandle;
    Seconds busy_seconds = 0.0;
    Seconds span_start = 0.0;  // when the current execution span began
  };
  static constexpr std::size_t kNoRate = static_cast<std::size_t>(-1);

  /// Engine-wide metrics, resolved once from the global registry so hot
  /// paths touch only relaxed atomics (no name lookup, no lock).
  struct Stats {
    Stats();
    obs::Counter& arrivals;
    obs::Counter& completions;
    obs::Counter& timers;
    obs::Counter& starts;
    obs::Counter& preemptions;
    obs::Counter& freq_transitions;
    obs::Histogram& queue_depth;
    obs::Histogram& decision_ns;
    obs::Histogram& queue_wait_us;
  };

  /// Charges the transition stall (and counts/traces the frequency
  /// change) when `core`'s frequency differs from its last one.
  void charge_transition(std::size_t core, std::size_t new_rate);

  /// Closes the trace span for `core`'s current task ending at now().
  void emit_task_span(std::size_t core, bool preempted);

  enum class EventKind : std::uint8_t { kArrival, kCompletion, kTimer };
  struct Event {
    EventKind kind;
    std::size_t index;  // arrival: trace index; completion: core index
  };

  void check_core(std::size_t core) const;
  [[nodiscard]] std::size_t busy_count() const { return busy_count_; }

  /// Advances all cores from last_update_ to `t`, integrating cycles and
  /// energy with the contention factor of the elapsed segment.
  void sync_to(Seconds t);

  /// Re-keys every busy core's completion event after a state change.
  void reschedule_completions();

  [[nodiscard]] std::size_t record_index(core::TaskId task) const;

  std::vector<core::EnergyModel> models_;
  ContentionModel contention_;
  double idle_watts_;
  Seconds transition_latency_;

  // Per-run state.
  std::vector<CoreState> cores_;
  std::size_t busy_count_ = 0;
  Seconds now_ = 0.0;
  ds::IndexedHeap<Event> events_;
  SimResult result_;
  std::unordered_map<core::TaskId, std::size_t> record_of_;
  bool running_ = false;

  Stats stats_;
  obs::TraceWriter* trace_ = nullptr;
  obs::RecorderChannel* recorder_ = nullptr;
};

}  // namespace dvfs::sim
