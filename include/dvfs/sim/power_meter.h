/// \file power_meter.h
/// \brief Wall-power-meter emulation (Section V measurement methodology).
///
/// The paper measures energy with a DW-6091 power meter: sample the
/// machine's total power draw at a fixed period, integrate over the run,
/// and deduct the pre-measured idle baseline. PowerMeter reproduces that
/// pipeline over a SimResult so experiments can be reported exactly the
/// way the paper reports them — and so the methodology itself is testable
/// (the sampled integral must converge to the simulator's exact energy
/// accounting as the sampling period shrinks).
///
/// The meter reconstructs the platform's power timeline from the per-task
/// records (which core intervals were busy is not retained), so it works
/// on aggregate draw: busy power is derived from busy_energy spread over
/// recorded busy time, plus the constant idle floor. For exact per-sample
/// inspection, attach a SamplingObserver-style policy instead.
#pragma once

#include <vector>

#include "dvfs/common.h"
#include "dvfs/sim/engine.h"

namespace dvfs::sim {

/// One sample of total wall power.
struct PowerSample {
  Seconds t = 0.0;
  double watts = 0.0;
};

/// Records the platform's *exact* total power (busy + idle floor) at each
/// event boundary during a run, by wrapping the policy under test. The
/// trace is a step function: power changes only at events.
class PowerTracingPolicy final : public Policy {
 public:
  /// Wraps `inner`; `idle_watts_per_core` matches the Engine's setting.
  PowerTracingPolicy(Policy& inner, double idle_watts_per_core);

  void attach(Engine& engine) override;
  void on_arrival(Engine& engine, const core::Task& task) override;
  void on_complete(Engine& engine, std::size_t core,
                   core::TaskId task) override;
  void on_timer(Engine& engine) override;
  [[nodiscard]] Seconds timer_interval() const override;
  [[nodiscard]] bool idle() const override;

  /// Step-function samples taken after every event (sorted by time).
  [[nodiscard]] const std::vector<PowerSample>& trace() const {
    return trace_;
  }

  /// Integrates the step function over [0, end]: the meter's energy
  /// reading including the idle floor.
  [[nodiscard]] Joules integrate(Seconds end) const;

  /// The paper's reported quantity: meter reading minus the idle baseline
  /// (num_cores * idle_watts * end).
  [[nodiscard]] Joules integrate_idle_deducted(Seconds end) const;

 private:
  void sample(Engine& engine);

  Policy& inner_;
  double idle_watts_;
  std::size_t num_cores_ = 0;
  std::vector<PowerSample> trace_;
};

}  // namespace dvfs::sim
