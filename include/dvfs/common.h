/// \file common.h
/// \brief Shared utilities: precondition checking, numeric helpers, and
///        common type aliases used across the dvfs libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dvfs {

/// Number of CPU cycles a task needs. Cycle counts for realistic workloads
/// (minutes at GHz rates) exceed 32 bits, so 64 bits are required.
using Cycles = std::uint64_t;

/// Simulated wall-clock time and durations, in seconds.
using Seconds = double;

/// Energy in joules.
using Joules = double;

/// Monetized cost (the paper uses cents; any fixed currency unit works).
using Money = double;

/// Processing rate (core frequency) in GHz. The paper's rate sets are
/// small discrete sets, e.g. {1.6, 2.0, 2.4, 2.8, 3.0} for the i7-950.
using Rate = double;

/// Thrown by DVFS_REQUIRE when a caller violates an API precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void require_failed(const char* expr, const std::string& msg,
                                        const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": precondition `" << expr << "` violated";
  if (!msg.empty()) os << ": " << msg;
  throw PreconditionError(os.str());
}

}  // namespace detail

/// Precondition check for public API entry points. Unlike assert(), stays
/// active in release builds: scheduling plans feed real frequency-control
/// actuators, so silent misuse is worse than the branch cost.
#define DVFS_REQUIRE(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dvfs::detail::require_failed(#cond, (msg),                   \
                                     std::source_location::current()); \
    }                                                                \
  } while (false)

/// Tolerant floating-point comparison for cost/energy arithmetic.
/// Costs are sums of O(N) products, so tolerance scales with magnitude.
inline bool almost_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// +infinity shorthand for deadlines ("no time constraint", Sec. II-A).
inline constexpr Seconds kNoDeadline = std::numeric_limits<Seconds>::infinity();

}  // namespace dvfs
