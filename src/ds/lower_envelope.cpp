#include "dvfs/ds/lower_envelope.h"

#include <algorithm>
#include <cmath>

namespace dvfs::ds {
namespace {

// Dual-space point for a line (x = slope, y = intercept), as in Algorithm 1.
struct DualPoint {
  double x;
  double y;
  std::size_t id;
};

// Signed area of the (t0, t1, t2) triangle; >= 0 means t1 does not bend the
// chain in the direction required for it to touch the lower envelope, so it
// is popped (Algorithm 1 line 11).
double cross(const DualPoint& t0, const DualPoint& t1, const DualPoint& t2) {
  return (t1.x - t0.x) * (t2.y - t0.y) - (t2.x - t0.x) * (t1.y - t0.y);
}

// First integer position at which line `b` (smaller slope) becomes no worse
// than line `a` (larger slope): k >= (b.y - a.y) / (a.x - b.x), Eq. (25).
// Ties at an exact integer belong to `b` (the higher rate), so this is a
// ceiling; the epsilon guards against `k_star` being nudged just above an
// integer by floating-point rounding.
std::size_t crossover_position(const DualPoint& a, const DualPoint& b) {
  const double k_star = (b.y - a.y) / (a.x - b.x);
  const double eps = 1e-9 * std::max(1.0, std::fabs(k_star));
  const double c = std::ceil(k_star - eps);
  if (c < 1.0) return 1;
  return static_cast<std::size_t>(c);
}

}  // namespace

std::size_t EnvelopeResult::winner(std::size_t k) const {
  DVFS_REQUIRE(k >= 1, "positions are 1-based");
  DVFS_REQUIRE(!active.empty(), "envelope is empty");
  // Binary search over the active ranges, which partition [1, inf).
  auto it = std::partition_point(active.begin(), active.end(),
                                 [&](std::size_t idx) {
                                   const IntegerRange& r = range_of[idx];
                                   return r.hi != IntegerRange::kUnbounded &&
                                          r.hi < k;
                                 });
  DVFS_REQUIRE(it != active.end() && range_of[*it].contains(k),
               "active ranges must partition [1, inf)");
  return *it;
}

EnvelopeResult lower_envelope_integer(std::span<const Line> lines) {
  DVFS_REQUIRE(!lines.empty(), "need at least one line");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    DVFS_REQUIRE(lines[i].slope < lines[i - 1].slope,
                 "slopes must be strictly decreasing");
    DVFS_REQUIRE(lines[i].intercept > lines[i - 1].intercept,
                 "intercepts must be strictly increasing");
  }

  // Graham-scan stack over dual points (Algorithm 1 lines 8-16).
  std::vector<DualPoint> hull;
  hull.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const DualPoint t{lines[i].slope, lines[i].intercept, i};
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull[hull.size() - 1], t) >= 0.0) {
      hull.pop_back();
    }
    hull.push_back(t);
  }

  // Convert consecutive hull vertices into integer position ranges
  // (Algorithm 1 lines 17-27). A hull line whose range collapses (its first
  // winning position coincides with its successor's) ends up dominated at
  // every *integer* point and is dropped from `active`.
  EnvelopeResult result;
  result.range_of.assign(lines.size(), IntegerRange{1, 0});
  result.active.reserve(hull.size());
  std::size_t lb = 1;
  for (std::size_t i = 0; i + 1 < hull.size(); ++i) {
    const std::size_t nlb = crossover_position(hull[i], hull[i + 1]);
    if (lb < nlb) {
      result.range_of[hull[i].id] = IntegerRange{lb, nlb - 1};
      result.active.push_back(hull[i].id);
      lb = nlb;
    }
    // lb >= nlb: hull[i] never wins an integer position; keep lb.
  }
  result.range_of[hull.back().id] = IntegerRange{lb, IntegerRange::kUnbounded};
  result.active.push_back(hull.back().id);
  return result;
}

const EnvelopeResult& MemoizedEnvelope::get(std::span<const Line> lines) {
  if (!valid_ || key_.size() != lines.size() ||
      !std::equal(key_.begin(), key_.end(), lines.begin())) {
    cached_ = lower_envelope_integer(lines);
    key_.assign(lines.begin(), lines.end());
    valid_ = true;
    ++rebuilds_;
  }
  return cached_;
}

std::size_t argmin_line_at(std::span<const Line> lines, std::size_t k) {
  DVFS_REQUIRE(!lines.empty(), "need at least one line");
  DVFS_REQUIRE(k >= 1, "positions are 1-based");
  std::size_t best = 0;
  double best_val = lines[0].at(static_cast<double>(k));
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const double v = lines[i].at(static_cast<double>(k));
    if (v <= best_val) {  // ties toward the later (higher-rate) line
      best_val = v;
      best = i;
    }
  }
  return best;
}

}  // namespace dvfs::ds
