#include "dvfs/ds/flat_range_tree.h"

#include <algorithm>

namespace dvfs::ds {

// ---------------------------------------------------------------------------
// Arena plumbing.

std::uint32_t FlatRangeTree::alloc_node(bool leaf) {
  std::uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    if (bump_nodes_ == node_chunks_.size() * kNodesPerChunk) {
      node_chunks_.emplace_back(new Node[kNodesPerChunk]);
    }
    idx = static_cast<std::uint32_t>(bump_nodes_++);
  }
  Node& n = node(idx);
  n.parent = kNil;
  n.num = 0;
  n.is_leaf = leaf ? 1 : 0;
  if (leaf) {
    n.u.leaf.next = kNil;
    n.u.leaf.prev = kNil;
  }
  return idx;
}

void FlatRangeTree::free_node(std::uint32_t idx) { free_nodes_.push_back(idx); }

FlatRangeTree::Slot* FlatRangeTree::alloc_slot() {
  if (!free_slots_.empty()) {
    Slot* s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  if (bump_slots_ == slot_chunks_.size() * kSlotsPerChunk) {
    slot_chunks_.emplace_back(new Slot[kSlotsPerChunk]);
  }
  Slot* s = &slot_chunks_[bump_slots_ / kSlotsPerChunk]
                         [bump_slots_ % kSlotsPerChunk];
  ++bump_slots_;
  return s;
}

void FlatRangeTree::free_slot(Slot* s) { free_slots_.push_back(s); }

std::size_t FlatRangeTree::arena_node_count() const {
  return bump_nodes_ - free_nodes_.size();
}

// ---------------------------------------------------------------------------
// Aggregate maintenance.

FlatRangeTree::Totals FlatRangeTree::totals_of(std::uint32_t idx) const {
  const Node& n = node(idx);
  Totals t;
  if (n.is_leaf) {
    t.cnt = n.num;
    for (std::size_t j = 0; j < n.num; ++j) {
      const double w = n.u.leaf.weight[j];
      t.sum += w;
      t.wsum += static_cast<double>(j + 1) * w;
    }
    t.minw = n.num > 0 ? n.u.leaf.weight[n.num - 1] : 0.0;
    return t;
  }
  // Right-subtree local positions shift by the elements before them
  // (Eq. 34's composition), exactly as the treap's pull().
  for (std::size_t i = 0; i < n.num; ++i) {
    t.wsum += n.u.inner.wsum[i] + static_cast<double>(t.cnt) * n.u.inner.sum[i];
    t.sum += n.u.inner.sum[i];
    t.cnt += n.u.inner.cnt[i];
  }
  t.minw = n.num > 0 ? n.u.inner.minw[n.num - 1] : 0.0;
  return t;
}

std::size_t FlatRangeTree::child_pos(const Node& parent,
                                     std::uint32_t child) const {
  for (std::size_t i = 0; i < parent.num; ++i) {
    if (parent.u.inner.child[i] == child) return i;
  }
  DVFS_REQUIRE(false, "internal: child not found in parent");
  return 0;  // unreachable
}

void FlatRangeTree::refresh_entry(std::uint32_t idx) {
  const std::uint32_t p = node(idx).parent;
  if (p == kNil) return;
  Node& parent = node(p);
  const std::size_t pos = child_pos(parent, idx);
  const Totals t = totals_of(idx);
  parent.u.inner.cnt[pos] = static_cast<std::uint32_t>(t.cnt);
  parent.u.inner.sum[pos] = t.sum;
  parent.u.inner.wsum[pos] = t.wsum;
  parent.u.inner.minw[pos] = t.minw;
}

void FlatRangeTree::update_path(std::uint32_t idx) {
  while (idx != kNil) {
    refresh_entry(idx);
    idx = node(idx).parent;
  }
}

// ---------------------------------------------------------------------------
// Structure edits.

void FlatRangeTree::insert_entry(std::uint32_t parent_idx, std::size_t pos,
                                 std::uint32_t child) {
  Node& p = node(parent_idx);
  DVFS_REQUIRE(p.num < kInnerCap, "internal: inner node overflow");
  for (std::size_t i = p.num; i > pos; --i) {
    p.u.inner.child[i] = p.u.inner.child[i - 1];
    p.u.inner.cnt[i] = p.u.inner.cnt[i - 1];
    p.u.inner.sum[i] = p.u.inner.sum[i - 1];
    p.u.inner.wsum[i] = p.u.inner.wsum[i - 1];
    p.u.inner.minw[i] = p.u.inner.minw[i - 1];
  }
  p.u.inner.child[pos] = child;
  ++p.num;
  node(child).parent = parent_idx;
  const Totals t = totals_of(child);
  p.u.inner.cnt[pos] = static_cast<std::uint32_t>(t.cnt);
  p.u.inner.sum[pos] = t.sum;
  p.u.inner.wsum[pos] = t.wsum;
  p.u.inner.minw[pos] = t.minw;
}

void FlatRangeTree::link_child(std::uint32_t parent_idx, std::size_t pos,
                               std::uint32_t left_sibling,
                               std::uint32_t child) {
  if (parent_idx == kNil) {
    // The left sibling was the root: grow a new root above the pair.
    const std::uint32_t nr = alloc_node(/*leaf=*/false);
    root_ = nr;
    node(left_sibling).parent = nr;
    node(nr).num = 0;
    insert_entry(nr, 0, left_sibling);
    insert_entry(nr, 1, child);
    return;
  }
  if (node(parent_idx).num < kInnerCap) {
    insert_entry(parent_idx, pos, child);
    return;
  }
  // Split the full parent: keep the lower half, move the upper half into a
  // fresh right sibling, hook that sibling in one level up (recursing if
  // the grandparent is full too), then place the new child in whichever
  // half its position falls into.
  const std::uint32_t p2 = alloc_node(/*leaf=*/false);
  constexpr std::size_t keep = (kInnerCap + 1) / 2;
  {
    Node& p = node(parent_idx);
    Node& q = node(p2);
    q.num = static_cast<std::uint16_t>(kInnerCap - keep);
    for (std::size_t i = keep; i < kInnerCap; ++i) {
      const std::size_t j = i - keep;
      q.u.inner.child[j] = p.u.inner.child[i];
      q.u.inner.cnt[j] = p.u.inner.cnt[i];
      q.u.inner.sum[j] = p.u.inner.sum[i];
      q.u.inner.wsum[j] = p.u.inner.wsum[i];
      q.u.inner.minw[j] = p.u.inner.minw[i];
      node(p.u.inner.child[i]).parent = p2;
    }
    p.num = static_cast<std::uint16_t>(keep);
  }
  const std::uint32_t gp = node(parent_idx).parent;
  const std::size_t gpos =
      gp == kNil ? 0 : child_pos(node(gp), parent_idx) + 1;
  link_child(gp, gpos, parent_idx, p2);
  if (pos <= keep) {
    insert_entry(parent_idx, pos, child);
  } else {
    insert_entry(p2, pos - keep, child);
  }
  refresh_entry(parent_idx);
  refresh_entry(p2);
}

void FlatRangeTree::collapse_root() {
  while (root_ != kNil && !node(root_).is_leaf && node(root_).num == 1) {
    const std::uint32_t c = node(root_).u.inner.child[0];
    node(c).parent = kNil;
    free_node(root_);
    root_ = c;
  }
}

void FlatRangeTree::unlink_child(std::uint32_t parent_idx, std::size_t pos) {
  Node& p = node(parent_idx);
  for (std::size_t i = pos; i + 1 < p.num; ++i) {
    p.u.inner.child[i] = p.u.inner.child[i + 1];
    p.u.inner.cnt[i] = p.u.inner.cnt[i + 1];
    p.u.inner.sum[i] = p.u.inner.sum[i + 1];
    p.u.inner.wsum[i] = p.u.inner.wsum[i + 1];
    p.u.inner.minw[i] = p.u.inner.minw[i + 1];
  }
  --p.num;
  if (p.num == 0) {
    if (parent_idx == root_) {
      free_node(root_);
      root_ = kNil;
      return;
    }
    const std::uint32_t gp = p.parent;
    const std::size_t gpos = child_pos(node(gp), parent_idx);
    free_node(parent_idx);
    unlink_child(gp, gpos);
    return;
  }
  update_path(parent_idx);
  collapse_root();
}

// ---------------------------------------------------------------------------
// Insert.

FlatRangeTree::Handle FlatRangeTree::insert(double weight, Payload payload) {
  Slot* s = alloc_slot();
  s->weight = weight;
  s->payload = payload;
  ++size_;

  if (root_ == kNil) {
    root_ = alloc_node(/*leaf=*/true);
    head_leaf_ = tail_leaf_ = root_;
    Node& r = node(root_);
    r.u.leaf.weight[0] = weight;
    r.u.leaf.slot[0] = s;
    r.num = 1;
    s->leaf = root_;
    return s;
  }

  // Descend to the first subtree whose lightest element is lighter than the
  // newcomer (ties stay in front of it, keeping insertion order stable).
  std::uint32_t idx = root_;
  while (!node(idx).is_leaf) {
    const Node& n = node(idx);
    std::size_t i = 0;
    while (i + 1 < n.num && n.u.inner.minw[i] >= weight) ++i;
    idx = n.u.inner.child[i];
  }

  std::size_t j = 0;
  {
    const Node& l = node(idx);
    while (j < l.num && l.u.leaf.weight[j] >= weight) ++j;
  }

  std::uint32_t target = idx;
  std::uint32_t split_sibling = kNil;
  if (node(idx).num == kLeafCap) {
    // Split before placing: upper (lighter) half moves to a new right leaf.
    const std::uint32_t r = alloc_node(/*leaf=*/true);
    constexpr std::size_t keep = kLeafCap / 2;
    Node& l = node(idx);
    Node& q = node(r);
    q.num = static_cast<std::uint16_t>(kLeafCap - keep);
    for (std::size_t i = keep; i < kLeafCap; ++i) {
      q.u.leaf.weight[i - keep] = l.u.leaf.weight[i];
      q.u.leaf.slot[i - keep] = l.u.leaf.slot[i];
      l.u.leaf.slot[i]->leaf = r;
    }
    l.num = static_cast<std::uint16_t>(keep);
    q.u.leaf.next = l.u.leaf.next;
    q.u.leaf.prev = idx;
    if (l.u.leaf.next != kNil) {
      node(l.u.leaf.next).u.leaf.prev = r;
    } else {
      tail_leaf_ = r;
    }
    l.u.leaf.next = r;
    const std::uint32_t p = l.parent;
    const std::size_t pos = p == kNil ? 0 : child_pos(node(p), idx) + 1;
    link_child(p, pos, idx, r);
    split_sibling = r;
    if (j > keep) {
      target = r;
      j -= keep;
    }
  }

  Node& t = node(target);
  for (std::size_t i = t.num; i > j; --i) {
    t.u.leaf.weight[i] = t.u.leaf.weight[i - 1];
    t.u.leaf.slot[i] = t.u.leaf.slot[i - 1];
  }
  t.u.leaf.weight[j] = weight;
  t.u.leaf.slot[j] = s;
  ++t.num;
  s->leaf = target;

  update_path(target);
  if (split_sibling != kNil && split_sibling != target) {
    update_path(split_sibling);
  } else if (split_sibling != kNil) {
    update_path(idx);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Erase.

FlatRangeTree::Location FlatRangeTree::locate(Handle h) const {
  const Node& l = node(h->leaf);
  DVFS_REQUIRE(l.is_leaf, "internal: handle does not reference a leaf");
  for (std::size_t j = 0; j < l.num; ++j) {
    if (l.u.leaf.slot[j] == h) return Location{h->leaf, j};
  }
  DVFS_REQUIRE(false, "internal: handle missing from its leaf");
  return Location{kNil, 0};  // unreachable
}

void FlatRangeTree::leaf_remove(std::uint32_t leaf_idx, std::size_t pos) {
  Node& l = node(leaf_idx);
  for (std::size_t i = pos; i + 1 < l.num; ++i) {
    l.u.leaf.weight[i] = l.u.leaf.weight[i + 1];
    l.u.leaf.slot[i] = l.u.leaf.slot[i + 1];
  }
  --l.num;
  if (l.num == 0) {
    const std::uint32_t pv = l.u.leaf.prev;
    const std::uint32_t nx = l.u.leaf.next;
    if (pv != kNil) node(pv).u.leaf.next = nx;
    if (nx != kNil) node(nx).u.leaf.prev = pv;
    if (head_leaf_ == leaf_idx) head_leaf_ = nx;
    if (tail_leaf_ == leaf_idx) tail_leaf_ = pv;
    if (leaf_idx == root_) {
      free_node(root_);
      root_ = kNil;
      return;
    }
    const std::uint32_t p = l.parent;
    const std::size_t cp = child_pos(node(p), leaf_idx);
    free_node(leaf_idx);
    unlink_child(p, cp);
    return;
  }
  update_path(leaf_idx);
  try_merge(leaf_idx);
}

void FlatRangeTree::try_merge(std::uint32_t leaf_idx) {
  Node& l = node(leaf_idx);
  if (leaf_idx == root_ || l.num > kLeafCap / 4) return;
  const std::uint32_t pv = l.u.leaf.prev;
  const std::uint32_t nx = l.u.leaf.next;
  if (pv != kNil && node(pv).parent == l.parent &&
      node(pv).num + l.num <= kLeafCap) {
    // Append this (lighter) run after the previous leaf's.
    Node& p = node(pv);
    for (std::size_t j = 0; j < l.num; ++j) {
      p.u.leaf.weight[p.num + j] = l.u.leaf.weight[j];
      p.u.leaf.slot[p.num + j] = l.u.leaf.slot[j];
      l.u.leaf.slot[j]->leaf = pv;
    }
    p.num = static_cast<std::uint16_t>(p.num + l.num);
    p.u.leaf.next = nx;
    if (nx != kNil) node(nx).u.leaf.prev = pv;
    if (tail_leaf_ == leaf_idx) tail_leaf_ = pv;
    const std::uint32_t par = l.parent;
    const std::size_t cp = child_pos(node(par), leaf_idx);
    free_node(leaf_idx);
    refresh_entry(pv);
    unlink_child(par, cp);
    return;
  }
  if (nx != kNil && node(nx).parent == l.parent &&
      node(nx).num + l.num <= kLeafCap) {
    // Prepend this (heavier) run before the next leaf's.
    Node& q = node(nx);
    for (std::size_t i = q.num; i > 0; --i) {
      q.u.leaf.weight[i - 1 + l.num] = q.u.leaf.weight[i - 1];
      q.u.leaf.slot[i - 1 + l.num] = q.u.leaf.slot[i - 1];
    }
    for (std::size_t j = 0; j < l.num; ++j) {
      q.u.leaf.weight[j] = l.u.leaf.weight[j];
      q.u.leaf.slot[j] = l.u.leaf.slot[j];
      l.u.leaf.slot[j]->leaf = nx;
    }
    q.num = static_cast<std::uint16_t>(q.num + l.num);
    q.u.leaf.prev = pv;
    if (pv != kNil) node(pv).u.leaf.next = nx;
    if (head_leaf_ == leaf_idx) head_leaf_ = nx;
    const std::uint32_t par = l.parent;
    const std::size_t cp = child_pos(node(par), leaf_idx);
    free_node(leaf_idx);
    refresh_entry(nx);
    unlink_child(par, cp);
  }
}

void FlatRangeTree::erase(Handle h) {
  DVFS_REQUIRE(h != nullptr, "null handle");
  const Location loc = locate(h);
  leaf_remove(loc.leaf, loc.pos);
  free_slot(h);
  --size_;
}

// ---------------------------------------------------------------------------
// Queries.

std::size_t FlatRangeTree::rank(Handle h) const {
  DVFS_REQUIRE(h != nullptr, "null handle");
  const Location loc = locate(h);
  std::size_t r = loc.pos + 1;
  std::uint32_t idx = loc.leaf;
  while (node(idx).parent != kNil) {
    const std::uint32_t p = node(idx).parent;
    const Node& parent = node(p);
    const std::size_t cp = child_pos(parent, idx);
    for (std::size_t q = 0; q < cp; ++q) r += parent.u.inner.cnt[q];
    idx = p;
  }
  return r;
}

FlatRangeTree::Handle FlatRangeTree::select(std::size_t k) const {
  DVFS_REQUIRE(k >= 1 && k <= size_, "rank out of range");
  std::uint32_t idx = root_;
  while (!node(idx).is_leaf) {
    const Node& n = node(idx);
    std::size_t i = 0;
    while (k > n.u.inner.cnt[i]) {
      k -= n.u.inner.cnt[i];
      ++i;
      DVFS_REQUIRE(i < n.num, "internal: select walk overran");
    }
    idx = n.u.inner.child[i];
  }
  return node(idx).u.leaf.slot[k - 1];
}

PrefixStats FlatRangeTree::prefix(std::size_t k) const {
  DVFS_REQUIRE(k <= size_, "prefix length out of range");
  PrefixStats acc;
  if (k == 0) return acc;
  std::uint32_t idx = root_;
  while (!node(idx).is_leaf) {
    const Node& n = node(idx);
    std::size_t i = 0;
    while (acc.count + n.u.inner.cnt[i] <= k) {
      // Absorb the whole child subtree; its local positions shift by the
      // elements already counted before it.
      acc.wsum += n.u.inner.wsum[i] +
                  static_cast<double>(acc.count) * n.u.inner.sum[i];
      acc.sum += n.u.inner.sum[i];
      acc.count += n.u.inner.cnt[i];
      if (acc.count == k) return acc;
      ++i;
      DVFS_REQUIRE(i < n.num, "internal: prefix walk overran");
    }
    idx = n.u.inner.child[i];
  }
  const Node& l = node(idx);
  for (std::size_t j = 0; acc.count < k; ++j) {
    const double w = l.u.leaf.weight[j];
    acc.sum += w;
    acc.wsum += static_cast<double>(acc.count + 1) * w;
    ++acc.count;
  }
  return acc;
}

double FlatRangeTree::range_sum(std::size_t a, std::size_t b) const {
  if (a > b) return 0.0;
  DVFS_REQUIRE(a >= 1 && b <= size_, "range out of bounds");
  return prefix(b).sum - prefix(a - 1).sum;
}

double FlatRangeTree::range_wsum(std::size_t a, std::size_t b) const {
  if (a > b) return 0.0;
  DVFS_REQUIRE(a >= 1 && b <= size_, "range out of bounds");
  const PrefixStats hi = prefix(b);
  const PrefixStats lo = prefix(a - 1);
  const double sum = hi.sum - lo.sum;
  const double wsum_abs = hi.wsum - lo.wsum;  // sum of k * w_k
  return wsum_abs - static_cast<double>(a - 1) * sum;
}

std::size_t FlatRangeTree::insertion_rank(double weight) const {
  if (root_ == kNil) return 1;
  std::size_t r = 1;
  std::uint32_t idx = root_;
  while (!node(idx).is_leaf) {
    const Node& n = node(idx);
    std::size_t i = 0;
    while (i + 1 < n.num && n.u.inner.minw[i] >= weight) {
      r += n.u.inner.cnt[i];
      ++i;
    }
    idx = n.u.inner.child[i];
  }
  const Node& l = node(idx);
  for (std::size_t j = 0; j < l.num && l.u.leaf.weight[j] >= weight; ++j) ++r;
  return r;
}

FlatRangeTree::Handle FlatRangeTree::predecessor(Handle h) const {
  const Location loc = locate(h);
  if (loc.pos > 0) return node(loc.leaf).u.leaf.slot[loc.pos - 1];
  const std::uint32_t pv = node(loc.leaf).u.leaf.prev;
  if (pv == kNil) return nullptr;
  const Node& p = node(pv);
  return p.u.leaf.slot[p.num - 1];
}

FlatRangeTree::Handle FlatRangeTree::successor(Handle h) const {
  const Location loc = locate(h);
  const Node& l = node(loc.leaf);
  if (loc.pos + 1 < l.num) return l.u.leaf.slot[loc.pos + 1];
  const std::uint32_t nx = l.u.leaf.next;
  if (nx == kNil) return nullptr;
  return node(nx).u.leaf.slot[0];
}

FlatRangeTree::Handle FlatRangeTree::first() const {
  if (head_leaf_ == kNil) return nullptr;
  return node(head_leaf_).u.leaf.slot[0];
}

FlatRangeTree::Handle FlatRangeTree::last() const {
  if (tail_leaf_ == kNil) return nullptr;
  const Node& l = node(tail_leaf_);
  return l.u.leaf.slot[l.num - 1];
}

void FlatRangeTree::clear() {
  node_chunks_.clear();
  slot_chunks_.clear();
  free_nodes_.clear();
  free_slots_.clear();
  bump_nodes_ = bump_slots_ = 0;
  root_ = head_leaf_ = tail_leaf_ = kNil;
  size_ = 0;
}

// ---------------------------------------------------------------------------
// Validation (test support).

namespace {
struct WalkState {
  double prev_weight = 0.0;
  bool have_prev = false;
  std::size_t seen = 0;
  std::vector<std::uint32_t> leaves;
  bool ok = true;
};
}  // namespace

bool FlatRangeTree::validate() const {
  if (root_ == kNil) {
    return size_ == 0 && head_leaf_ == kNil && tail_leaf_ == kNil;
  }
  if (node(root_).parent != kNil) return false;

  WalkState st;
  // Explicit DFS stack of (node, next-child) pairs; in-order over leaves.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(root_, 0);
  while (!stack.empty() && st.ok) {
    auto& [idx, next] = stack.back();
    const Node& n = node(idx);
    if (n.num == 0) {
      st.ok = false;
      break;
    }
    if (n.is_leaf) {
      st.leaves.push_back(idx);
      for (std::size_t j = 0; j < n.num; ++j) {
        const double w = n.u.leaf.weight[j];
        if (st.have_prev && st.prev_weight < w) {
          st.ok = false;  // descending order violated
          break;
        }
        st.prev_weight = w;
        st.have_prev = true;
        const Slot* s = n.u.leaf.slot[j];
        if (s == nullptr || s->leaf != idx || s->weight != w) {
          st.ok = false;
          break;
        }
        ++st.seen;
      }
      stack.pop_back();
      continue;
    }
    if (next == n.num) {
      stack.pop_back();
      continue;
    }
    const std::uint32_t c = n.u.inner.child[next];
    const Node& child = node(c);
    if (child.parent != idx) return false;
    // Stored per-child entry must match a fresh recomputation.
    const Totals t = totals_of(c);
    if (n.u.inner.cnt[next] != t.cnt ||
        !almost_equal(n.u.inner.sum[next], t.sum, 1e-9, 1e-9) ||
        !almost_equal(n.u.inner.wsum[next], t.wsum, 1e-9, 1e-9) ||
        n.u.inner.minw[next] != t.minw) {
      return false;
    }
    ++next;
    stack.emplace_back(c, 0);
  }
  if (!st.ok || st.seen != size_) return false;

  // The leaf list must thread the same leaves in the same order.
  if (st.leaves.empty()) return false;
  if (head_leaf_ != st.leaves.front() || tail_leaf_ != st.leaves.back()) {
    return false;
  }
  std::uint32_t walk = head_leaf_;
  std::uint32_t prev = kNil;
  for (const std::uint32_t expect : st.leaves) {
    if (walk != expect) return false;
    if (node(walk).u.leaf.prev != prev) return false;
    prev = walk;
    walk = node(walk).u.leaf.next;
  }
  return walk == kNil;
}

}  // namespace dvfs::ds
