#include "dvfs/parallel/seed_sweep.h"

#include <algorithm>

namespace dvfs::parallel {

Stats summarize(const std::vector<double>& samples) {
  DVFS_REQUIRE(!samples.empty(), "no samples to summarize");
  Stats s;
  s.n = samples.size();
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double sq = 0.0;
    for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  }
  return s;
}

std::map<std::string, Stats> sweep_seeds(
    ThreadPool& pool, std::size_t replications, std::uint64_t first_seed,
    const std::function<MetricMap(std::uint64_t seed)>& measure) {
  DVFS_REQUIRE(replications >= 1, "need at least one replication");
  std::vector<MetricMap> results(replications);
  pool.parallel_for(replications, [&](std::size_t i) {
    results[i] = measure(first_seed + i);
  });

  std::map<std::string, std::vector<double>> columns;
  for (const auto& [name, value] : results[0]) {
    columns[name].reserve(replications);
    (void)value;
  }
  for (const MetricMap& r : results) {
    DVFS_REQUIRE(r.size() == columns.size(),
                 "replications must report identical metric sets");
    for (const auto& [name, value] : r) {
      const auto it = columns.find(name);
      DVFS_REQUIRE(it != columns.end(),
                   "metric missing from a replication: " + name);
      it->second.push_back(value);
    }
  }
  std::map<std::string, Stats> out;
  for (const auto& [name, samples] : columns) {
    out.emplace(name, summarize(samples));
  }
  return out;
}

}  // namespace dvfs::parallel
