#include "dvfs/parallel/thread_pool.h"

#include <algorithm>
#include <exception>

namespace dvfs::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
    queue_.clear();  // abandoned tasks' futures become broken promises
  }
  ready_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit(fn, i));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dvfs::parallel
