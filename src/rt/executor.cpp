#include "dvfs/rt/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/prof.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::rt {
namespace {

using Clock = std::chrono::steady_clock;

Seconds seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// CPU-bound mixing kernel. The state dependency chain defeats both
// vectorization and dead-code elimination (the result is returned and
// eventually stored by the caller).
std::uint64_t kernel(std::uint64_t state, std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    state += 0x9e3779b97f4a7c15ULL;
  }
  return state;
}

void try_pin_to_cpu(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()), &set);
  // Best-effort: a sandbox may forbid affinity changes; correctness does
  // not depend on placement, only timing fidelity does.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

SpinCalibrator::SpinCalibrator(double calibration_seconds) {
  DVFS_REQUIRE(calibration_seconds > 0.0,
               "calibration duration must be positive");
  // Warm up, then measure.
  std::uint64_t sink = kernel(1, 200'000);
  const auto t0 = Clock::now();
  std::uint64_t iterations = 0;
  constexpr std::uint64_t kChunk = 100'000;
  while (seconds_since(t0) < calibration_seconds) {
    sink = kernel(sink, kChunk);
    iterations += kChunk;
  }
  const double elapsed = seconds_since(t0);
  ips_ = static_cast<double>(iterations) / elapsed;
  DVFS_REQUIRE(ips_ > 0.0 && sink != 0, "calibration failed");
}

std::uint64_t SpinCalibrator::spin_for(Seconds seconds, double ips) {
  DVFS_REQUIRE(seconds >= 0.0, "cannot spin for negative time");
  DVFS_REQUIRE(ips > 0.0, "invalid calibration");
  const auto t0 = Clock::now();
  std::uint64_t sink = 0x243f6a8885a308d3ULL;
  // Chunks cap at ~200 us between clock checks but shrink near the target
  // so short spins do not overshoot by a whole chunk.
  const std::uint64_t max_chunk =
      std::max<std::uint64_t>(1'000, static_cast<std::uint64_t>(ips * 2e-4));
  while (true) {
    const double remaining = seconds - seconds_since(t0);
    if (remaining <= 0.0) break;
    const auto want = static_cast<std::uint64_t>(remaining * ips);
    sink = kernel(sink, std::clamp<std::uint64_t>(want, 256, max_chunk));
  }
  return sink;
}

double RtResult::worst_relative_drift() const {
  double worst = 0.0;
  for (const RtTaskRecord& t : tasks) {
    if (t.planned_seconds <= 0.0) continue;
    const double drift =
        std::fabs((t.finish - t.start) - t.planned_seconds) /
        t.planned_seconds;
    worst = std::max(worst, drift);
  }
  return worst;
}

RealtimeExecutor::RealtimeExecutor(core::EnergyModel model, Config config)
    : model_(std::move(model)), config_(config) {
  DVFS_REQUIRE(config_.time_scale > 0.0, "time scale must be positive");
}

RtResult RealtimeExecutor::execute(const core::Plan& plan) const {
  for (const core::CorePlan& c : plan.cores) {
    for (const core::ScheduledTask& st : c.sequence) {
      DVFS_REQUIRE(st.rate_idx < model_.num_rates(),
                   "plan uses a rate the model lacks");
    }
  }

  RtResult result;
  std::mutex result_mutex;
  const auto t0 = Clock::now();
  const double ips = calibrator_.iterations_per_second();

  // Resolved before the workers spawn so the threads themselves only do
  // relaxed atomic updates (safe under TSan, no registry lock contention).
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& tasks_executed = reg.counter("rt.tasks_executed");
  obs::Counter& rate_switches = reg.counter("rt.rate_switches");
  obs::Histogram& task_wall_ns = reg.histogram("rt.task_wall_ns");

  // Drift tracking only exists when a telemetry provider is attached —
  // the gauges would otherwise report a meaningless 0 forever.
  std::optional<obs::hw::DriftTracker> drift;
  if (hw_provider_ != nullptr) drift.emplace(reg);
  // Concurrently busy workers, for attributing package-wide (chip-level)
  // energy meters across cores: each worker bumps it around its span.
  std::atomic<std::uint32_t> busy_workers{0};

  if (recorder_ != nullptr) {
    DVFS_REQUIRE(recorder_->num_channels() >= plan.cores.size(),
                 "recorder needs one channel per plan core");
    recorder_->channel(0).record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kRunBegin),
         .core = static_cast<std::uint16_t>(plan.cores.size()),
         .time_s = 0.0});
  }

  std::vector<std::thread> workers;
  workers.reserve(plan.cores.size());
  for (std::size_t j = 0; j < plan.cores.size(); ++j) {
    workers.emplace_back([&, j] {
      if (config_.pin_threads) try_pin_to_cpu(j);
      // Worker time is task execution; the CPU profiler (if running)
      // attributes these samples to the exec stage.
      const obs::prof::ThreadGuard prof_guard =
          obs::prof::profile_current_thread();
      const obs::prof::ScopedStage prof_stage(obs::prof::Stage::kExec);
      // Worker j owns recorder channel j exclusively (SPSC producer).
      obs::RecorderChannel* rc =
          recorder_ != nullptr ? &recorder_->channel(j) : nullptr;
      // Telemetry sessions are per-thread by contract: perf counters
      // attach to the opening thread, so the open happens here.
      std::unique_ptr<obs::hw::ThreadTelemetry> telemetry =
          hw_provider_ != nullptr ? hw_provider_->open_thread_telemetry(j)
                                  : nullptr;
      std::uint64_t sink = 0;
      std::size_t last_rate = static_cast<std::size_t>(-1);
      for (const core::ScheduledTask& st : plan.cores[j].sequence) {
        RtTaskRecord rec;
        rec.id = st.task_id;
        rec.core = j;
        rec.rate_idx = st.rate_idx;
        rec.planned_seconds =
            model_.task_time(st.cycles, st.rate_idx) * config_.time_scale;
        rec.model_energy = model_.task_energy(st.cycles, st.rate_idx);
        if (last_rate != static_cast<std::size_t>(-1) &&
            last_rate != st.rate_idx) {
          rate_switches.inc();
          if (rc != nullptr) {
            rc->record({.type = static_cast<std::uint8_t>(
                            obs::dfr::EventType::kFreqChange),
                        .core = static_cast<std::uint16_t>(j),
                        .rate_idx = static_cast<std::uint16_t>(st.rate_idx),
                        .time_s = seconds_since(t0),
                        .f0 = model_.rates()[st.rate_idx]});
          }
        }
        last_rate = st.rate_idx;
        rec.start = seconds_since(t0);
        if (rc != nullptr) {
          rc->record({.type = static_cast<std::uint8_t>(
                          obs::dfr::EventType::kTaskStart),
                      .core = static_cast<std::uint16_t>(j),
                      .rate_idx = static_cast<std::uint16_t>(st.rate_idx),
                      .time_s = rec.start,
                      .task = st.task_id,
                      .f0 = static_cast<double>(st.cycles)});
        }
        obs::hw::SpanPrediction predicted{.cycles = st.cycles,
                                          .seconds = rec.planned_seconds,
                                          .joules = rec.model_energy};
        std::uint32_t busy_at_start = 1;
        if (telemetry != nullptr) {
          busy_at_start = busy_workers.fetch_add(1) + 1;
          if (rc != nullptr) {
            rc->record({.type = static_cast<std::uint8_t>(
                            obs::dfr::EventType::kHwPlanned),
                        .core = static_cast<std::uint16_t>(j),
                        .rate_idx = static_cast<std::uint16_t>(st.rate_idx),
                        .time_s = rec.start,
                        .task = st.task_id,
                        .u0 = predicted.cycles,
                        .f0 = predicted.joules,
                        .f1 = predicted.seconds});
          }
          telemetry->begin_span(predicted);
        }
        sink += SpinCalibrator::spin_for(rec.planned_seconds, ips);
        if (telemetry != nullptr) {
          rec.measured = telemetry->end_span(predicted);
          const std::uint32_t busy_at_end = busy_workers.fetch_sub(1);
          if (rec.measured.energy_is_shared) {
            // A package meter charges the whole chip to whoever reads it;
            // divide by the busy-worker population (endpoint average) so
            // concurrent spans do not each claim the full delta.
            const double avg_busy = std::max(
                1.0, (static_cast<double>(busy_at_start) +
                      static_cast<double>(busy_at_end)) / 2.0);
            rec.measured.joules /= avg_busy;
          }
        }
        rec.finish = seconds_since(t0);
        tasks_executed.inc();
        task_wall_ns.observe(
            static_cast<std::uint64_t>((rec.finish - rec.start) * 1e9));
        if (rc != nullptr) {
          rc->record({.type = static_cast<std::uint8_t>(
                          obs::dfr::EventType::kSpanEnd),
                      .core = static_cast<std::uint16_t>(j),
                      .rate_idx = static_cast<std::uint16_t>(st.rate_idx),
                      .time_s = rec.finish,
                      .task = st.task_id,
                      .f0 = rec.start});
          rc->record({.type = static_cast<std::uint8_t>(
                          obs::dfr::EventType::kTaskFinish),
                      .core = static_cast<std::uint16_t>(j),
                      .time_s = rec.finish,
                      .task = st.task_id,
                      .f0 = rec.model_energy,
                      .f1 = rec.finish - rec.start});
        }
        if (telemetry != nullptr) {
          if (rc != nullptr) {
            rc->record({.type = static_cast<std::uint8_t>(
                            obs::dfr::EventType::kHwSpan),
                        .core = static_cast<std::uint16_t>(j),
                        .rate_idx = static_cast<std::uint16_t>(st.rate_idx),
                        .aux = obs::hw::encode_sources(
                            rec.measured.counter_source,
                            rec.measured.time_source,
                            rec.measured.energy_source),
                        .time_s = rec.finish,
                        .task = st.task_id,
                        .u0 = rec.measured.cycles,
                        .f0 = rec.measured.joules,
                        .f1 = rec.measured.seconds});
          }
          drift->observe(predicted, rec.measured);
        }
        {
          const std::scoped_lock lock(result_mutex);
          result.tasks.push_back(rec);
        }
      }
      // Keep the kernel's work observable without polluting records.
      DVFS_REQUIRE(sink != 1, "unreachable");
    });
  }
  for (std::thread& w : workers) w.join();

  result.wall_makespan = seconds_since(t0);
  for (const RtTaskRecord& t : result.tasks) {
    result.model_energy += t.model_energy;
  }
  if (drift.has_value()) result.drift = drift->summary();
  return result;
}

}  // namespace dvfs::rt
