#include "dvfs/core/online_lmc.h"

#include <limits>

namespace dvfs::core {

LmcScheduler::LmcScheduler(std::vector<CostTable> tables) {
  DVFS_REQUIRE(!tables.empty(), "need at least one core");
  queues_.reserve(tables.size());
  for (CostTable& t : tables) {
    queues_.emplace_back(std::move(t));
  }
  // Hoist the Eq. 27 inputs into per-core contiguous arrays once; the
  // interactive scan never touches the model objects again.
  re_.reserve(queues_.size());
  rt_.reserve(queues_.size());
  epc_max_.reserve(queues_.size());
  tpc_max_.reserve(queues_.size());
  for (const DynamicSingleCoreScheduler& q : queues_) {
    const CostTable& t = q.table();
    const EnergyModel& m = t.model();
    const std::size_t pm = m.rates().highest_index();
    re_.push_back(t.params().re);
    rt_.push_back(t.params().rt);
    epc_max_.push_back(m.energy_per_cycle(pm));
    tpc_max_.push_back(m.time_per_cycle(pm));
  }
}

LmcScheduler::Placement LmcScheduler::place_non_interactive(Cycles cycles,
                                                            TaskId id) {
  return place_non_interactive(cycles, id, {});
}

LmcScheduler::Placement LmcScheduler::place_non_interactive(
    Cycles cycles, TaskId id, std::span<const Money> extra_cost) {
  return place_non_interactive(cycles, id, extra_cost, nullptr);
}

LmcScheduler::Placement LmcScheduler::place_non_interactive(
    Cycles cycles, TaskId id, std::span<const Money> extra_cost,
    std::vector<Money>* probed_marginals) {
  DVFS_REQUIRE(cycles > 0, "tasks need a positive cycle count");
  DVFS_REQUIRE(extra_cost.empty() || extra_cost.size() == queues_.size(),
               "extra_cost must have one entry per core");
  // Evaluate every core's exact marginal cost analytically (no structure
  // mutation) into the reusable candidate vector, then take the argmin in
  // a separate branch-free pass; ties keep the lowest core index so runs
  // are deterministic.
  const std::size_t n = queues_.size();
  scan_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    scan_[j] = queues_[j].peek_marginal_insert_cost(cycles);
  }
  if (!extra_cost.empty()) {
    for (std::size_t j = 0; j < n; ++j) scan_[j] += extra_cost[j];
  }
  std::size_t best_core = 0;
  for (std::size_t j = 1; j < n; ++j) {
    best_core = scan_[j] < scan_[best_core] ? j : best_core;
  }
  const Money best_marginal = scan_[best_core];
  if (probed_marginals != nullptr) {
    probed_marginals->assign(scan_.begin(), scan_.end());
  }
  const auto ref = queues_[best_core].insert(cycles, id);
  return Placement{best_core, ref, best_marginal};
}

std::size_t LmcScheduler::choose_interactive_core(
    Cycles cycles, std::span<const std::size_t> extra_waiting) const {
  return interactive_scan(cycles, extra_waiting, scan_);
}

std::size_t LmcScheduler::interactive_scan(
    Cycles cycles, std::span<const std::size_t> extra_waiting,
    std::vector<Money>& out) const {
  DVFS_REQUIRE(cycles > 0, "tasks need a positive cycle count");
  DVFS_REQUIRE(extra_waiting.empty() || extra_waiting.size() == queues_.size(),
               "extra_waiting must have one entry per core");
  const std::size_t n = queues_.size();
  out.resize(n);
  waiting_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    waiting_[j] = static_cast<double>(
        queues_[j].size() + (extra_waiting.empty() ? 0 : extra_waiting[j]));
  }
  const double l = static_cast<double>(cycles);
  // Eq. 27 over the four contiguous coefficient arrays, with the exact
  // association of interactive_marginal_cost(): Re*L*E + Rt*L*T +
  // (Rt*L*T)*N. No branches, no model indirection; auto-vectorizes.
  for (std::size_t j = 0; j < n; ++j) {
    const double tw = rt_[j] * l * tpc_max_[j];
    out[j] = re_[j] * l * epc_max_[j] + tw + tw * waiting_[j];
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < n; ++j) {
    best = out[j] < out[best] ? j : best;
  }
  return best;
}

Money LmcScheduler::interactive_marginal_cost(std::size_t core, Cycles cycles,
                                              std::size_t waiting) const {
  DVFS_REQUIRE(core < queues_.size(), "core index out of range");
  const CostTable& t = queues_[core].table();
  const EnergyModel& m = t.model();
  const std::size_t pm = m.rates().highest_index();
  const double l = static_cast<double>(cycles);
  // Eq. 27: own energy cost + own time cost + delay inflicted on the
  // `waiting` tasks already queued behind this core.
  return t.params().re * l * m.energy_per_cycle(pm) +
         t.params().rt * l * m.time_per_cycle(pm) +
         t.params().rt * l * m.time_per_cycle(pm) *
             static_cast<double>(waiting);
}

std::optional<LmcScheduler::Dispatched> LmcScheduler::pop_next(
    std::size_t core) {
  DVFS_REQUIRE(core < queues_.size(), "core index out of range");
  DynamicSingleCoreScheduler& q = queues_[core];
  if (q.empty()) return std::nullopt;
  const auto ref = q.front();  // fewest cycles; backward position == size
  Dispatched d{DynamicSingleCoreScheduler::id_of(ref),
               DynamicSingleCoreScheduler::cycles_of(ref),
               q.table().best_rate(q.size())};
  q.erase(ref);
  return d;
}

void LmcScheduler::erase(std::size_t core,
                         DynamicSingleCoreScheduler::TaskRef ref) {
  DVFS_REQUIRE(core < queues_.size(), "core index out of range");
  queues_[core].erase(ref);
}

Money LmcScheduler::total_queue_cost() const {
  Money c = 0.0;
  for (const DynamicSingleCoreScheduler& q : queues_) c += q.total_cost();
  return c;
}

}  // namespace dvfs::core
