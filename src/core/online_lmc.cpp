#include "dvfs/core/online_lmc.h"

#include <limits>

namespace dvfs::core {

LmcScheduler::LmcScheduler(std::vector<CostTable> tables) {
  DVFS_REQUIRE(!tables.empty(), "need at least one core");
  queues_.reserve(tables.size());
  for (CostTable& t : tables) {
    queues_.emplace_back(std::move(t));
  }
}

LmcScheduler::Placement LmcScheduler::place_non_interactive(Cycles cycles,
                                                            TaskId id) {
  return place_non_interactive(cycles, id, {});
}

LmcScheduler::Placement LmcScheduler::place_non_interactive(
    Cycles cycles, TaskId id, std::span<const Money> extra_cost) {
  return place_non_interactive(cycles, id, extra_cost, nullptr);
}

LmcScheduler::Placement LmcScheduler::place_non_interactive(
    Cycles cycles, TaskId id, std::span<const Money> extra_cost,
    std::vector<Money>* probed_marginals) {
  DVFS_REQUIRE(cycles > 0, "tasks need a positive cycle count");
  DVFS_REQUIRE(extra_cost.empty() || extra_cost.size() == queues_.size(),
               "extra_cost must have one entry per core");
  if (probed_marginals != nullptr) {
    probed_marginals->assign(queues_.size(), 0.0);
  }
  // Evaluate every core's exact marginal cost analytically (no structure
  // mutation); ties keep the lowest core index so runs are deterministic.
  std::size_t best_core = 0;
  Money best_marginal = 0.0;
  for (std::size_t j = 0; j < queues_.size(); ++j) {
    Money m = queues_[j].peek_marginal_insert_cost(cycles);
    if (!extra_cost.empty()) m += extra_cost[j];
    if (probed_marginals != nullptr) (*probed_marginals)[j] = m;
    if (j == 0 || m < best_marginal) {
      best_marginal = m;
      best_core = j;
    }
  }
  const auto ref = queues_[best_core].insert(cycles, id);
  return Placement{best_core, ref, best_marginal};
}

std::size_t LmcScheduler::choose_interactive_core(
    Cycles cycles, std::span<const std::size_t> extra_waiting) const {
  DVFS_REQUIRE(cycles > 0, "tasks need a positive cycle count");
  DVFS_REQUIRE(extra_waiting.empty() || extra_waiting.size() == queues_.size(),
               "extra_waiting must have one entry per core");
  std::size_t best = 0;
  Money best_cost = std::numeric_limits<Money>::infinity();
  for (std::size_t j = 0; j < queues_.size(); ++j) {
    const std::size_t waiting =
        queues_[j].size() + (extra_waiting.empty() ? 0 : extra_waiting[j]);
    const Money c = interactive_marginal_cost(j, cycles, waiting);
    if (c < best_cost) {
      best_cost = c;
      best = j;
    }
  }
  return best;
}

Money LmcScheduler::interactive_marginal_cost(std::size_t core, Cycles cycles,
                                              std::size_t waiting) const {
  DVFS_REQUIRE(core < queues_.size(), "core index out of range");
  const CostTable& t = queues_[core].table();
  const EnergyModel& m = t.model();
  const std::size_t pm = m.rates().highest_index();
  const double l = static_cast<double>(cycles);
  // Eq. 27: own energy cost + own time cost + delay inflicted on the
  // `waiting` tasks already queued behind this core.
  return t.params().re * l * m.energy_per_cycle(pm) +
         t.params().rt * l * m.time_per_cycle(pm) +
         t.params().rt * l * m.time_per_cycle(pm) *
             static_cast<double>(waiting);
}

std::optional<LmcScheduler::Dispatched> LmcScheduler::pop_next(
    std::size_t core) {
  DVFS_REQUIRE(core < queues_.size(), "core index out of range");
  DynamicSingleCoreScheduler& q = queues_[core];
  if (q.empty()) return std::nullopt;
  const auto ref = q.front();  // fewest cycles; backward position == size
  Dispatched d{DynamicSingleCoreScheduler::id_of(ref),
               DynamicSingleCoreScheduler::cycles_of(ref),
               q.table().best_rate(q.size())};
  q.erase(ref);
  return d;
}

void LmcScheduler::erase(std::size_t core,
                         DynamicSingleCoreScheduler::TaskRef ref) {
  DVFS_REQUIRE(core < queues_.size(), "core index out of range");
  queues_[core].erase(ref);
}

Money LmcScheduler::total_queue_cost() const {
  Money c = 0.0;
  for (const DynamicSingleCoreScheduler& q : queues_) c += q.total_cost();
  return c;
}

}  // namespace dvfs::core
