#include "dvfs/core/dynamic_sched.h"

#include <algorithm>

namespace dvfs::core {

DynamicSingleCoreScheduler::DynamicSingleCoreScheduler(CostTable table)
    : table_(std::move(table)) {
  // Algorithm 4: materialize the dominating position ranges as mutable
  // occupancy state.
  const EnergyModel& m = table_.model();
  const CostParams& cp = table_.params();
  for (const DominatingRange& r : table_.ranges()) {
    RangeState st;
    st.rate_idx = r.rate_idx;
    st.lo = r.range.lo;
    st.hi = r.range.hi;  // kUnbounded for the final range
    st.b = st.lo - 1;    // empty
    ranges_.push_back(st);
    e_coef_.push_back(cp.re * m.energy_per_cycle(r.rate_idx));
    t_coef_.push_back(cp.rt * m.time_per_cycle(r.rate_idx));
  }
}

std::size_t DynamicSingleCoreScheduler::range_index_of(
    std::size_t position) const {
  DVFS_REQUIRE(position >= 1, "positions are 1-based");
  auto it = std::partition_point(
      ranges_.begin(), ranges_.end(), [&](const RangeState& r) {
        return r.hi != ds::IntegerRange::kUnbounded && r.hi < position;
      });
  DVFS_REQUIRE(it != ranges_.end(), "ranges cover [1, inf)");
  return static_cast<std::size_t>(it - ranges_.begin());
}

void DynamicSingleCoreScheduler::refresh_cost() {
  // Eq. 32: C = sum over ranges of Re*E(p)*xi + Rt*T(p)*gamma, with
  // gamma([a,b]) = Delta([a,b]) + (a-1)*xi([a,b]) (Eq. 30). Empty ranges
  // carry x == d == 0, so the sum runs unconditionally over the SoA
  // coefficient arrays and vectorizes.
  Money c = 0.0;
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const RangeState& r = ranges_[i];
    c += e_coef_[i] * r.x +
         t_coef_[i] * (r.d + static_cast<double>(r.lo - 1) * r.x);
  }
  cost_ = c;
}

DynamicSingleCoreScheduler::TaskRef DynamicSingleCoreScheduler::insert(
    Cycles cycles, TaskId id) {
  DVFS_REQUIRE(cycles > 0, "tasks need a positive cycle count");
  const double w = static_cast<double>(cycles);
  const TaskRef node = tree_.insert(w, id);
  const std::size_t k = tree_.rank(node);
  std::size_t i = range_index_of(k);
  RangeState* r = &ranges_[i];

  // Algorithm 5 lines 4-8: absorb the new element into its range; every
  // element previously at position >= k slides one position back.
  if (k == r->lo) r->alpha = node;
  if (k > r->b) r->beta = node;
  r->b += 1;
  r->x += w;
  r->d += static_cast<double>(k - r->lo + 1) * w +
          tree_.range_sum(k + 1, std::min(r->b, tree_.size()));

  // Algorithm 5 lines 9-21: ripple the overflow across range boundaries.
  // Each full range spills its (shifted) last element into the next range's
  // front; at most one element crosses each boundary.
  while (r->hi != ds::IntegerRange::kUnbounded && r->b > r->hi) {
    const TaskRef spill = r->beta;
    const double sw = Tree::weight(spill);
    r->d -= static_cast<double>(r->b - r->lo + 1) * sw;
    r->x -= sw;
    r->b -= 1;
    r->beta = tree_.predecessor(spill);

    ++i;
    r = &ranges_[i];
    r->alpha = spill;
    if (r->lo > r->b) r->beta = spill;  // the next range was empty
    r->b += 1;
    r->x += sw;
    r->d += r->x;  // front insertion: old elements shift +1, spill at pos 1
  }

  refresh_cost();
  return node;
}

void DynamicSingleCoreScheduler::erase(TaskRef ref) {
  DVFS_REQUIRE(ref != nullptr, "null task reference");
  const std::size_t k = tree_.rank(ref);
  const double w = Tree::weight(ref);

  // Algorithm 6 lines 2-19: walk down from the last occupied range; every
  // range whose positions all exceed k sends its front element back to the
  // previous range's tail (the global -1 shift of positions > k).
  std::size_t i = range_index_of(tree_.size());
  while (ranges_[i].lo > k) {
    RangeState& upper = ranges_[i];
    const TaskRef moved = upper.alpha;
    const double mw = Tree::weight(moved);
    upper.d -= upper.x;
    upper.x -= mw;
    upper.b -= 1;
    if (upper.lo <= upper.b) {
      upper.alpha = tree_.successor(moved);
    } else {
      upper.alpha = nullptr;
      upper.beta = nullptr;
    }

    RangeState& lower = ranges_[i - 1];
    lower.beta = moved;
    lower.b += 1;
    lower.x += mw;
    lower.d += static_cast<double>(lower.b - lower.lo + 1) * mw;
    --i;
  }

  // Containing range: remove the element itself; elements behind it within
  // the (possibly temporarily overfull) range shift forward by one.
  RangeState& r = ranges_[i];
  r.d -= static_cast<double>(k - r.lo + 1) * w +
         tree_.range_sum(k + 1, std::min(r.b, tree_.size()));
  r.x -= w;
  r.b -= 1;
  if (r.lo > r.b) {
    r.alpha = nullptr;
    r.beta = nullptr;
  } else if (r.alpha == ref) {
    r.alpha = tree_.successor(ref);
  } else if (r.beta == ref) {
    r.beta = tree_.predecessor(ref);
  }

  tree_.erase(ref);
  refresh_cost();
}

Money DynamicSingleCoreScheduler::peek_marginal_insert_cost(
    Cycles cycles) const {
  DVFS_REQUIRE(cycles > 0, "tasks need a positive cycle count");
  const double w = static_cast<double>(cycles);
  const std::size_t n = tree_.size();
  const std::size_t k = tree_.insertion_rank(w);
  const std::size_t i = range_index_of(k);

  // The newcomer itself at backward position k.
  Money delta =
      (e_coef_[i] + static_cast<double>(k) * t_coef_[i]) * w;

  // Every element currently at position >= k slides back one slot. Those
  // staying inside range r pay one extra Rt*T(p_r) per cycle; the last
  // element of each *full* range r crosses into range r+1 and re-prices
  // to that range's rate.
  for (std::size_t r = i; r < ranges_.size(); ++r) {
    const RangeState& st = ranges_[r];
    if (st.b < st.lo) break;  // nothing occupied at or beyond this range
    const bool spills =
        st.hi != ds::IntegerRange::kUnbounded && st.b == st.hi;
    double shifted_mass;
    if (r == i) {
      shifted_mass = (k <= st.b && k <= n) ? tree_.range_sum(k, st.b) : 0.0;
    } else {
      shifted_mass = st.x;
    }
    if (spills) {
      const double bw = Tree::weight(st.beta);
      shifted_mass -= bw;
      delta += (e_coef_[r + 1] - e_coef_[r] +
                static_cast<double>(st.hi + 1) * t_coef_[r + 1] -
                static_cast<double>(st.hi) * t_coef_[r]) *
               bw;
    }
    delta += t_coef_[r] * shifted_mass;
    if (!spills) break;  // the shift wave stops at the first non-full range
  }
  return delta;
}

Money DynamicSingleCoreScheduler::marginal_insert_cost(Cycles cycles) {
  const Money before = cost_;
  const TaskRef probe = insert(cycles, static_cast<TaskId>(-1));
  const Money after = cost_;
  erase(probe);
  DVFS_REQUIRE(almost_equal(cost_, before, 1e-9, 1e-9),
               "probe insert/erase must round-trip the cost");
  return after - before;
}

CorePlan DynamicSingleCoreScheduler::plan() const {
  CorePlan plan;
  plan.sequence.reserve(tree_.size());
  std::size_t backward = tree_.size();
  // Forward order = lightest first = tail to head.
  for (TaskRef ref = tree_.last(); ref != nullptr;
       ref = tree_.predecessor(ref)) {
    plan.sequence.push_back(ScheduledTask{Tree::payload(ref), cycles_of(ref),
                                          table_.best_rate(backward)});
    --backward;
  }
  return plan;
}

Money DynamicSingleCoreScheduler::recompute_cost() const {
  const EnergyModel& m = table_.model();
  const CostParams& cp = table_.params();
  Money c = 0.0;
  std::size_t k = 1;
  for (TaskRef ref = tree_.first(); ref != nullptr;
       ref = tree_.successor(ref)) {
    const std::size_t rate = table_.best_rate(k);
    const double w = Tree::weight(ref);
    c += cp.re * m.energy_per_cycle(rate) * w +
         static_cast<double>(k) * cp.rt * m.time_per_cycle(rate) * w;
    ++k;
  }
  return c;
}

bool DynamicSingleCoreScheduler::validate() const {
  const std::size_t n = tree_.size();
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const RangeState& r = ranges_[i];
    const std::size_t expected_b =
        (n < r.lo) ? r.lo - 1
                   : (r.hi == ds::IntegerRange::kUnbounded ? n
                                                           : std::min(n, r.hi));
    if (r.b != expected_b) return false;
    const bool occupied = r.b >= r.lo;
    if (!occupied) {
      if (r.alpha != nullptr || r.beta != nullptr) return false;
      if (r.x != 0.0 || r.d != 0.0) return false;
      continue;
    }
    if (r.alpha == nullptr || r.beta == nullptr) return false;
    if (tree_.rank(r.alpha) != r.lo || tree_.rank(r.beta) != r.b) return false;
    if (!almost_equal(r.x, tree_.range_sum(r.lo, r.b), 1e-9, 1e-6)) {
      return false;
    }
    if (!almost_equal(r.d, tree_.range_wsum(r.lo, r.b), 1e-9, 1e-6)) {
      return false;
    }
  }
  return almost_equal(cost_, recompute_cost(), 1e-9, 1e-9);
}

}  // namespace dvfs::core
