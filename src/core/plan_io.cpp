#include "dvfs/core/plan_io.h"

#include <charconv>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace dvfs::core {
namespace {

std::uint64_t parse_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  DVFS_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
               std::string("bad unsigned integer in ") + what);
  return v;
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

void write_plan_csv(const Plan& plan, std::ostream& os) {
  os << "core,position,task_id,cycles,rate_idx\n";
  for (std::size_t j = 0; j < plan.cores.size(); ++j) {
    for (std::size_t k = 0; k < plan.cores[j].sequence.size(); ++k) {
      const ScheduledTask& st = plan.cores[j].sequence[k];
      os << j << ',' << (k + 1) << ',' << st.task_id << ',' << st.cycles
         << ',' << st.rate_idx << '\n';
    }
  }
}

void write_plan_csv_file(const Plan& plan, const std::string& path) {
  std::ofstream os(path);
  DVFS_REQUIRE(os.good(), "cannot open plan file for writing: " + path);
  write_plan_csv(plan, os);
  DVFS_REQUIRE(os.good(), "write failed: " + path);
}

Plan read_plan_csv(std::istream& is) {
  std::string line;
  DVFS_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "empty plan stream");
  DVFS_REQUIRE(line == "core,position,task_id,cycles,rate_idx",
               "missing plan CSV header");
  // core -> position -> task; validated for duplicates and gaps below.
  std::map<std::size_t, std::map<std::size_t, ScheduledTask>> rows;
  std::size_t max_core = 0;
  bool any = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    DVFS_REQUIRE(fields.size() == 5, "plan CSV row must have 5 fields");
    const std::size_t core = parse_u64(fields[0], "core");
    const std::size_t position = parse_u64(fields[1], "position");
    DVFS_REQUIRE(position >= 1, "positions are 1-based");
    ScheduledTask st;
    st.task_id = parse_u64(fields[2], "task_id");
    st.cycles = parse_u64(fields[3], "cycles");
    st.rate_idx = parse_u64(fields[4], "rate_idx");
    DVFS_REQUIRE(rows[core].emplace(position, st).second,
                 "duplicate (core, position) in plan CSV");
    max_core = std::max(max_core, core);
    any = true;
  }
  Plan plan;
  if (!any) return plan;
  plan.cores.resize(max_core + 1);
  for (const auto& [core, by_pos] : rows) {
    std::size_t expect = 1;
    for (const auto& [position, st] : by_pos) {
      DVFS_REQUIRE(position == expect,
                   "gap in plan positions for core " + std::to_string(core));
      ++expect;
      plan.cores[core].sequence.push_back(st);
    }
  }
  return plan;
}

Plan read_plan_csv_file(const std::string& path) {
  std::ifstream is(path);
  DVFS_REQUIRE(is.good(), "cannot open plan file for reading: " + path);
  return read_plan_csv(is);
}

}  // namespace dvfs::core
