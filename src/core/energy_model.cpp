#include "dvfs/core/energy_model.h"

namespace dvfs::core {

EnergyModel::EnergyModel(RateSet rates, std::vector<double> energy_per_cycle,
                         std::vector<double> time_per_cycle)
    : rates_(std::move(rates)),
      epc_(std::move(energy_per_cycle)),
      tpc_(std::move(time_per_cycle)) {
  DVFS_REQUIRE(epc_.size() == rates_.size(),
               "one E(p) entry per rate required");
  DVFS_REQUIRE(tpc_.size() == rates_.size(),
               "one T(p) entry per rate required");
  DVFS_REQUIRE(epc_.front() > 0.0, "E(p) must be positive");
  DVFS_REQUIRE(tpc_.back() > 0.0, "T(p) must be positive");
  for (std::size_t i = 1; i < rates_.size(); ++i) {
    DVFS_REQUIRE(epc_[i] > epc_[i - 1],
                 "E(p) must be strictly increasing in rate (Sec. II-C)");
    DVFS_REQUIRE(tpc_[i] < tpc_[i - 1],
                 "T(p) must be strictly decreasing in rate (Sec. II-C)");
  }
}

EnergyModel EnergyModel::restricted(std::size_t keep_lowest) const {
  DVFS_REQUIRE(keep_lowest >= 1 && keep_lowest <= rates_.size(),
               "must keep between 1 and |P| rates");
  std::vector<Rate> r(rates_.rates().begin(),
                      rates_.rates().begin() + static_cast<long>(keep_lowest));
  std::vector<double> e(epc_.begin(),
                        epc_.begin() + static_cast<long>(keep_lowest));
  std::vector<double> t(tpc_.begin(),
                        tpc_.begin() + static_cast<long>(keep_lowest));
  return EnergyModel(RateSet(std::move(r)), std::move(e), std::move(t));
}

EnergyModel EnergyModel::icpp2014_table2() {
  // Table II values are per-cycle figures in nano units: T(1.6 GHz) =
  // 0.625 ns = 1/1.6 GHz exactly, and E(p)/T(p) gives 5.4 W (1.6 GHz) to
  // 21.5 W (3.0 GHz) of active per-core power, consistent with an i7-950.
  constexpr double nano = 1e-9;
  return EnergyModel(
      RateSet::i7_950(),
      {3.375 * nano, 4.22 * nano, 5.0 * nano, 6.0 * nano, 7.1 * nano},
      {0.625 * nano, 0.5 * nano, 0.42 * nano, 0.36 * nano, 0.33 * nano});
}

EnergyModel EnergyModel::cubic(const RateSet& rates, double kappa_nj_per_ghz2,
                               double static_nj) {
  DVFS_REQUIRE(kappa_nj_per_ghz2 > 0.0, "kappa must be positive");
  DVFS_REQUIRE(static_nj >= 0.0, "static energy must be non-negative");
  constexpr double nano = 1e-9;
  std::vector<double> e;
  std::vector<double> t;
  e.reserve(rates.size());
  t.reserve(rates.size());
  for (const Rate p : rates.rates()) {
    e.push_back((kappa_nj_per_ghz2 * p * p + static_nj) * nano);
    t.push_back(nano / p);  // p in GHz => 1/p ns per cycle
  }
  return EnergyModel(rates, std::move(e), std::move(t));
}

EnergyModel EnergyModel::partition_gadget() {
  // Rates 0.5 and 1.0 (abstract units) so that T = 1/p gives exactly the
  // proof's T(pl) = 2, T(ph) = 1; E follows the proof's 1 and 4.
  return EnergyModel(RateSet({0.5, 1.0}), {1.0, 4.0}, {2.0, 1.0});
}

}  // namespace dvfs::core
