#include "dvfs/core/schedule.h"

#include <algorithm>
#include <map>

namespace dvfs::core {
namespace {

void accumulate_core(const CorePlan& core, const CostTable& table,
                     PlanCost& acc) {
  const EnergyModel& m = table.model();
  Seconds clock = 0.0;
  for (const ScheduledTask& st : core.sequence) {
    DVFS_REQUIRE(st.rate_idx < m.num_rates(), "rate index out of range");
    const Seconds run = m.task_time(st.cycles, st.rate_idx);
    clock += run;  // turnaround = waiting for predecessors + own run time
    acc.energy += m.task_energy(st.cycles, st.rate_idx);
    acc.total_turnaround += clock;
  }
  acc.makespan = std::max(acc.makespan, clock);
}

}  // namespace

PlanCost evaluate_plan(const Plan& plan, const CostTable& table) {
  PlanCost acc;
  for (const CorePlan& core : plan.cores) accumulate_core(core, table, acc);
  acc.energy_cost = table.params().re * acc.energy;
  acc.time_cost = table.params().rt * acc.total_turnaround;
  return acc;
}

PlanCost evaluate_plan(const Plan& plan, std::span<const CostTable> tables) {
  DVFS_REQUIRE(plan.cores.size() == tables.size(),
               "one cost table per core required");
  DVFS_REQUIRE(!tables.empty(), "need at least one core");
  // All tables must share the same Re/Rt: cost weights are a property of
  // the operator, not of a core.
  for (const CostTable& t : tables) {
    DVFS_REQUIRE(almost_equal(t.params().re, tables[0].params().re) &&
                     almost_equal(t.params().rt, tables[0].params().rt),
                 "cost weights must agree across cores");
  }
  PlanCost acc;
  for (std::size_t j = 0; j < plan.cores.size(); ++j) {
    accumulate_core(plan.cores[j], tables[j], acc);
  }
  acc.energy_cost = tables[0].params().re * acc.energy;
  acc.time_cost = tables[0].params().rt * acc.total_turnaround;
  return acc;
}

bool plan_is_permutation_of(const Plan& plan, std::span<const Task> tasks,
                            std::span<const CostTable> tables) {
  if (plan.cores.size() != tables.size()) return false;
  std::map<TaskId, Cycles> expected;
  for (const Task& t : tasks) {
    if (!expected.emplace(t.id, t.cycles).second) return false;  // dup id
  }
  std::size_t seen = 0;
  for (std::size_t j = 0; j < plan.cores.size(); ++j) {
    for (const ScheduledTask& st : plan.cores[j].sequence) {
      auto it = expected.find(st.task_id);
      if (it == expected.end() || it->second != st.cycles) return false;
      expected.erase(it);
      ++seen;
      if (st.rate_idx >= tables[j].model().num_rates()) return false;
    }
  }
  return seen == tasks.size() && expected.empty();
}

}  // namespace dvfs::core
