#include "dvfs/core/yds.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dvfs::core {

double YdsSchedule::max_speed() const {
  double s = 0.0;
  for (const YdsSegment& seg : segments) s = std::max(s, seg.speed);
  return s;
}

Joules YdsSchedule::energy(double c, double alpha) const {
  DVFS_REQUIRE(c > 0.0, "power coefficient must be positive");
  DVFS_REQUIRE(alpha > 1.0, "YDS optimality needs convex power (alpha > 1)");
  Joules joules = 0.0;
  for (const YdsSegment& seg : segments) {
    joules += c * std::pow(seg.speed, alpha) * (seg.end - seg.start);
  }
  return joules;
}

bool YdsSchedule::feasible(std::span<const Task> tasks) const {
  for (const Task& t : tasks) {
    double done = 0.0;
    Seconds finish = 0.0;
    for (const YdsSegment& seg : segments) {
      if (seg.id == t.id) {
        done += seg.work();
        finish = std::max(finish, seg.end);
      }
    }
    if (done + 1e-6 < static_cast<double>(t.cycles)) return false;
    if (finish > t.deadline * (1 + 1e-9)) return false;
  }
  return true;
}

YdsSchedule yds_schedule(std::span<const Task> tasks) {
  for (const Task& t : tasks) {
    DVFS_REQUIRE(is_valid(t), "invalid task");
    DVFS_REQUIRE(t.arrival == 0.0, "yds_schedule covers common arrivals");
    DVFS_REQUIRE(t.has_deadline(), "YDS needs finite deadlines");
  }

  // Deadline order (EDF), id tie-break for determinism.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].deadline != tasks[b].deadline)
      return tasks[a].deadline < tasks[b].deadline;
    return tasks[a].id < tasks[b].id;
  });

  YdsSchedule schedule;
  Seconds t0 = 0.0;
  std::size_t begin = 0;  // first unscheduled job in deadline order
  while (begin < order.size()) {
    // Maximum-intensity prefix of the remaining jobs (common arrival =>
    // the critical set is a deadline prefix). Ties extend to the longer
    // prefix: jobs at equal intensity merge into one critical interval.
    double cum_work = 0.0;
    double best_intensity = -1.0;
    std::size_t best_end = begin;
    for (std::size_t i = begin; i < order.size(); ++i) {
      cum_work += static_cast<double>(tasks[order[i]].cycles);
      const Seconds window = tasks[order[i]].deadline - t0;
      DVFS_REQUIRE(window > 0.0,
                   "instance infeasible for any finite speed: deadline at or "
                   "before the accumulated critical intervals");
      const double intensity = cum_work / window;
      if (intensity >= best_intensity) {
        best_intensity = intensity;
        best_end = i;
      }
    }
    // Run jobs [begin, best_end] EDF at the critical speed.
    for (std::size_t i = begin; i <= best_end; ++i) {
      const Task& t = tasks[order[i]];
      const Seconds duration =
          static_cast<double>(t.cycles) / best_intensity;
      schedule.segments.push_back(
          YdsSegment{t.id, t0, t0 + duration, best_intensity});
      t0 += duration;
    }
    begin = best_end + 1;
  }
  return schedule;
}

YdsSchedule round_to_discrete(const YdsSchedule& continuous,
                              const EnergyModel& model) {
  // Discrete speeds in cycles/second, ascending with rate index.
  std::vector<double> speeds;
  speeds.reserve(model.num_rates());
  for (std::size_t i = 0; i < model.num_rates(); ++i) {
    speeds.push_back(1.0 / model.time_per_cycle(i));
  }

  YdsSchedule out;
  for (const YdsSegment& seg : continuous.segments) {
    DVFS_REQUIRE(seg.speed <= speeds.back() * (1 + 1e-9),
                 "instance needs a speed above the platform's fastest rate");
    if (seg.speed <= speeds.front()) {
      // Clamp: run at the slowest rate, finish early, idle the rest.
      const Seconds duration = seg.work() / speeds.front();
      out.segments.push_back(
          YdsSegment{seg.id, seg.start, seg.start + duration, speeds.front()});
      continue;
    }
    // Exact match (within rounding) uses the single rate.
    const auto hi_it =
        std::lower_bound(speeds.begin(), speeds.end(), seg.speed * (1 - 1e-12));
    const std::size_t hi = static_cast<std::size_t>(hi_it - speeds.begin());
    if (almost_equal(speeds[hi], seg.speed)) {
      out.segments.push_back(
          YdsSegment{seg.id, seg.start, seg.end, speeds[hi]});
      continue;
    }
    // Split the window between the bracketing speeds so the average speed
    // equals the continuous one: fast part first (never jeopardizes the
    // deadline; the work still completes exactly at seg.end).
    const double s_lo = speeds[hi - 1];
    const double s_hi = speeds[hi];
    const double frac_hi = (seg.speed - s_lo) / (s_hi - s_lo);
    const Seconds t_hi = frac_hi * (seg.end - seg.start);
    out.segments.push_back(
        YdsSegment{seg.id, seg.start, seg.start + t_hi, s_hi});
    out.segments.push_back(
        YdsSegment{seg.id, seg.start + t_hi, seg.end, s_lo});
  }
  return out;
}

Joules discrete_energy(const YdsSchedule& schedule,
                       const EnergyModel& model) {
  Joules joules = 0.0;
  for (const YdsSegment& seg : schedule.segments) {
    std::size_t rate = model.num_rates();
    for (std::size_t i = 0; i < model.num_rates(); ++i) {
      if (almost_equal(1.0 / model.time_per_cycle(i), seg.speed)) {
        rate = i;
        break;
      }
    }
    DVFS_REQUIRE(rate < model.num_rates(),
                 "segment speed is not a platform rate; round first");
    joules += model.energy_per_cycle(rate) * seg.work();
  }
  return joules;
}

}  // namespace dvfs::core
