#include "dvfs/core/cost_model.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace dvfs::core {
namespace {

// Process-wide memo of Algorithm 1 outputs, keyed by the exact line vector
// a rate configuration induces. Every CostTable on the same (P, E, T, Re,
// Rt) shares one immutable CostTablePrecomputed; a changed rate set yields
// different lines, which simply miss and build a fresh entry.
struct SharedEnvelopeCache {
  std::mutex mu;
  std::vector<std::shared_ptr<const detail::CostTablePrecomputed>> entries;
  std::size_t hits = 0;
  std::size_t misses = 0;

  // Bounded so pathological workloads (e.g. a fuzzer minting a new rate set
  // per instance) cannot grow it without limit; overflow drops everything,
  // live tables keep their data alive through their shared_ptr.
  static constexpr std::size_t kMaxEntries = 256;
};

SharedEnvelopeCache& shared_cache() {
  static SharedEnvelopeCache c;
  return c;
}

std::shared_ptr<const detail::CostTablePrecomputed> build_precomputed(
    std::vector<ds::Line> lines) {
  auto pre = std::make_shared<detail::CostTablePrecomputed>();
  const ds::EnvelopeResult env = ds::lower_envelope_integer(lines);
  for (const std::size_t idx : env.active) {
    pre->ranges.push_back(DominatingRange{idx, env.range_of[idx]});
    pre->active_rates.push_back(idx);
  }
  std::sort(pre->ranges.begin(), pre->ranges.end(),
            [](const DominatingRange& a, const DominatingRange& b) {
              return a.range.lo < b.range.lo;
            });

  // Positions up to a modest bound are answered from a flat table; beyond
  // it the per-lookup binary search over <= |P| ranges is already cheap.
  // The ranges ascend and partition [1, inf), so one linear walk fills the
  // table with the same values the per-k binary search would produce.
  const std::size_t cache_limit =
      std::min<std::size_t>(4096, pre->ranges.back().range.lo + 64);
  pre->small_k_cache.reserve(cache_limit);
  std::size_t r = 0;
  for (std::size_t k = 1; k <= cache_limit; ++k) {
    while (!pre->ranges[r].range.unbounded() && pre->ranges[r].range.hi < k) {
      ++r;
    }
    pre->small_k_cache.push_back(pre->ranges[r].rate_idx);
  }
  pre->key = std::move(lines);
  return pre;
}

}  // namespace

std::shared_ptr<const detail::CostTablePrecomputed> CostTable::precompute(
    std::vector<ds::Line> lines) {
  SharedEnvelopeCache& c = shared_cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (const auto& entry : c.entries) {
      if (entry->key == lines) {
        ++c.hits;
        return entry;
      }
    }
  }
  // Build outside the lock: construction is the expensive part and distinct
  // rate sets should not serialize on each other. A racing duplicate build
  // is benign (both results are value-identical; one wins the cache slot).
  auto pre = build_precomputed(std::move(lines));
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (const auto& entry : c.entries) {
      if (entry->key == pre->key) {
        ++c.hits;
        return entry;
      }
    }
    ++c.misses;
    if (c.entries.size() >= SharedEnvelopeCache::kMaxEntries) c.entries.clear();
    c.entries.push_back(pre);
  }
  return pre;
}

CostTable::SharedCacheStats CostTable::shared_cache_stats() {
  SharedEnvelopeCache& c = shared_cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return SharedCacheStats{c.hits, c.misses, c.entries.size()};
}

void CostTable::clear_shared_cache() {
  SharedEnvelopeCache& c = shared_cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.entries.clear();
  c.hits = 0;
  c.misses = 0;
}

CostTable::CostTable(EnergyModel model, CostParams params)
    : model_(std::move(model)), params_(params) {
  DVFS_REQUIRE(params_.valid(), "Re and Rt must be positive");

  // Each rate p_i induces the line f_i(k) = Re*E(p_i) + (Rt*T(p_i)) * k.
  // Rates ascend => T descends => slopes strictly decrease, and E ascends
  // => intercepts strictly increase, which is exactly what
  // lower_envelope_integer requires.
  std::vector<ds::Line> lines;
  lines.reserve(model_.num_rates());
  for (std::size_t i = 0; i < model_.num_rates(); ++i) {
    lines.push_back(ds::Line{params_.rt * model_.time_per_cycle(i),
                             params_.re * model_.energy_per_cycle(i), i});
  }
  shared_ = precompute(std::move(lines));
}

std::size_t CostTable::best_rate(std::size_t k) const {
  DVFS_REQUIRE(k >= 1, "backward positions are 1-based");
  const detail::CostTablePrecomputed& pre = *shared_;
  if (k <= pre.small_k_cache.size()) return pre.small_k_cache[k - 1];
  auto it = std::partition_point(
      pre.ranges.begin(), pre.ranges.end(), [&](const DominatingRange& r) {
        return !r.range.unbounded() && r.range.hi < k;
      });
  DVFS_REQUIRE(it != pre.ranges.end(), "ranges must cover [1, inf)");
  return it->rate_idx;
}

std::size_t CostTable::best_rate_naive(std::size_t k) const {
  DVFS_REQUIRE(k >= 1, "backward positions are 1-based");
  std::size_t best = 0;
  double best_cost = backward_cost(k, 0);
  for (std::size_t i = 1; i < model_.num_rates(); ++i) {
    const double c = backward_cost(k, i);
    if (c <= best_cost) {  // ties toward the higher rate
      best_cost = c;
      best = i;
    }
  }
  return best;
}

}  // namespace dvfs::core
