#include "dvfs/core/cost_model.h"

#include <algorithm>

namespace dvfs::core {

CostTable::CostTable(EnergyModel model, CostParams params)
    : model_(std::move(model)), params_(params) {
  DVFS_REQUIRE(params_.valid(), "Re and Rt must be positive");

  // Each rate p_i induces the line f_i(k) = Re*E(p_i) + (Rt*T(p_i)) * k.
  // Rates ascend => T descends => slopes strictly decrease, and E ascends
  // => intercepts strictly increase, which is exactly what
  // lower_envelope_integer requires.
  std::vector<ds::Line> lines;
  lines.reserve(model_.num_rates());
  for (std::size_t i = 0; i < model_.num_rates(); ++i) {
    lines.push_back(ds::Line{params_.rt * model_.time_per_cycle(i),
                             params_.re * model_.energy_per_cycle(i), i});
  }
  const ds::EnvelopeResult env = ds::lower_envelope_integer(lines);

  for (const std::size_t idx : env.active) {
    ranges_.push_back(DominatingRange{idx, env.range_of[idx]});
    active_rates_.push_back(idx);
  }
  std::sort(ranges_.begin(), ranges_.end(),
            [](const DominatingRange& a, const DominatingRange& b) {
              return a.range.lo < b.range.lo;
            });

  // Positions up to a modest bound are answered from a flat table; beyond
  // it the per-lookup binary search over <= |P| ranges is already cheap.
  const std::size_t cache_limit = std::min<std::size_t>(
      4096, ranges_.back().range.lo + 64);
  small_k_cache_.reserve(cache_limit);
  for (std::size_t k = 1; k <= cache_limit; ++k) {
    auto it = std::partition_point(
        ranges_.begin(), ranges_.end(), [&](const DominatingRange& r) {
          return !r.range.unbounded() && r.range.hi < k;
        });
    small_k_cache_.push_back(it->rate_idx);
  }
}

std::size_t CostTable::best_rate(std::size_t k) const {
  DVFS_REQUIRE(k >= 1, "backward positions are 1-based");
  if (k <= small_k_cache_.size()) return small_k_cache_[k - 1];
  auto it = std::partition_point(
      ranges_.begin(), ranges_.end(), [&](const DominatingRange& r) {
        return !r.range.unbounded() && r.range.hi < k;
      });
  DVFS_REQUIRE(it != ranges_.end(), "ranges must cover [1, inf)");
  return it->rate_idx;
}

std::size_t CostTable::best_rate_naive(std::size_t k) const {
  DVFS_REQUIRE(k >= 1, "backward positions are 1-based");
  std::size_t best = 0;
  double best_cost = backward_cost(k, 0);
  for (std::size_t i = 1; i < model_.num_rates(); ++i) {
    const double c = backward_cost(k, i);
    if (c <= best_cost) {  // ties toward the higher rate
      best_cost = c;
      best = i;
    }
  }
  return best;
}

}  // namespace dvfs::core
