#include "dvfs/core/batch_switch_cost.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

namespace dvfs::core {
namespace {

void check_inputs(std::span<const Task> tasks, const CostTable& table,
                  const SwitchCost& sc, std::size_t initial_rate) {
  for (const Task& t : tasks) {
    DVFS_REQUIRE(is_valid(t), "invalid task");
    DVFS_REQUIRE(t.arrival == 0.0, "batch tasks arrive at time 0");
  }
  DVFS_REQUIRE(sc.latency >= 0.0 && sc.energy >= 0.0,
               "switch costs cannot be negative");
  DVFS_REQUIRE(initial_rate == kNoInitialRate ||
                   initial_rate < table.model().num_rates(),
               "initial rate out of range");
}

// Theorem 3 order: non-decreasing cycles, id tie-break.
std::vector<std::size_t> sorted_order(std::span<const Task> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].cycles != tasks[b].cycles)
      return tasks[a].cycles < tasks[b].cycles;
    return tasks[a].id < tasks[b].id;
  });
  return order;
}

// Cost charged when the rate changes just before forward task i (1-based):
// the stall delays tasks i..n (temporal) and burns the transition energy.
Money switch_penalty(const CostTable& table, const SwitchCost& sc,
                     std::size_t i, std::size_t n) {
  return table.params().re * sc.energy +
         table.params().rt * sc.latency * static_cast<double>(n - i + 1);
}

}  // namespace

CorePlan single_core_with_switch_cost(std::span<const Task> tasks,
                                      const CostTable& table,
                                      const SwitchCost& switch_cost,
                                      std::size_t initial_rate) {
  check_inputs(tasks, table, switch_cost, initial_rate);
  const std::size_t n = tasks.size();
  CorePlan plan;
  if (n == 0) return plan;
  const std::size_t num_rates = table.model().num_rates();
  const std::vector<std::size_t> order = sorted_order(tasks);

  constexpr Money kInf = std::numeric_limits<Money>::infinity();
  // dp[i][r]: best cost of the first i tasks with task i running at rate
  // index r. parent[i][r]: argmin predecessor rate for recovery.
  std::vector<std::vector<Money>> dp(n + 1, std::vector<Money>(num_rates, kInf));
  std::vector<std::vector<std::size_t>> parent(
      n + 1, std::vector<std::size_t>(num_rates, 0));

  for (std::size_t r = 0; r < num_rates; ++r) {
    const Task& t = tasks[order[0]];
    Money c = table.forward_cost(1, n, r) * static_cast<double>(t.cycles);
    if (initial_rate != kNoInitialRate && r != initial_rate) {
      c += switch_penalty(table, switch_cost, 1, n);
    }
    dp[1][r] = c;
  }
  for (std::size_t i = 2; i <= n; ++i) {
    const Task& t = tasks[order[i - 1]];
    const double l = static_cast<double>(t.cycles);
    const Money sw = switch_penalty(table, switch_cost, i, n);
    for (std::size_t r = 0; r < num_rates; ++r) {
      const Money own = table.forward_cost(i, n, r) * l;
      for (std::size_t prev = 0; prev < num_rates; ++prev) {
        if (dp[i - 1][prev] == kInf) continue;
        const Money c = dp[i - 1][prev] + own + (prev == r ? 0.0 : sw);
        if (c < dp[i][r]) {
          dp[i][r] = c;
          parent[i][r] = prev;
        }
      }
    }
  }

  // Recover the rate path (ties: higher rate, matching best_rate's
  // convention).
  std::size_t best = 0;
  for (std::size_t r = 0; r < num_rates; ++r) {
    if (dp[n][r] <= dp[n][best]) best = r;
  }
  std::vector<std::size_t> rates(n);
  for (std::size_t i = n; i >= 1; --i) {
    rates[i - 1] = best;
    best = parent[i][best];
  }
  plan.sequence.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks[order[i]];
    plan.sequence.push_back(ScheduledTask{t.id, t.cycles, rates[i]});
  }
  return plan;
}

PlanCost evaluate_single_with_switch_cost(const CorePlan& core,
                                          const CostTable& table,
                                          const SwitchCost& switch_cost,
                                          std::size_t initial_rate) {
  DVFS_REQUIRE(switch_cost.latency >= 0.0 && switch_cost.energy >= 0.0,
               "switch costs cannot be negative");
  const EnergyModel& m = table.model();
  PlanCost acc;
  Seconds clock = 0.0;
  std::size_t prev_rate = initial_rate;
  for (const ScheduledTask& st : core.sequence) {
    DVFS_REQUIRE(st.rate_idx < m.num_rates(), "rate index out of range");
    if (prev_rate != kNoInitialRate && st.rate_idx != prev_rate) {
      clock += switch_cost.latency;
      acc.energy += switch_cost.energy;
    }
    prev_rate = st.rate_idx;
    clock += m.task_time(st.cycles, st.rate_idx);
    acc.energy += m.task_energy(st.cycles, st.rate_idx);
    acc.total_turnaround += clock;
  }
  acc.makespan = clock;
  acc.energy_cost = table.params().re * acc.energy;
  acc.time_cost = table.params().rt * acc.total_turnaround;
  return acc;
}

CorePlan brute_force_switch_cost(std::span<const Task> tasks,
                                 const CostTable& table,
                                 const SwitchCost& switch_cost,
                                 std::size_t initial_rate) {
  check_inputs(tasks, table, switch_cost, initial_rate);
  DVFS_REQUIRE(tasks.size() <= 10, "brute force limited to 10 tasks");
  const std::size_t n = tasks.size();
  const std::size_t num_rates = table.model().num_rates();
  const std::vector<std::size_t> order = sorted_order(tasks);

  CorePlan best;
  Money best_cost = std::numeric_limits<Money>::infinity();
  std::vector<std::size_t> rates(n, 0);
  while (true) {
    CorePlan candidate;
    for (std::size_t i = 0; i < n; ++i) {
      const Task& t = tasks[order[i]];
      candidate.sequence.push_back(ScheduledTask{t.id, t.cycles, rates[i]});
    }
    const Money cost = evaluate_single_with_switch_cost(
                           candidate, table, switch_cost, initial_rate)
                           .total();
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(candidate);
    }
    std::size_t digit = 0;
    while (digit < n && ++rates[digit] == num_rates) {
      rates[digit] = 0;
      ++digit;
    }
    if (digit == n || n == 0) break;
  }
  return best;
}

}  // namespace dvfs::core
