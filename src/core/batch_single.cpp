#include "dvfs/core/batch_single.h"

#include <algorithm>
#include <numeric>

namespace dvfs::core {
namespace {

void check_batch_tasks(std::span<const Task> tasks) {
  for (const Task& t : tasks) {
    DVFS_REQUIRE(is_valid(t), "invalid task");
    DVFS_REQUIRE(t.arrival == 0.0, "batch tasks arrive at time 0");
  }
}

// Sorts indices so tasks run in non-decreasing cycle order (Theorem 3),
// with id as the tie breaker for deterministic output.
std::vector<std::size_t> sorted_forward_order(std::span<const Task> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].cycles != tasks[b].cycles)
      return tasks[a].cycles < tasks[b].cycles;
    return tasks[a].id < tasks[b].id;
  });
  return order;
}

}  // namespace

CorePlan longest_task_last(std::span<const Task> tasks,
                           const CostTable& table) {
  check_batch_tasks(tasks);
  const std::vector<std::size_t> order = sorted_forward_order(tasks);
  const std::size_t n = tasks.size();
  CorePlan plan;
  plan.sequence.reserve(n);
  // Forward position k corresponds to backward position n - k + 1; the
  // dominating ranges give that position's optimal rate directly.
  for (std::size_t k = 1; k <= n; ++k) {
    const Task& t = tasks[order[k - 1]];
    plan.sequence.push_back(
        ScheduledTask{t.id, t.cycles, table.best_rate(n - k + 1)});
  }
  return plan;
}

PlanCost evaluate_single(const CorePlan& core, const CostTable& table) {
  Plan plan;
  plan.cores.push_back(core);
  return evaluate_plan(plan, table);
}

CorePlan brute_force_single(std::span<const Task> tasks,
                            const CostTable& table) {
  check_batch_tasks(tasks);
  DVFS_REQUIRE(tasks.size() <= 8, "brute force limited to 8 tasks");
  const std::size_t n = tasks.size();
  const std::size_t num_rates = table.model().num_rates();

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  CorePlan best;
  Money best_cost = std::numeric_limits<Money>::infinity();
  std::vector<std::size_t> rates(n, 0);

  do {
    // Enumerate all rate assignments for this order (odometer).
    std::fill(rates.begin(), rates.end(), std::size_t{0});
    while (true) {
      CorePlan candidate;
      candidate.sequence.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const Task& t = tasks[perm[k]];
        candidate.sequence.push_back(ScheduledTask{t.id, t.cycles, rates[k]});
      }
      const Money cost = evaluate_single(candidate, table).total();
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(candidate);
      }
      // Advance the odometer.
      std::size_t digit = 0;
      while (digit < n && ++rates[digit] == num_rates) {
        rates[digit] = 0;
        ++digit;
      }
      if (digit == n) break;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  return best;
}

CorePlan brute_force_rates_sorted(std::span<const Task> tasks,
                                  const CostTable& table) {
  check_batch_tasks(tasks);
  DVFS_REQUIRE(tasks.size() <= 12, "rate search limited to 12 tasks");
  const std::size_t n = tasks.size();
  const std::size_t num_rates = table.model().num_rates();
  const std::vector<std::size_t> order = sorted_forward_order(tasks);

  CorePlan best;
  Money best_cost = std::numeric_limits<Money>::infinity();
  std::vector<std::size_t> rates(n, 0);
  while (true) {
    CorePlan candidate;
    candidate.sequence.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const Task& t = tasks[order[k]];
      candidate.sequence.push_back(ScheduledTask{t.id, t.cycles, rates[k]});
    }
    const Money cost = evaluate_single(candidate, table).total();
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(candidate);
    }
    std::size_t digit = 0;
    while (digit < n && ++rates[digit] == num_rates) {
      rates[digit] = 0;
      ++digit;
    }
    if (digit == n || n == 0) break;
  }
  return best;
}

}  // namespace dvfs::core
