#include "dvfs/core/batch_multi.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dvfs/ds/indexed_heap.h"

namespace dvfs::core {
namespace {

void check_batch_tasks(std::span<const Task> tasks) {
  for (const Task& t : tasks) {
    DVFS_REQUIRE(is_valid(t), "invalid task");
    DVFS_REQUIRE(t.arrival == 0.0, "batch tasks arrive at time 0");
  }
}

// Indices sorted by decreasing cycle count (heaviest first), id tie-break.
std::vector<std::size_t> heaviest_first(std::span<const Task> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].cycles != tasks[b].cycles)
      return tasks[a].cycles > tasks[b].cycles;
    return tasks[a].id < tasks[b].id;
  });
  return order;
}

// Converts per-core backward sequences (position 1 = runs last) into a
// forward Plan, assigning each backward position its optimal rate.
Plan backward_to_plan(
    const std::vector<std::vector<const Task*>>& backward_per_core,
    std::span<const CostTable> tables) {
  Plan plan;
  plan.cores.resize(backward_per_core.size());
  for (std::size_t j = 0; j < backward_per_core.size(); ++j) {
    const auto& backward = backward_per_core[j];
    CorePlan& core = plan.cores[j];
    core.sequence.reserve(backward.size());
    for (std::size_t i = backward.size(); i-- > 0;) {
      const Task* t = backward[i];
      core.sequence.push_back(
          ScheduledTask{t->id, t->cycles, tables[j].best_rate(i + 1)});
    }
  }
  return plan;
}

}  // namespace

Plan round_robin_homogeneous(std::span<const Task> tasks,
                             const CostTable& table, std::size_t num_cores) {
  DVFS_REQUIRE(num_cores >= 1, "need at least one core");
  check_batch_tasks(tasks);
  const std::vector<std::size_t> order = heaviest_first(tasks);

  std::vector<std::vector<const Task*>> backward(num_cores);
  for (std::size_t i = 0; i < order.size(); ++i) {
    backward[i % num_cores].push_back(&tasks[order[i]]);
  }
  const std::vector<CostTable> tables(num_cores, table);
  return backward_to_plan(backward, tables);
}

Plan workload_based_greedy(std::span<const Task> tasks,
                           std::span<const CostTable> tables) {
  DVFS_REQUIRE(!tables.empty(), "need at least one core");
  check_batch_tasks(tasks);
  const std::vector<std::size_t> order = heaviest_first(tasks);

  struct CorePos {
    std::size_t core;
    std::size_t k;  // backward position this heap entry represents
  };
  // Heap keyed on C_j(k) = min_p C_B(k, p) for core j; ties resolved by
  // insertion order (lower core index first), keeping runs deterministic.
  ds::IndexedHeap<CorePos> heap;
  for (std::size_t j = 0; j < tables.size(); ++j) {
    heap.push(tables[j].best_backward_cost(1), CorePos{j, 1});
  }

  std::vector<std::vector<const Task*>> backward(tables.size());
  for (const std::size_t idx : order) {
    const CorePos pos = heap.pop();
    backward[pos.core].push_back(&tasks[idx]);
    heap.push(tables[pos.core].best_backward_cost(pos.k + 1),
              CorePos{pos.core, pos.k + 1});
  }
  return backward_to_plan(backward, tables);
}

Plan brute_force_assignment(std::span<const Task> tasks,
                            std::span<const CostTable> tables) {
  DVFS_REQUIRE(!tables.empty(), "need at least one core");
  check_batch_tasks(tasks);
  const std::size_t r = tables.size();
  const std::size_t n = tasks.size();
  const double combos = std::pow(static_cast<double>(r),
                                 static_cast<double>(n));
  DVFS_REQUIRE(combos <= static_cast<double>(1 << 22),
               "assignment space too large for brute force");

  std::vector<std::size_t> assign(n, 0);
  Plan best;
  Money best_cost = std::numeric_limits<Money>::infinity();

  while (true) {
    // Build per-core task lists, order each by Theorem 3, rate by position.
    std::vector<std::vector<const Task*>> per_core(r);
    for (std::size_t i = 0; i < n; ++i) {
      per_core[assign[i]].push_back(&tasks[i]);
    }
    Plan candidate;
    candidate.cores.resize(r);
    for (std::size_t j = 0; j < r; ++j) {
      auto& list = per_core[j];
      std::sort(list.begin(), list.end(), [](const Task* a, const Task* b) {
        if (a->cycles != b->cycles) return a->cycles < b->cycles;
        return a->id < b->id;
      });
      const std::size_t m = list.size();
      for (std::size_t k = 0; k < m; ++k) {
        candidate.cores[j].sequence.push_back(ScheduledTask{
            list[k]->id, list[k]->cycles, tables[j].best_rate(m - k)});
      }
    }
    const Money cost = evaluate_plan(candidate, tables).total();
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(candidate);
    }
    std::size_t digit = 0;
    while (digit < n && ++assign[digit] == r) {
      assign[digit] = 0;
      ++digit;
    }
    if (digit == n || n == 0) break;
  }
  return best;
}

}  // namespace dvfs::core
