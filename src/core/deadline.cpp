#include "dvfs/core/deadline.h"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>

namespace dvfs::core {
namespace {

// EDF order is optimal for single-core feasibility: in any feasible
// schedule, swapping two adjacent tasks that violate deadline order keeps
// both finish times feasible (classic exchange argument), and energy is
// order-independent. So the solvers fix EDF order and search rates only.
std::vector<std::size_t> edf_order(std::span<const Task> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].deadline != tasks[b].deadline)
      return tasks[a].deadline < tasks[b].deadline;
    return tasks[a].id < tasks[b].id;
  });
  return order;
}

void check_deadline_instance(const DeadlineInstance& inst) {
  DVFS_REQUIRE(!inst.tasks.empty(), "instance has no tasks");
  for (const Task& t : inst.tasks) {
    DVFS_REQUIRE(is_valid(t), "invalid task");
    DVFS_REQUIRE(t.arrival == 0.0, "batch tasks arrive at time 0");
    DVFS_REQUIRE(t.has_deadline(), "deadline instances need finite deadlines");
  }
  DVFS_REQUIRE(inst.energy_budget > 0.0, "energy budget must be positive");
}

struct ExactSearch {
  const DeadlineInstance& inst;
  std::vector<std::size_t> order;       // EDF
  std::vector<double> fast_prefix;      // cumulative time at max rate
  std::vector<double> time_bound;       // max elapsed admissible at depth d
  std::vector<double> energy_floor;     // min energy for suffix from depth d
  std::vector<std::size_t> chosen;      // rate index per depth
  std::size_t n = 0;

  explicit ExactSearch(const DeadlineInstance& instance) : inst(instance) {
    order = edf_order(inst.tasks);
    n = order.size();
    const EnergyModel& m = inst.model;
    const std::size_t fastest = m.rates().highest_index();

    fast_prefix.assign(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      fast_prefix[i + 1] =
          fast_prefix[i] + m.task_time(inst.tasks[order[i]].cycles, fastest);
    }
    // time_bound[d]: largest elapsed time at depth d from which the suffix
    // can still meet every deadline even at the fastest rate.
    time_bound.assign(n + 1, std::numeric_limits<double>::infinity());
    double suffix_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = n; i-- > 0;) {
      suffix_min = std::min(suffix_min,
                            inst.tasks[order[i]].deadline - fast_prefix[i + 1]);
      time_bound[i] = suffix_min + fast_prefix[i];
    }
    energy_floor.assign(n + 1, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      energy_floor[i] =
          energy_floor[i + 1] + m.task_energy(inst.tasks[order[i]].cycles, 0);
    }
    chosen.assign(n, 0);
  }

  // Depth-first over rate choices, cheapest-energy-first, returning the
  // first witness. Both prunes are exact bounds, so "no witness" is a
  // proof of infeasibility.
  bool dfs(std::size_t depth, double elapsed, double energy) {
    if (energy + energy_floor[depth] > inst.energy_budget * (1 + 1e-12)) {
      return false;
    }
    if (elapsed > time_bound[depth] * (1 + 1e-12)) return false;
    if (depth == n) return true;
    const Task& t = inst.tasks[order[depth]];
    const EnergyModel& m = inst.model;
    for (std::size_t r = 0; r < m.num_rates(); ++r) {
      const double finish = elapsed + m.task_time(t.cycles, r);
      if (finish > t.deadline * (1 + 1e-12)) continue;
      chosen[depth] = r;
      if (dfs(depth + 1, finish, energy + m.task_energy(t.cycles, r))) {
        return true;
      }
    }
    return false;
  }
};

DeadlineSolution materialize(const DeadlineInstance& inst,
                             std::span<const std::size_t> order,
                             std::span<const std::size_t> rates) {
  DeadlineSolution sol;
  const EnergyModel& m = inst.model;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Task& t = inst.tasks[order[i]];
    sol.plan.sequence.push_back(ScheduledTask{t.id, t.cycles, rates[i]});
    sol.energy += m.task_energy(t.cycles, rates[i]);
    sol.finish += m.task_time(t.cycles, rates[i]);
  }
  return sol;
}

}  // namespace

std::optional<DeadlineSolution> solve_deadline_single_exact(
    const DeadlineInstance& instance) {
  check_deadline_instance(instance);
  DVFS_REQUIRE(instance.tasks.size() <= 24,
               "exact solver limited to 24 tasks (exponential search)");
  ExactSearch search(instance);
  if (!search.dfs(0, 0.0, 0.0)) return std::nullopt;
  return materialize(instance, search.order, search.chosen);
}

std::optional<DeadlineSolution> solve_deadline_single_heuristic(
    const DeadlineInstance& instance) {
  check_deadline_instance(instance);
  const EnergyModel& m = instance.model;
  const std::vector<std::size_t> order = edf_order(instance.tasks);
  const std::size_t n = order.size();
  std::vector<std::size_t> rates(n, 0);  // start everything at the slowest

  auto first_violation = [&]() -> std::size_t {
    double elapsed = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      elapsed += m.task_time(instance.tasks[order[i]].cycles, rates[i]);
      if (elapsed > instance.tasks[order[i]].deadline * (1 + 1e-12)) return i;
    }
    return n;  // feasible
  };

  std::size_t violated = first_violation();
  while (violated < n) {
    // Lifting any task at or before the violation shrinks the violated
    // finish time. Choose the lift with the best seconds-saved per extra
    // joule; one rate step at a time keeps energy growth minimal.
    std::size_t best_i = n;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i <= violated; ++i) {
      const std::size_t r = rates[i];
      if (r + 1 >= m.num_rates()) continue;
      const Cycles cycles = instance.tasks[order[i]].cycles;
      const double saved =
          m.task_time(cycles, r) - m.task_time(cycles, r + 1);
      const double extra =
          m.task_energy(cycles, r + 1) - m.task_energy(cycles, r);
      const double ratio = saved / extra;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_i = i;
      }
    }
    if (best_i == n) return std::nullopt;  // everything already at max rate
    ++rates[best_i];
    violated = first_violation();
  }

  DeadlineSolution sol = materialize(instance, order, rates);
  if (sol.energy > instance.energy_budget * (1 + 1e-12)) return std::nullopt;
  return sol;
}

DeadlineInstance partition_to_deadline_single(
    std::span<const std::uint64_t> values) {
  DVFS_REQUIRE(!values.empty(), "partition instance is empty");
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) {
    DVFS_REQUIRE(v > 0, "partition values must be positive");
    total += v;
  }
  const double s = static_cast<double>(total);
  DeadlineInstance inst{.tasks = {},
                        .model = EnergyModel::partition_gadget(),
                        .energy_budget = 2.5 * s};
  inst.tasks.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    inst.tasks.push_back(Task{.id = i,
                              .cycles = values[i],
                              .arrival = 0.0,
                              .deadline = 1.5 * s,
                              .klass = TaskClass::kBatch});
  }
  return inst;
}

std::optional<std::vector<std::size_t>> solve_partition_via_scheduler(
    std::span<const std::uint64_t> values) {
  const DeadlineInstance inst = partition_to_deadline_single(values);
  const auto sol = solve_deadline_single_exact(inst);
  if (!sol.has_value()) return std::nullopt;
  // Theorem 1: in any witness the high-rate tasks sum to exactly S/2; they
  // form one side of the partition.
  std::vector<std::size_t> subset;
  for (const ScheduledTask& st : sol->plan.sequence) {
    if (st.rate_idx == 1) subset.push_back(static_cast<std::size_t>(st.task_id));
  }
  return subset;
}

DeadlineMultiInstance partition_to_deadline_multi(
    std::span<const std::uint64_t> values) {
  DVFS_REQUIRE(!values.empty(), "partition instance is empty");
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) {
    DVFS_REQUIRE(v > 0, "partition values must be positive");
    total += v;
  }
  const double s = static_cast<double>(total);
  // Single rate p = 1 with T(p) = 1 and (immaterial) E(p) = 1.
  DeadlineMultiInstance inst{
      .tasks = {},
      .model = EnergyModel(RateSet({1.0}), {1.0}, {1.0}),
      .num_cores = 2};
  inst.tasks.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    inst.tasks.push_back(Task{.id = i,
                              .cycles = values[i],
                              .arrival = 0.0,
                              .deadline = s / 2.0,
                              .klass = TaskClass::kBatch});
  }
  return inst;
}

std::optional<Plan> solve_deadline_multi_exact(
    const DeadlineMultiInstance& instance) {
  DVFS_REQUIRE(instance.num_cores == 2,
               "multi-core exact solver covers the 2-core Theorem 2 gadget");
  DVFS_REQUIRE(instance.tasks.size() <= 28,
               "exact solver limited to 28 tasks (exponential search)");
  DVFS_REQUIRE(instance.model.num_rates() == 1,
               "gadget uses a single processing rate");
  const std::size_t n = instance.tasks.size();
  for (const Task& t : instance.tasks) {
    DVFS_REQUIRE(is_valid(t) && t.has_deadline(), "invalid gadget task");
  }

  // Heaviest-first DFS over core assignment with load pruning and first-
  // task symmetry breaking.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.tasks[a].cycles > instance.tasks[b].cycles;
  });

  std::vector<int> assign(n, -1);
  std::array<double, 2> load = {0.0, 0.0};

  auto deadline_for = [&](std::size_t i) {
    return instance.tasks[order[i]].deadline;
  };
  auto time_for = [&](std::size_t i) {
    return instance.model.task_time(instance.tasks[order[i]].cycles, 0);
  };

  auto dfs = [&](auto&& self, std::size_t depth) -> bool {
    if (depth == n) return true;
    const double t = time_for(depth);
    const std::size_t end = (depth == 0) ? 1 : 2;  // symmetry breaking
    for (std::size_t c = 0; c < end; ++c) {
      if (load[c] + t <= deadline_for(depth) * (1 + 1e-12)) {
        load[c] += t;
        assign[depth] = static_cast<int>(c);
        if (self(self, depth + 1)) return true;
        load[c] -= t;
        assign[depth] = -1;
      }
    }
    return false;
  };
  if (!dfs(dfs, 0)) return std::nullopt;

  Plan plan;
  plan.cores.resize(2);
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = instance.tasks[order[i]];
    plan.cores[static_cast<std::size_t>(assign[i])].sequence.push_back(
        ScheduledTask{t.id, t.cycles, 0});
  }
  return plan;
}

}  // namespace dvfs::core
