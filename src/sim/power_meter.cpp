#include "dvfs/sim/power_meter.h"

#include <algorithm>

namespace dvfs::sim {

PowerTracingPolicy::PowerTracingPolicy(Policy& inner,
                                       double idle_watts_per_core)
    : inner_(inner), idle_watts_(idle_watts_per_core) {
  DVFS_REQUIRE(idle_watts_per_core >= 0.0, "idle power cannot be negative");
}

void PowerTracingPolicy::attach(Engine& engine) {
  num_cores_ = engine.num_cores();
  trace_.clear();
  inner_.attach(engine);
  sample(engine);  // t = 0 baseline (all idle unless arrivals at 0 follow)
}

void PowerTracingPolicy::sample(Engine& engine) {
  double watts = 0.0;
  for (std::size_t j = 0; j < num_cores_; ++j) {
    if (engine.busy(j)) {
      watts += engine.model(j).busy_power(engine.current_rate(j));
    } else {
      watts += idle_watts_;
    }
  }
  // Coalesce same-timestamp samples: the last state at a timestamp wins
  // (events at equal times resolve before time advances).
  if (!trace_.empty() && trace_.back().t == engine.now()) {
    trace_.back().watts = watts;
    return;
  }
  trace_.push_back(PowerSample{engine.now(), watts});
}

void PowerTracingPolicy::on_arrival(Engine& engine, const core::Task& task) {
  inner_.on_arrival(engine, task);
  sample(engine);
}

void PowerTracingPolicy::on_complete(Engine& engine, std::size_t core,
                                     core::TaskId task) {
  inner_.on_complete(engine, core, task);
  sample(engine);
}

void PowerTracingPolicy::on_timer(Engine& engine) {
  inner_.on_timer(engine);
  sample(engine);
}

Seconds PowerTracingPolicy::timer_interval() const {
  return inner_.timer_interval();
}

bool PowerTracingPolicy::idle() const { return inner_.idle(); }

Joules PowerTracingPolicy::integrate(Seconds end) const {
  DVFS_REQUIRE(end >= 0.0, "integration end must be non-negative");
  Joules joules = 0.0;
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    const Seconds from = trace_[i].t;
    if (from >= end) break;
    const Seconds to =
        (i + 1 < trace_.size()) ? std::min(trace_[i + 1].t, end) : end;
    if (to > from) joules += trace_[i].watts * (to - from);
  }
  return joules;
}

Joules PowerTracingPolicy::integrate_idle_deducted(Seconds end) const {
  const Joules baseline =
      static_cast<double>(num_cores_) * idle_watts_ * end;
  return integrate(end) - baseline;
}

}  // namespace dvfs::sim
