#include "dvfs/sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "dvfs/obs/recorder.h"
#include "dvfs/obs/trace.h"
#include "dvfs/sim/metrics.h"

namespace dvfs::sim {

namespace {
// A task is complete once less than half a cycle remains (floating-point
// progress integration can leave ulp-scale residue at the completion
// event's exact timestamp).
constexpr double kCompletionEpsilonCycles = 0.5;

// Chrome trace_event timestamps are microseconds; one trace second maps
// to one simulated second.
constexpr double kUsPerSimSecond = 1e6;
}  // namespace

Engine::Stats::Stats()
    : arrivals(obs::Registry::global().counter("sim.events.arrival")),
      completions(obs::Registry::global().counter("sim.events.completion")),
      timers(obs::Registry::global().counter("sim.events.timer")),
      starts(obs::Registry::global().counter("sim.tasks.started")),
      preemptions(obs::Registry::global().counter("sim.tasks.preempted")),
      freq_transitions(obs::Registry::global().counter("sim.freq_transitions")),
      queue_depth(obs::Registry::global().histogram("sim.event_queue_depth")),
      decision_ns(
          obs::Registry::global().histogram("sim.governor.decision_ns")),
      queue_wait_us(
          obs::Registry::global().histogram("sim.task.queue_wait_us")) {}

Seconds SimResult::busy_seconds(std::size_t core) const {
  DVFS_REQUIRE(core < rate_residency.size(), "core index out of range");
  Seconds s = 0.0;
  for (const Seconds r : rate_residency[core]) s += r;
  return s;
}

std::vector<double> SimResult::rate_share() const {
  std::size_t rates = 0;
  for (const auto& row : rate_residency) rates = std::max(rates, row.size());
  std::vector<double> share(rates, 0.0);
  Seconds total = 0.0;
  for (const auto& row : rate_residency) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      share[i] += row[i];
      total += row[i];
    }
  }
  if (total <= 0.0) return {};
  for (double& s : share) s /= total;
  return share;
}

double SimResult::utilization(std::size_t core) const {
  if (end_time <= 0.0) return 0.0;
  return busy_seconds(core) / end_time;
}

std::size_t SimResult::completed_count() const {
  std::size_t n = 0;
  for (const TaskRecord& t : tasks) {
    if (t.completed()) ++n;
  }
  return n;
}

Seconds SimResult::total_turnaround() const {
  Seconds s = 0.0;
  for (const TaskRecord& t : tasks) {
    if (t.completed()) s += t.turnaround();
  }
  return s;
}

Seconds SimResult::total_turnaround(core::TaskClass klass) const {
  Seconds s = 0.0;
  for (const TaskRecord& t : tasks) {
    if (t.klass == klass && t.completed()) s += t.turnaround();
  }
  return s;
}

std::size_t SimResult::deadline_misses(core::TaskClass klass) const {
  std::size_t n = 0;
  for (const TaskRecord& t : tasks) {
    if (t.klass == klass && t.missed_deadline()) ++n;
  }
  return n;
}

Seconds SimResult::turnaround_percentile(core::TaskClass klass,
                                         double p) const {
  DVFS_REQUIRE(p >= 0.0 && p <= 1.0, "percentile must be in [0, 1]");
  std::vector<Seconds> values;
  for (const TaskRecord& t : tasks) {
    if (t.klass == klass && t.completed()) values.push_back(t.turnaround());
  }
  DVFS_REQUIRE(!values.empty(), "no completed tasks of that class");
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

Seconds SimResult::mean_turnaround(core::TaskClass klass) const {
  Seconds s = 0.0;
  std::size_t n = 0;
  for (const TaskRecord& t : tasks) {
    if (t.klass == klass && t.completed()) {
      s += t.turnaround();
      ++n;
    }
  }
  DVFS_REQUIRE(n > 0, "no completed tasks of that class");
  return s / static_cast<double>(n);
}

Engine::Engine(std::vector<core::EnergyModel> models,
               ContentionModel contention, double idle_watts,
               Seconds dvfs_transition_latency)
    : models_(std::move(models)),
      contention_(contention),
      idle_watts_(idle_watts),
      transition_latency_(dvfs_transition_latency) {
  DVFS_REQUIRE(!models_.empty(), "need at least one core");
  DVFS_REQUIRE(idle_watts_ >= 0.0, "idle power cannot be negative");
  DVFS_REQUIRE(transition_latency_ >= 0.0,
               "transition latency cannot be negative");
  cores_.resize(models_.size());
}

void Engine::charge_transition(std::size_t core, std::size_t new_rate) {
  CoreState& c = cores_[core];
  if (c.last_rate != kNoRate && c.last_rate != new_rate) {
    stats_.freq_transitions.inc();
    if (trace_ != nullptr) {
      trace_->instant(
          static_cast<std::int64_t>(core), "freq_change",
          now_ * kUsPerSimSecond,
          {{"rate_idx", obs::Json(static_cast<std::uint64_t>(new_rate))},
           {"ghz", obs::Json(models_[core].rates()[new_rate])}});
    }
    if (recorder_ != nullptr) {
      recorder_->record(
          {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kFreqChange),
           .core = static_cast<std::uint16_t>(core),
           .rate_idx = static_cast<std::uint16_t>(new_rate),
           .time_s = now_,
           .f0 = models_[core].rates()[new_rate]});
    }
    if (transition_latency_ > 0.0) c.stall_remaining += transition_latency_;
  }
  c.last_rate = new_rate;
}

void Engine::emit_task_span(std::size_t core, bool preempted) {
  const CoreState& c = cores_[core];
  const TaskRecord& rec = result_.tasks[c.record_idx];
  if (recorder_ != nullptr) {
    recorder_->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kSpanEnd),
         .flags = preempted ? obs::dfr::kFlagPreempted : std::uint8_t{0},
         .core = static_cast<std::uint16_t>(core),
         .rate_idx = static_cast<std::uint16_t>(c.rate_idx),
         .time_s = now_,
         .task = rec.id,
         .f0 = c.span_start});
  }
  if (trace_ == nullptr) return;
  obs::Json::Object args{
      {"task", obs::Json(rec.id)},
      {"rate_idx", obs::Json(static_cast<std::uint64_t>(c.rate_idx))}};
  if (preempted) args.emplace("preempted", obs::Json(true));
  trace_->complete(static_cast<std::int64_t>(core),
                   "task " + std::to_string(rec.id),
                   c.span_start * kUsPerSimSecond,
                   (now_ - c.span_start) * kUsPerSimSecond, std::move(args));
}

void Engine::check_core(std::size_t core) const {
  DVFS_REQUIRE(core < cores_.size(), "core index out of range");
}

const core::EnergyModel& Engine::model(std::size_t core) const {
  check_core(core);
  return models_[core];
}

bool Engine::busy(std::size_t core) const {
  check_core(core);
  return cores_[core].busy;
}

core::TaskId Engine::running_task(std::size_t core) const {
  check_core(core);
  DVFS_REQUIRE(cores_[core].busy, "core is idle");
  return result_.tasks[cores_[core].record_idx].id;
}

std::size_t Engine::current_rate(std::size_t core) const {
  check_core(core);
  DVFS_REQUIRE(cores_[core].busy, "core is idle");
  return cores_[core].rate_idx;
}

double Engine::remaining_cycles(std::size_t core) const {
  check_core(core);
  DVFS_REQUIRE(cores_[core].busy, "core is idle");
  return cores_[core].remaining;
}

Seconds Engine::cumulative_busy_seconds(std::size_t core) const {
  check_core(core);
  return cores_[core].busy_seconds;
}

const TaskRecord& Engine::record(core::TaskId task) const {
  return result_.tasks[record_index(task)];
}

std::size_t Engine::record_index(core::TaskId task) const {
  const auto it = record_of_.find(task);
  DVFS_REQUIRE(it != record_of_.end(), "unknown task id");
  return it->second;
}

void Engine::sync_to(Seconds t) {
  DVFS_REQUIRE(t >= now_ - 1e-9, "time cannot go backwards");
  const Seconds dt = std::max(0.0, t - now_);
  if (dt > 0.0) {
    const double factor = contention_.factor(busy_count_);
    for (std::size_t j = 0; j < cores_.size(); ++j) {
      CoreState& c = cores_[j];
      if (!c.busy) {
        result_.idle_energy += idle_watts_ * dt;
        continue;
      }
      const core::EnergyModel& m = models_[j];
      const double tpc = m.time_per_cycle(c.rate_idx);
      // A pending DVFS transition stalls the core (busy power, no
      // progress) before execution resumes.
      const Seconds stalled = std::min(dt, c.stall_remaining);
      c.stall_remaining -= stalled;
      const double executed = (dt - stalled) / (tpc * factor);
      c.remaining = std::max(0.0, c.remaining - executed);
      const Joules joules = m.busy_power(c.rate_idx) * dt;
      result_.busy_energy += joules;
      result_.tasks[c.record_idx].energy += joules;
      result_.rate_residency[j][c.rate_idx] += dt;
      c.busy_seconds += dt;
    }
  }
  now_ = std::max(now_, t);
}

void Engine::reschedule_completions() {
  const double factor = contention_.factor(busy_count_);
  for (std::size_t j = 0; j < cores_.size(); ++j) {
    CoreState& c = cores_[j];
    if (!c.busy) continue;
    const double tpc = models_[j].time_per_cycle(c.rate_idx);
    const Seconds eta =
        now_ + c.stall_remaining + c.remaining * tpc * factor;
    if (c.completion_event == ds::IndexedHeap<std::size_t>::kNullHandle ||
        !events_.contains(c.completion_event)) {
      c.completion_event = events_.push(eta, Event{EventKind::kCompletion, j});
    } else {
      events_.update_key(c.completion_event, eta);
    }
  }
}

void Engine::start(std::size_t core, core::TaskId task,
                   double remaining_cycles, std::size_t rate_idx) {
  check_core(core);
  DVFS_REQUIRE(running_, "start() is only valid during run()");
  DVFS_REQUIRE(!cores_[core].busy, "core already busy");
  DVFS_REQUIRE(remaining_cycles > 0.0, "nothing to execute");
  DVFS_REQUIRE(rate_idx < models_[core].num_rates(), "rate index out of range");

  const std::size_t idx = record_index(task);
  TaskRecord& rec = result_.tasks[idx];
  DVFS_REQUIRE(!rec.completed(), "task already completed");
  if (!rec.started()) {
    rec.first_start = now_;
    // Queue wait = arrival to first start, in integer microseconds (the
    // histogram buckets integers; sub-microsecond waits land in bucket 0).
    stats_.queue_wait_us.observe(
        static_cast<std::uint64_t>(std::max(0.0, now_ - rec.arrival) * 1e6));
  }

  CoreState& c = cores_[core];
  c.busy = true;
  c.record_idx = idx;
  c.remaining = remaining_cycles;
  c.rate_idx = rate_idx;
  c.span_start = now_;
  stats_.starts.inc();
  if (recorder_ != nullptr) {
    recorder_->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kTaskStart),
         .core = static_cast<std::uint16_t>(core),
         .rate_idx = static_cast<std::uint16_t>(rate_idx),
         .time_s = now_,
         .task = task,
         .f0 = remaining_cycles});
  }
  charge_transition(core, rate_idx);
  ++busy_count_;
  reschedule_completions();
}

Engine::Preempted Engine::preempt(std::size_t core) {
  check_core(core);
  DVFS_REQUIRE(running_, "preempt() is only valid during run()");
  CoreState& c = cores_[core];
  DVFS_REQUIRE(c.busy, "core is idle");
  TaskRecord& rec = result_.tasks[c.record_idx];
  rec.preemptions += 1;
  stats_.preemptions.inc();
  emit_task_span(core, /*preempted=*/true);
  // A preemption racing the task's own completion instant can observe a
  // ~zero remainder; keep it strictly positive (start() requires work to
  // do) but negligible, so cycle conservation holds to float precision.
  Preempted out{rec.id, std::max(c.remaining, 1e-9)};
  c.stall_remaining = 0.0;
  c.busy = false;
  --busy_count_;
  if (events_.contains(c.completion_event)) {
    (void)events_.erase(c.completion_event);
  }
  c.completion_event = ds::IndexedHeap<std::size_t>::kNullHandle;
  reschedule_completions();
  return out;
}

void Engine::set_rate(std::size_t core, std::size_t rate_idx) {
  check_core(core);
  DVFS_REQUIRE(running_, "set_rate() is only valid during run()");
  CoreState& c = cores_[core];
  DVFS_REQUIRE(c.busy, "core is idle");
  DVFS_REQUIRE(rate_idx < models_[core].num_rates(), "rate index out of range");
  if (c.rate_idx == rate_idx) return;
  c.rate_idx = rate_idx;
  charge_transition(core, rate_idx);
  reschedule_completions();
}

SimResult Engine::run(const workload::Trace& trace, Policy& policy) {
  DVFS_REQUIRE(!running_, "engine is already running");
  // Reset per-run state.
  result_ = SimResult{};
  result_.rate_residency.resize(models_.size());
  for (std::size_t j = 0; j < models_.size(); ++j) {
    result_.rate_residency[j].assign(models_[j].num_rates(), 0.0);
  }
  record_of_.clear();
  events_.clear();
  for (CoreState& c : cores_) c = CoreState{};
  busy_count_ = 0;
  now_ = 0.0;
  running_ = true;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    events_.push(trace[i].arrival, Event{EventKind::kArrival, i});
  }
  std::size_t arrivals_pending = trace.size();

  const Seconds tick = policy.timer_interval();
  DVFS_REQUIRE(tick >= 0.0, "timer interval cannot be negative");
  if (tick > 0.0) {
    events_.push(tick, Event{EventKind::kTimer, 0});
  }

  // The governor gets its own trace track after the per-core ones.
  const auto gov_tid = static_cast<std::int64_t>(num_cores());
  if (trace_ != nullptr) {
    for (std::size_t j = 0; j < num_cores(); ++j) {
      trace_->thread_name(static_cast<std::int64_t>(j),
                          "core " + std::to_string(j));
    }
    trace_->thread_name(gov_tid, "governor");
  }
  if (recorder_ != nullptr) {
    recorder_->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kRunBegin),
         .core = static_cast<std::uint16_t>(num_cores()),
         .time_s = now_});
  }
  // Wraps a policy callback: the wall-clock spent inside it is the
  // governor's decision latency (simulated time stands still meanwhile).
  const auto timed_call = [&](obs::dfr::DecisionKind what, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    stats_.decision_ns.observe(static_cast<std::uint64_t>(wall_ns));
    if (trace_ != nullptr) {
      trace_->instant(gov_tid, obs::dfr::to_string(what),
                      now_ * kUsPerSimSecond,
                      {{"wall_ns", obs::Json(wall_ns)}});
      trace_->counter("busy_cores", now_ * kUsPerSimSecond,
                      static_cast<double>(busy_count_));
    }
    if (recorder_ != nullptr) {
      recorder_->record(
          {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kDecision),
           .aux = static_cast<std::uint16_t>(what),
           .time_s = now_,
           .f0 = static_cast<double>(wall_ns),
           .f1 = static_cast<double>(busy_count_)});
    }
  };

  policy.attach(*this);

  while (!events_.empty()) {
    const Seconds t = events_.top_key();
    const Event ev = events_.pop();
    stats_.queue_depth.observe(static_cast<std::uint64_t>(events_.size()) + 1);
    sync_to(t);

    switch (ev.kind) {
      case EventKind::kArrival: {
        const core::Task& task = trace[ev.index];
        const std::size_t idx = result_.tasks.size();
        DVFS_REQUIRE(record_of_.emplace(task.id, idx).second,
                     "duplicate task id in trace");
        result_.tasks.push_back(TaskRecord{.id = task.id,
                                           .klass = task.klass,
                                           .cycles = task.cycles,
                                           .arrival = task.arrival,
                                           .deadline = task.deadline});
        --arrivals_pending;
        stats_.arrivals.inc();
        if (recorder_ != nullptr) {
          recorder_->record(
              {.type = static_cast<std::uint8_t>(
                   obs::dfr::EventType::kTaskArrival),
               .aux = static_cast<std::uint16_t>(task.klass),
               .time_s = now_,
               .task = task.id,
               .u0 = task.cycles,
               .f0 = task.deadline});
        }
        timed_call(obs::dfr::DecisionKind::kOnArrival,
                   [&] { policy.on_arrival(*this, task); });
        break;
      }
      case EventKind::kCompletion: {
        const std::size_t core = ev.index;
        CoreState& c = cores_[core];
        DVFS_REQUIRE(c.busy, "completion event for idle core");
        DVFS_REQUIRE(c.remaining <= kCompletionEpsilonCycles,
                     "completion event fired early");
        c.remaining = 0.0;
        stats_.completions.inc();
        emit_task_span(core, /*preempted=*/false);
        c.busy = false;
        --busy_count_;
        c.completion_event = ds::IndexedHeap<std::size_t>::kNullHandle;
        TaskRecord& rec = result_.tasks[c.record_idx];
        rec.finish = now_;
        if (recorder_ != nullptr) {
          recorder_->record(
              {.type = static_cast<std::uint8_t>(
                   obs::dfr::EventType::kTaskFinish),
               .core = static_cast<std::uint16_t>(core),
               .time_s = now_,
               .task = rec.id,
               .f0 = rec.energy,
               .f1 = rec.turnaround()});
        }
        reschedule_completions();
        timed_call(obs::dfr::DecisionKind::kOnComplete,
                   [&] { policy.on_complete(*this, core, rec.id); });
        break;
      }
      case EventKind::kTimer: {
        stats_.timers.inc();
        timed_call(obs::dfr::DecisionKind::kOnTimer,
                   [&] { policy.on_timer(*this); });
        const bool work_left =
            arrivals_pending > 0 || busy_count_ > 0 || !policy.idle();
        if (work_left) {
          events_.push(now_ + tick, Event{EventKind::kTimer, 0});
        }
        break;
      }
    }
  }

  result_.end_time = now_;
  running_ = false;
  return std::move(result_);
}

}  // namespace dvfs::sim
