#include "dvfs/workload/spec2006int.h"

#include <array>
#include <cmath>

namespace dvfs::workload {
namespace {

// The frequency the paper profiles at (lowest i7-950 step), in Hz.
constexpr double kProfileHz = 1.6e9;

// Table I of the paper, verbatim (seconds).
constexpr std::array<SpecWorkload, 24> kTable1 = {{
    {"perlbench", SpecInput::kTrain, 43.516},
    {"perlbench", SpecInput::kRef, 749.624},
    {"bzip", SpecInput::kTrain, 98.683},
    {"bzip", SpecInput::kRef, 1297.587},
    {"gcc", SpecInput::kTrain, 1.63},
    {"gcc", SpecInput::kRef, 552.611},
    {"mcf", SpecInput::kTrain, 17.568},
    {"mcf", SpecInput::kRef, 397.782},
    {"gobmk", SpecInput::kTrain, 189.218},
    {"gobmk", SpecInput::kRef, 993.54},
    {"hmmer", SpecInput::kTrain, 109.44},
    {"hmmer", SpecInput::kRef, 1106.88},
    {"sjeng", SpecInput::kTrain, 224.398},
    {"sjeng", SpecInput::kRef, 1074.126},
    {"libquantum", SpecInput::kTrain, 5.146},
    {"libquantum", SpecInput::kRef, 1092.185},
    {"h264ref", SpecInput::kTrain, 218.285},
    {"h264ref", SpecInput::kRef, 1549.734},
    {"omnetpp", SpecInput::kTrain, 108.661},
    {"omnetpp", SpecInput::kRef, 439.393},
    {"astar", SpecInput::kTrain, 191.073},
    {"astar", SpecInput::kRef, 880.951},
    {"xalancbmk", SpecInput::kTrain, 142.344},
    {"xalancbmk", SpecInput::kRef, 453.463},
}};

}  // namespace

std::span<const SpecWorkload> spec2006int() { return kTable1; }

Cycles spec_cycles(const SpecWorkload& w) {
  return static_cast<Cycles>(std::llround(w.avg_seconds_at_1_6ghz * kProfileHz));
}

std::vector<core::Task> spec_batch_tasks() {
  std::vector<core::Task> tasks;
  tasks.reserve(kTable1.size());
  core::TaskId id = 0;
  for (const SpecWorkload& w : kTable1) {
    tasks.push_back(core::Task{.id = id++, .cycles = spec_cycles(w)});
  }
  return tasks;
}

std::vector<core::Task> spec_batch_tasks(SpecInput input) {
  std::vector<core::Task> tasks;
  core::TaskId id = 0;
  for (const SpecWorkload& w : kTable1) {
    if (w.input == input) {
      tasks.push_back(core::Task{.id = id, .cycles = spec_cycles(w)});
    }
    ++id;  // ids stay aligned with Table I row numbers
  }
  return tasks;
}

}  // namespace dvfs::workload
