#include "dvfs/workload/generators.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace dvfs::workload {
namespace {

Cycles lognormal_cycles(std::mt19937_64& rng, double log_mean,
                        double log_sigma, Cycles min_cycles) {
  std::lognormal_distribution<double> dist(log_mean, log_sigma);
  const double v = dist(rng);
  if (v < static_cast<double>(min_cycles)) return min_cycles;
  if (v >= 9.0e18) return static_cast<Cycles>(9'000'000'000'000'000'000ULL);
  return static_cast<Cycles>(v);
}

/// Samples an arrival time on [0, duration) whose density grows linearly
/// from 1 at t=0 to `burstiness` at t=duration (inverse-CDF of the
/// trapezoidal density). burstiness == 1 degenerates to uniform.
Seconds burst_arrival(std::mt19937_64& rng, Seconds duration,
                      double burstiness) {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const double u = u01(rng);
  if (burstiness == 1.0) return u * duration;
  // Density f(x) ~ 1 + (b-1)x on x in [0,1]; CDF F(x) = (x + (b-1)x^2/2)
  // normalized by (1 + (b-1)/2). Solve F(x) = u for x via the quadratic.
  const double a = (burstiness - 1.0) / 2.0;
  const double norm = 1.0 + a;
  const double c = -u * norm;
  const double x = (-1.0 + std::sqrt(1.0 - 4.0 * a * c)) / (2.0 * a);
  return std::clamp(x, 0.0, 1.0) * duration;
}

}  // namespace

Trace generate_poisson(const PoissonConfig& cfg, std::uint64_t seed) {
  DVFS_REQUIRE(cfg.arrivals_per_second > 0.0, "rate must be positive");
  DVFS_REQUIRE(cfg.duration > 0.0, "duration must be positive");
  DVFS_REQUIRE(cfg.min_cycles > 0, "min_cycles must be positive");
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(cfg.arrivals_per_second);

  std::vector<core::Task> tasks;
  core::TaskId id = cfg.first_id;
  Seconds t = gap(rng);
  while (t < cfg.duration) {
    tasks.push_back(core::Task{
        .id = id++,
        .cycles = lognormal_cycles(rng, cfg.log_mean_cycles, cfg.log_sigma,
                                   cfg.min_cycles),
        .arrival = t,
        .klass = cfg.klass});
    t += gap(rng);
  }
  return Trace(std::move(tasks));
}

Trace generate_judgegirl(const JudgegirlConfig& cfg, std::uint64_t seed) {
  DVFS_REQUIRE(cfg.duration > 0.0, "duration must be positive");
  DVFS_REQUIRE(cfg.num_problems >= 1, "need at least one problem");
  DVFS_REQUIRE(cfg.burstiness >= 1.0, "burstiness must be >= 1");
  DVFS_REQUIRE(cfg.base_judge_cycles >= 1.0, "judge cost must be positive");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> problem(0, cfg.num_problems - 1);

  std::vector<core::Task> tasks;
  tasks.reserve(cfg.non_interactive_tasks + cfg.interactive_tasks);
  core::TaskId id = 0;

  // Code submissions: judged asynchronously, no strict deadline.
  for (std::size_t i = 0; i < cfg.non_interactive_tasks; ++i) {
    const std::size_t p = problem(rng);
    const double mean =
        cfg.base_judge_cycles *
        (1.0 + static_cast<double>(p) * cfg.problem_spread);
    // lognormal with the requested arithmetic mean: mu = ln(mean) - s^2/2.
    const double mu =
        std::log(mean) - cfg.judge_log_sigma * cfg.judge_log_sigma / 2.0;
    tasks.push_back(core::Task{
        .id = id++,
        .cycles = lognormal_cycles(rng, mu, cfg.judge_log_sigma, 1'000),
        .arrival = burst_arrival(rng, cfg.duration, cfg.burstiness),
        .klass = core::TaskClass::kNonInteractive});
  }

  // Score queries / problem views: tiny, interactive, same burst shape.
  DVFS_REQUIRE(cfg.interactive_deadline > 0.0,
               "interactive deadline must be positive");
  for (std::size_t i = 0; i < cfg.interactive_tasks; ++i) {
    const double mu = std::log(cfg.interactive_mean_cycles) -
                      cfg.interactive_log_sigma * cfg.interactive_log_sigma /
                          2.0;
    const Seconds arrival = burst_arrival(rng, cfg.duration, cfg.burstiness);
    tasks.push_back(core::Task{
        .id = id++,
        .cycles = lognormal_cycles(rng, mu, cfg.interactive_log_sigma, 1'000),
        .arrival = arrival,
        .deadline = arrival + cfg.interactive_deadline,
        .klass = core::TaskClass::kInteractive});
  }
  return Trace(std::move(tasks));
}

std::vector<core::Task> generate_batch(const BatchConfig& cfg,
                                       std::uint64_t seed) {
  DVFS_REQUIRE(cfg.min_cycles >= 1, "min_cycles must be positive");
  DVFS_REQUIRE(cfg.max_cycles >= cfg.min_cycles,
               "max_cycles must be >= min_cycles");
  std::mt19937_64 rng(seed);
  std::vector<core::Task> tasks;
  tasks.reserve(cfg.num_tasks);

  const double lo = static_cast<double>(cfg.min_cycles);
  const double hi = static_cast<double>(cfg.max_cycles);
  for (std::size_t i = 0; i < cfg.num_tasks; ++i) {
    Cycles c = cfg.min_cycles;
    switch (cfg.shape) {
      case BatchShape::kUniform: {
        std::uniform_real_distribution<double> d(lo, hi);
        c = static_cast<Cycles>(d(rng));
        break;
      }
      case BatchShape::kLognormal: {
        const double mu = (std::log(lo) + std::log(hi)) / 2.0;
        const double sigma = (std::log(hi) - std::log(lo)) / 6.0;
        c = lognormal_cycles(rng, mu, std::max(sigma, 1e-9), cfg.min_cycles);
        if (c > cfg.max_cycles) c = cfg.max_cycles;
        break;
      }
      case BatchShape::kBimodal: {
        std::bernoulli_distribution heavy(0.3);
        const double center = heavy(rng) ? 0.9 : 0.1;
        std::normal_distribution<double> d(lo + center * (hi - lo),
                                           (hi - lo) * 0.05);
        const double v = std::clamp(d(rng), lo, hi);
        c = static_cast<Cycles>(v);
        break;
      }
    }
    tasks.push_back(
        core::Task{.id = static_cast<core::TaskId>(i), .cycles = c});
  }
  return tasks;
}

}  // namespace dvfs::workload
