#include "dvfs/workload/trace.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

namespace dvfs::workload {
namespace {

core::TaskClass parse_class(std::string_view s) {
  if (s == "batch") return core::TaskClass::kBatch;
  if (s == "interactive") return core::TaskClass::kInteractive;
  if (s == "non-interactive") return core::TaskClass::kNonInteractive;
  DVFS_REQUIRE(false, "unknown task class in CSV: " + std::string(s));
  return core::TaskClass::kBatch;  // unreachable
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_double(std::string_view s, const char* what) {
  // std::from_chars<double> handles "inf" inconsistently across libcs;
  // route through stod with full-consumption checking instead.
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    DVFS_REQUIRE(used == s.size(), std::string("trailing junk in ") + what);
    return v;
  } catch (const std::invalid_argument&) {
    DVFS_REQUIRE(false, std::string("non-numeric ") + what);
  } catch (const std::out_of_range&) {
    DVFS_REQUIRE(false, std::string("out-of-range ") + what);
  }
  return 0.0;  // unreachable
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  DVFS_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
               std::string("bad unsigned integer in ") + what);
  return v;
}

}  // namespace

Trace::Trace(std::vector<core::Task> tasks) : tasks_(std::move(tasks)) {
  for (const core::Task& t : tasks_) {
    DVFS_REQUIRE(core::is_valid(t), "invalid task in trace: " + describe(t));
  }
  std::stable_sort(tasks_.begin(), tasks_.end(),
                   [](const core::Task& a, const core::Task& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.id < b.id;
                   });
}

std::size_t Trace::count(core::TaskClass klass) const {
  std::size_t n = 0;
  for (const core::Task& t : tasks_) {
    if (t.klass == klass) ++n;
  }
  return n;
}

Cycles Trace::total_cycles() const {
  Cycles total = 0;
  for (const core::Task& t : tasks_) total += t.cycles;
  return total;
}

Trace Trace::merge(const Trace& a, const Trace& b) {
  std::vector<core::Task> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.tasks().begin(), a.tasks().end());
  all.insert(all.end(), b.tasks().begin(), b.tasks().end());
  return Trace(std::move(all));
}

Trace Trace::slice(Seconds from, Seconds to) const {
  DVFS_REQUIRE(from >= 0.0 && to > from, "need 0 <= from < to");
  std::vector<core::Task> window;
  for (const core::Task& t : tasks_) {
    if (t.arrival < from || t.arrival >= to) continue;
    core::Task shifted = t;
    shifted.arrival -= from;
    if (shifted.has_deadline()) shifted.deadline -= from;
    window.push_back(shifted);
  }
  return Trace(std::move(window));
}

void write_csv(const Trace& trace, std::ostream& os) {
  os << "id,arrival,cycles,class,deadline\n";
  os.precision(17);
  for (const core::Task& t : trace.tasks()) {
    os << t.id << ',' << t.arrival << ',' << t.cycles << ','
       << core::to_string(t.klass) << ',';
    if (t.has_deadline()) os << t.deadline;
    os << '\n';
  }
}

void write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  DVFS_REQUIRE(os.good(), "cannot open trace file for writing: " + path);
  write_csv(trace, os);
  DVFS_REQUIRE(os.good(), "write failed: " + path);
}

Trace read_csv(std::istream& is) {
  std::string line;
  DVFS_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "empty trace stream");
  DVFS_REQUIRE(line.rfind("id,arrival,cycles,class", 0) == 0,
               "missing CSV header");
  std::vector<core::Task> tasks;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    DVFS_REQUIRE(fields.size() == 5 || fields.size() == 4,
                 "CSV row must have 4 or 5 fields");
    core::Task t;
    t.id = parse_u64(fields[0], "id");
    t.arrival = parse_double(fields[1], "arrival");
    t.cycles = parse_u64(fields[2], "cycles");
    t.klass = parse_class(fields[3]);
    if (fields.size() == 5 && !fields[4].empty()) {
      t.deadline = parse_double(fields[4], "deadline");
    }
    tasks.push_back(t);
  }
  return Trace(std::move(tasks));
}

Trace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  DVFS_REQUIRE(is.good(), "cannot open trace file for reading: " + path);
  return read_csv(is);
}

}  // namespace dvfs::workload
