#include "dvfs/workload/stats.h"

#include <algorithm>

namespace dvfs::workload {
namespace {

ClassStats summarize_class(std::vector<Cycles>& cycles) {
  ClassStats s;
  s.count = cycles.size();
  if (cycles.empty()) return s;
  std::sort(cycles.begin(), cycles.end());
  s.min_cycles = cycles.front();
  s.max_cycles = cycles.back();
  for (const Cycles c : cycles) s.total_cycles += c;
  s.mean_cycles =
      static_cast<double>(s.total_cycles) / static_cast<double>(s.count);
  auto percentile = [&](double p) {
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(cycles.size() - 1) + 0.5);
    return cycles[std::min(idx, cycles.size() - 1)];
  };
  s.p50_cycles = percentile(0.50);
  s.p95_cycles = percentile(0.95);
  s.p99_cycles = percentile(0.99);
  return s;
}

}  // namespace

TraceStats analyze(const Trace& trace) {
  TraceStats stats;
  stats.horizon = trace.horizon();
  std::vector<Cycles> interactive;
  std::vector<Cycles> non_interactive;
  std::vector<Cycles> batch;
  for (const core::Task& t : trace.tasks()) {
    switch (t.klass) {
      case core::TaskClass::kInteractive: interactive.push_back(t.cycles); break;
      case core::TaskClass::kNonInteractive:
        non_interactive.push_back(t.cycles);
        break;
      case core::TaskClass::kBatch: batch.push_back(t.cycles); break;
    }
  }
  stats.interactive = summarize_class(interactive);
  stats.non_interactive = summarize_class(non_interactive);
  stats.batch = summarize_class(batch);
  return stats;
}

double offered_load(const Trace& trace, const core::EnergyModel& model,
                    std::size_t rate_idx, std::size_t cores) {
  DVFS_REQUIRE(cores >= 1, "need at least one core");
  if (trace.empty() || trace.horizon() <= 0.0) return 0.0;
  const Seconds demand =
      model.task_time(trace.total_cycles(), rate_idx);
  return demand / (trace.horizon() * static_cast<double>(cores));
}

double peak_offered_load(const Trace& trace, const core::EnergyModel& model,
                         std::size_t rate_idx, std::size_t cores,
                         Seconds window) {
  DVFS_REQUIRE(cores >= 1, "need at least one core");
  DVFS_REQUIRE(window > 0.0, "window must be positive");
  if (trace.empty()) return 0.0;
  // Two-pointer sweep over the arrival-sorted tasks.
  double best = 0.0;
  Seconds work = 0.0;  // execution seconds demanded inside the window
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < trace.size(); ++hi) {
    work += model.task_time(trace[hi].cycles, rate_idx);
    while (trace[hi].arrival - trace[lo].arrival > window) {
      work -= model.task_time(trace[lo].cycles, rate_idx);
      ++lo;
    }
    best = std::max(best, work / (window * static_cast<double>(cores)));
  }
  return best;
}

}  // namespace dvfs::workload
