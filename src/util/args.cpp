#include "dvfs/util/args.h"

#include <charconv>

namespace dvfs::util {

Args::Args(int argc, const char* const* argv,
           const std::set<std::string>& known_flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
      has_value = true;
    }
    DVFS_REQUIRE(known_flags.contains(name), "unknown flag: --" + name);
    DVFS_REQUIRE(!values_.contains(name), "duplicate flag: --" + name);
    if (!has_value && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      has_value = true;
    }
    values_.emplace(name, has_value ? value : "");
  }
}

std::string Args::get_string(const std::string& flag) const {
  const auto it = values_.find(flag);
  DVFS_REQUIRE(it != values_.end(), "missing required flag: --" + flag);
  DVFS_REQUIRE(!it->second.empty(), "flag --" + flag + " needs a value");
  return it->second;
}

std::string Args::get_string(const std::string& flag,
                             const std::string& fallback) const {
  return has(flag) ? get_string(flag) : fallback;
}

std::uint64_t Args::get_u64(const std::string& flag) const {
  const std::string s = get_string(flag);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  DVFS_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
               "flag --" + flag + " needs an unsigned integer, got " + s);
  return v;
}

std::uint64_t Args::get_u64(const std::string& flag,
                            std::uint64_t fallback) const {
  return has(flag) ? get_u64(flag) : fallback;
}

double Args::get_double(const std::string& flag) const {
  const std::string s = get_string(flag);
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    DVFS_REQUIRE(used == s.size(),
                 "flag --" + flag + " needs a number, got " + s);
    return v;
  } catch (const std::invalid_argument&) {
    DVFS_REQUIRE(false, "flag --" + flag + " needs a number, got " + s);
  } catch (const std::out_of_range&) {
    DVFS_REQUIRE(false, "flag --" + flag + " value out of range: " + s);
  }
  return 0.0;  // unreachable
}

double Args::get_double(const std::string& flag, double fallback) const {
  return has(flag) ? get_double(flag) : fallback;
}

}  // namespace dvfs::util
