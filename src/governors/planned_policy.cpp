#include "dvfs/governors/planned_policy.h"

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::governors {

PlannedBatchPolicy::PlannedBatchPolicy(core::Plan plan)
    : plan_(std::move(plan)) {
  for (std::size_t j = 0; j < plan_.cores.size(); ++j) {
    for (const core::ScheduledTask& st : plan_.cores[j].sequence) {
      DVFS_REQUIRE(core_of_.emplace(st.task_id, j).second,
                   "task appears twice in the plan");
    }
  }
}

void PlannedBatchPolicy::attach(sim::Engine& engine) {
  DVFS_REQUIRE(engine.num_cores() == plan_.cores.size(),
               "plan core count must match the engine");
  for (std::size_t j = 0; j < plan_.cores.size(); ++j) {
    for (const core::ScheduledTask& st : plan_.cores[j].sequence) {
      DVFS_REQUIRE(st.rate_idx < engine.model(j).num_rates(),
                   "plan uses a rate the engine core lacks");
    }
  }
  next_index_.assign(plan_.cores.size(), 0);
  arrived_.clear();
  if (obs::RecorderChannel* rc = engine.recorder()) {
    rc->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kParams),
         .core = static_cast<std::uint16_t>(engine.num_cores()),
         .aux = static_cast<std::uint16_t>(
             obs::dfr::PolicyKind::kPlannedBatch),
         .time_s = engine.now()});
  }
}

void PlannedBatchPolicy::try_start(sim::Engine& engine, std::size_t core) {
  if (engine.busy(core)) return;
  const std::size_t idx = next_index_[core];
  if (idx >= plan_.cores[core].sequence.size()) return;
  const core::ScheduledTask& st = plan_.cores[core].sequence[idx];
  const auto it = arrived_.find(st.task_id);
  if (it == arrived_.end() || !it->second) return;  // not arrived yet
  next_index_[core] = idx + 1;
  static obs::Counter& dispatches =
      obs::Registry::global().counter("governor.planned.dispatches");
  dispatches.inc();
  if (obs::RecorderChannel* rc = engine.recorder()) {
    // The plan pre-determined the placement; record it (no candidate
    // vector — the alternatives were weighed offline at plan time).
    rc->record({.type = static_cast<std::uint8_t>(
                    obs::dfr::EventType::kPlacement),
                .core = static_cast<std::uint16_t>(core),
                .rate_idx = static_cast<std::uint16_t>(st.rate_idx),
                .aux = static_cast<std::uint16_t>(
                    obs::dfr::DecisionScope::kPlanned),
                .time_s = engine.now(),
                .task = st.task_id,
                .u0 = st.cycles});
  }
  engine.start(core, st.task_id, static_cast<double>(st.cycles), st.rate_idx);
}

void PlannedBatchPolicy::on_arrival(sim::Engine& engine,
                                    const core::Task& task) {
  const auto it = core_of_.find(task.id);
  DVFS_REQUIRE(it != core_of_.end(), "trace task missing from the plan");
  arrived_[task.id] = true;
  try_start(engine, it->second);
}

void PlannedBatchPolicy::on_complete(sim::Engine& engine, std::size_t core,
                                     core::TaskId task) {
  (void)task;
  try_start(engine, core);
}

bool PlannedBatchPolicy::idle() const {
  for (std::size_t j = 0; j < plan_.cores.size(); ++j) {
    if (next_index_[j] < plan_.cores[j].sequence.size()) return false;
  }
  return true;
}

}  // namespace dvfs::governors
