#include "dvfs/governors/wbg_rebalance_policy.h"

#include <limits>

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::governors {

namespace {
struct WbgStats {
  obs::Counter& replans =
      obs::Registry::global().counter("governor.wbg.replans");
  obs::Counter& migrations =
      obs::Registry::global().counter("governor.wbg.migrations");
};
WbgStats& wbg_stats() {
  static WbgStats s;
  return s;
}
}  // namespace

WbgRebalancePolicy::WbgRebalancePolicy(std::vector<core::CostTable> tables,
                                       Cycles migration_penalty_cycles)
    : tables_(std::move(tables)), penalty_(migration_penalty_cycles) {
  DVFS_REQUIRE(!tables_.empty(), "need at least one core");
}

void WbgRebalancePolicy::attach(sim::Engine& engine) {
  DVFS_REQUIRE(engine.num_cores() == tables_.size(),
               "one cost table per engine core required");
  for (std::size_t j = 0; j < engine.num_cores(); ++j) {
    DVFS_REQUIRE(tables_[j].model().num_rates() ==
                     engine.model(j).num_rates(),
                 "cost table and engine model disagree on the rate set");
  }
  per_core_.assign(tables_.size(), CoreState{});
  queued_.clear();
  migrations_ = 0;
  replans_ = 0;
  margin_.reset();
  if (obs::RecorderChannel* rc = engine.recorder()) {
    const core::CostParams& p = tables_[0].params();
    rc->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kParams),
         .core = static_cast<std::uint16_t>(engine.num_cores()),
         .aux = static_cast<std::uint16_t>(
             obs::dfr::PolicyKind::kWbgRebalance),
         .time_s = engine.now(),
         .f0 = p.re,
         .f1 = p.rt});
  }
}

void WbgRebalancePolicy::replan(sim::Engine& engine,
                                const std::vector<core::Task>& extra) {
  // Gather every queued (not running) non-interactive task plus arrivals.
  std::vector<core::Task> tasks;
  tasks.reserve(queued_.size() + extra.size());
  for (const auto& [id, q] : queued_) {
    tasks.push_back(core::Task{.id = id, .cycles = q.cycles});
  }
  for (const core::Task& t : extra) {
    tasks.push_back(core::Task{.id = t.id, .cycles = t.cycles});
  }
  const core::Plan plan = core::workload_based_greedy(tasks, tables_);
  ++replans_;
  wbg_stats().replans.inc();

  const std::size_t migrations_before = migrations_;
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    per_core_[j].plan.assign(plan.cores[j].sequence.begin(),
                             plan.cores[j].sequence.end());
    for (const core::ScheduledTask& st : plan.cores[j].sequence) {
      auto it = queued_.find(st.task_id);
      if (it == queued_.end()) {
        // Newly arrived task: first placement is free.
        queued_.emplace(st.task_id, QueuedTask{st.cycles, j});
      } else if (it->second.home != j) {
        // Migration: charge the penalty to the moved task's future run.
        ++migrations_;
        wbg_stats().migrations.inc();
        it->second.home = j;
        it->second.cycles += penalty_;
      }
    }
  }
  if (obs::RecorderChannel* rc = engine.recorder()) {
    rc->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kReplan),
         .aux = static_cast<std::uint16_t>(migrations_ - migrations_before),
         .time_s = engine.now(),
         .task = extra.empty() ? 0 : extra.front().id,
         .u0 = tasks.size(),
         .f0 = core::evaluate_plan(plan, tables_).total()});
  }
}

Money WbgRebalancePolicy::interactive_cost(std::size_t core,
                                           Cycles cycles) const {
  const core::CostTable& t = tables_[core];
  const core::EnergyModel& m = t.model();
  const std::size_t pm = m.rates().highest_index();
  const std::size_t waiting = per_core_[core].plan.size() +
                              per_core_[core].pending_interactive.size() +
                              per_core_[core].preempted.size();
  const double l = static_cast<double>(cycles);
  return t.params().re * l * m.energy_per_cycle(pm) +
         t.params().rt * l * m.time_per_cycle(pm) *
             static_cast<double>(1 + waiting);
}

std::size_t WbgRebalancePolicy::choose_interactive_core(Cycles cycles) const {
  std::size_t best = 0;
  Money best_cost = std::numeric_limits<Money>::infinity();
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    const Money c = interactive_cost(j, cycles);
    if (c < best_cost) {
      best_cost = c;
      best = j;
    }
  }
  return best;
}

void WbgRebalancePolicy::adjust_running_rate(sim::Engine& engine,
                                             std::size_t core) {
  if (!engine.busy(core)) return;
  const core::TaskId running = engine.running_task(core);
  if (engine.record(running).klass == core::TaskClass::kInteractive) return;
  engine.set_rate(core,
                  tables_[core].best_rate(per_core_[core].plan.size() + 1));
}

void WbgRebalancePolicy::start_next(sim::Engine& engine, std::size_t core) {
  if (engine.busy(core)) return;
  CoreState& st = per_core_[core];
  const std::size_t pm = tables_[core].model().rates().highest_index();
  if (!st.pending_interactive.empty()) {
    const Pending next = st.pending_interactive.front();
    st.pending_interactive.pop_front();
    engine.start(core, next.id, next.remaining_cycles, pm);
    return;
  }
  if (!st.preempted.empty()) {
    const Pending next = st.preempted.back();
    st.preempted.pop_back();
    engine.start(core, next.id, next.remaining_cycles,
                 tables_[core].best_rate(st.plan.size() + 1));
    return;
  }
  if (!st.plan.empty()) {
    const core::ScheduledTask head = st.plan.front();
    st.plan.pop_front();
    const auto it = queued_.find(head.task_id);
    DVFS_REQUIRE(it != queued_.end(), "planned task not in the queued set");
    const Cycles cycles = it->second.cycles;  // includes penalties
    queued_.erase(it);
    engine.start(core, head.task_id, static_cast<double>(cycles),
                 head.rate_idx);
  }
}

void WbgRebalancePolicy::on_arrival(sim::Engine& engine,
                                    const core::Task& task) {
  if (task.klass == core::TaskClass::kInteractive) {
    const std::size_t core = choose_interactive_core(task.cycles);
    const Money chosen_cost = interactive_cost(core, task.cycles);
    margin_.observe(chosen_cost, chosen_cost);  // argmin: zero margin
    if (obs::RecorderChannel* rc = engine.recorder()) {
      for (std::size_t j = 0; j < per_core_.size(); ++j) {
        rc->record({.type = static_cast<std::uint8_t>(
                        obs::dfr::EventType::kCandidate),
                    .flags = j == core ? obs::dfr::kFlagChosen
                                       : std::uint8_t{0},
                    .core = static_cast<std::uint16_t>(j),
                    .aux = static_cast<std::uint16_t>(
                        obs::dfr::DecisionScope::kInteractive),
                    .time_s = engine.now(),
                    .task = task.id,
                    .f0 = interactive_cost(j, task.cycles)});
      }
      rc->record({.type = static_cast<std::uint8_t>(
                      obs::dfr::EventType::kPlacement),
                  .core = static_cast<std::uint16_t>(core),
                  .aux = static_cast<std::uint16_t>(
                      obs::dfr::DecisionScope::kInteractive),
                  .time_s = engine.now(),
                  .task = task.id,
                  .u0 = task.cycles,
                  .f0 = interactive_cost(core, task.cycles)});
    }
    CoreState& st = per_core_[core];
    const std::size_t pm = tables_[core].model().rates().highest_index();
    if (!engine.busy(core)) {
      engine.start(core, task.id, static_cast<double>(task.cycles), pm);
      return;
    }
    const core::TaskId running = engine.running_task(core);
    if (engine.record(running).klass == core::TaskClass::kInteractive) {
      st.pending_interactive.push_back(
          Pending{task.id, static_cast<double>(task.cycles)});
      return;
    }
    const sim::Engine::Preempted p = engine.preempt(core);
    st.preempted.push_back(Pending{p.task, p.remaining_cycles});
    engine.start(core, task.id, static_cast<double>(task.cycles), pm);
    return;
  }

  DVFS_REQUIRE(task.klass == core::TaskClass::kNonInteractive,
               "online traces contain interactive/non-interactive tasks");
  replan(engine, {task});
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    start_next(engine, j);
    adjust_running_rate(engine, j);
  }
}

void WbgRebalancePolicy::on_complete(sim::Engine& engine, std::size_t core,
                                     core::TaskId task) {
  (void)task;
  start_next(engine, core);
}

bool WbgRebalancePolicy::idle() const {
  for (const CoreState& st : per_core_) {
    if (!st.plan.empty() || !st.pending_interactive.empty() ||
        !st.preempted.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace dvfs::governors
