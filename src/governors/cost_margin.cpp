#include "dvfs/governors/cost_margin.h"

#include <algorithm>

namespace dvfs::governors {

CostMarginTracker::CostMarginTracker()
    : gauge_(obs::Registry::global().gauge(kGaugeName)) {}

void CostMarginTracker::reset() {
  chosen_sum_ = 0.0;
  best_sum_ = 0.0;
  decisions_ = 0;
  gauge_.set(0.0);
}

void CostMarginTracker::observe(double chosen_cost, double best_cost) {
  chosen_sum_ += chosen_cost;
  // A "best" above the realized cost can only be float dust from
  // computing the two along different paths; the margin is zero then.
  best_sum_ += std::min(best_cost, chosen_cost);
  ++decisions_;
  gauge_.set(ratio());
}

double CostMarginTracker::ratio() const {
  if (chosen_sum_ <= 0.0) return 0.0;
  return (chosen_sum_ - best_sum_) / chosen_sum_;
}

}  // namespace dvfs::governors
