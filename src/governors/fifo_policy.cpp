#include "dvfs/governors/fifo_policy.h"

#include <algorithm>
#include <limits>

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::governors {

namespace {
struct FifoStats {
  obs::Counter& dispatches =
      obs::Registry::global().counter("governor.fifo.dispatches");
  obs::Counter& governor_samples =
      obs::Registry::global().counter("governor.fifo.governor_samples");
};
FifoStats& fifo_stats() {
  static FifoStats s;
  return s;
}
}  // namespace

void FifoPolicy::attach(sim::Engine& engine) {
  per_core_.assign(engine.num_cores(), CoreQueues{});
  rr_next_ = 0;
  margin_.reset();
  // Resolve the cap against each core's model; heterogeneous cores may
  // have different rate counts, so clamp per core at use. The stored cap
  // is validated against the smallest model.
  std::size_t min_rates = std::numeric_limits<std::size_t>::max();
  for (std::size_t j = 0; j < engine.num_cores(); ++j) {
    min_rates = std::min(min_rates, engine.model(j).num_rates());
  }
  cap_ = (config_.rate_cap == static_cast<std::size_t>(-1))
             ? min_rates - 1
             : config_.rate_cap;
  DVFS_REQUIRE(cap_ < min_rates, "rate cap exceeds a core's rate count");
  // Ondemand on an idle machine has decayed to the lowest frequency; the
  // governor ramps up only after the first above-threshold sample.
  for (CoreQueues& q : per_core_) q.level = 0;
  DVFS_REQUIRE(config_.load_threshold > 0.0 && config_.load_threshold <= 1.0,
               "load threshold must be in (0, 1]");
  DVFS_REQUIRE(config_.conservative_down >= 0.0 &&
                   config_.conservative_down < config_.load_threshold,
               "conservative band must satisfy 0 <= down < up threshold");
  DVFS_REQUIRE(config_.sample_interval > 0.0,
               "sample interval must be positive");
  if (obs::RecorderChannel* rc = engine.recorder()) {
    rc->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kParams),
         .core = static_cast<std::uint16_t>(engine.num_cores()),
         .aux = static_cast<std::uint16_t>(obs::dfr::PolicyKind::kFifo),
         .time_s = engine.now()});
  }
}

std::size_t FifoPolicy::choose_core(const sim::Engine& engine,
                                    const core::Task& task) {
  obs::RecorderChannel* rc = engine.recorder();
  if (config_.placement == Placement::kRoundRobin) {
    const std::size_t core = rr_next_;
    rr_next_ = (rr_next_ + 1) % per_core_.size();
    // Round-robin ignores the queues, so price the decision it actually
    // made against the best one available: drain time (seconds of pending
    // work at the cap rate) of the chosen core vs the least-loaded one.
    double chosen_drain = 0.0;
    double best_drain = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < per_core_.size(); ++j) {
      const double drain =
          per_core_[j].backlog_cycles * engine.model(j).time_per_cycle(cap_);
      if (j == core) chosen_drain = drain;
      best_drain = std::min(best_drain, drain);
    }
    margin_.observe(chosen_drain, best_drain);
    if (rc != nullptr) {
      rc->record({.type = static_cast<std::uint8_t>(
                      obs::dfr::EventType::kPlacement),
                  .core = static_cast<std::uint16_t>(core),
                  .aux = static_cast<std::uint16_t>(
                      obs::dfr::DecisionScope::kFifo),
                  .time_s = engine.now(),
                  .task = task.id,
                  .u0 = task.cycles});
    }
    return core;
  }
  // Earliest ready-to-execute time: pending work divided by the core's
  // cap-rate speed (OLB keeps frequencies maximal, so this is the true
  // drain time on a homogeneous platform and a faithful proxy otherwise).
  std::size_t best = 0;
  double best_ready = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    const double ready =
        per_core_[j].backlog_cycles * engine.model(j).time_per_cycle(cap_);
    if (ready < best_ready) {
      best_ready = ready;
      best = j;
    }
  }
  margin_.observe(best_ready, best_ready);  // argmin: zero margin
  if (rc != nullptr) {
    // The candidate vector for OLB placement is each core's drain time.
    for (std::size_t j = 0; j < per_core_.size(); ++j) {
      rc->record({.type = static_cast<std::uint8_t>(
                      obs::dfr::EventType::kCandidate),
                  .flags = j == best ? obs::dfr::kFlagChosen : std::uint8_t{0},
                  .core = static_cast<std::uint16_t>(j),
                  .aux = static_cast<std::uint16_t>(
                      obs::dfr::DecisionScope::kFifo),
                  .time_s = engine.now(),
                  .task = task.id,
                  .f0 = per_core_[j].backlog_cycles *
                        engine.model(j).time_per_cycle(cap_)});
    }
    rc->record({.type = static_cast<std::uint8_t>(
                    obs::dfr::EventType::kPlacement),
                .core = static_cast<std::uint16_t>(best),
                .aux = static_cast<std::uint16_t>(
                    obs::dfr::DecisionScope::kFifo),
                .time_s = engine.now(),
                .task = task.id,
                .u0 = task.cycles,
                .f0 = best_ready});
  }
  return best;
}

std::size_t FifoPolicy::start_rate(std::size_t core) const {
  return config_.freq == FreqMode::kMax ? cap_ : per_core_[core].level;
}

void FifoPolicy::start_next(sim::Engine& engine, std::size_t core) {
  CoreQueues& q = per_core_[core];
  if (engine.busy(core)) return;
  if (!q.interactive.empty()) {
    const Queued next = q.interactive.front();
    q.interactive.pop_front();
    fifo_stats().dispatches.inc();
    engine.start(core, next.id, next.remaining_cycles, start_rate(core));
  } else if (!q.preempted.empty()) {
    const Queued next = q.preempted.back();
    q.preempted.pop_back();
    fifo_stats().dispatches.inc();
    engine.start(core, next.id, next.remaining_cycles, start_rate(core));
  } else if (!q.non_interactive.empty()) {
    const Queued next = q.non_interactive.front();
    q.non_interactive.pop_front();
    fifo_stats().dispatches.inc();
    engine.start(core, next.id, next.remaining_cycles, start_rate(core));
  }
}

void FifoPolicy::on_arrival(sim::Engine& engine, const core::Task& task) {
  const std::size_t core = choose_core(engine, task);
  CoreQueues& q = per_core_[core];
  q.backlog_cycles += static_cast<double>(task.cycles);

  const Queued entry{task.id, static_cast<double>(task.cycles)};
  if (task.priority() > 0) {
    // Interactive: preempt a running lower-priority task, else queue FIFO
    // behind same-priority work.
    if (engine.busy(core)) {
      const core::TaskId running = engine.running_task(core);
      if (engine.record(running).klass == core::TaskClass::kInteractive) {
        q.interactive.push_back(entry);
        return;
      }
      const sim::Engine::Preempted p = engine.preempt(core);
      q.preempted.push_back(Queued{p.task, p.remaining_cycles});
    }
    fifo_stats().dispatches.inc();
    engine.start(core, task.id, entry.remaining_cycles, start_rate(core));
    return;
  }
  if (engine.busy(core)) {
    q.non_interactive.push_back(entry);
  } else {
    fifo_stats().dispatches.inc();
    engine.start(core, task.id, entry.remaining_cycles, start_rate(core));
  }
}

void FifoPolicy::on_complete(sim::Engine& engine, std::size_t core,
                             core::TaskId task) {
  CoreQueues& q = per_core_[core];
  q.backlog_cycles -= static_cast<double>(engine.record(task).cycles);
  if (q.backlog_cycles < 0.0) q.backlog_cycles = 0.0;  // float dust
  start_next(engine, core);
}

void FifoPolicy::on_timer(sim::Engine& engine) {
  // Sample each core's loading over the last period and apply the
  // governor rule: ondemand (Section V-A3) jumps to the cap above the
  // threshold and steps down below it; conservative steps one level in
  // either direction with a hysteresis band.
  fifo_stats().governor_samples.add(per_core_.size());
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    CoreQueues& q = per_core_[j];
    const Seconds busy_now = engine.cumulative_busy_seconds(j);
    const double load = (busy_now - q.busy_sample) / config_.sample_interval;
    q.busy_sample = busy_now;
    if (config_.freq == FreqMode::kOndemand) {
      if (load > config_.load_threshold) {
        q.level = cap_;
      } else if (q.level > 0) {
        q.level -= 1;
      }
    } else if (config_.freq == FreqMode::kConservative) {
      if (load > config_.load_threshold && q.level < cap_) {
        q.level += 1;
      } else if (load < config_.conservative_down && q.level > 0) {
        q.level -= 1;
      }
    }
    if (engine.busy(j)) {
      engine.set_rate(j, q.level);
    }
  }
}

bool FifoPolicy::idle() const {
  for (const CoreQueues& q : per_core_) {
    if (!q.interactive.empty() || !q.non_interactive.empty() ||
        !q.preempted.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace dvfs::governors
