#include "dvfs/governors/lmc_policy.h"

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::governors {

namespace {
// Resolved once; hot-path updates are relaxed atomic increments.
struct LmcStats {
  obs::Counter& placements =
      obs::Registry::global().counter("governor.lmc.placements");
  obs::Counter& marginal_evals =
      obs::Registry::global().counter("governor.lmc.marginal_evals");
  obs::Counter& interactive_evals =
      obs::Registry::global().counter("governor.lmc.interactive_evals");
};
LmcStats& lmc_stats() {
  static LmcStats s;
  return s;
}
}  // namespace

LmcPolicy::LmcPolicy(std::vector<core::CostTable> tables)
    : LmcPolicy(std::move(tables),
                [](const core::Task& t) { return t.cycles; }) {}

LmcPolicy::LmcPolicy(std::vector<core::CostTable> tables, Estimator estimator,
                     std::function<void(core::TaskId, Cycles)> on_completion)
    : lmc_(std::move(tables)),
      estimator_(std::move(estimator)),
      on_completion_(std::move(on_completion)) {
  DVFS_REQUIRE(static_cast<bool>(estimator_), "estimator must be callable");
}

void LmcPolicy::attach(sim::Engine& engine) {
  DVFS_REQUIRE(engine.num_cores() == lmc_.num_cores(),
               "one cost table per engine core required");
  for (std::size_t j = 0; j < engine.num_cores(); ++j) {
    DVFS_REQUIRE(
        lmc_.queue(j).table().model().num_rates() ==
            engine.model(j).num_rates(),
        "cost table and engine model disagree on the rate set");
  }
  per_core_.assign(engine.num_cores(), CoreState{});
  margin_.reset();
  if (obs::RecorderChannel* rc = engine.recorder()) {
    const core::CostParams& p = lmc_.queue(0).table().params();
    rc->record(
        {.type = static_cast<std::uint8_t>(obs::dfr::EventType::kParams),
         .core = static_cast<std::uint16_t>(engine.num_cores()),
         .aux = static_cast<std::uint16_t>(obs::dfr::PolicyKind::kLmc),
         .time_s = engine.now(),
         .f0 = p.re,
         .f1 = p.rt});
  }
}

std::size_t LmcPolicy::running_rate(std::size_t core) const {
  return lmc_.queue(core).table().best_rate(lmc_.queue(core).size() + 1);
}

void LmcPolicy::adjust_running_rate(sim::Engine& engine, std::size_t core) {
  if (!engine.busy(core)) return;
  const core::TaskId running = engine.running_task(core);
  if (engine.record(running).klass == core::TaskClass::kInteractive) return;
  engine.set_rate(core, running_rate(core));
}

void LmcPolicy::start_next(sim::Engine& engine, std::size_t core) {
  if (engine.busy(core)) return;
  CoreState& st = per_core_[core];
  const std::size_t pm =
      lmc_.queue(core).table().model().rates().highest_index();
  if (!st.pending_interactive.empty()) {
    const Pending next = st.pending_interactive.front();
    st.pending_interactive.pop_front();
    engine.start(core, next.id, next.remaining_cycles, pm);
    return;
  }
  if (!st.preempted.empty()) {
    const Pending next = st.preempted.back();
    st.preempted.pop_back();
    engine.start(core, next.id, next.remaining_cycles, running_rate(core));
    return;
  }
  const auto dispatched = lmc_.pop_next(core);
  if (dispatched.has_value()) {
    // The queue holds the scheduler's *estimate*; the machine executes the
    // task's actual cycle requirement.
    const Cycles actual = engine.record(dispatched->id).cycles;
    engine.start(core, dispatched->id, static_cast<double>(actual),
                 dispatched->rate_idx);
  }
}

void LmcPolicy::on_arrival(sim::Engine& engine, const core::Task& task) {
  const Cycles estimate = estimator_(task);
  DVFS_REQUIRE(estimate > 0, "estimator returned zero cycles");
  if (task.klass == core::TaskClass::kInteractive) {
    // Eq. 27 core choice; N_j counts everything waiting on core j: the
    // queued non-interactive tasks (added by the scheduler itself) plus
    // pending interactive work and preempted remainders.
    std::vector<std::size_t>& extra = extra_scratch_;
    extra.resize(per_core_.size());
    for (std::size_t j = 0; j < per_core_.size(); ++j) {
      extra[j] =
          per_core_[j].pending_interactive.size() + per_core_[j].preempted.size();
    }
    // Eq. 27 evaluates the interactive-cost expression on every core.
    lmc_stats().interactive_evals.add(per_core_.size());
    const std::size_t core = lmc_.choose_interactive_core(estimate, extra);
    // The argmin choice realizes the best candidate; account it so the
    // margin gauge reflects this policy (ratio stays 0 by construction).
    const Money chosen_cost = lmc_.interactive_marginal_cost(
        core, estimate, lmc_.queue(core).size() + extra[core]);
    margin_.observe(chosen_cost, chosen_cost);
    if (obs::RecorderChannel* rc = engine.recorder()) {
      // Persist the full candidate vector (every core's Eq. 27 cost, the
      // winner flagged) so `dvfs_inspect explain` can show why the
      // alternatives lost.
      for (std::size_t j = 0; j < per_core_.size(); ++j) {
        const Money c = lmc_.interactive_marginal_cost(
            j, estimate, lmc_.queue(j).size() + extra[j]);
        rc->record({.type = static_cast<std::uint8_t>(
                        obs::dfr::EventType::kCandidate),
                    .flags = j == core ? obs::dfr::kFlagChosen
                                       : std::uint8_t{0},
                    .core = static_cast<std::uint16_t>(j),
                    .aux = static_cast<std::uint16_t>(
                        obs::dfr::DecisionScope::kInteractive),
                    .time_s = engine.now(),
                    .task = task.id,
                    .f0 = c});
      }
      rc->record({.type = static_cast<std::uint8_t>(
                      obs::dfr::EventType::kPlacement),
                  .core = static_cast<std::uint16_t>(core),
                  .aux = static_cast<std::uint16_t>(
                      obs::dfr::DecisionScope::kInteractive),
                  .time_s = engine.now(),
                  .task = task.id,
                  .u0 = estimate,
                  .f0 = lmc_.interactive_marginal_cost(
                      core, estimate, lmc_.queue(core).size() + extra[core])});
    }
    CoreState& st = per_core_[core];
    const std::size_t pm =
        lmc_.queue(core).table().model().rates().highest_index();

    if (!engine.busy(core)) {
      engine.start(core, task.id, static_cast<double>(task.cycles), pm);
      return;
    }
    const core::TaskId running = engine.running_task(core);
    if (engine.record(running).klass == core::TaskClass::kInteractive) {
      // Equal priority never preempts; wait FIFO.
      st.pending_interactive.push_back(
          Pending{task.id, static_cast<double>(task.cycles)});
      return;
    }
    const sim::Engine::Preempted p = engine.preempt(core);
    st.preempted.push_back(Pending{p.task, p.remaining_cycles});
    engine.start(core, task.id, static_cast<double>(task.cycles), pm);
    return;
  }

  DVFS_REQUIRE(task.klass == core::TaskClass::kNonInteractive,
               "online traces contain interactive/non-interactive tasks");
  // The queues only know *waiting* tasks; a task already executing on core
  // j still delays everything placed there. Charge its remaining seconds
  // at Rt so busy cores compete fairly with idle ones.
  std::vector<Money>& offsets = offsets_scratch_;
  offsets.assign(per_core_.size(), 0.0);
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    if (!engine.busy(j)) continue;
    const core::CostTable& t = lmc_.queue(j).table();
    const Seconds remaining =
        engine.remaining_cycles(j) *
        t.model().time_per_cycle(engine.current_rate(j));
    offsets[j] = t.params().rt * remaining;
  }
  // One marginal-cost probe per core, then one placement.
  lmc_stats().marginal_evals.add(per_core_.size());
  lmc_stats().placements.inc();
  obs::RecorderChannel* rc = engine.recorder();
  std::vector<Money>& probed = probed_scratch_;
  const auto placement = lmc_.place_non_interactive(
      estimate, task.id, offsets, rc != nullptr ? &probed : nullptr);
  margin_.observe(placement.marginal, placement.marginal);  // argmin
  if (rc != nullptr) {
    for (std::size_t j = 0; j < probed.size(); ++j) {
      rc->record({.type = static_cast<std::uint8_t>(
                      obs::dfr::EventType::kCandidate),
                  .flags = j == placement.core ? obs::dfr::kFlagChosen
                                               : std::uint8_t{0},
                  .core = static_cast<std::uint16_t>(j),
                  .aux = static_cast<std::uint16_t>(
                      obs::dfr::DecisionScope::kNonInteractive),
                  .time_s = engine.now(),
                  .task = task.id,
                  .f0 = probed[j]});
    }
    // f1 carries the total queue cost *after* the insertion — the audit
    // baseline an offline replan is compared against.
    rc->record({.type = static_cast<std::uint8_t>(
                    obs::dfr::EventType::kPlacement),
                .core = static_cast<std::uint16_t>(placement.core),
                .aux = static_cast<std::uint16_t>(
                    obs::dfr::DecisionScope::kNonInteractive),
                .time_s = engine.now(),
                .task = task.id,
                .u0 = estimate,
                .f0 = placement.marginal,
                .f1 = lmc_.total_queue_cost()});
  }
  if (!engine.busy(placement.core)) {
    start_next(engine, placement.core);
  } else {
    // Queue length changed: the running non-interactive task's positional
    // rate changed with it.
    adjust_running_rate(engine, placement.core);
  }
}

void LmcPolicy::on_complete(sim::Engine& engine, std::size_t core,
                            core::TaskId task) {
  const sim::TaskRecord& rec = engine.record(task);
  if (on_completion_ && rec.klass == core::TaskClass::kNonInteractive) {
    on_completion_(task, rec.cycles);
  }
  start_next(engine, core);
}

bool LmcPolicy::idle() const {
  for (std::size_t j = 0; j < per_core_.size(); ++j) {
    if (!per_core_[j].pending_interactive.empty() ||
        !per_core_[j].preempted.empty() || !lmc_.queue(j).empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace dvfs::governors
