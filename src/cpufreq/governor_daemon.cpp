#include "dvfs/cpufreq/governor_daemon.h"

#include <algorithm>

#include "dvfs/obs/metrics.h"

namespace dvfs::cpufreq {
namespace {

/// Index of `khz` in the (ascending) table; the value is known-member.
std::size_t index_of(const std::vector<KHz>& table, KHz khz) {
  const auto it = std::find(table.begin(), table.end(), khz);
  DVFS_REQUIRE(it != table.end(), "current frequency not in the table");
  return static_cast<std::size_t>(it - table.begin());
}

// Daemon liveness counters: a long-running governor exposes these via the
// Prometheus endpoint, so a scraper can tell "running but idle" from
// "wedged" without reading logs.
struct DaemonStats {
  obs::Counter& ticks =
      obs::Registry::global().counter("cpufreq.daemon.ticks");
  obs::Counter& transitions =
      obs::Registry::global().counter("cpufreq.daemon.transitions");
};
DaemonStats& daemon_stats() {
  static DaemonStats s;
  return s;
}

}  // namespace

GovernorDaemon::GovernorDaemon(CpufreqBackend& backend)
    : GovernorDaemon(backend, Config{}) {}

GovernorDaemon::GovernorDaemon(CpufreqBackend& backend, Config config)
    : backend_(backend), config_(config) {
  DVFS_REQUIRE(config_.ondemand_threshold > 0.0 &&
                   config_.ondemand_threshold <= 1.0,
               "ondemand threshold must be in (0, 1]");
  DVFS_REQUIRE(config_.conservative_down >= 0.0 &&
                   config_.conservative_down < config_.conservative_up &&
                   config_.conservative_up <= 1.0,
               "conservative thresholds must satisfy 0 <= down < up <= 1");
}

void GovernorDaemon::transition(std::size_t cpu, KHz target) {
  if (backend_.current_khz(cpu) != target) {
    backend_.driver_set_speed(cpu, target);
    daemon_stats().transitions.inc();
  }
}

void GovernorDaemon::tick(std::span<const double> load_per_cpu) {
  DVFS_REQUIRE(load_per_cpu.size() == backend_.num_cpus(),
               "one load sample per cpu required");
  daemon_stats().ticks.inc();
  for (std::size_t cpu = 0; cpu < load_per_cpu.size(); ++cpu) {
    const double load = load_per_cpu[cpu];
    DVFS_REQUIRE(load >= 0.0 && load <= 1.0, "load must be in [0, 1]");
    const std::vector<KHz> table = backend_.available_khz(cpu);
    const std::size_t cur = index_of(table, backend_.current_khz(cpu));

    switch (backend_.governor(cpu)) {
      case GovernorKind::kUserspace:
        break;  // the userspace scheduler owns this core
      case GovernorKind::kPerformance:
        transition(cpu, table.back());
        break;
      case GovernorKind::kPowersave:
        transition(cpu, table.front());
        break;
      case GovernorKind::kOndemand:
        // Section V-A3: above the threshold jump straight to the top;
        // below it, back off one level per sampling period.
        if (load > config_.ondemand_threshold) {
          transition(cpu, table.back());
        } else if (cur > 0) {
          transition(cpu, table[cur - 1]);
        }
        break;
      case GovernorKind::kConservative:
        // Gradual in both directions with a hysteresis band.
        if (load > config_.conservative_up && cur + 1 < table.size()) {
          transition(cpu, table[cur + 1]);
        } else if (load < config_.conservative_down && cur > 0) {
          transition(cpu, table[cur - 1]);
        }
        break;
    }
  }
}

}  // namespace dvfs::cpufreq
