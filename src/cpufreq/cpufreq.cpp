#include "dvfs/cpufreq/cpufreq.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dvfs::cpufreq {
namespace {

namespace fs = std::filesystem;

void check_frequency_table(std::span<const KHz> available) {
  DVFS_REQUIRE(!available.empty(), "frequency table is empty");
  for (std::size_t i = 0; i < available.size(); ++i) {
    DVFS_REQUIRE(available[i] > 0, "frequencies must be positive");
    if (i > 0) {
      DVFS_REQUIRE(available[i] > available[i - 1],
                   "frequencies must be strictly ascending");
    }
  }
}

bool is_member(std::span<const KHz> available, KHz khz) {
  return std::find(available.begin(), available.end(), khz) !=
         available.end();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  DVFS_REQUIRE(is.good(), "cannot read " + path);
  std::stringstream ss;
  ss << is.rdbuf();
  std::string s = ss.str();
  // sysfs values end with a newline; strip trailing whitespace.
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

void write_file(const std::string& path, const std::string& value) {
  std::ofstream os(path);
  DVFS_REQUIRE(os.good(), "cannot write " + path);
  os << value << '\n';
  os.flush();
  DVFS_REQUIRE(os.good(), "write failed: " + path);
}

}  // namespace

const char* to_string(GovernorKind g) {
  switch (g) {
    case GovernorKind::kUserspace: return "userspace";
    case GovernorKind::kOndemand: return "ondemand";
    case GovernorKind::kPowersave: return "powersave";
    case GovernorKind::kPerformance: return "performance";
    case GovernorKind::kConservative: return "conservative";
  }
  return "?";
}

GovernorKind governor_from_string(std::string_view name) {
  if (name == "userspace") return GovernorKind::kUserspace;
  if (name == "ondemand") return GovernorKind::kOndemand;
  if (name == "powersave") return GovernorKind::kPowersave;
  if (name == "performance") return GovernorKind::kPerformance;
  if (name == "conservative") return GovernorKind::kConservative;
  DVFS_REQUIRE(false, "unknown governor: " + std::string(name));
  return GovernorKind::kOndemand;  // unreachable
}

// ---------------------------------------------------------------- simulated

SimulatedCpufreq::SimulatedCpufreq(std::size_t num_cpus,
                                   std::vector<KHz> available)
    : available_(std::move(available)) {
  DVFS_REQUIRE(num_cpus >= 1, "need at least one cpu");
  check_frequency_table(available_);
  cpus_.assign(num_cpus, CpuState{GovernorKind::kOndemand, available_.back()});
}

SimulatedCpufreq::SimulatedCpufreq(std::size_t num_cpus,
                                   const core::RateSet& rates)
    : SimulatedCpufreq(num_cpus, [&] {
        std::vector<KHz> khz;
        khz.reserve(rates.size());
        for (const Rate r : rates.rates()) khz.push_back(ghz_to_khz(r));
        return khz;
      }()) {}

void SimulatedCpufreq::check_cpu(std::size_t cpu) const {
  DVFS_REQUIRE(cpu < cpus_.size(), "cpu index out of range");
}

std::vector<KHz> SimulatedCpufreq::available_khz(std::size_t cpu) const {
  check_cpu(cpu);
  return available_;
}

KHz SimulatedCpufreq::current_khz(std::size_t cpu) const {
  check_cpu(cpu);
  return cpus_[cpu].current;
}

GovernorKind SimulatedCpufreq::governor(std::size_t cpu) const {
  check_cpu(cpu);
  return cpus_[cpu].governor;
}

void SimulatedCpufreq::set_governor(std::size_t cpu, GovernorKind g) {
  check_cpu(cpu);
  cpus_[cpu].governor = g;
  // Mirror kernel behaviour: switching to the static governors snaps the
  // frequency immediately.
  if (g == GovernorKind::kPowersave) cpus_[cpu].current = available_.front();
  if (g == GovernorKind::kPerformance) cpus_[cpu].current = available_.back();
}

void SimulatedCpufreq::set_speed(std::size_t cpu, KHz khz) {
  check_cpu(cpu);
  DVFS_REQUIRE(cpus_[cpu].governor == GovernorKind::kUserspace,
               "scaling_setspeed requires the userspace governor");
  DVFS_REQUIRE(is_member(available_, khz),
               "frequency not in scaling_available_frequencies");
  cpus_[cpu].current = khz;
}

void SimulatedCpufreq::driver_set_speed(std::size_t cpu, KHz khz) {
  check_cpu(cpu);
  DVFS_REQUIRE(is_member(available_, khz),
               "frequency not in scaling_available_frequencies");
  cpus_[cpu].current = khz;
}

// -------------------------------------------------------------------- sysfs

SysfsCpufreq::SysfsCpufreq(std::string root) : root_(std::move(root)) {
  DVFS_REQUIRE(fs::is_directory(root_), "no such directory: " + root_);
  while (fs::is_directory(root_ + "/cpu" + std::to_string(num_cpus_) +
                          "/cpufreq")) {
    ++num_cpus_;
  }
  DVFS_REQUIRE(num_cpus_ >= 1,
               "no cpuX/cpufreq directories under " + root_ +
                   " (per-core DVFS unsupported or tree malformed)");
}

std::string SysfsCpufreq::cpufreq_dir(std::size_t cpu) const {
  DVFS_REQUIRE(cpu < num_cpus_, "cpu index out of range");
  return root_ + "/cpu" + std::to_string(cpu) + "/cpufreq";
}

std::vector<KHz> SysfsCpufreq::available_khz(std::size_t cpu) const {
  const std::string text =
      read_file(cpufreq_dir(cpu) + "/scaling_available_frequencies");
  std::vector<KHz> khz;
  std::istringstream ss(text);
  KHz v = 0;
  while (ss >> v) khz.push_back(v);
  // The kernel lists highest-first; normalize to ascending.
  std::sort(khz.begin(), khz.end());
  check_frequency_table(khz);
  return khz;
}

KHz SysfsCpufreq::current_khz(std::size_t cpu) const {
  const std::string text = read_file(cpufreq_dir(cpu) + "/scaling_cur_freq");
  return static_cast<KHz>(std::stoull(text));
}

GovernorKind SysfsCpufreq::governor(std::size_t cpu) const {
  return governor_from_string(
      read_file(cpufreq_dir(cpu) + "/scaling_governor"));
}

void SysfsCpufreq::set_governor(std::size_t cpu, GovernorKind g) {
  write_file(cpufreq_dir(cpu) + "/scaling_governor", to_string(g));
  // Mirror the kernel's immediate snap for static governors so a fake tree
  // behaves like hardware (a real kernel updates scaling_cur_freq itself;
  // re-writing the same value there is harmless).
  if (g == GovernorKind::kPowersave || g == GovernorKind::kPerformance) {
    const std::vector<KHz> table = available_khz(cpu);
    write_file(cpufreq_dir(cpu) + "/scaling_cur_freq",
               std::to_string(g == GovernorKind::kPowersave ? table.front()
                                                            : table.back()));
  }
}

void SysfsCpufreq::set_speed(std::size_t cpu, KHz khz) {
  DVFS_REQUIRE(governor(cpu) == GovernorKind::kUserspace,
               "scaling_setspeed requires the userspace governor");
  DVFS_REQUIRE(is_member(available_khz(cpu), khz),
               "frequency not in scaling_available_frequencies");
  write_file(cpufreq_dir(cpu) + "/scaling_setspeed", std::to_string(khz));
  // On hardware the kernel propagates setspeed into scaling_cur_freq; a
  // fake tree needs the propagation done by hand.
  write_file(cpufreq_dir(cpu) + "/scaling_cur_freq", std::to_string(khz));
}

void SysfsCpufreq::driver_set_speed(std::size_t cpu, KHz khz) {
  DVFS_REQUIRE(is_member(available_khz(cpu), khz),
               "frequency not in scaling_available_frequencies");
  // On hardware the driver performs the transition and the kernel updates
  // scaling_cur_freq; on a fake tree the daemon plays the kernel's role.
  write_file(cpufreq_dir(cpu) + "/scaling_cur_freq", std::to_string(khz));
}

void make_fake_sysfs_tree(const std::string& dir, std::size_t num_cpus,
                          std::span<const KHz> available) {
  DVFS_REQUIRE(num_cpus >= 1, "need at least one cpu");
  check_frequency_table(available);
  for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
    const std::string d = dir + "/cpu" + std::to_string(cpu) + "/cpufreq";
    fs::create_directories(d);
    std::ostringstream list;
    // Kernel convention: highest first, space separated.
    for (std::size_t i = available.size(); i-- > 0;) {
      list << available[i];
      if (i != 0) list << ' ';
    }
    write_file(d + "/scaling_available_frequencies", list.str());
    write_file(d + "/scaling_governor", "ondemand");
    write_file(d + "/scaling_cur_freq", std::to_string(available.back()));
    write_file(d + "/scaling_setspeed", "<unsupported>");
  }
}

// --------------------------------------------------------------- controller

PlatformController::PlatformController(CpufreqBackend& backend,
                                       core::RateSet rates)
    : backend_(backend), rates_(std::move(rates)) {
  // Every rate the scheduler may choose must exist on every core.
  for (std::size_t cpu = 0; cpu < backend_.num_cpus(); ++cpu) {
    const std::vector<KHz> table = backend_.available_khz(cpu);
    for (const Rate r : rates_.rates()) {
      DVFS_REQUIRE(is_member(table, ghz_to_khz(r)),
                   "rate set contains a frequency cpu" + std::to_string(cpu) +
                       " does not support");
    }
  }
}

void PlatformController::disable_automatic_scaling() {
  for (std::size_t cpu = 0; cpu < backend_.num_cpus(); ++cpu) {
    backend_.set_governor(cpu, GovernorKind::kUserspace);
  }
}

void PlatformController::pin(std::size_t cpu, std::size_t rate_idx) {
  DVFS_REQUIRE(rate_idx < rates_.size(), "rate index out of range");
  const KHz khz = ghz_to_khz(rates_[rate_idx]);
  backend_.set_speed(cpu, khz);
  DVFS_REQUIRE(backend_.current_khz(cpu) == khz,
               "scaling_cur_freq did not confirm the frequency change");
}

void PlatformController::pin_all(std::span<const std::size_t> rate_idx_per_core) {
  DVFS_REQUIRE(rate_idx_per_core.size() == backend_.num_cpus(),
               "one rate index per core required");
  for (std::size_t cpu = 0; cpu < rate_idx_per_core.size(); ++cpu) {
    pin(cpu, rate_idx_per_core[cpu]);
  }
}

}  // namespace dvfs::cpufreq
