#include "dvfs/svc/service.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <span>

#include "dvfs/core/task.h"
#include "dvfs/obs/prof.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::svc {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns_since(Clock::time_point origin) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           origin)
          .count());
}

/// SplitMix64 finalizer: sequential task ids must not all land on one
/// shard, so the route hash has to mix low bits into high entropy.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::size_t kDrainBatch = 256;
constexpr std::size_t kStealCooldownIters = 64;
constexpr std::uint16_t kStealMaxTasks = 32;

}  // namespace

const char* to_string(TaskStatus::State s) {
  switch (s) {
    case TaskStatus::State::kQueued: return "queued";
    case TaskStatus::State::kCompleted: return "completed";
    case TaskStatus::State::kRunning: return "running";
  }
  return "?";
}

/// Everything one shard's worker thread owns. The LMC scheduler, the
/// virtual-execution state and `queue_len` are thread-confined; the
/// atomics are the published view peers and the drain coordinator read.
struct SchedulingService::Shard {
  Shard(std::size_t idx, std::size_t base, std::size_t n,
        std::vector<core::CostTable> tables, std::size_t ring_capacity,
        obs::Gauge& cost_g, obs::Gauge& len_g, obs::Gauge& occ_g,
        obs::Counter& rejected_c)
      : index(idx),
        base_core(base),
        num_cores(n),
        lmc(std::move(tables)),
        ring(ring_capacity),
        cost_gauge(cost_g),
        len_gauge(len_g),
        occupancy_gauge(occ_g),
        rejected_counter(rejected_c),
        running(n) {}

  struct Running {
    bool active = false;
    core::TaskId id = 0;
    double finish_s = 0.0;
    double begin_s = 0.0;
    std::uint64_t trace = 0;
  };

  std::size_t index;
  std::size_t base_core;
  std::size_t num_cores;
  core::LmcScheduler lmc;
  MpscRing<Msg> ring;
  obs::Gauge& cost_gauge;
  obs::Gauge& len_gauge;
  obs::Gauge& occupancy_gauge;
  /// Ring-full rejections on this shard — the per-shard breakdown the
  /// health engine and /metrics see (the aggregate only says "someone
  /// is overloaded"; a single hot shard says "resharding would help").
  obs::Counter& rejected_counter;
  std::thread thread;
  obs::RecorderChannel* channel = nullptr;

  // Worker-confined state.
  std::size_t queue_len = 0;
  std::vector<Running> running;
  std::uint64_t idle_iters = 0;

  // Published / drain-protocol state.
  std::atomic<double> published_cost{0.0};
  std::atomic<std::uint64_t> published_len{0};
  /// Messages ever admitted to this ring. Incremented *before* the push
  /// (decremented again on a full ring), so `enqueued == processed` with
  /// an empty ring proves no message is in flight anywhere.
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> processed{0};
  /// Steal requests this shard has posted that the rich shard has not
  /// finished serving. Raised before the request message exists, lowered
  /// only after every forwarded task is enqueued at its destination.
  std::atomic<std::uint64_t> steal_pending{0};
  std::atomic<bool> saw_draining{false};
};

SchedulingService::SchedulingService(core::EnergyModel model,
                                     core::CostParams params,
                                     ServiceOptions options)
    : model_(std::move(model)),
      params_(params),
      options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::Registry::global()),
      traces_(options.status_capacity),
      submitted_(registry_->counter("svc.submitted")),
      rejected_(registry_->counter("svc.rejected")),
      placed_(registry_->counter("svc.placed")),
      completed_(registry_->counter("svc.completed")),
      stolen_(registry_->counter("svc.stolen_tasks")),
      steal_requests_(registry_->counter("svc.steal.requests")),
      status_evicted_(registry_->counter("svc.status.evicted")),
      admission_latency_us_(
          registry_->histogram("svc.admission.latency_us")),
      batch_size_(registry_->histogram("svc.admission.batch")),
      queue_wait_us_(registry_->histogram("sim.task.queue_wait_us")),
      admission_exemplars_(exemplars_.series("svc.admission.latency_us")),
      queue_wait_exemplars_(exemplars_.series("sim.task.queue_wait_us")) {
  DVFS_REQUIRE(options_.shards >= 1, "service needs at least one shard");
  DVFS_REQUIRE(options_.cores >= options_.shards,
               "service needs at least one core per shard");
  DVFS_REQUIRE(options_.ring_capacity > 0,
               "admission ring capacity must be positive");
  registry_->gauge("svc.shards")
      .set(static_cast<double>(options_.shards));
  registry_->gauge("svc.cores").set(static_cast<double>(options_.cores));
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    const std::size_t base = options_.cores * i / options_.shards;
    const std::size_t end = options_.cores * (i + 1) / options_.shards;
    const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
    shards_.push_back(std::make_unique<Shard>(
        i, base, end - base,
        std::vector<core::CostTable>(end - base,
                                     core::CostTable(model_, params_)),
        options_.ring_capacity,
        registry_->gauge("svc.shard.queue_cost" + label),
        registry_->gauge("svc.shard.queue_len" + label),
        registry_->gauge("svc.ring.occupancy" + label),
        registry_->counter("svc.submit.rejected" + label)));
    status_.push_back(std::make_unique<StatusStripe>());
  }
}

SchedulingService::~SchedulingService() { drain(); }

void SchedulingService::set_recorder(obs::Recorder* recorder) {
  DVFS_REQUIRE(phase_.load(std::memory_order_acquire) == Phase::kIdle,
               "attach the recorder before start()");
  recorder_ = recorder;
}

void SchedulingService::start() {
  Phase expected = Phase::kIdle;
  DVFS_REQUIRE(phase_.compare_exchange_strong(expected, Phase::kRunning),
               "service already started");
  start_time_ = Clock::now();
  if (recorder_ != nullptr) {
    DVFS_REQUIRE(recorder_->num_channels() >= shards_.size(),
                 "recorder needs one channel per shard");
    for (auto& s : shards_) {
      s->channel = &recorder_->channel(s->index);
      obs::dfr::Event begin;
      begin.type = static_cast<std::uint8_t>(obs::dfr::EventType::kRunBegin);
      begin.core = static_cast<std::uint16_t>(s->num_cores);
      s->channel->record(begin);
      obs::dfr::Event params;
      params.type = static_cast<std::uint8_t>(obs::dfr::EventType::kParams);
      params.aux =
          static_cast<std::uint16_t>(obs::dfr::PolicyKind::kLmc);
      params.core = static_cast<std::uint16_t>(s->num_cores);
      params.f0 = params_.re;
      params.f1 = params_.rt;
      s->channel->record(params);
    }
  }
  for (auto& s : shards_) {
    Shard* shard = s.get();
    shard->thread = std::thread([this, shard] { worker(*shard); });
  }
}

std::size_t SchedulingService::route(core::TaskId id, std::size_t shards) {
  DVFS_REQUIRE(shards > 0, "route needs at least one shard");
  return static_cast<std::size_t>(mix64(id) % shards);
}

SchedulingService::Ticket SchedulingService::submit(core::TaskId id,
                                                    Cycles cycles) {
  const auto shard_idx =
      static_cast<std::uint16_t>(route(id, shards_.size()));
  // The in-flight count lets drain() wait out every submitter that
  // passed the phase gate before the flip — no accepted ticket can land
  // in a ring the drain no longer watches.
  inflight_submits_.fetch_add(1, std::memory_order_seq_cst);
  if (phase_.load(std::memory_order_seq_cst) != Phase::kRunning) {
    inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    rejected_.inc();
    return {false, shard_idx};
  }
  Shard& shard = *shards_[shard_idx];
  Msg msg;
  msg.kind = Msg::Kind::kSubmit;
  msg.id = id;
  msg.cycles = cycles;
  msg.recv_ns = now_ns_since(start_time_);
  // Trace ids come from a mixed sequence so they look (and dedupe) like
  // real distributed-tracing ids while staying deterministic per run.
  msg.trace = mix64(trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  if (msg.trace == 0) msg.trace = 1;
  msg.enqueue_ns = now_ns_since(start_time_);
  shard.enqueued.fetch_add(1, std::memory_order_seq_cst);
  const bool ok = shard.ring.try_push(msg);
  if (!ok) {
    shard.enqueued.fetch_sub(1, std::memory_order_seq_cst);
    rejected_.inc();
    shard.rejected_counter.inc();
  } else {
    submitted_.inc();
  }
  inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
  return {ok, shard_idx, ok ? msg.trace : 0};
}

void SchedulingService::drain() {
  Phase expected = Phase::kRunning;
  if (!phase_.compare_exchange_strong(expected, Phase::kDraining,
                                      std::memory_order_seq_cst)) {
    if (expected == Phase::kIdle) {
      phase_.store(Phase::kStopped, std::memory_order_seq_cst);
    }
    return;  // never started, already draining, or already stopped
  }
  // 1. Wait out submitters that passed the admission gate pre-flip.
  while (inflight_submits_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  // 2. Wait until every worker has observed the drain phase — after
  //    that, no shard issues a *new* steal request, so the message
  //    population can only shrink.
  for (auto& s : shards_) {
    while (!s->saw_draining.load(std::memory_order_seq_cst)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  // 3. Quiescence: every ring empty, every admitted message handled,
  //    every steal fully served (pending counters are raised before the
  //    request exists and lowered after its replies are enqueued, so
  //    zero everywhere + empty rings = nothing in flight).
  for (;;) {
    bool quiet = true;
    for (auto& s : shards_) {
      if (!s->ring.empty() || s->steal_pending.load(
                                  std::memory_order_seq_cst) != 0 ||
          s->enqueued.load(std::memory_order_seq_cst) !=
              s->processed.load(std::memory_order_seq_cst)) {
        quiet = false;
        break;
      }
    }
    if (quiet) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  phase_.store(Phase::kStopped, std::memory_order_seq_cst);
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

std::optional<TaskStatus> SchedulingService::status(core::TaskId id) const {
  const StatusStripe& stripe = *status_[route(id, status_.size())];
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.by_id.find(id);
  if (it == stripe.by_id.end()) return std::nullopt;
  return it->second;
}

void SchedulingService::status_upsert(core::TaskId id,
                                      const TaskStatus& st) {
  StatusStripe& stripe = *status_[route(id, status_.size())];
  const std::size_t cap =
      std::max<std::size_t>(1, options_.status_capacity / status_.size());
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto [it, inserted] = stripe.by_id.insert_or_assign(id, st);
  (void)it;
  if (!inserted) return;
  stripe.fifo.push_back(id);
  if (stripe.by_id.size() > cap &&
      stripe.evict_cursor < stripe.fifo.size()) {
    stripe.by_id.erase(stripe.fifo[stripe.evict_cursor++]);
    status_evicted_.inc();
    if (stripe.evict_cursor > (std::size_t{1} << 16) &&
        stripe.evict_cursor * 2 > stripe.fifo.size()) {
      // Compact the eviction log so it does not grow without bound.
      stripe.fifo.erase(stripe.fifo.begin(),
                        stripe.fifo.begin() +
                            static_cast<std::ptrdiff_t>(stripe.evict_cursor));
      stripe.evict_cursor = 0;
    }
  }
}

double SchedulingService::now_s() const {
  return std::chrono::duration<double>(Clock::now() - start_time_).count();
}

void SchedulingService::worker(Shard& shard) {
  // Opt into CPU profiling: the guard registers this thread's stack and
  // CPU clock with the profiler pool (a no-op when no profiler ever
  // runs), and the shard marker attributes every sample taken here.
  const obs::prof::ThreadGuard prof_guard = obs::prof::profile_current_thread();
  obs::prof::set_shard(static_cast<std::uint16_t>(shard.index));
  std::vector<Msg> batch(std::max<std::size_t>(
      kDrainBatch, std::min<std::size_t>(options_.max_batch, 4096)));
  for (;;) {
    obs::prof::set_stage(obs::prof::Stage::kDrain);
    const Phase phase = phase_.load(std::memory_order_seq_cst);
    if (phase != Phase::kRunning) {
      shard.saw_draining.store(true, std::memory_order_seq_cst);
    }
    // A deliberately starved shard (max_batch = 0) still flushes during
    // drain — drain means "finish the admitted work", not "freeze".
    std::size_t budget = options_.max_batch;
    if (phase != Phase::kRunning) {
      budget = std::max<std::size_t>(budget, kDrainBatch);
    }
    // Sample ring occupancy before popping — the pre-drain depth is what
    // warns of a near-full ring while 503s are still avoidable.
    shard.occupancy_gauge.set(static_cast<double>(shard.ring.size()));
    const std::size_t n =
        budget == 0
            ? 0
            : shard.ring.pop_batch(std::span<Msg>(
                  batch.data(), std::min(budget, batch.size())));
    if (n > 0) {
      // One timestamp per batch: every message in it left the ring at
      // this instant as far as the trace is concerned.
      const std::uint64_t dequeue_ns = now_ns_since(start_time_);
      for (std::size_t i = 0; i < n; ++i) {
        const Msg& msg = batch[i];
        if (msg.kind == Msg::Kind::kSubmit) {
          handle_submit(shard, msg, dequeue_ns);
        } else {
          serve_steal(shard, msg);
        }
      }
      shard.processed.fetch_add(n, std::memory_order_seq_cst);
      batch_size_.observe(n);
      publish_gauges(shard);
      shard.idle_iters = 0;
      continue;
    }
    if (options_.time_scale > 0.0) virtual_execute(shard);
    if (phase == Phase::kStopped) break;
    obs::prof::set_stage(obs::prof::Stage::kIdle);
    ++shard.idle_iters;
    if (phase == Phase::kRunning &&
        shard.idle_iters % kStealCooldownIters == 0) {
      maybe_request_steal(shard);
    }
    if (shard.idle_iters > 1024) {
      // Long idle: stop burning the core; admission latency pays at most
      // this sleep, far under the health rule's threshold.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      std::this_thread::yield();
    }
  }
  publish_gauges(shard);
}

void SchedulingService::handle_submit(Shard& shard, const Msg& msg,
                                      std::uint64_t dequeue_ns) {
  const obs::prof::ScopedStage prof_stage(obs::prof::Stage::kPlacement);
  const core::LmcScheduler::Placement placement =
      shard.lmc.place_non_interactive(msg.cycles, msg.id);
  ++shard.queue_len;
  placed_.inc();
  if (msg.stolen) stolen_.inc();
  const std::uint64_t place_ns = now_ns_since(start_time_);
  const double place_s = static_cast<double>(place_ns) / 1e9;
  const std::uint64_t latency_us = (place_ns - msg.enqueue_ns) / 1000;
  admission_latency_us_.observe(latency_us);
  admission_exemplars_.observe(latency_us, msg.trace, place_s);

  TaskStatus st;
  st.state = TaskStatus::State::kQueued;
  st.shard = static_cast<std::uint16_t>(shard.index);
  st.core =
      static_cast<std::uint16_t>(shard.base_core + placement.core);
  st.rate_idx = static_cast<std::uint16_t>(
      shard.lmc.queue(placement.core).rate_of(placement.ref));
  st.stolen = msg.stolen;
  st.cycles = msg.cycles;
  st.marginal = placement.marginal;
  st.trace = msg.trace;
  st.placed_s = place_s;
  status_upsert(msg.id, st);

  const double enqueue_s = static_cast<double>(msg.enqueue_ns) / 1e9;
  const double dequeue_s = static_cast<double>(dequeue_ns) / 1e9;
  const double recv_s = static_cast<double>(msg.recv_ns) / 1e9;
  const auto depth = static_cast<std::uint32_t>(
      shard.lmc.queue(placement.core).size());
  const auto shard_u32 = static_cast<std::uint32_t>(shard.index);

  using obs::reqtrace::Stage;
  using obs::reqtrace::Step;
  if (msg.stolen) {
    // The ingress step was appended on the first hop; this hop starts at
    // the steal forward.
    traces_.append(
        msg.id, msg.trace,
        {Step{Stage::kStealHop, enqueue_s, msg.from_shard, shard_u32},
         Step{Stage::kRingEnqueue, enqueue_s, shard_u32, 0},
         Step{Stage::kRingDequeue, dequeue_s, shard_u32, 0},
         Step{Stage::kPlacement, place_s, st.core, st.rate_idx},
         Step{Stage::kShardQueue, place_s, st.core, depth}});
  } else {
    traces_.append(
        msg.id, msg.trace,
        {Step{Stage::kSubmitRecv, recv_s, 0, 0},
         Step{Stage::kRingEnqueue, enqueue_s, shard_u32, 0},
         Step{Stage::kRingDequeue, dequeue_s, shard_u32, 0},
         Step{Stage::kPlacement, place_s, st.core, st.rate_idx},
         Step{Stage::kShardQueue, place_s, st.core, depth}});
  }

  if (shard.channel != nullptr) {
    using obs::dfr::Event;
    using obs::dfr::EventType;
    const auto span = [&](EventType type, double time_s) {
      Event e;
      e.type = static_cast<std::uint8_t>(type);
      e.time_s = time_s;
      e.task = msg.id;
      e.u0 = msg.trace;
      return e;
    };
    if (!msg.stolen) {
      shard.channel->record(span(EventType::kSubmitRecv, recv_s));
    } else {
      Event hop = span(EventType::kStealHop, enqueue_s);
      hop.aux = msg.from_shard;
      hop.core = static_cast<std::uint16_t>(shard.index);
      shard.channel->record(hop);
    }
    Event enq = span(EventType::kRingEnqueue, enqueue_s);
    enq.core = static_cast<std::uint16_t>(shard.index);
    shard.channel->record(enq);
    Event deq = span(EventType::kRingDequeue, dequeue_s);
    deq.core = static_cast<std::uint16_t>(shard.index);
    shard.channel->record(deq);

    Event arrival;
    arrival.type = static_cast<std::uint8_t>(EventType::kTaskArrival);
    arrival.time_s = enqueue_s;
    arrival.task = msg.id;
    arrival.u0 = msg.cycles;
    arrival.aux = static_cast<std::uint16_t>(core::TaskClass::kBatch);
    arrival.f0 = kNoDeadline;
    shard.channel->record(arrival);
    Event place;
    place.type = static_cast<std::uint8_t>(EventType::kPlacement);
    place.time_s = place_s;
    place.task = msg.id;
    place.core = st.core;
    place.rate_idx = st.rate_idx;
    place.aux =
        static_cast<std::uint16_t>(obs::dfr::DecisionScope::kNonInteractive);
    place.flags = msg.stolen ? obs::dfr::kFlagStolen : 0;
    place.u0 = msg.cycles;
    place.f0 = placement.marginal;
    place.f1 = shard.lmc.total_queue_cost();
    shard.channel->record(place);

    Event shardq = span(EventType::kShardQueue, place_s);
    shardq.core = st.core;
    shardq.rate_idx = st.rate_idx;
    shardq.u0 = depth;  // depth, not trace id — documented in the format
    shard.channel->record(shardq);
  }
}

void SchedulingService::serve_steal(Shard& shard, const Msg& msg) {
  const obs::prof::ScopedStage prof_stage(obs::prof::Stage::kSteal);
  Shard& requester = *shards_[msg.from_shard];
  std::uint16_t given = 0;
  while (given < msg.steal_want) {
    // Give away from the longest local queue; stop when the shard is
    // down to its own fair share.
    std::size_t victim = 0;
    std::size_t victim_len = 0;
    for (std::size_t c = 0; c < shard.num_cores; ++c) {
      const std::size_t len = shard.lmc.queue(c).size();
      if (len > victim_len) {
        victim = c;
        victim_len = len;
      }
    }
    if (victim_len <= 1) break;  // keep at least the head per queue
    const auto dispatched = shard.lmc.pop_next(victim);
    if (!dispatched.has_value()) break;
    --shard.queue_len;
    Msg forward;
    forward.kind = Msg::Kind::kSubmit;
    forward.stolen = true;
    forward.from_shard = static_cast<std::uint16_t>(shard.index);
    forward.id = dispatched->id;
    forward.cycles = dispatched->cycles;
    forward.enqueue_ns = now_ns_since(start_time_);
    // The trace id lives in the status entry written at first placement
    // (0 if it was already evicted: the hop still traces, unlinked).
    if (const auto st = status(dispatched->id); st.has_value()) {
      forward.trace = st->trace;
    }
    requester.enqueued.fetch_add(1, std::memory_order_seq_cst);
    // The requester's worker is live and consuming, so this push can
    // only stall while its ring is momentarily full.
    while (!requester.ring.try_push(forward)) {
      std::this_thread::yield();
    }
    ++given;
  }
  publish_gauges(shard);
  // Serving complete (even when nothing could be given): the requester
  // may ask again.
  requester.steal_pending.fetch_sub(1, std::memory_order_seq_cst);
}

void SchedulingService::maybe_request_steal(Shard& shard) {
  if (options_.steal_ratio <= 0.0 || shards_.size() < 2) return;
  if (shard.steal_pending.load(std::memory_order_seq_cst) != 0) return;
  const double my_cost =
      shard.published_cost.load(std::memory_order_relaxed);
  std::size_t rich = shard.index;
  double rich_cost = 0.0;
  std::uint64_t rich_len = 0;
  for (const auto& other : shards_) {
    if (other->index == shard.index) continue;
    const double cost =
        other->published_cost.load(std::memory_order_relaxed);
    if (cost > rich_cost) {
      rich = other->index;
      rich_cost = cost;
      rich_len = other->published_len.load(std::memory_order_relaxed);
    }
  }
  if (rich == shard.index) return;
  if (rich_len < options_.steal_min_queue) return;
  if (rich_cost <= options_.steal_ratio * std::max(my_cost, 1e-12)) return;
  const std::uint64_t my_len =
      shard.published_len.load(std::memory_order_relaxed);
  const std::uint64_t gap = rich_len > my_len ? rich_len - my_len : 0;
  if (gap < 2) return;
  Msg request;
  request.kind = Msg::Kind::kStealRequest;
  request.from_shard = static_cast<std::uint16_t>(shard.index);
  request.steal_want = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(gap / 2, kStealMaxTasks));
  Shard& target = *shards_[rich];
  shard.steal_pending.fetch_add(1, std::memory_order_seq_cst);
  target.enqueued.fetch_add(1, std::memory_order_seq_cst);
  if (!target.ring.try_push(request)) {
    // Rich shard's ring is full — it has plenty to do; try again later.
    target.enqueued.fetch_sub(1, std::memory_order_seq_cst);
    shard.steal_pending.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
  steal_requests_.inc();
}

void SchedulingService::virtual_execute(Shard& shard) {
  const obs::prof::ScopedStage prof_stage(obs::prof::Stage::kExec);
  using obs::reqtrace::Stage;
  using obs::reqtrace::Step;
  const double now = now_s();
  bool changed = false;
  for (std::size_t c = 0; c < shard.num_cores; ++c) {
    const auto core = static_cast<std::uint16_t>(shard.base_core + c);
    Shard::Running& run = shard.running[c];
    if (run.active && now >= run.finish_s) {
      run.active = false;
      completed_.inc();
      {
        StatusStripe& stripe = *status_[route(run.id, status_.size())];
        std::lock_guard<std::mutex> lock(stripe.mu);
        const auto it = stripe.by_id.find(run.id);
        if (it != stripe.by_id.end()) {
          it->second.state = TaskStatus::State::kCompleted;
        }
      }
      traces_.append(run.id, run.trace,
                     {Step{Stage::kExecEnd, now, core, 0}});
      if (shard.channel != nullptr) {
        obs::dfr::Event end;
        end.type = static_cast<std::uint8_t>(obs::dfr::EventType::kExecEnd);
        end.time_s = now;
        end.task = run.id;
        end.core = core;
        end.u0 = run.trace;
        end.f0 = run.begin_s;
        shard.channel->record(end);
      }
    }
    if (!run.active && !shard.lmc.queue(c).empty()) {
      const auto next = shard.lmc.pop_next(c);
      --shard.queue_len;
      changed = true;
      run.active = true;
      run.id = next->id;
      run.begin_s = now;
      run.trace = 0;
      run.finish_s = now + model_.task_time(next->cycles, next->rate_idx) *
                               options_.time_scale;
      {
        // The placement wrote trace id and placement instant into the
        // status entry; dispatching is where queue wait becomes known.
        StatusStripe& stripe = *status_[route(next->id, status_.size())];
        std::lock_guard<std::mutex> lock(stripe.mu);
        const auto it = stripe.by_id.find(next->id);
        if (it != stripe.by_id.end()) {
          it->second.state = TaskStatus::State::kRunning;
          run.trace = it->second.trace;
          const double waited_s = now - it->second.placed_s;
          const auto waited_us = static_cast<std::uint64_t>(
              std::max(0.0, waited_s) * 1e6);
          queue_wait_us_.observe(waited_us);
          queue_wait_exemplars_.observe(waited_us, run.trace, now);
        }
      }
      traces_.append(next->id, run.trace,
                     {Step{Stage::kExecBegin, now, core, 0}});
      if (shard.channel != nullptr) {
        obs::dfr::Event begin;
        begin.type =
            static_cast<std::uint8_t>(obs::dfr::EventType::kExecBegin);
        begin.time_s = now;
        begin.task = next->id;
        begin.core = core;
        begin.u0 = run.trace;
        shard.channel->record(begin);
      }
    }
  }
  if (changed) publish_gauges(shard);
}

void SchedulingService::publish_gauges(Shard& shard) {
  const Money cost = shard.lmc.total_queue_cost();
  shard.published_cost.store(cost, std::memory_order_relaxed);
  shard.published_len.store(shard.queue_len, std::memory_order_relaxed);
  shard.cost_gauge.set(cost);
  shard.len_gauge.set(static_cast<double>(shard.queue_len));
  shard.occupancy_gauge.set(static_cast<double>(shard.ring.size()));
}

std::uint64_t SchedulingService::submitted() const {
  return submitted_.value();
}
std::uint64_t SchedulingService::rejected() const {
  return rejected_.value();
}
std::uint64_t SchedulingService::placed() const { return placed_.value(); }
std::uint64_t SchedulingService::completed() const {
  return completed_.value();
}
std::uint64_t SchedulingService::stolen() const { return stolen_.value(); }

Money SchedulingService::shard_queue_cost(std::size_t shard) const {
  DVFS_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->published_cost.load(std::memory_order_relaxed);
}

std::size_t SchedulingService::shard_queue_len(std::size_t shard) const {
  DVFS_REQUIRE(shard < shards_.size(), "shard index out of range");
  return static_cast<std::size_t>(
      shards_[shard]->published_len.load(std::memory_order_relaxed));
}

}  // namespace dvfs::svc
