#include "dvfs/svc/http.h"

#include <charconv>
#include <optional>
#include <string>

#include "dvfs/common.h"
#include "dvfs/obs/json.h"
#include "dvfs/obs/reqtrace.h"

namespace dvfs::svc {

namespace {

obs::MetricsHttpServer::Response json_response(int status, std::string body) {
  return {status, "application/json; charset=utf-8", std::move(body) + "\n"};
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return v;
}

/// One {"id":...,"cycles":...} object → submit. Throws PreconditionError
/// on schema violations (mapped to 400 by the caller).
SchedulingService::Ticket submit_one(SchedulingService& svc,
                                     const obs::Json& task) {
  DVFS_REQUIRE(task.is_object() && task.contains("id") &&
                   task.contains("cycles"),
               "task needs numeric \"id\" and \"cycles\" fields");
  const double id = task.at("id").as_double();
  const double cycles = task.at("cycles").as_double();
  DVFS_REQUIRE(id >= 0.0 && cycles > 0.0, "id must be >= 0, cycles > 0");
  return svc.submit(static_cast<core::TaskId>(id),
                    static_cast<Cycles>(cycles));
}

}  // namespace

void register_service_routes(obs::MetricsHttpServer& server,
                             SchedulingService& svc) {
  SchedulingService* s = &svc;

  server.add_route(
      "POST", "/submit",
      [s](const obs::MetricsHttpServer::Request& req) {
        obs::Json doc;
        try {
          doc = obs::Json::parse(req.body);
        } catch (const std::exception& e) {
          return json_response(400, std::string("{\"error\":\"bad JSON: ") +
                                        e.what() + "\"}");
        }
        std::uint64_t accepted = 0;
        std::uint64_t rejected = 0;
        try {
          if (doc.contains("tasks")) {
            for (const obs::Json& t : doc.at("tasks").as_array()) {
              submit_one(*s, t).accepted ? ++accepted : ++rejected;
            }
          } else {
            submit_one(*s, doc).accepted ? ++accepted : ++rejected;
          }
        } catch (const std::exception& e) {
          return json_response(400, std::string("{\"error\":\"") + e.what() +
                                        "\"}");
        }
        // All-rejected = pure backpressure (full rings or draining):
        // 503 so callers and the smoke test see the overload distinctly.
        const int status = (accepted == 0 && rejected > 0) ? 503 : 202;
        return json_response(
            status, "{\"accepted\":" + std::to_string(accepted) +
                        ",\"rejected\":" + std::to_string(rejected) + "}");
      });

  server.add_prefix_route(
      "GET", "/schedule/",
      [s](const obs::MetricsHttpServer::Request& req) {
        const std::string tail =
            req.path.substr(std::string("/schedule/").size());
        const auto id = parse_u64(tail);
        if (!id.has_value()) {
          return json_response(400, "{\"error\":\"bad task id\"}");
        }
        const std::optional<TaskStatus> st = s->status(*id);
        if (!st.has_value()) {
          return json_response(404, "{\"error\":\"unknown task\"}");
        }
        obs::Json::Object out;
        out["id"] = obs::Json(static_cast<double>(*id));
        out["state"] = obs::Json(to_string(st->state));
        out["shard"] = obs::Json(static_cast<double>(st->shard));
        out["core"] = obs::Json(static_cast<double>(st->core));
        out["rate_idx"] = obs::Json(static_cast<double>(st->rate_idx));
        out["stolen"] = obs::Json(st->stolen);
        out["cycles"] = obs::Json(static_cast<double>(st->cycles));
        out["marginal_cost"] = obs::Json(st->marginal);
        out["trace_id"] = obs::Json(obs::reqtrace::trace_id_hex(st->trace));
        return json_response(200, obs::Json(std::move(out)).dump(-1));
      });

  server.add_prefix_route(
      "GET", "/tasks/",
      [s](const obs::MetricsHttpServer::Request& req) {
        // /tasks/{id}/trace — anything else under /tasks/ is a 404.
        const std::string prefix = "/tasks/";
        const std::string suffix = "/trace";
        if (req.path.size() <= prefix.size() + suffix.size() ||
            req.path.compare(req.path.size() - suffix.size(), suffix.size(),
                             suffix) != 0) {
          return json_response(404, "{\"error\":\"not found\"}");
        }
        const std::string middle = req.path.substr(
            prefix.size(), req.path.size() - prefix.size() - suffix.size());
        const auto id = parse_u64(middle);
        if (!id.has_value()) {
          return json_response(400, "{\"error\":\"bad task id\"}");
        }
        const auto timeline = s->traces().get(*id);
        if (!timeline.has_value()) {
          return json_response(404, "{\"error\":\"unknown task\"}");
        }
        return json_response(
            200, obs::reqtrace::timeline_json(*timeline).dump(-1));
      });
}

}  // namespace dvfs::svc
