#include "dvfs/obs/prof.h"

#include <dlfcn.h>
#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <cxxabi.h>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <ucontext.h>

#include "dvfs/common.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/obs/promtext.h"
#include "dvfs/obs/recorder.h"

// Older glibc keeps the SIGEV_THREAD_ID member behind an internal name.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace dvfs::obs::prof {

namespace detail {
thread_local std::uint8_t tls_stage = 0;
thread_local std::uint16_t tls_shard = kNoShard;
}  // namespace detail

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kNone: return "none";
    case Stage::kIdle: return "idle";
    case Stage::kDrain: return "drain";
    case Stage::kPlacement: return "placement";
    case Stage::kExec: return "exec";
    case Stage::kSteal: return "steal";
    case Stage::kHttp: return "http";
  }
  return "?";
}

// ------------------------------------------------------ thread pool

namespace {

constexpr std::size_t kMaxThreads = 64;
constexpr std::size_t kRingSlots = 512;  // power of two
static_assert((kRingSlots & (kRingSlots - 1)) == 0);

/// One profiled thread's slot: identity, timer, stack bounds, and the
/// SPSC sample ring the signal handler produces into. The pool is
/// process-static so a ThreadGuard can safely outlive any CpuProfiler.
struct ThreadState {
  enum : int { kFree = 0, kActive = 1, kReleased = 2 };
  std::atomic<int> state{kFree};
  pid_t tid = 0;
  clockid_t cpu_clock{};
  timer_t timer{};
  bool has_timer = false;
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  // SPSC ring: the signal handler (always on this thread) produces, the
  // collector consumes. Same publish protocol as RecorderChannel.
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t dropped_consumed = 0;  ///< collector-owned watermark
  Sample slots[kRingSlots];
};

ThreadState g_pool[kMaxThreads];

/// Guards slot claim/release, timer arm/disarm, and the active-profiler
/// handoff. Never taken by the signal handler.
std::mutex g_mu;
std::atomic<bool> g_sampling{false};
std::atomic<std::int64_t> g_epoch_ns{0};
int g_hz = 100;  // under g_mu

thread_local ThreadState* t_slot = nullptr;

std::int64_t mono_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}

/// Async-signal-safe producer push: tail-drop on full with exact count.
bool ring_push(ThreadState& st, const Sample& s) noexcept {
  const std::uint64_t t = st.tail.load(std::memory_order_relaxed);
  const std::uint64_t h = st.head.load(std::memory_order_acquire);
  if (t - h == kRingSlots) {
    st.dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  st.slots[static_cast<std::size_t>(t) & (kRingSlots - 1)] = s;
  st.tail.store(t + 1, std::memory_order_release);
  return true;
}

void ring_drain(ThreadState& st, std::vector<Sample>& out) {
  const std::uint64_t h = st.head.load(std::memory_order_relaxed);
  const std::uint64_t t = st.tail.load(std::memory_order_acquire);
  for (std::uint64_t i = h; i != t; ++i) {
    out.push_back(st.slots[static_cast<std::size_t>(i) & (kRingSlots - 1)]);
  }
  st.head.store(t, std::memory_order_release);
}

/// Frame-pointer walk from the interrupted context. Every dereference is
/// bounds-checked against the thread's stack, so a frame-pointer-less
/// callee degrades to a short stack, never a fault. Leaf first.
std::uint8_t walk_stack(const void* ucv, const ThreadState& st,
                        std::uint64_t* out) noexcept {
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucv);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(ucv);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)ucv;
#endif
  std::size_t n = 0;
  if (pc != 0) out[n++] = pc;
  while (n < Sample::kMaxFrames) {
    if (fp < st.stack_lo || fp + 2 * sizeof(std::uintptr_t) > st.stack_hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret == 0) break;
    out[n++] = ret;
    if (next <= fp) break;  // frames must move toward the stack base
    fp = next;
  }
  return static_cast<std::uint8_t>(n);
}

extern "C" void dvfs_sigprof_handler(int, siginfo_t*, void* ucv) {
  ThreadState* st = t_slot;
  if (st == nullptr || !g_sampling.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  Sample s;
  s.t_s = static_cast<double>(mono_ns() -
                              g_epoch_ns.load(std::memory_order_relaxed)) /
          1e9;
  s.tid = static_cast<std::uint32_t>(st->tid);
  s.shard = detail::tls_shard;
  s.stage = detail::tls_stage;
  s.num_frames = walk_stack(ucv, *st, s.frames);
  ring_push(*st, s);
  errno = saved_errno;
}

void install_handler_once() {
  static const bool installed = [] {
    struct sigaction sa{};
    sa.sa_sigaction = dvfs_sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    ::sigemptyset(&sa.sa_mask);
    return ::sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  DVFS_REQUIRE(installed, "cannot install SIGPROF handler");
}

/// Creates + arms the slot's per-thread timer. The CPU clock id was
/// captured at registration, so this works from any thread (start()
/// arms threads that registered before the profiler existed). Best
/// effort: a kernel without per-thread timers just yields no samples.
bool arm_timer(ThreadState& st, int hz) {
  if (st.has_timer) return true;
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = st.tid;
  if (::timer_create(st.cpu_clock, &sev, &st.timer) != 0) return false;
  const long period_ns = 1000000000L / std::max(1, hz);
  itimerspec spec{};
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (::timer_settime(st.timer, 0, &spec, nullptr) != 0) {
    ::timer_delete(st.timer);
    return false;
  }
  st.has_timer = true;
  return true;
}

void disarm_timer(ThreadState& st) {
  if (!st.has_timer) return;
  ::timer_delete(st.timer);
  st.has_timer = false;
}

void reset_slot(ThreadState& st) {
  st.head.store(0, std::memory_order_relaxed);
  st.tail.store(0, std::memory_order_relaxed);
  st.dropped.store(0, std::memory_order_relaxed);
  st.dropped_consumed = 0;
  st.has_timer = false;
}

}  // namespace

// ---------------------------------------------------- registration

ThreadGuard profile_current_thread() {
  if (t_slot != nullptr) return ThreadGuard{};  // already registered
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState* claimed = nullptr;
  // Prefer never-used slots; fall back to released ones (whose leftover
  // samples the collector has had every chance to drain).
  for (const int takeable : {ThreadState::kFree, ThreadState::kReleased}) {
    for (auto& st : g_pool) {
      if (st.state.load(std::memory_order_relaxed) == takeable) {
        claimed = &st;
        break;
      }
    }
    if (claimed != nullptr) break;
  }
  if (claimed == nullptr) return ThreadGuard{};  // pool exhausted
  reset_slot(*claimed);
  claimed->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  if (::pthread_getcpuclockid(::pthread_self(), &claimed->cpu_clock) != 0) {
    return ThreadGuard{};
  }
  pthread_attr_t attr;
  if (::pthread_getattr_np(::pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    std::size_t stack_size = 0;
    if (::pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      claimed->stack_lo = reinterpret_cast<std::uintptr_t>(stack_addr);
      claimed->stack_hi = claimed->stack_lo + stack_size;
    }
    ::pthread_attr_destroy(&attr);
  }
  claimed->state.store(ThreadState::kActive, std::memory_order_relaxed);
  t_slot = claimed;  // publish TLS before the first timer tick can land
  if (g_sampling.load(std::memory_order_relaxed)) {
    arm_timer(*claimed, g_hz);
  }
  return ThreadGuard{claimed};
}

ThreadGuard& ThreadGuard::operator=(ThreadGuard&& other) noexcept {
  if (this != &other) {
    release();
    slot_ = other.slot_;
    other.slot_ = nullptr;
  }
  return *this;
}

void ThreadGuard::release() noexcept {
  if (slot_ == nullptr) return;
  auto* st = static_cast<ThreadState*>(slot_);
  // TLS first: any SIGPROF after this store (same thread) sees null and
  // bails, so the slot can be handed back safely.
  t_slot = nullptr;
  std::lock_guard<std::mutex> lock(g_mu);
  disarm_timer(*st);
  st->state.store(ThreadState::kReleased, std::memory_order_relaxed);
  slot_ = nullptr;
}

bool inject_sample(const Sample& s) {
  ThreadState* st = t_slot;
  DVFS_REQUIRE(st != nullptr,
               "inject_sample needs a thread registered via "
               "profile_current_thread()");
  return ring_push(*st, s);
}

// ------------------------------------------------------- CpuProfiler

struct CpuProfiler::Impl {
  explicit Impl(const Options& o)
      : registry(o.registry != nullptr ? o.registry : &Registry::global()),
        samples_counter(registry->counter("obs.prof.samples")),
        dropped_counter(registry->counter("obs.prof.dropped")) {}

  Registry* registry;
  Counter& samples_counter;
  Counter& dropped_counter;

  std::atomic<bool> running{false};
  std::thread collector;
  std::atomic<std::int64_t> epoch_ns{mono_ns()};

  /// Serializes collection passes: the collector thread, collect_now(),
  /// and the final pass in stop() are each "the consumer".
  std::mutex collect_mu;

  mutable std::mutex window_mu;
  std::deque<StackSample> window;
  std::uint64_t collected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t evicted = 0;
};

CpuProfiler::CpuProfiler() : CpuProfiler(Options{}) {}

CpuProfiler::CpuProfiler(Options options)
    : impl_(std::make_unique<Impl>(options)), options_(options) {
  DVFS_REQUIRE(options_.hz >= 1 && options_.hz <= 10000,
               "profiler rate must be in [1, 10000] Hz");
  DVFS_REQUIRE(options_.window_capacity >= 1,
               "profiler window needs at least one slot");
}

CpuProfiler::~CpuProfiler() { stop(); }

bool CpuProfiler::running() const noexcept {
  return impl_->running.load(std::memory_order_relaxed);
}

double CpuProfiler::now_s() const noexcept {
  return static_cast<double>(
             mono_ns() - impl_->epoch_ns.load(std::memory_order_relaxed)) /
         1e9;
}

namespace {
/// The one running profiler's Impl (under g_mu); the handler never needs
/// it — only the start()/stop() exclusivity check does, so an opaque
/// identity is all that is required.
const void* g_active = nullptr;
}  // namespace

void CpuProfiler::start() {
  DVFS_REQUIRE(!impl_->running.load(std::memory_order_relaxed),
               "profiler already running");
  {
    std::lock_guard<std::mutex> lock(g_mu);
    DVFS_REQUIRE(g_active == nullptr,
                 "another CPU profiler is already running");
    install_handler_once();
    g_active = impl_.get();
    g_hz = options_.hz;
    const std::int64_t now = mono_ns();
    g_epoch_ns.store(now, std::memory_order_relaxed);
    impl_->epoch_ns.store(now, std::memory_order_relaxed);
    g_sampling.store(true, std::memory_order_release);
    for (auto& st : g_pool) {
      if (st.state.load(std::memory_order_relaxed) == ThreadState::kActive) {
        arm_timer(st, options_.hz);
      }
    }
  }
  {
    // A fresh run gets a fresh window and fresh exact counters.
    std::lock_guard<std::mutex> lock(impl_->window_mu);
    impl_->window.clear();
    impl_->collected = 0;
    impl_->dropped = 0;
    impl_->evicted = 0;
  }
  impl_->running.store(true, std::memory_order_relaxed);
  impl_->collector = std::thread([this] {
    while (impl_->running.load(std::memory_order_relaxed)) {
      collect_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
}

void CpuProfiler::stop() {
  if (!impl_->running.exchange(false, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_sampling.store(false, std::memory_order_release);
    for (auto& st : g_pool) {
      if (st.state.load(std::memory_order_relaxed) == ThreadState::kActive) {
        disarm_timer(st);
      }
    }
    g_active = nullptr;
  }
  if (impl_->collector.joinable()) impl_->collector.join();
  collect_now();  // samples that landed before the timers died
}

void CpuProfiler::collect_now() {
  std::lock_guard<std::mutex> collect_lock(impl_->collect_mu);
  std::vector<Sample> raw;
  std::uint64_t drop_delta = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    for (auto& st : g_pool) {
      const int state = st.state.load(std::memory_order_relaxed);
      if (state == ThreadState::kFree) continue;
      ring_drain(st, raw);
      const std::uint64_t d = st.dropped.load(std::memory_order_relaxed);
      drop_delta += d - st.dropped_consumed;
      st.dropped_consumed = d;
      if (state == ThreadState::kReleased) {
        // Fully drained; the slot can serve the next thread.
        st.state.store(ThreadState::kFree, std::memory_order_relaxed);
      }
    }
  }
  if (raw.empty() && drop_delta == 0) return;

  std::vector<dfr::Event> events;
  std::lock_guard<std::mutex> lock(impl_->window_mu);
  for (const Sample& s : raw) {
    StackSample decoded;
    decoded.t_s = s.t_s;
    decoded.tid = s.tid;
    decoded.shard = s.shard;
    decoded.stage = s.stage < kNumStages ? static_cast<Stage>(s.stage)
                                         : Stage::kNone;
    const std::size_t n =
        std::min<std::size_t>(s.num_frames, Sample::kMaxFrames);
    decoded.frames.assign(s.frames, s.frames + n);
    if (options_.channel != nullptr) {
      events.clear();
      append_sample_events(decoded, events);
      for (const dfr::Event& e : events) options_.channel->record(e);
    }
    impl_->window.push_back(std::move(decoded));
    ++impl_->collected;
  }
  impl_->samples_counter.add(raw.size());
  impl_->dropped += drop_delta;
  impl_->dropped_counter.add(drop_delta);
  while (impl_->window.size() > options_.window_capacity) {
    impl_->window.pop_front();
    ++impl_->evicted;
  }
}

std::vector<StackSample> CpuProfiler::samples_since(double since_s) const {
  std::lock_guard<std::mutex> lock(impl_->window_mu);
  std::vector<StackSample> out;
  for (const StackSample& s : impl_->window) {
    if (s.t_s >= since_s) out.push_back(s);
  }
  return out;
}

std::uint64_t CpuProfiler::collected() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->window_mu);
  return impl_->collected;
}
std::uint64_t CpuProfiler::dropped() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->window_mu);
  return impl_->dropped;
}
std::uint64_t CpuProfiler::evicted() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->window_mu);
  return impl_->evicted;
}

// ---------------------------------------------------------- encoding

void append_sample_events(const StackSample& s,
                          std::vector<dfr::Event>& events) {
  const std::uint16_t core =
      s.shard == kNoShard ? std::uint16_t{0xffff} : s.shard;
  const auto frame_event = [&](std::size_t idx, std::uint64_t addr) {
    dfr::Event e;
    e.type = static_cast<std::uint8_t>(dfr::EventType::kProfSample);
    e.core = core;
    e.rate_idx = static_cast<std::uint16_t>(idx);
    e.aux = static_cast<std::uint16_t>(s.stage);
    e.time_s = s.t_s;
    e.task = s.tid;
    e.u0 = addr;
    return e;
  };
  if (s.frames.empty()) {
    // A sample with no walkable frames still counts as a sample: one
    // marker event with a null address.
    events.push_back(frame_event(0, 0));
    return;
  }
  for (std::size_t i = 0; i < s.frames.size(); ++i) {
    events.push_back(frame_event(i, s.frames[i]));
  }
}

std::vector<StackSample> samples_from_events(
    const std::vector<dfr::Event>& events) {
  std::vector<StackSample> out;
  std::uint16_t expect_idx = 0;
  bool open = false;
  for (const dfr::Event& e : events) {
    if (e.type != static_cast<std::uint8_t>(dfr::EventType::kProfSample)) {
      continue;
    }
    if (e.rate_idx == 0) {
      StackSample s;
      s.t_s = e.time_s;
      s.tid = static_cast<std::uint32_t>(e.task);
      s.shard = e.core == 0xffff ? kNoShard : e.core;
      s.stage = e.aux < kNumStages ? static_cast<Stage>(e.aux) : Stage::kNone;
      if (e.u0 != 0) s.frames.push_back(e.u0);
      out.push_back(std::move(s));
      expect_idx = 1;
      open = true;
    } else if (open && e.rate_idx == expect_idx && !out.empty()) {
      out.back().frames.push_back(e.u0);
      ++expect_idx;
    } else {
      // A recorder-ring drop tore this run; skip the orphan frames.
      open = false;
    }
  }
  return out;
}

std::vector<std::uint64_t> unique_addresses(
    const std::vector<StackSample>& samples) {
  std::vector<std::uint64_t> addrs;
  for (const StackSample& s : samples) {
    addrs.insert(addrs.end(), s.frames.begin(), s.frames.end());
  }
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
  return addrs;
}

// ------------------------------------------------------ symbolization

namespace {

std::string demangled(const char* name) {
  int status = 0;
  char* d = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && d != nullptr) {
    std::string out(d);
    std::free(d);  // NOLINT: __cxa_demangle contract
    return out;
  }
  std::free(d);  // NOLINT
  return name;
}

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string hex_addr(std::uint64_t addr) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(addr));
  return buf;
}

}  // namespace

DladdrSymbolizer::DladdrSymbolizer() {
  for (const MappingInfo& m : read_proc_self_maps()) {
    regions_.push_back({m.start, m.limit, m.file});
  }
}

std::string DladdrSymbolizer::symbolize(std::uint64_t addr) const {
  Dl_info info{};
  if (::dladdr(reinterpret_cast<void*>(addr), &info) != 0 &&
      info.dli_sname != nullptr) {
    return demangled(info.dli_sname);
  }
  // No dynamic symbol covers the address: name it module+offset from the
  // maps snapshot so pprof/flamegraphs still group by binary.
  const char* file = nullptr;
  std::uint64_t base = 0;
  if (info.dli_fname != nullptr) {
    file = info.dli_fname;
    base = reinterpret_cast<std::uint64_t>(info.dli_fbase);
  } else {
    for (const Region& r : regions_) {
      if (addr >= r.start && addr < r.limit) {
        file = r.file.c_str();
        base = r.start;
        break;
      }
    }
  }
  if (file == nullptr || *file == '\0') return "";
  return basename_of(file) + "+" + hex_addr(addr - base);
}

TableSymbolizer::TableSymbolizer(
    std::vector<std::pair<std::uint64_t, std::string>> table)
    : table_(std::move(table)) {
  std::sort(table_.begin(), table_.end());
}

std::string TableSymbolizer::symbolize(std::uint64_t addr) const {
  const auto it = std::lower_bound(
      table_.begin(), table_.end(), addr,
      [](const auto& entry, std::uint64_t a) { return entry.first < a; });
  if (it != table_.end() && it->first == addr) return it->second;
  return "";
}

std::vector<std::pair<std::uint64_t, std::string>> symbol_table(
    const std::vector<StackSample>& samples, const Symbolizer& sym) {
  std::vector<std::pair<std::uint64_t, std::string>> table;
  for (const std::uint64_t addr : unique_addresses(samples)) {
    table.emplace_back(addr, sym.symbolize(addr));
  }
  return table;
}

std::vector<MappingInfo> read_proc_self_maps() {
  std::vector<MappingInfo> out;
  std::ifstream maps("/proc/self/maps");
  std::string line;
  while (std::getline(maps, line)) {
    // ADDR-ADDR perms OFFSET dev inode [path]
    std::istringstream is(line);
    std::string range, perms, offset_hex, dev, inode, path;
    is >> range >> perms >> offset_hex >> dev >> inode;
    std::getline(is, path);
    if (perms.size() < 3 || perms[2] != 'x') continue;
    const auto dash = range.find('-');
    if (dash == std::string::npos) continue;
    MappingInfo m;
    m.start = std::strtoull(range.substr(0, dash).c_str(), nullptr, 16);
    m.limit = std::strtoull(range.substr(dash + 1).c_str(), nullptr, 16);
    m.offset = std::strtoull(offset_hex.c_str(), nullptr, 16);
    const auto first = path.find_first_not_of(' ');
    if (first != std::string::npos) m.file = path.substr(first);
    out.push_back(std::move(m));
  }
  return out;
}

// ----------------------------------------------------- pprof encoding

namespace {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_tag(std::string& out, int field, int wire) {
  put_varint(out, static_cast<std::uint64_t>((field << 3) | wire));
}

/// Varint-wire field; proto3 convention: zero values are omitted.
void put_uint(std::string& out, int field, std::uint64_t v) {
  if (v == 0) return;
  put_tag(out, field, 0);
  put_varint(out, v);
}

void put_bytes(std::string& out, int field, std::string_view payload) {
  put_tag(out, field, 2);
  put_varint(out, payload.size());
  out.append(payload);
}

void put_packed(std::string& out, int field,
                const std::vector<std::uint64_t>& vs) {
  if (vs.empty()) return;
  std::string tmp;
  for (const std::uint64_t v : vs) put_varint(tmp, v);
  put_bytes(out, field, tmp);
}

}  // namespace

std::string gzip_stored(std::string_view raw) {
  // CRC32 (IEEE, reflected) — the only "real" part of a stored-block
  // gzip stream; everything else is framing.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : raw) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^ (crc >> 8);
  }
  crc ^= 0xffffffffu;

  std::string out;
  out.reserve(raw.size() + raw.size() / 65535 * 5 + 32);
  const char header[10] = {'\x1f', '\x8b', 8, 0, 0, 0, 0, 0, 0, 3};
  out.append(header, sizeof(header));
  std::size_t pos = 0;
  do {
    const std::size_t n = std::min<std::size_t>(raw.size() - pos, 65535);
    const bool last = pos + n == raw.size();
    out.push_back(last ? '\x01' : '\x00');  // BFINAL | BTYPE=00 (stored)
    const auto len = static_cast<std::uint16_t>(n);
    const auto nlen = static_cast<std::uint16_t>(~len);
    out.append(reinterpret_cast<const char*>(&len), 2);
    out.append(reinterpret_cast<const char*>(&nlen), 2);
    out.append(raw.data() + pos, n);
    pos += n;
  } while (pos < raw.size());
  const auto isize = static_cast<std::uint32_t>(raw.size());
  out.append(reinterpret_cast<const char*>(&crc), 4);
  out.append(reinterpret_cast<const char*>(&isize), 4);
  return out;
}

std::string encode_pprof(const std::vector<StackSample>& samples,
                         const Symbolizer& sym, const PprofOptions& options) {
  // String table with interning; index 0 is mandatorily "".
  std::vector<std::string> strings{""};
  std::map<std::string, std::uint64_t> string_idx{{"", 0}};
  const auto intern = [&](const std::string& s) -> std::uint64_t {
    const auto [it, inserted] = string_idx.emplace(s, strings.size());
    if (inserted) strings.push_back(s);
    return it->second;
  };

  // Mappings (sorted by start; ids are 1-based indices).
  std::vector<MappingInfo> mappings = options.mappings;
  std::sort(mappings.begin(), mappings.end(),
            [](const MappingInfo& a, const MappingInfo& b) {
              return a.start < b.start;
            });
  const auto mapping_id_of = [&](std::uint64_t addr) -> std::uint64_t {
    for (std::size_t i = 0; i < mappings.size(); ++i) {
      if (addr >= mappings[i].start && addr < mappings[i].limit) {
        return i + 1;
      }
    }
    return 0;
  };

  // Location (by address) and Function (by name) dedup.
  std::map<std::uint64_t, std::uint64_t> loc_ids;       // addr → id
  std::map<std::uint64_t, std::uint64_t> loc_func;      // loc id → func id
  std::map<std::string, std::uint64_t> func_ids;        // name → id
  const auto location_of = [&](std::uint64_t addr) -> std::uint64_t {
    const auto [it, inserted] = loc_ids.emplace(addr, loc_ids.size() + 1);
    if (inserted) {
      const std::string name = sym.symbolize(addr);
      if (!name.empty()) {
        const auto [fit, finserted] =
            func_ids.emplace(name, func_ids.size() + 1);
        (void)finserted;
        loc_func[it->second] = fit->second;
      }
    }
    return it->second;
  };

  // Aggregate identical (stack, stage, shard, thread) samples. The key
  // embeds the label values after the location ids, so the map's order
  // is deterministic — golden tests rely on that.
  std::map<std::vector<std::uint64_t>, std::uint64_t> aggregated;
  double min_t = 0.0;
  double max_t = 0.0;
  bool any = false;
  for (const StackSample& s : samples) {
    std::vector<std::uint64_t> key;
    key.reserve(s.frames.size() + 3);
    for (const std::uint64_t addr : s.frames) {
      key.push_back(location_of(addr));
    }
    key.push_back(static_cast<std::uint64_t>(s.stage) | (std::uint64_t{1} << 32));
    key.push_back(static_cast<std::uint64_t>(s.shard) | (std::uint64_t{2} << 32));
    key.push_back(static_cast<std::uint64_t>(s.tid) | (std::uint64_t{3} << 32));
    ++aggregated[std::move(key)];
    if (!any || s.t_s < min_t) min_t = s.t_s;
    if (!any || s.t_s > max_t) max_t = s.t_s;
    any = true;
  }

  const std::int64_t period =
      1000000000LL / std::max(1, options.hz);  // ns of CPU per sample

  std::string body;
  // sample_type: samples/count, cpu/nanoseconds.
  {
    std::string vt;
    put_uint(vt, 1, intern("samples"));
    put_uint(vt, 2, intern("count"));
    put_bytes(body, 1, vt);
    vt.clear();
    put_uint(vt, 1, intern("cpu"));
    put_uint(vt, 2, intern("nanoseconds"));
    put_bytes(body, 1, vt);
  }
  // samples.
  const std::uint64_t stage_key = intern("stage");
  const std::uint64_t shard_key = intern("shard");
  const std::uint64_t thread_key = intern("thread");
  for (const auto& [key, count] : aggregated) {
    const std::size_t n_locs = key.size() - 3;
    const auto stage =
        static_cast<Stage>(key[n_locs] & 0xff);
    const auto shard = static_cast<std::uint16_t>(key[n_locs + 1] & 0xffff);
    const auto tid = static_cast<std::uint32_t>(key[n_locs + 2] & 0xffffffff);
    std::string smsg;
    put_packed(smsg, 1,
               std::vector<std::uint64_t>(key.begin(),
                                          key.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  n_locs)));
    put_packed(smsg, 2,
               {count, count * static_cast<std::uint64_t>(period)});
    {
      std::string label;
      put_uint(label, 1, stage_key);
      put_uint(label, 2, intern(to_string(stage)));
      put_bytes(smsg, 3, label);
    }
    if (shard != kNoShard) {
      std::string label;
      put_uint(label, 1, shard_key);
      put_uint(label, 3, shard);
      put_bytes(smsg, 3, label);
    }
    {
      std::string label;
      put_uint(label, 1, thread_key);
      put_uint(label, 3, tid);
      put_bytes(smsg, 3, label);
    }
    put_bytes(body, 2, smsg);
  }
  // mappings.
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    std::string m;
    put_uint(m, 1, i + 1);
    put_uint(m, 2, mappings[i].start);
    put_uint(m, 3, mappings[i].limit);
    put_uint(m, 4, mappings[i].offset);
    put_uint(m, 5, intern(mappings[i].file));
    put_bytes(body, 3, m);
  }
  // locations.
  for (const auto& [addr, id] : loc_ids) {
    std::string loc;
    put_uint(loc, 1, id);
    put_uint(loc, 2, mapping_id_of(addr));
    put_uint(loc, 3, addr);
    if (const auto it = loc_func.find(id); it != loc_func.end()) {
      std::string line;
      put_uint(line, 1, it->second);
      put_bytes(loc, 4, line);
    }
    put_bytes(body, 4, loc);
  }
  // functions.
  for (const auto& [name, id] : func_ids) {
    std::string fn;
    put_uint(fn, 1, id);
    put_uint(fn, 2, intern(name));
    put_uint(fn, 3, intern(name));  // system_name = name (already readable)
    put_bytes(body, 5, fn);
  }
  // string table — every entry, in index order, empties included.
  for (const std::string& s : strings) put_bytes(body, 6, s);
  put_uint(body, 9, static_cast<std::uint64_t>(options.time_nanos));
  if (any && max_t > min_t) {
    put_uint(body, 10,
             static_cast<std::uint64_t>((max_t - min_t) * 1e9));
  }
  {
    std::string vt;
    put_uint(vt, 1, intern("cpu"));

    put_uint(vt, 2, intern("nanoseconds"));
    put_bytes(body, 11, vt);
  }
  put_uint(body, 12, static_cast<std::uint64_t>(period));

  return options.gzip ? gzip_stored(body) : body;
}

std::string folded_stacks(const std::vector<StackSample>& samples,
                          const Symbolizer& sym) {
  std::map<std::uint64_t, std::string> names;
  const auto name_of = [&](std::uint64_t addr) -> const std::string& {
    auto [it, inserted] = names.emplace(addr, "");
    if (inserted) {
      it->second = sym.symbolize(addr);
      if (it->second.empty()) it->second = hex_addr(addr);
      // Folded-stack separators are structural; scrub them from names.
      for (char& c : it->second) {
        if (c == ';' || c == ' ' || c == '\n') c = '_';
      }
    }
    return it->second;
  };
  std::map<std::string, std::uint64_t> folded;
  for (const StackSample& s : samples) {
    std::string line;
    if (s.frames.empty()) {
      line = "[no stack]";
    } else {
      // Root first: frames are stored leaf-first.
      for (std::size_t i = s.frames.size(); i-- > 0;) {
        if (!line.empty()) line += ';';
        line += name_of(s.frames[i]);
      }
    }
    ++folded[line];
  }
  std::string out;
  for (const auto& [line, count] : folded) {
    out += line + " " + std::to_string(count) + "\n";
  }
  return out;
}

Report build_report(const std::vector<StackSample>& samples,
                    const Symbolizer& sym) {
  Report report;
  report.samples = samples.size();

  std::map<std::uint64_t, std::string> names;
  const auto name_of = [&](std::uint64_t addr) -> const std::string& {
    auto [it, inserted] = names.emplace(addr, "");
    if (inserted) {
      it->second = sym.symbolize(addr);
      if (it->second.empty()) it->second = hex_addr(addr);
    }
    return it->second;
  };

  struct Counts {
    std::uint64_t self = 0;
    std::uint64_t cum = 0;
  };
  std::map<std::string, Counts> by_function;
  std::map<Stage, std::uint64_t> by_stage;
  std::map<std::uint16_t, std::uint64_t> by_shard;
  std::vector<const std::string*> seen;  // per-sample cum dedup
  for (const StackSample& s : samples) {
    ++by_stage[s.stage];
    ++by_shard[s.shard];
    if (s.frames.empty()) {
      Counts& c = by_function["[no stack]"];
      ++c.self;
      ++c.cum;
      continue;
    }
    seen.clear();
    for (std::size_t i = 0; i < s.frames.size(); ++i) {
      const std::string& name = name_of(s.frames[i]);
      Counts& c = by_function[name];
      if (i == 0) ++c.self;
      // Recursion must not double-count a frame's cumulative share.
      bool counted = false;
      for (const std::string* p : seen) {
        if (*p == name) {
          counted = true;
          break;
        }
      }
      if (!counted) {
        ++c.cum;
        seen.push_back(&name);
      }
    }
  }
  for (auto& [name, c] : by_function) {
    report.by_function.push_back({name, c.self, c.cum});
  }
  std::sort(report.by_function.begin(), report.by_function.end(),
            [](const Report::Entry& a, const Report::Entry& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.cum != b.cum) return a.cum > b.cum;
              return a.name < b.name;
            });
  report.by_stage.assign(by_stage.begin(), by_stage.end());
  std::sort(report.by_stage.begin(), report.by_stage.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  report.by_shard.assign(by_shard.begin(), by_shard.end());
  std::sort(report.by_shard.begin(), report.by_shard.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return report;
}

// -------------------------------------------------------------- HTTP

void register_pprof_route(MetricsHttpServer& server, CpuProfiler& prof) {
  server.add_route(
      "GET", "/debug/pprof/profile",
      [&prof](const MetricsHttpServer::Request& req)
          -> MetricsHttpServer::Response {
        if (!prof.running()) {
          return {503, "text/plain; charset=utf-8",
                  "profiler not running\n"};
        }
        double seconds = 1.0;
        if (const std::string* s = req.param("seconds")) {
          const auto [ptr, ec] = std::from_chars(
              s->data(), s->data() + s->size(), seconds);
          if (ec != std::errc{} || ptr != s->data() + s->size() ||
              !(seconds >= 0.0)) {
            return {400, "text/plain; charset=utf-8",
                    "bad seconds parameter\n"};
          }
          seconds = std::min(seconds, 30.0);
        }
        const double since = prof.now_s();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        prof.collect_now();
        const std::vector<StackSample> samples = prof.samples_since(since);
        PprofOptions options;
        options.hz = prof.hz();
        options.time_nanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
        options.mappings = read_proc_self_maps();
        const DladdrSymbolizer sym;
        return {200, "application/octet-stream",
                encode_pprof(samples, sym, options)};
      });
}

}  // namespace dvfs::obs::prof
