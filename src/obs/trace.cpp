#include "dvfs/obs/trace.h"

namespace dvfs::obs {

void TraceWriter::complete(std::int64_t tid, std::string name, double ts_us,
                           double dur_us, Json::Object args) {
  DVFS_REQUIRE(dur_us >= 0.0, "span duration cannot be negative");
  events_.push_back(Event{.ph = 'X',
                          .tid = tid,
                          .ts = ts_us,
                          .dur = dur_us,
                          .name = std::move(name),
                          .args = std::move(args)});
}

void TraceWriter::instant(std::int64_t tid, std::string name, double ts_us,
                          Json::Object args) {
  events_.push_back(Event{.ph = 'i',
                          .tid = tid,
                          .ts = ts_us,
                          .dur = 0.0,
                          .name = std::move(name),
                          .args = std::move(args)});
}

void TraceWriter::counter(std::string name, double ts_us, double value) {
  Json::Object args;
  args.emplace("value", Json(value));
  events_.push_back(Event{.ph = 'C',
                          .tid = 0,
                          .ts = ts_us,
                          .dur = 0.0,
                          .name = std::move(name),
                          .args = std::move(args)});
}

void TraceWriter::thread_name(std::int64_t tid, std::string name) {
  Json::Object args;
  args.emplace("name", Json(std::move(name)));
  events_.push_back(Event{.ph = 'M',
                          .tid = tid,
                          .ts = 0.0,
                          .dur = 0.0,
                          .name = "thread_name",
                          .args = std::move(args)});
}

Json TraceWriter::to_json() const {
  Json::Array out;
  out.reserve(events_.size());
  for (const Event& e : events_) {
    Json::Object ev;
    ev.emplace("ph", Json(std::string(1, e.ph)));
    ev.emplace("pid", Json(kPid));
    ev.emplace("tid", Json(e.tid));
    ev.emplace("ts", Json(e.ts));
    ev.emplace("name", Json(e.name));
    if (e.ph == 'X') ev.emplace("dur", Json(e.dur));
    if (e.ph == 'i') ev.emplace("s", Json("t"));  // instant scope: thread
    if (!e.args.empty()) ev.emplace("args", Json(e.args));
    out.emplace_back(std::move(ev));
  }
  Json::Object root;
  root.emplace("traceEvents", Json(std::move(out)));
  root.emplace("displayTimeUnit", Json("ms"));
  return Json(std::move(root));
}

void TraceWriter::write_file(const std::string& path) const {
  write_json_file(path, to_json(), /*indent=*/-1);
}

}  // namespace dvfs::obs
