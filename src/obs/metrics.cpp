#include "dvfs/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace dvfs::obs {

std::optional<std::uint64_t> Histogram::percentile_upper_bound(
    double p) const {
  DVFS_REQUIRE(p >= 0.0 && p <= 1.0, "percentile must be in [0, 1]");
  const std::uint64_t n = count();
  if (n == 0) return std::nullopt;
  // Nearest-rank: the smallest sample with at least ceil(p*n) samples at
  // or below it, so p99 of a small set still lands in the tail bucket.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen >= target) {
      return i + 1 < kNumBuckets ? bucket_lower(i + 1) - 1
                                 : ~std::uint64_t{0};
    }
  }
  return ~std::uint64_t{0};
}

void Histogram::restore(
    std::uint64_t count, std::uint64_t sum,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
        bucket_counts) {
  reset();
  count_.store(count, std::memory_order_relaxed);
  sum_.store(sum, std::memory_order_relaxed);
  for (const auto& [lower, n] : bucket_counts) {
    buckets_[bucket_index(lower)].store(n, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mu_);
  DVFS_REQUIRE(!gauges_.contains(name) && !histograms_.contains(name),
               "metric name already used by another kind: " + name);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mu_);
  DVFS_REQUIRE(!counters_.contains(name) && !histograms_.contains(name),
               "metric name already used by another kind: " + name);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  const std::scoped_lock lock(mu_);
  DVFS_REQUIRE(!counters_.contains(name) && !gauges_.contains(name),
               "metric name already used by another kind: " + name);
  return histograms_[name];
}

Json Registry::to_json() const {
  const std::scoped_lock lock(mu_);
  Json::Object counters;
  for (const auto& [name, c] : counters_) {
    counters.emplace(name, Json(c.value()));
  }
  Json::Object gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.emplace(name, Json(g.value()));
  }
  Json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    Json::Object entry;
    entry.emplace("count", Json(h.count()));
    entry.emplace("sum", Json(h.sum()));
    // An empty histogram has no mean or quantiles; omitting the fields
    // keeps "no data" distinguishable from a legitimate value of 0.
    if (h.count() > 0) {
      entry.emplace("mean", Json(h.mean()));
      entry.emplace("p50", Json(*h.percentile_upper_bound(0.5)));
      entry.emplace("p99", Json(*h.percentile_upper_bound(0.99)));
    }
    Json::Array buckets;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h.bucket(i);
      if (n == 0) continue;
      buckets.push_back(Json(Json::Array{Json(Histogram::bucket_lower(i)),
                                         Json(n)}));
    }
    entry.emplace("buckets", Json(std::move(buckets)));
    histograms.emplace(name, Json(std::move(entry)));
  }
  Json::Object root;
  root.emplace("counters", Json(std::move(counters)));
  root.emplace("gauges", Json(std::move(gauges)));
  root.emplace("histograms", Json(std::move(histograms)));
  return Json(std::move(root));
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counters_snapshot() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges_snapshot()
    const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  return out;
}

std::vector<Registry::HistogramSnapshot> Registry::histograms_snapshot()
    const {
  const std::scoped_lock lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = h.count();
    snap.sum = h.sum();
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h.bucket(i);
      if (n != 0) snap.buckets.emplace_back(Histogram::bucket_lower(i), n);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::reset_all() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace dvfs::obs
