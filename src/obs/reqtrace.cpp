#include "dvfs/obs/reqtrace.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>

#include "dvfs/common.h"

namespace dvfs::obs::reqtrace {

namespace {

// SplitMix64 finalizer — same family the service uses for shard routing;
// here it spreads task ids across stripes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kSubmitRecv: return "submit_recv";
    case Stage::kStealHop: return "steal_hop";
    case Stage::kRingEnqueue: return "ring_enqueue";
    case Stage::kRingDequeue: return "ring_dequeue";
    case Stage::kPlacement: return "placement";
    case Stage::kShardQueue: return "shard_queue";
    case Stage::kExecBegin: return "exec_begin";
    case Stage::kExecEnd: return "exec_end";
  }
  return "?";
}

void sort_steps(std::vector<Step>& steps) {
  std::stable_sort(steps.begin(), steps.end(),
                   [](const Step& x, const Step& y) {
                     if (x.t_s != y.t_s) return x.t_s < y.t_s;
                     return static_cast<std::uint8_t>(x.stage) <
                            static_cast<std::uint8_t>(y.stage);
                   });
}

std::size_t Timeline::hops() const {
  std::size_t n = 0;
  for (const Step& s : steps) n += s.stage == Stage::kStealHop ? 1 : 0;
  return n;
}

double Timeline::begin_s() const {
  return steps.empty() ? 0.0 : steps.front().t_s;
}

double Timeline::end_s() const {
  return steps.empty() ? 0.0 : steps.back().t_s;
}

Durations Timeline::durations() const {
  Durations d;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    const double dt = steps[i].t_s - steps[i - 1].t_s;
    // Attribute the gap to the stage that closed it; every gap lands in
    // exactly one field, so the fields telescope to end-to-end.
    switch (steps[i].stage) {
      case Stage::kSubmitRecv: break;  // only ever the first step
      case Stage::kStealHop: d.steal_wait_s += dt; break;
      case Stage::kRingEnqueue: d.ingress_s += dt; break;
      case Stage::kRingDequeue: d.ring_wait_s += dt; break;
      case Stage::kPlacement: d.placement_s += dt; break;
      case Stage::kShardQueue: d.placement_s += dt; break;
      case Stage::kExecBegin: d.queue_wait_s += dt; break;
      case Stage::kExecEnd: d.exec_s += dt; break;
    }
  }
  return d;
}

const char* Timeline::admission_critical_stage() const {
  const Durations d = durations();
  const char* name = "ingress";
  double best = d.ingress_s;
  if (d.ring_wait_s > best) { best = d.ring_wait_s; name = "ring_wait"; }
  if (d.placement_s > best) { best = d.placement_s; name = "placement"; }
  if (d.steal_wait_s > best) { name = "steal_wait"; }
  return name;
}

std::vector<Timeline> build_timelines(const std::vector<dfr::Event>& events) {
  using dfr::EventType;
  // Pass 1: which tasks are traced at all. A task qualifies once any v4
  // span event mentions it — a pre-v4 (simulator) stream qualifies none,
  // so its kPlacement events never become bogus one-step timelines.
  std::unordered_map<std::uint64_t, Timeline> by_task;
  for (const dfr::Event& e : events) {
    const auto t = static_cast<EventType>(e.type);
    if (t < EventType::kSubmitRecv || t > EventType::kExecEnd) continue;
    Timeline& tl = by_task[e.task];
    tl.task = e.task;
    // kShardQueue reuses u0 for queue depth; every other span event
    // carries the trace id there.
    if (tl.trace_id == 0 && t != EventType::kShardQueue) tl.trace_id = e.u0;
  }

  // Pass 2: collect steps (including the pre-existing kPlacement events,
  // which double as the decision record and the trace's placement step).
  for (const dfr::Event& e : events) {
    const auto it = by_task.find(e.task);
    if (it == by_task.end()) continue;
    Step s;
    s.t_s = e.time_s;
    switch (static_cast<EventType>(e.type)) {
      case EventType::kSubmitRecv:
        s.stage = Stage::kSubmitRecv;
        break;
      case EventType::kRingEnqueue:
        s.stage = Stage::kRingEnqueue;
        s.a = e.core;
        break;
      case EventType::kRingDequeue:
        s.stage = Stage::kRingDequeue;
        s.a = e.core;
        break;
      case EventType::kStealHop:
        s.stage = Stage::kStealHop;
        s.a = e.aux;
        s.b = e.core;
        break;
      case EventType::kPlacement:
        s.stage = Stage::kPlacement;
        s.a = e.core;
        s.b = e.rate_idx;
        break;
      case EventType::kShardQueue:
        s.stage = Stage::kShardQueue;
        s.a = e.core;
        s.b = static_cast<std::uint32_t>(e.u0);
        break;
      case EventType::kExecBegin:
        s.stage = Stage::kExecBegin;
        s.a = e.core;
        break;
      case EventType::kExecEnd:
        s.stage = Stage::kExecEnd;
        s.a = e.core;
        break;
      default:
        continue;
    }
    it->second.steps.push_back(s);
  }

  std::vector<Timeline> out;
  out.reserve(by_task.size());
  for (auto& [id, tl] : by_task) {
    sort_steps(tl.steps);
    out.push_back(std::move(tl));
  }
  std::sort(out.begin(), out.end(),
            [](const Timeline& x, const Timeline& y) { return x.task < y.task; });
  return out;
}

Json timeline_json(const Timeline& t) {
  Json::Array steps;
  for (std::size_t i = 0; i < t.steps.size(); ++i) {
    const Step& s = t.steps[i];
    Json::Object o{{"stage", Json(to_string(s.stage))},
                   {"t_s", Json(s.t_s)},
                   {"dt_s", Json(i == 0 ? 0.0 : s.t_s - t.steps[i - 1].t_s)}};
    switch (s.stage) {
      case Stage::kRingEnqueue:
      case Stage::kRingDequeue:
        o.emplace("shard", Json(static_cast<std::uint64_t>(s.a)));
        break;
      case Stage::kStealHop:
        o.emplace("from_shard", Json(static_cast<std::uint64_t>(s.a)));
        o.emplace("to_shard", Json(static_cast<std::uint64_t>(s.b)));
        break;
      case Stage::kPlacement:
        o.emplace("core", Json(static_cast<std::uint64_t>(s.a)));
        o.emplace("rate_idx", Json(static_cast<std::uint64_t>(s.b)));
        break;
      case Stage::kShardQueue:
        o.emplace("core", Json(static_cast<std::uint64_t>(s.a)));
        o.emplace("depth", Json(static_cast<std::uint64_t>(s.b)));
        break;
      case Stage::kExecBegin:
      case Stage::kExecEnd:
        o.emplace("core", Json(static_cast<std::uint64_t>(s.a)));
        break;
      case Stage::kSubmitRecv:
        break;
    }
    steps.emplace_back(std::move(o));
  }

  const Durations d = t.durations();
  return Json(Json::Object{
      {"task", Json(t.task)},
      {"trace_id", Json(trace_id_hex(t.trace_id))},
      {"stolen", Json(t.stolen())},
      {"hops", Json(static_cast<std::uint64_t>(t.hops()))},
      {"begin_s", Json(t.begin_s())},
      {"end_s", Json(t.end_s())},
      {"end_to_end_s", Json(t.end_to_end_s())},
      {"critical_stage", Json(t.admission_critical_stage())},
      {"durations",
       Json(Json::Object{{"ingress_s", Json(d.ingress_s)},
                         {"ring_wait_s", Json(d.ring_wait_s)},
                         {"placement_s", Json(d.placement_s)},
                         {"steal_wait_s", Json(d.steal_wait_s)},
                         {"queue_wait_s", Json(d.queue_wait_s)},
                         {"exec_s", Json(d.exec_s)},
                         {"total_s", Json(d.total())}})},
      {"steps", Json(std::move(steps))}});
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

std::optional<std::uint64_t> parse_trace_id(std::string_view text) {
  if (text.starts_with("0x") || text.starts_with("0X")) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v, 16);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return std::nullopt;
  }
  return v;
}

TraceStore::TraceStore(std::size_t capacity, std::size_t stripes)
    : per_stripe_capacity_(std::max<std::size_t>(
          1, capacity / std::max<std::size_t>(1, stripes))),
      stripes_(std::max<std::size_t>(1, stripes)) {}

TraceStore::Stripe& TraceStore::stripe_for(std::uint64_t task) const {
  return stripes_[mix64(task) % stripes_.size()];
}

void TraceStore::append(std::uint64_t task, std::uint64_t trace_id,
                        std::initializer_list<Step> steps) {
  Stripe& st = stripe_for(task);
  std::lock_guard lock(st.mu);
  auto [it, inserted] = st.by_task.try_emplace(task);
  if (inserted) {
    st.fifo.push_back(task);
    if (st.by_task.size() > per_stripe_capacity_) {
      // Same rotating-cursor FIFO eviction as the service status store:
      // the oldest remembered task makes room.
      while (st.evict_cursor < st.fifo.size()) {
        const std::uint64_t victim = st.fifo[st.evict_cursor++];
        if (victim != task && st.by_task.erase(victim) > 0) {
          evicted_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
  }
  Entry& e = it->second;
  if (trace_id != 0) e.trace_id = trace_id;
  e.steps.insert(e.steps.end(), steps.begin(), steps.end());
}

std::optional<Timeline> TraceStore::get(std::uint64_t task) const {
  const Stripe& st = stripe_for(task);
  std::lock_guard lock(st.mu);
  const auto it = st.by_task.find(task);
  if (it == st.by_task.end()) return std::nullopt;
  Timeline tl;
  tl.task = task;
  tl.trace_id = it->second.trace_id;
  tl.steps = it->second.steps;
  sort_steps(tl.steps);
  return tl;
}

void ExemplarSeries::observe(std::uint64_t value, std::uint64_t trace_id,
                             double t_s) noexcept {
  Slot& s = slots_[Histogram::bucket_index(value)];
  // Seqlock write: odd while the fields are in flux. Racing writers can
  // leave interleaved fields (see header) — every field is still a real
  // sample from this bucket.
  s.seq.fetch_add(1, std::memory_order_acq_rel);
  s.trace.store(trace_id, std::memory_order_relaxed);
  s.value.store(value, std::memory_order_relaxed);
  s.t_bits.store(std::bit_cast<std::uint64_t>(t_s),
                 std::memory_order_relaxed);
  s.seq.fetch_add(1, std::memory_order_acq_rel);
}

std::optional<Exemplar> ExemplarSeries::bucket(std::size_t i) const noexcept {
  if (i >= slots_.size()) return std::nullopt;
  const Slot& s = slots_[i];
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0) return std::nullopt;  // never written
    if ((s1 & 1) != 0) continue;       // writer in flight
    Exemplar e;
    e.trace_id = s.trace.load(std::memory_order_relaxed);
    e.value = s.value.load(std::memory_order_relaxed);
    e.t_s = std::bit_cast<double>(s.t_bits.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) == s1) return e;
  }
  return std::nullopt;  // writer storm; skip the exemplar this scrape
}

ExemplarSeries& ExemplarStore::series(const std::string& histogram_name) {
  std::lock_guard lock(mu_);
  return series_[histogram_name];
}

const ExemplarSeries* ExemplarStore::find(
    const std::string& histogram_name) const {
  std::lock_guard lock(mu_);
  const auto it = series_.find(histogram_name);
  return it == series_.end() ? nullptr : &it->second;
}

}  // namespace dvfs::obs::reqtrace
