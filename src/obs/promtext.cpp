#include "dvfs/obs/promtext.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "dvfs/common.h"
#include "dvfs/obs/metrics.h"

namespace dvfs::obs {

namespace {

void append_double(std::string& out, double v) {
  // Prometheus accepts Go-style floats; shortest round-trip form keeps
  // integers unsuffixed (a counter of 42 prints "42").
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DVFS_REQUIRE(ec == std::errc{}, "double formatting failed");
  out.append(buf, end);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DVFS_REQUIRE(ec == std::errc{}, "integer formatting failed");
  out.append(buf, end);
}

// Splits a registry name into its mangle-able base and a literal label
// block ("" when the name carries no labels).
std::pair<std::string, std::string> split_labels(
    const std::string& registry_name) {
  const auto brace = registry_name.find('{');
  if (brace == std::string::npos) return {registry_name, ""};
  return {registry_name.substr(0, brace), registry_name.substr(brace)};
}

std::string mangle(const std::string& base) {
  std::string out = "dvfs_";
  out.reserve(out.size() + base.size());
  for (const char c : base) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

}  // namespace

std::string prometheus_name(const std::string& registry_name) {
  const auto [base, labels] = split_labels(registry_name);
  return mangle(base) + labels;
}

std::string prometheus_labels(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  if (labels.size() == 0) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"";
    for (const char c : value) {
      // Exposition-format escaping for label values.
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string prometheus_text(const Registry& registry) {
  std::string out;

  for (const auto& [name, value] : registry.counters_snapshot()) {
    const auto [base, labels] = split_labels(name);
    // `_total` belongs to the metric family name, so it goes before the
    // label block; the TYPE line names the family without labels.
    const std::string family = mangle(base) + "_total";
    out += "# TYPE " + family + " counter\n" + family + labels + " ";
    append_u64(out, value);
    out += "\n";
  }

  for (const auto& [name, value] : registry.gauges_snapshot()) {
    const auto [base, labels] = split_labels(name);
    const std::string family = mangle(base);
    out += "# TYPE " + family + " gauge\n" + family + labels + " ";
    append_double(out, value);
    out += "\n";
  }

  for (const auto& h : registry.histograms_snapshot()) {
    const std::string pname = prometheus_name(h.name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [lower, n] : h.buckets) {
      cumulative += n;
      // Registry buckets are [2^(i-1), 2^i) over integers, so the
      // inclusive upper bound Prometheus wants is 2^i - 1 (and 0 for the
      // zero bucket).
      const std::uint64_t le = lower == 0 ? 0 : lower * 2 - 1;
      out += pname + "_bucket{le=\"";
      append_u64(out, le);
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += "\n" + pname + "_sum ";
    append_u64(out, h.sum);
    out += "\n" + pname + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

// ------------------------------------------------------------- HTTP server

MetricsHttpServer::MetricsHttpServer(Options options, BodyFn body)
    : options_(std::move(options)), body_(std::move(body)) {
  DVFS_REQUIRE(body_ != nullptr, "metrics server needs a body callback");
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  DVFS_REQUIRE(listen_fd_ < 0, "metrics server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DVFS_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
             1) {
    ::close(fd);
    DVFS_REQUIRE(false, "cannot parse listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    DVFS_REQUIRE(false, "cannot bind metrics endpoint on " + options_.host +
                            ":" + std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short poll timeout bounds the shutdown latency without a self-pipe.
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // One short request per connection: read the request line, answer,
    // close. Enough HTTP for curl and a Prometheus scraper.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string response;
    if (n > 0) {
      buf[n] = '\0';
      const std::string request(buf);
      const auto line_end = request.find("\r\n");
      const std::string line =
          line_end == std::string::npos ? request : request.substr(0, line_end);
      const bool is_get = line.rfind("GET ", 0) == 0;
      const auto path_end = line.find(' ', 4);
      const std::string path =
          is_get && path_end != std::string::npos
              ? line.substr(4, path_end - 4)
              : std::string();
      if (is_get && (path == "/metrics" || path == "/")) {
        const std::string body = body_();
        response =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " + std::to_string(body.size()) +
            "\r\nConnection: close\r\n\r\n" + body;
      } else {
        static constexpr char kNotFound[] = "not found\n";
        response =
            "HTTP/1.1 404 Not Found\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: " + std::to_string(sizeof(kNotFound) - 1) +
            "\r\nConnection: close\r\n\r\n" + kNotFound;
      }
      std::size_t off = 0;
      while (off < response.size()) {
        const ssize_t sent =
            ::send(client, response.data() + off, response.size() - off, 0);
        if (sent <= 0) break;
        off += static_cast<std::size_t>(sent);
      }
    }
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

MetricsHttpServer::Options parse_listen(const std::string& spec) {
  MetricsHttpServer::Options opts;
  const auto colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = spec;  // "9464"
  } else {
    if (colon > 0) opts.host = spec.substr(0, colon);  // "host:9464"
    port_str = spec.substr(colon + 1);                 // ":9464"
  }
  DVFS_REQUIRE(!port_str.empty(), "bad --listen spec: " + spec);
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(),
                      value);
  DVFS_REQUIRE(ec == std::errc{} && ptr == port_str.data() + port_str.size() &&
                   value <= 0xffff,
               "bad --listen port: " + spec);
  opts.port = static_cast<std::uint16_t>(value);
  return opts;
}

}  // namespace dvfs::obs
