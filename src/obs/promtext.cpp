#include "dvfs/obs/promtext.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <bit>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "dvfs/common.h"
#include "dvfs/obs/metrics.h"
#include "dvfs/obs/prof.h"
#include "dvfs/obs/reqtrace.h"

namespace dvfs::obs {

namespace {

void append_double(std::string& out, double v) {
  // Prometheus accepts Go-style floats; shortest round-trip form keeps
  // integers unsuffixed (a counter of 42 prints "42").
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DVFS_REQUIRE(ec == std::errc{}, "double formatting failed");
  out.append(buf, end);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DVFS_REQUIRE(ec == std::errc{}, "integer formatting failed");
  out.append(buf, end);
}

// Splits a registry name into its mangle-able base and a literal label
// block ("" when the name carries no labels).
std::pair<std::string, std::string> split_labels(
    const std::string& registry_name) {
  const auto brace = registry_name.find('{');
  if (brace == std::string::npos) return {registry_name, ""};
  return {registry_name.substr(0, brace), registry_name.substr(brace)};
}

std::string mangle(const std::string& base) {
  std::string out = "dvfs_";
  out.reserve(out.size() + base.size());
  for (const char c : base) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

}  // namespace

std::string prometheus_name(const std::string& registry_name) {
  const auto [base, labels] = split_labels(registry_name);
  return mangle(base) + labels;
}

std::string prometheus_labels(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  if (labels.size() == 0) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"";
    for (const char c : value) {
      // Exposition-format escaping for label values.
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string prometheus_text(const Registry& registry) {
  return prometheus_text(registry, nullptr);
}

std::string prometheus_text(const Registry& registry,
                            const reqtrace::ExemplarStore* exemplars) {
  std::string out;

  for (const auto& [name, value] : registry.counters_snapshot()) {
    const auto [base, labels] = split_labels(name);
    // `_total` belongs to the metric family name, so it goes before the
    // label block; the TYPE line names the family without labels.
    const std::string family = mangle(base) + "_total";
    out += "# TYPE " + family + " counter\n" + family + labels + " ";
    append_u64(out, value);
    out += "\n";
  }

  for (const auto& [name, value] : registry.gauges_snapshot()) {
    const auto [base, labels] = split_labels(name);
    const std::string family = mangle(base);
    out += "# TYPE " + family + " gauge\n" + family + labels + " ";
    append_double(out, value);
    out += "\n";
  }

  for (const auto& h : registry.histograms_snapshot()) {
    const std::string pname = prometheus_name(h.name);
    const reqtrace::ExemplarSeries* series =
        exemplars == nullptr ? nullptr : exemplars->find(h.name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [lower, n] : h.buckets) {
      cumulative += n;
      // Registry buckets are [2^(i-1), 2^i) over integers, so the
      // inclusive upper bound Prometheus wants is 2^i - 1 (and 0 for the
      // zero bucket).
      const std::uint64_t le = lower == 0 ? 0 : lower * 2 - 1;
      out += pname + "_bucket{le=\"";
      append_u64(out, le);
      out += "\"} ";
      append_u64(out, cumulative);
      if (series != nullptr) {
        // Bucket index from the snapshot's inclusive lower bound: bucket
        // 0 holds the value 0, bucket i >= 1 starts at 2^(i-1).
        const std::size_t idx =
            lower == 0 ? 0 : static_cast<std::size_t>(std::bit_width(lower));
        const auto ex = series->bucket(idx);
        // Guard against a racing writer relocating the sample: only a
        // value that really belongs to this bucket may annotate it.
        if (ex.has_value() && Histogram::bucket_index(ex->value) == idx) {
          out += " # {trace_id=\"" + reqtrace::trace_id_hex(ex->trace_id) +
                 "\"} ";
          append_u64(out, ex->value);
          out += " ";
          append_double(out, ex->t_s);
        }
      }
      out += "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += "\n" + pname + "_sum ";
    append_u64(out, h.sum);
    out += "\n" + pname + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

// ------------------------------------------------------------- HTTP server

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 406: return "Not Acceptable";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
                        static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Options options, BodyFn body)
    : options_(std::move(options)) {
  DVFS_REQUIRE(body != nullptr, "metrics server needs a body callback");
  const Handler metrics = [body = std::move(body)] {
    return Response{200, "text/plain; version=0.0.4; charset=utf-8", body()};
  };
  add_route("/metrics", metrics);
  add_route("/", metrics);
}

void MetricsHttpServer::add_route(const std::string& path, Handler handler) {
  DVFS_REQUIRE(handler != nullptr, "route needs a handler");
  add_route("GET", path,
            [handler = std::move(handler)](const Request&) {
              return handler();
            });
}

void MetricsHttpServer::add_route(const std::string& method,
                                  const std::string& path,
                                  RequestHandler handler) {
  DVFS_REQUIRE(!path.empty() && path.front() == '/',
               "route path must start with '/'");
  DVFS_REQUIRE(!method.empty(), "route needs a method");
  DVFS_REQUIRE(handler != nullptr, "route needs a handler");
  routes_[path][method] = std::move(handler);
}

void MetricsHttpServer::add_prefix_route(const std::string& method,
                                         const std::string& prefix,
                                         RequestHandler handler) {
  DVFS_REQUIRE(!prefix.empty() && prefix.front() == '/',
               "route prefix must start with '/'");
  DVFS_REQUIRE(!method.empty(), "route needs a method");
  DVFS_REQUIRE(handler != nullptr, "route needs a handler");
  prefix_routes_.emplace_back(method, prefix, std::move(handler));
}

bool MetricsHttpServer::accept_allows(const std::string& accept_header,
                                      const std::string& mime) {
  const std::string want = lower(trim(mime));
  const auto want_slash = want.find('/');
  if (accept_header.empty() || want_slash == std::string::npos) return true;
  const std::string want_type = want.substr(0, want_slash);

  std::size_t pos = 0;
  while (pos <= accept_header.size()) {
    const auto comma = accept_header.find(',', pos);
    std::string range = comma == std::string::npos
                            ? accept_header.substr(pos)
                            : accept_header.substr(pos, comma - pos);
    // Drop media-type parameters (";q=0.9", ";charset=...").
    const auto semi = range.find(';');
    if (semi != std::string::npos) range = range.substr(0, semi);
    range = lower(trim(range));
    if (range == "*/*" || range == want || range == want_type + "/*") {
      return true;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  DVFS_REQUIRE(listen_fd_ < 0, "metrics server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DVFS_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
             1) {
    ::close(fd);
    DVFS_REQUIRE(false, "cannot parse listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    DVFS_REQUIRE(false, "cannot bind metrics endpoint on " + options_.host +
                            ":" + std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::serve_loop() {
  // Opt the serving thread into CPU profiling: requests (HTTP parsing
  // included) attribute to stage "http" whenever a profiler is running.
  const prof::ThreadGuard prof_guard = prof::profile_current_thread();
  const prof::ScopedStage stage(prof::Stage::kHttp);
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short poll timeout bounds the shutdown latency without a self-pipe.
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

namespace {

/// Percent-decodes one query component; '+' decodes to a space. Lenient:
/// a malformed escape ("%zz", trailing "%") passes through literally —
/// a scrape must not 400 over a stray percent sign.
std::string url_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  const auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size() && hex(in[i + 1]) >= 0 &&
               hex(in[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(hex(in[i + 1]) * 16 + hex(in[i + 2])));
      i += 2;
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

/// Splits "a=1&b=2" into decoded key/value pairs, in order. Empty
/// segments ("a=1&&b=2") are skipped; a segment without '=' becomes a
/// key with an empty value; duplicates are all kept.
std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    const auto amp = query.find('&', pos);
    const std::string_view part = query.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    if (!part.empty()) {
      const auto eq = part.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(url_decode(part), "");
      } else {
        params.emplace_back(url_decode(part.substr(0, eq)),
                            url_decode(part.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return params;
}

}  // namespace

bool MetricsHttpServer::read_request(int client, Request& out,
                                     Response& error) {
  // Accumulate until the blank line that ends the header section — a
  // request line split across any number of TCP segments (or delivered
  // byte-at-a-time) must parse identically to a single-read request.
  std::string data;
  std::size_t header_end = std::string::npos;
  char buf[4096];
  while (header_end == std::string::npos) {
    if (data.size() > kMaxHeaderBytes) {
      error = Response{400, "text/plain; charset=utf-8",
                       "header section too large\n"};
      return true;
    }
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    if (n <= 0) return false;  // peer vanished (or read timeout) mid-headers
    const std::size_t scan_from = data.size() < 3 ? 0 : data.size() - 3;
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n", scan_from);
  }

  const std::string head = data.substr(0, header_end);
  const auto line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
      sp2 == sp1 + 1) {
    error = Response{400, "text/plain; charset=utf-8", "bad request line\n"};
    return true;
  }
  out.method = line.substr(0, sp1);
  out.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Split the query off the target before dispatch ever sees the path.
  if (const auto q = out.path.find('?'); q != std::string::npos) {
    out.query = out.path.substr(q + 1);
    out.path.resize(q);
    out.params = parse_query(out.query);
  }

  // Header scan (field names are case-insensitive).
  std::size_t content_length = 0;
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    const auto eol = head.find("\r\n", pos);
    const std::string header = head.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    const auto colon = header.find(':');
    if (colon != std::string::npos) {
      const std::string name = lower(header.substr(0, colon));
      const std::string value = trim(header.substr(colon + 1));
      if (name == "accept") {
        out.accept = value;
      } else if (name == "content-length") {
        const auto [ptr, ec] = std::from_chars(
            value.data(), value.data() + value.size(), content_length);
        if (ec != std::errc{} || ptr != value.data() + value.size()) {
          error = Response{400, "text/plain; charset=utf-8",
                           "bad Content-Length\n"};
          return true;
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 2;
  }

  if (content_length > kMaxBodyBytes) {
    error = Response{413, "text/plain; charset=utf-8",
                     "request body too large\n"};
    return true;
  }
  // Body: whatever followed the blank line, then keep reading until
  // Content-Length bytes have arrived.
  out.body = data.substr(header_end + 4);
  while (out.body.size() < content_length) {
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    if (n <= 0) return false;  // truncated body: nothing to answer
    out.body.append(buf, static_cast<std::size_t>(n));
  }
  out.body.resize(content_length);  // ignore pipelined bytes past the body
  error.status = 0;
  return true;
}

MetricsHttpServer::Response MetricsHttpServer::dispatch(
    const Request& req) const {
  const RequestHandler* handler = nullptr;
  bool path_known = false;
  if (const auto route = routes_.find(req.path); route != routes_.end()) {
    path_known = true;
    if (const auto m = route->second.find(req.method);
        m != route->second.end()) {
      handler = &m->second;
    }
  }
  if (handler == nullptr) {
    // Longest matching prefix wins; an exact route always wins over any
    // prefix. A prefix match on another method still means 405, not 404.
    std::size_t best_len = 0;
    for (const auto& [method, prefix, h] : prefix_routes_) {
      if (req.path.rfind(prefix, 0) != 0) continue;
      path_known = true;
      if (method != req.method || prefix.size() < best_len) continue;
      best_len = prefix.size();
      handler = &h;
    }
  }
  if (handler == nullptr) {
    if (path_known) {
      return Response{405, "text/plain; charset=utf-8",
                      "method not allowed\n"};
    }
    return Response{404, "text/plain; charset=utf-8", "not found\n"};
  }

  Response res;
  try {
    res = (*handler)(req);
  } catch (const std::exception& e) {
    return Response{500, "text/plain; charset=utf-8",
                    std::string("internal error: ") + e.what() + "\n"};
  } catch (...) {
    return Response{500, "text/plain; charset=utf-8", "internal error\n"};
  }
  const auto semi = res.content_type.find(';');
  const std::string mime = semi == std::string::npos
                               ? res.content_type
                               : res.content_type.substr(0, semi);
  if (!accept_allows(req.accept, trim(mime))) {
    return Response{406, "text/plain; charset=utf-8", "not acceptable\n"};
  }
  return res;
}

void MetricsHttpServer::handle_client(int client) {
  // One request per connection: read it (however fragmented), answer,
  // close. A stalled peer cannot wedge the serving thread: reads time
  // out and the connection is dropped without a response.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  Request req;
  Response res{0, "", ""};
  if (!read_request(client, req, res)) return;
  if (res.status == 0) res = dispatch(req);

  std::string response = "HTTP/1.1 " + std::to_string(res.status) + " " +
                         status_text(res.status) +
                         "\r\nContent-Type: " + res.content_type +
                         "\r\nContent-Length: " +
                         std::to_string(res.body.size()) +
                         "\r\nConnection: close\r\n\r\n" + res.body;
  std::size_t off = 0;
  while (off < response.size()) {
    const ssize_t sent =
        ::send(client, response.data() + off, response.size() - off, 0);
    if (sent <= 0) break;
    off += static_cast<std::size_t>(sent);
  }
}

MetricsHttpServer::Options parse_listen(const std::string& spec) {
  MetricsHttpServer::Options opts;
  const auto colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = spec;  // "9464"
  } else {
    if (colon > 0) opts.host = spec.substr(0, colon);  // "host:9464"
    port_str = spec.substr(colon + 1);                 // ":9464"
  }
  DVFS_REQUIRE(!port_str.empty(), "bad --listen spec: " + spec);
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(),
                      value);
  DVFS_REQUIRE(ec == std::errc{} && ptr == port_str.data() + port_str.size() &&
                   value <= 0xffff,
               "bad --listen port: " + spec);
  opts.port = static_cast<std::uint16_t>(value);
  return opts;
}

}  // namespace dvfs::obs
