#include "dvfs/obs/promtext.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "dvfs/common.h"
#include "dvfs/obs/metrics.h"

namespace dvfs::obs {

namespace {

void append_double(std::string& out, double v) {
  // Prometheus accepts Go-style floats; shortest round-trip form keeps
  // integers unsuffixed (a counter of 42 prints "42").
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DVFS_REQUIRE(ec == std::errc{}, "double formatting failed");
  out.append(buf, end);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DVFS_REQUIRE(ec == std::errc{}, "integer formatting failed");
  out.append(buf, end);
}

// Splits a registry name into its mangle-able base and a literal label
// block ("" when the name carries no labels).
std::pair<std::string, std::string> split_labels(
    const std::string& registry_name) {
  const auto brace = registry_name.find('{');
  if (brace == std::string::npos) return {registry_name, ""};
  return {registry_name.substr(0, brace), registry_name.substr(brace)};
}

std::string mangle(const std::string& base) {
  std::string out = "dvfs_";
  out.reserve(out.size() + base.size());
  for (const char c : base) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

}  // namespace

std::string prometheus_name(const std::string& registry_name) {
  const auto [base, labels] = split_labels(registry_name);
  return mangle(base) + labels;
}

std::string prometheus_labels(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  if (labels.size() == 0) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"";
    for (const char c : value) {
      // Exposition-format escaping for label values.
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string prometheus_text(const Registry& registry) {
  std::string out;

  for (const auto& [name, value] : registry.counters_snapshot()) {
    const auto [base, labels] = split_labels(name);
    // `_total` belongs to the metric family name, so it goes before the
    // label block; the TYPE line names the family without labels.
    const std::string family = mangle(base) + "_total";
    out += "# TYPE " + family + " counter\n" + family + labels + " ";
    append_u64(out, value);
    out += "\n";
  }

  for (const auto& [name, value] : registry.gauges_snapshot()) {
    const auto [base, labels] = split_labels(name);
    const std::string family = mangle(base);
    out += "# TYPE " + family + " gauge\n" + family + labels + " ";
    append_double(out, value);
    out += "\n";
  }

  for (const auto& h : registry.histograms_snapshot()) {
    const std::string pname = prometheus_name(h.name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [lower, n] : h.buckets) {
      cumulative += n;
      // Registry buckets are [2^(i-1), 2^i) over integers, so the
      // inclusive upper bound Prometheus wants is 2^i - 1 (and 0 for the
      // zero bucket).
      const std::uint64_t le = lower == 0 ? 0 : lower * 2 - 1;
      out += pname + "_bucket{le=\"";
      append_u64(out, le);
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += "\n" + pname + "_sum ";
    append_u64(out, h.sum);
    out += "\n" + pname + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

// ------------------------------------------------------------- HTTP server

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 406: return "Not Acceptable";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
                        static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Options options, BodyFn body)
    : options_(std::move(options)) {
  DVFS_REQUIRE(body != nullptr, "metrics server needs a body callback");
  const Handler metrics = [body = std::move(body)] {
    return Response{200, "text/plain; version=0.0.4; charset=utf-8", body()};
  };
  routes_["/metrics"] = metrics;
  routes_["/"] = metrics;
}

void MetricsHttpServer::add_route(const std::string& path, Handler handler) {
  DVFS_REQUIRE(!path.empty() && path.front() == '/',
               "route path must start with '/'");
  DVFS_REQUIRE(handler != nullptr, "route needs a handler");
  routes_[path] = std::move(handler);
}

bool MetricsHttpServer::accept_allows(const std::string& accept_header,
                                      const std::string& mime) {
  const std::string want = lower(trim(mime));
  const auto want_slash = want.find('/');
  if (accept_header.empty() || want_slash == std::string::npos) return true;
  const std::string want_type = want.substr(0, want_slash);

  std::size_t pos = 0;
  while (pos <= accept_header.size()) {
    const auto comma = accept_header.find(',', pos);
    std::string range = comma == std::string::npos
                            ? accept_header.substr(pos)
                            : accept_header.substr(pos, comma - pos);
    // Drop media-type parameters (";q=0.9", ";charset=...").
    const auto semi = range.find(';');
    if (semi != std::string::npos) range = range.substr(0, semi);
    range = lower(trim(range));
    if (range == "*/*" || range == want || range == want_type + "/*") {
      return true;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  DVFS_REQUIRE(listen_fd_ < 0, "metrics server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DVFS_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
             1) {
    ::close(fd);
    DVFS_REQUIRE(false, "cannot parse listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    DVFS_REQUIRE(false, "cannot bind metrics endpoint on " + options_.host +
                            ":" + std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short poll timeout bounds the shutdown latency without a self-pipe.
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

void MetricsHttpServer::handle_client(int client) {
  // One short request per connection: read the request line + headers,
  // answer, close. Enough HTTP for curl and a Prometheus scraper.
  char buf[4096];
  const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string request(buf);

  const auto line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const bool is_get = line.rfind("GET ", 0) == 0;
  const auto path_end = line.find(' ', 4);
  const std::string path = is_get && path_end != std::string::npos
                               ? line.substr(4, path_end - 4)
                               : std::string();

  // Scan headers for Accept (field names are case-insensitive).
  std::string accept;
  std::size_t pos =
      line_end == std::string::npos ? request.size() : line_end + 2;
  while (pos < request.size()) {
    const auto eol = request.find("\r\n", pos);
    const std::string header = request.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (header.empty()) break;  // blank line: end of headers
    const auto colon = header.find(':');
    if (colon != std::string::npos &&
        lower(header.substr(0, colon)) == "accept") {
      accept = trim(header.substr(colon + 1));
    }
    if (eol == std::string::npos) break;
    pos = eol + 2;
  }

  Response res{404, "text/plain; charset=utf-8", "not found\n"};
  const auto route = routes_.find(path);
  if (is_get && route != routes_.end()) {
    res = route->second();
    const auto semi = res.content_type.find(';');
    const std::string mime = semi == std::string::npos
                                 ? res.content_type
                                 : res.content_type.substr(0, semi);
    if (!accept_allows(accept, trim(mime))) {
      res = Response{406, "text/plain; charset=utf-8", "not acceptable\n"};
    }
  }

  std::string response = "HTTP/1.1 " + std::to_string(res.status) + " " +
                         status_text(res.status) +
                         "\r\nContent-Type: " + res.content_type +
                         "\r\nContent-Length: " +
                         std::to_string(res.body.size()) +
                         "\r\nConnection: close\r\n\r\n" + res.body;
  std::size_t off = 0;
  while (off < response.size()) {
    const ssize_t sent =
        ::send(client, response.data() + off, response.size() - off, 0);
    if (sent <= 0) break;
    off += static_cast<std::size_t>(sent);
  }
}

MetricsHttpServer::Options parse_listen(const std::string& spec) {
  MetricsHttpServer::Options opts;
  const auto colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = spec;  // "9464"
  } else {
    if (colon > 0) opts.host = spec.substr(0, colon);  // "host:9464"
    port_str = spec.substr(colon + 1);                 // ":9464"
  }
  DVFS_REQUIRE(!port_str.empty(), "bad --listen spec: " + spec);
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(),
                      value);
  DVFS_REQUIRE(ec == std::errc{} && ptr == port_str.data() + port_str.size() &&
                   value <= 0xffff,
               "bad --listen port: " + spec);
  opts.port = static_cast<std::uint16_t>(value);
  return opts;
}

}  // namespace dvfs::obs
