#include "dvfs/obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dvfs::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  DVFS_REQUIRE(std::isfinite(d), "JSON cannot represent NaN or infinity");
  // Integral values within the exactly-representable range print without
  // an exponent or decimal point, keeping counters readable.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  DVFS_REQUIRE(ec == std::errc{}, "number formatting failed");
  out.append(buf, ptr);
}

void dump_impl(const Json& v, std::string& out, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    append_number(out, v.as_double());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      dump_impl(a[i], out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : o) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      append_escaped(out, key);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_impl(value, out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    DVFS_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    DVFS_REQUIRE(false,
                 "JSON parse error at offset " + std::to_string(pos_) + ": " +
                     what);
    std::abort();  // unreachable; DVFS_REQUIRE(false, ...) always throws
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void expect_word(std::string_view word) {
    for (const char c : word) expect(c);
  }

  Json value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json(string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json(nullptr);
      default: return number();
    }
  }

  Json object(int depth) {
    expect('{');
    Json::Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.insert_or_assign(std::move(key), value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(o));
  }

  Json array(int depth) {
    expect('[');
    Json::Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(a));
    }
    while (true) {
      a.push_back(value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(a));
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out, parse_unit()); break;
        default: fail("invalid escape sequence");
      }
    }
    return out;
  }

  unsigned parse_unit() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return cp;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Combine surrogate pairs (trace names never need them, but a parser
    // that corrupts them would be worse than none).
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      expect('\\');
      expect('u');
      const unsigned lo = parse_unit();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || ptr != last) fail("malformed number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void write_json_file(const std::string& path, const Json& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DVFS_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << value.dump(indent) << '\n';
  out.flush();
  DVFS_REQUIRE(out.good(), "write failed: " + path);
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DVFS_REQUIRE(in.good(), "cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace dvfs::obs
