#include "dvfs/obs/build_info.h"

#include "dvfs/obs/metrics.h"
#include "dvfs/obs/promtext.h"

#ifndef DVFS_VERSION
#define DVFS_VERSION "unknown"
#endif
#ifndef DVFS_COMPILER
#define DVFS_COMPILER "unknown"
#endif
#ifndef DVFS_BUILD_TYPE
#define DVFS_BUILD_TYPE "unknown"
#endif

namespace dvfs::obs {

const std::string& build_info_metric_name() {
  static const std::string name =
      "build_info" + prometheus_labels({{"version", DVFS_VERSION},
                                        {"compiler", DVFS_COMPILER},
                                        {"build_type", DVFS_BUILD_TYPE}});
  return name;
}

void register_build_info(Registry& registry) {
  registry.gauge(build_info_metric_name()).set(1.0);
}

}  // namespace dvfs::obs
