#include "dvfs/obs/health.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "dvfs/common.h"
#include "dvfs/obs/promtext.h"
#include "dvfs/obs/recorder.h"

namespace dvfs::obs::health {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

SignalKind signal_kind_from(const std::string& s) {
  if (s == "gauge") return SignalKind::kGauge;
  if (s == "counter_rate") return SignalKind::kCounterRate;
  if (s == "counter_ratio") return SignalKind::kCounterRatio;
  if (s == "counter_ratio_total") return SignalKind::kCounterRatioTotal;
  if (s == "histogram_quantile") return SignalKind::kHistogramQuantile;
  DVFS_REQUIRE(false, "unknown signal kind: " + s);
  return SignalKind::kGauge;  // unreachable
}

Agg agg_from(const std::string& s) {
  if (s == "last") return Agg::kLast;
  if (s == "mean") return Agg::kMean;
  if (s == "max") return Agg::kMax;
  if (s == "min") return Agg::kMin;
  if (s == "quantile") return Agg::kQuantile;
  DVFS_REQUIRE(false, "unknown window aggregation: " + s);
  return Agg::kLast;  // unreachable
}

Op op_from(const std::string& s) {
  if (s == ">") return Op::kGreater;
  if (s == "<") return Op::kLess;
  DVFS_REQUIRE(false, "unknown comparison op (want > or <): " + s);
  return Op::kGreater;  // unreachable
}

double get_number(const Json& obj, const std::string& key, double fallback) {
  return obj.contains(key) ? obj.at(key).as_double() : fallback;
}

std::string get_string(const Json& obj, const std::string& key,
                       const std::string& fallback) {
  return obj.contains(key) ? obj.at(key).as_string() : fallback;
}

Json number_or_null(double v) {
  return std::isfinite(v) ? Json(v) : Json(nullptr);
}

void validate(const Rule& r) {
  DVFS_REQUIRE(!r.name.empty(), "health rule needs a name");
  DVFS_REQUIRE(!r.signal.metric.empty(),
               "health rule " + r.name + " needs a signal metric");
  DVFS_REQUIRE(std::isfinite(r.threshold),
               "health rule " + r.name + " needs a finite threshold");
  DVFS_REQUIRE(r.short_window_s > 0.0 && r.long_window_s > 0.0,
               "health rule " + r.name + " needs positive windows");
  DVFS_REQUIRE(r.short_window_s <= r.long_window_s,
               "health rule " + r.name +
                   ": short window must not exceed the long window");
  DVFS_REQUIRE(r.for_s >= 0.0 && r.keep_firing_s >= 0.0,
               "health rule " + r.name +
                   ": for/keep_firing durations must be non-negative");
  const bool ratio = r.signal.kind == SignalKind::kCounterRatio ||
                     r.signal.kind == SignalKind::kCounterRatioTotal;
  DVFS_REQUIRE(!ratio || !r.signal.denominator.empty(),
               "health rule " + r.name + ": ratio signals need a denominator");
  DVFS_REQUIRE(r.signal.quantile >= 0.0 && r.signal.quantile <= 1.0 &&
                   r.signal.agg_quantile >= 0.0 && r.signal.agg_quantile <= 1.0,
               "health rule " + r.name + ": quantiles must be in [0, 1]");
}

}  // namespace

const char* to_string(SignalKind k) {
  switch (k) {
    case SignalKind::kGauge: return "gauge";
    case SignalKind::kCounterRate: return "counter_rate";
    case SignalKind::kCounterRatio: return "counter_ratio";
    case SignalKind::kCounterRatioTotal: return "counter_ratio_total";
    case SignalKind::kHistogramQuantile: return "histogram_quantile";
  }
  return "?";
}

const char* to_string(Agg a) {
  switch (a) {
    case Agg::kLast: return "last";
    case Agg::kMean: return "mean";
    case Agg::kMax: return "max";
    case Agg::kMin: return "min";
    case Agg::kQuantile: return "quantile";
  }
  return "?";
}

const char* to_string(Op o) {
  switch (o) {
    case Op::kGreater: return ">";
    case Op::kLess: return "<";
  }
  return "?";
}

const char* to_string(AlertState s) {
  switch (s) {
    case AlertState::kOk: return "ok";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

std::uint64_t rule_hash(const std::string& name) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::vector<Rule> builtin_rules() {
  std::vector<Rule> rules;
  {
    // Realized governor decisions priced against the best candidate of
    // the same decision (the paper's marginal-cost argmin makes this 0
    // for LMC/WBG by construction; a baseline placement like round-robin
    // accumulates real overhead).
    Rule r;
    r.name = "governor-cost-overhead";
    r.summary = "cumulative chosen-vs-best decision cost overhead";
    r.signal.kind = SignalKind::kGauge;
    r.signal.metric = "governor.cost.margin_ratio";
    r.signal.agg = Agg::kMax;
    r.threshold = 0.25;
    r.short_window_s = 1.0;
    r.long_window_s = 5.0;
    r.keep_firing_s = 5.0;
    rules.push_back(std::move(r));
  }
  {
    // One simulated hour of queue wait at p99.
    Rule r;
    r.name = "queue-wait-p99";
    r.summary = "p99 task queue wait exceeds one simulated hour";
    r.signal.kind = SignalKind::kHistogramQuantile;
    r.signal.metric = "sim.task.queue_wait_us";
    r.signal.quantile = 0.99;
    r.threshold = 3.6e9;  // microseconds
    r.short_window_s = 1.0;
    r.long_window_s = 5.0;
    r.keep_firing_s = 5.0;
    rules.push_back(std::move(r));
  }
  {
    // Latching ratio: a drop burst must stay visible after the burst —
    // dropped decisions are unrecoverable, so the alert holds until the
    // cumulative rate dilutes below threshold (or the run ends).
    Rule r;
    r.name = "recorder-drop-rate";
    r.summary = "flight recorder dropping more than 1% of events";
    r.signal.kind = SignalKind::kCounterRatioTotal;
    r.signal.metric = "recorder.events_dropped";
    r.signal.denominator = {"recorder.events_recorded",
                            "recorder.events_dropped"};
    r.threshold = 0.01;
    r.short_window_s = 1.0;
    r.long_window_s = 5.0;
    r.keep_firing_s = 30.0;
    rules.push_back(std::move(r));
  }
  for (const char* dim : {"energy", "duration"}) {
    // measured/predicted calibration ratio, centered on 1.0. Exactly 0
    // means "no measured spans yet" — ignore, don't alert.
    Rule r;
    r.name = std::string("hw-drift-") + dim;
    r.summary = std::string("hardware ") + dim +
                " deviates >50% from the model's prediction";
    r.signal.kind = SignalKind::kGauge;
    r.signal.metric = std::string("rt.drift.") + dim + "_ratio";
    r.signal.center = 1.0;
    r.signal.has_center = true;
    r.signal.ignore_zero = true;
    r.threshold = 0.5;
    r.short_window_s = 1.0;
    r.long_window_s = 5.0;
    r.keep_firing_s = 30.0;
    rules.push_back(std::move(r));
  }
  {
    // Scheduling-service admission health: time from submit() to the
    // owning shard's placement. 100ms at p99 means the shards are not
    // keeping up with the offered load (rings backing up), long before
    // hard 503 backpressure kicks in. Inert when the service is not
    // running — an absent histogram yields NaN, which never breaches.
    Rule r;
    r.name = "admission-latency-p99";
    r.summary = "service p99 admission latency exceeds 100ms";
    r.signal.kind = SignalKind::kHistogramQuantile;
    r.signal.metric = "svc.admission.latency_us";
    r.signal.quantile = 0.99;
    r.threshold = 1e5;  // microseconds
    r.short_window_s = 1.0;
    r.long_window_s = 5.0;
    r.keep_firing_s = 5.0;
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<Rule> rules_from_json(const Json& doc) {
  DVFS_REQUIRE(doc.is_object() && doc.contains("schema") &&
                   doc.at("schema").as_string() == "dvfs-health-v1",
               "health config must carry schema dvfs-health-v1");
  DVFS_REQUIRE(doc.contains("rules") && doc.at("rules").is_array(),
               "health config needs a rules array");
  std::vector<Rule> rules;
  std::set<std::string> names;
  for (const Json& entry : doc.at("rules").as_array()) {
    DVFS_REQUIRE(entry.is_object(), "health rule must be an object");
    Rule r;
    r.name = entry.at("name").as_string();
    r.summary = get_string(entry, "summary", "");
    r.severity = get_string(entry, "severity", "page");
    const Json& sig = entry.at("signal");
    r.signal.kind = signal_kind_from(sig.at("kind").as_string());
    r.signal.metric = sig.at("metric").as_string();
    if (sig.contains("denominator")) {
      for (const Json& d : sig.at("denominator").as_array()) {
        r.signal.denominator.push_back(d.as_string());
      }
    }
    r.signal.quantile = get_number(sig, "quantile", 0.99);
    r.signal.agg = agg_from(get_string(sig, "agg", "last"));
    r.signal.agg_quantile = get_number(sig, "agg_quantile", 0.5);
    if (sig.contains("center")) {
      r.signal.center = sig.at("center").as_double();
      r.signal.has_center = true;
    }
    r.signal.ignore_zero =
        sig.contains("ignore_zero") && sig.at("ignore_zero").as_bool();
    r.op = op_from(get_string(entry, "op", ">"));
    r.threshold = entry.at("threshold").as_double();
    r.short_window_s = get_number(entry, "short_window_s", 1.0);
    r.long_window_s = get_number(entry, "long_window_s", 5.0);
    r.for_s = get_number(entry, "for_s", 0.0);
    r.keep_firing_s = get_number(entry, "keep_firing_s", 0.0);
    validate(r);
    DVFS_REQUIRE(names.insert(r.name).second,
                 "duplicate health rule name: " + r.name);
    rules.push_back(std::move(r));
  }
  return rules;
}

Json rules_to_json(const std::vector<Rule>& rules) {
  Json::Array entries;
  for (const Rule& r : rules) {
    Json::Object sig{{"kind", Json(to_string(r.signal.kind))},
                     {"metric", Json(r.signal.metric)}};
    if (!r.signal.denominator.empty()) {
      Json::Array den;
      for (const std::string& d : r.signal.denominator) den.push_back(Json(d));
      sig.emplace("denominator", Json(std::move(den)));
    }
    if (r.signal.kind == SignalKind::kHistogramQuantile) {
      sig.emplace("quantile", Json(r.signal.quantile));
    }
    sig.emplace("agg", Json(to_string(r.signal.agg)));
    if (r.signal.agg == Agg::kQuantile) {
      sig.emplace("agg_quantile", Json(r.signal.agg_quantile));
    }
    if (r.signal.has_center) sig.emplace("center", Json(r.signal.center));
    if (r.signal.ignore_zero) sig.emplace("ignore_zero", Json(true));
    Json::Object entry{{"name", Json(r.name)},
                       {"signal", Json(std::move(sig))},
                       {"op", Json(to_string(r.op))},
                       {"threshold", Json(r.threshold)},
                       {"short_window_s", Json(r.short_window_s)},
                       {"long_window_s", Json(r.long_window_s)},
                       {"for_s", Json(r.for_s)},
                       {"keep_firing_s", Json(r.keep_firing_s)},
                       {"severity", Json(r.severity)}};
    if (!r.summary.empty()) entry.emplace("summary", Json(r.summary));
    entries.push_back(Json(std::move(entry)));
  }
  return Json(Json::Object{{"schema", Json("dvfs-health-v1")},
                           {"rules", Json(std::move(entries))}});
}

std::vector<Rule> load_rules(const std::string& path_or_empty) {
  if (path_or_empty.empty() || path_or_empty == "builtin") {
    return builtin_rules();
  }
  return rules_from_json(read_json_file(path_or_empty));
}

// ---------------------------------------------------------------- engine

SloEngine::SloEngine(std::vector<Rule> rules) : rules_(std::move(rules)) {
  for (const Rule& r : rules_) validate(r);
  states_.resize(rules_.size());
}

void SloEngine::prepare(TimeSeriesStore& store) const {
  for (const Rule& r : rules_) {
    if (r.signal.kind == SignalKind::kHistogramQuantile) {
      store.track_quantile(r.signal.metric, r.signal.quantile);
    }
  }
}

double SloEngine::signal_value(const Signal& signal,
                               const TimeSeriesStore& store, double t,
                               double window_s) const {
  const auto last_in_window = [&](const std::string& key) {
    const SeriesRing* ring = store.find(key);
    if (ring == nullptr) return kNan;
    const SeriesRing::WindowStats stats = ring->window_stats(t, window_s);
    return stats.count == 0 ? kNan : stats.last;
  };

  switch (signal.kind) {
    case SignalKind::kGauge:
    case SignalKind::kHistogramQuantile: {
      const std::string key =
          signal.kind == SignalKind::kGauge
              ? signal.metric
              : TimeSeriesStore::quantile_key(signal.metric, signal.quantile);
      const SeriesRing* ring = store.find(key);
      if (ring == nullptr) return kNan;
      std::vector<double> values;
      for (const SeriesRing::Sample& s : ring->window(t, window_s)) {
        if (signal.ignore_zero && s.v == 0.0) continue;
        if (std::isnan(s.v)) continue;  // derived quantile of an empty hist
        values.push_back(signal.has_center ? std::abs(s.v - signal.center)
                                           : s.v);
      }
      if (values.empty()) return kNan;
      switch (signal.agg) {
        case Agg::kLast:
          return values.back();
        case Agg::kMean: {
          double sum = 0.0;
          for (const double v : values) sum += v;
          return sum / static_cast<double>(values.size());
        }
        case Agg::kMax:
          return *std::max_element(values.begin(), values.end());
        case Agg::kMin:
          return *std::min_element(values.begin(), values.end());
        case Agg::kQuantile: {
          std::sort(values.begin(), values.end());
          const auto rank = std::max<std::size_t>(
              1, static_cast<std::size_t>(std::ceil(
                     signal.agg_quantile *
                     static_cast<double>(values.size()))));
          return values[std::min(rank, values.size()) - 1];
        }
      }
      return kNan;
    }
    case SignalKind::kCounterRate: {
      const SeriesRing* ring = store.find(signal.metric);
      return ring == nullptr ? kNan : ring->rate(t, window_s);
    }
    case SignalKind::kCounterRatio: {
      const SeriesRing* num = store.find(signal.metric);
      if (num == nullptr) return kNan;
      const double dn = num->delta(t, window_s);
      if (std::isnan(dn)) return kNan;
      double dd = 0.0;
      for (const std::string& d : signal.denominator) {
        const SeriesRing* den = store.find(d);
        if (den == nullptr) return kNan;
        const double v = den->delta(t, window_s);
        if (std::isnan(v)) return kNan;
        dd += v;
      }
      return dd > 0.0 ? dn / dd : kNan;
    }
    case SignalKind::kCounterRatioTotal: {
      const double num = last_in_window(signal.metric);
      if (std::isnan(num)) return kNan;
      double den = 0.0;
      for (const std::string& d : signal.denominator) {
        const double v = last_in_window(d);
        if (std::isnan(v)) return kNan;
        den += v;
      }
      return den > 0.0 ? num / den : kNan;
    }
  }
  return kNan;
}

SloEngine::Evaluation SloEngine::step(std::size_t rule_index, double t,
                                      double short_value, double long_value) {
  DVFS_REQUIRE(rule_index < rules_.size(), "rule index out of range");
  const Rule& rule = rules_[rule_index];
  RuleState& st = states_[rule_index];

  Evaluation ev;
  ev.rule = rule_index;
  ev.t = t;
  ev.short_value = short_value;
  ev.long_value = long_value;
  ev.before = st.state;

  // Multi-window burn rate: the condition holds only when BOTH windows
  // breach. Missing data (NaN) never breaches — and never resolves
  // faster than the hysteresis below allows.
  bool breach = false;
  if (!std::isnan(short_value) && !std::isnan(long_value)) {
    breach = rule.op == Op::kGreater
                 ? short_value > rule.threshold && long_value > rule.threshold
                 : short_value < rule.threshold && long_value < rule.threshold;
  }

  if (breach) {
    if (!st.breaching) {
      st.breaching = true;
      st.breach_since = t;
    }
    st.last_breach_t = t;
    st.ever_breached = true;
    switch (st.state) {
      case AlertState::kOk:
      case AlertState::kResolved:
      case AlertState::kPending:
        st.state = t - st.breach_since >= rule.for_s ? AlertState::kFiring
                                                     : AlertState::kPending;
        break;
      case AlertState::kFiring:
        break;
    }
  } else {
    st.breaching = false;
    switch (st.state) {
      case AlertState::kOk:
        break;
      case AlertState::kPending:
        // Prometheus semantics: a pending alert drops straight back.
        st.state = AlertState::kOk;
        break;
      case AlertState::kFiring:
        // Keep-firing hysteresis: flapping input inside the window must
        // not flap the alert.
        if (rule.keep_firing_s <= 0.0 ||
            t - st.last_breach_t >= rule.keep_firing_s) {
          st.state = AlertState::kResolved;
        }
        break;
      case AlertState::kResolved:
        st.state = AlertState::kOk;
        break;
    }
  }
  st.short_value = short_value;
  st.long_value = long_value;
  ev.after = st.state;
  return ev;
}

std::vector<SloEngine::Evaluation> SloEngine::evaluate(
    const TimeSeriesStore& store, double t) {
  std::vector<Evaluation> out;
  out.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const double short_v =
        signal_value(rules_[i].signal, store, t, rules_[i].short_window_s);
    const double long_v =
        signal_value(rules_[i].signal, store, t, rules_[i].long_window_s);
    out.push_back(step(i, t, short_v, long_v));
  }
  return out;
}

AlertState SloEngine::state(std::size_t rule_index) const {
  DVFS_REQUIRE(rule_index < states_.size(), "rule index out of range");
  return states_[rule_index].state;
}

std::size_t SloEngine::firing_count() const {
  std::size_t n = 0;
  for (const RuleState& st : states_) {
    if (st.state == AlertState::kFiring) ++n;
  }
  return n;
}

void SloEngine::publish(Registry& registry) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    double v = 0.0;
    if (states_[i].state == AlertState::kPending) v = 1.0;
    if (states_[i].state == AlertState::kFiring) v = 2.0;
    registry
        .gauge("alert.state" + prometheus_labels({{"alert", rules_[i].name}}))
        .set(v);
  }
  registry.gauge("health.firing")
      .set(static_cast<double>(firing_count()));
}

Json SloEngine::status_json(double t) const {
  Json::Array alerts;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& r = rules_[i];
    const RuleState& st = states_[i];
    alerts.push_back(Json(Json::Object{
        {"name", Json(r.name)},
        {"severity", Json(r.severity)},
        {"state", Json(to_string(st.state))},
        {"op", Json(to_string(r.op))},
        {"threshold", Json(r.threshold)},
        {"short_window_s", Json(r.short_window_s)},
        {"long_window_s", Json(r.long_window_s)},
        {"short_value", number_or_null(st.short_value)},
        {"long_value", number_or_null(st.long_value)}}));
  }
  return Json(Json::Object{
      {"schema", Json("dvfs-healthz-v1")},
      {"healthy", Json(firing_count() == 0)},
      {"t", Json(t)},
      {"firing", Json(static_cast<std::uint64_t>(firing_count()))},
      {"alerts", Json(std::move(alerts))}});
}

// --------------------------------------------------------------- monitor

HealthMonitor::HealthMonitor(Registry& registry, std::vector<Rule> rules)
    : HealthMonitor(registry, std::move(rules), Options{}) {}

HealthMonitor::HealthMonitor(Registry& registry, std::vector<Rule> rules,
                             Options options)
    : registry_(registry),
      options_(options),
      engine_(std::move(rules)),
      store_(options.series_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  DVFS_REQUIRE(options_.period_s > 0.0, "health period must be positive");
  engine_.prepare(store_);
}

HealthMonitor::~HealthMonitor() { stop(); }

double HealthMonitor::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void HealthMonitor::tick_locked(double t) {
  store_.sample(registry_, t);
  const std::vector<SloEngine::Evaluation> evals = engine_.evaluate(store_, t);
  if (channel_ != nullptr) {
    for (const SloEngine::Evaluation& ev : evals) {
      const std::uint64_t hash = rule_hash(engine_.rules()[ev.rule].name);
      channel_->record(
          {.type = static_cast<std::uint8_t>(dfr::EventType::kHealthSample),
           .aux = static_cast<std::uint16_t>(ev.rule),
           .time_s = t,
           .task = hash,
           .u0 = static_cast<std::uint64_t>(ev.after),
           .f0 = ev.short_value,
           .f1 = ev.long_value});
      if (ev.transition()) {
        channel_->record(
            {.type = static_cast<std::uint8_t>(dfr::EventType::kAlert),
             .flags = static_cast<std::uint8_t>(ev.before),
             .aux = static_cast<std::uint16_t>(ev.rule),
             .time_s = t,
             .task = hash,
             .u0 = static_cast<std::uint64_t>(ev.after),
             .f0 = ev.short_value,
             .f1 = ev.long_value});
      }
    }
  }
  engine_.publish(registry_);
  firing_.store(engine_.firing_count(), std::memory_order_relaxed);
  tick_count_.fetch_add(1, std::memory_order_relaxed);
}

void HealthMonitor::tick() {
  const std::scoped_lock lock(mu_);
  tick_locked(now_s());
}

void HealthMonitor::start() {
  const std::scoped_lock lock(mu_);
  DVFS_REQUIRE(!thread_.joinable(), "health monitor already started");
  stopping_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      if (cv_.wait_for(lock, std::chrono::duration<double>(options_.period_s),
                       [this] { return stopping_; })) {
        break;
      }
      tick_locked(now_s());
    }
  });
}

void HealthMonitor::stop() {
  {
    const std::scoped_lock lock(mu_);
    if (stopping_ && !thread_.joinable()) return;  // already stopped
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final tick so the published gauges, the recorded events, and any
  // subsequent metrics snapshot reflect the end state of the run.
  const std::scoped_lock lock(mu_);
  tick_locked(now_s());
}

void HealthMonitor::settle() {
  double max_for = 0.0;
  for (const Rule& r : engine_.rules()) max_for = std::max(max_for, r.for_s);
  const double deadline = now_s() + max_for + 2.0 * options_.period_s;
  for (;;) {
    bool any_pending = false;
    {
      const std::scoped_lock lock(mu_);
      tick_locked(now_s());
      for (std::size_t i = 0; i < engine_.rules().size(); ++i) {
        if (engine_.state(i) == AlertState::kPending) any_pending = true;
      }
    }
    if (!any_pending || now_s() >= deadline) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.period_s));
  }
}

const std::vector<Rule>& HealthMonitor::rules() const {
  return engine_.rules();  // immutable after construction; no lock needed
}

std::vector<AlertState> HealthMonitor::states() const {
  const std::scoped_lock lock(mu_);
  std::vector<AlertState> out;
  for (std::size_t i = 0; i < engine_.rules().size(); ++i) {
    out.push_back(engine_.state(i));
  }
  return out;
}

Json HealthMonitor::status_json() const {
  const std::scoped_lock lock(mu_);
  return engine_.status_json(now_s());
}

}  // namespace dvfs::obs::health
