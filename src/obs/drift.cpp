#include "dvfs/obs/drift.h"

#include <cmath>

namespace dvfs::obs::hw {

namespace {

std::uint64_t ratio_ppm(double measured, double predicted) {
  if (predicted <= 0.0) return 0;
  return static_cast<std::uint64_t>(
      std::llround(measured / predicted * 1e6));
}

}  // namespace

DriftTracker::DriftTracker(Registry& registry)
    : cycles_gauge_(registry.gauge("rt.drift.cycles_ratio")),
      duration_gauge_(registry.gauge("rt.drift.duration_ratio")),
      energy_gauge_(registry.gauge("rt.drift.energy_ratio")),
      cycles_ppm_(registry.histogram("rt.drift.cycles_ratio_ppm")),
      duration_ppm_(registry.histogram("rt.drift.duration_ratio_ppm")),
      energy_ppm_(registry.histogram("rt.drift.energy_ratio_ppm")),
      cpi_milli_(registry.histogram("rt.hw.cpi_milli")),
      measured_counter_(registry.counter("rt.hw.spans_measured")),
      model_counter_(registry.counter("rt.hw.spans_model")) {}

void DriftTracker::observe(const SpanPrediction& predicted,
                           const SpanMeasurement& measured) {
  const bool counters_real = is_measured(measured.counter_source);
  const bool time_real = is_measured(measured.time_source);
  const bool energy_real = is_measured(measured.energy_source);

  if (counters_real || time_real || energy_real) {
    measured_counter_.inc();
  } else {
    model_counter_.inc();
  }
  if (counters_real) {
    cycles_ppm_.observe(ratio_ppm(static_cast<double>(measured.cycles),
                                  static_cast<double>(predicted.cycles)));
    if (measured.instructions > 0) {
      cpi_milli_.observe(
          static_cast<std::uint64_t>(std::llround(measured.cpi() * 1e3)));
    }
  }
  if (time_real) {
    duration_ppm_.observe(ratio_ppm(measured.seconds, predicted.seconds));
  }
  if (energy_real) {
    energy_ppm_.observe(ratio_ppm(measured.joules, predicted.joules));
  }

  const std::scoped_lock lock(mu_);
  if (counters_real || time_real || energy_real) {
    ++spans_measured_;
  } else {
    ++spans_model_;
  }
  if (counters_real) {
    cycles_.predicted_sum += static_cast<double>(predicted.cycles);
    cycles_.measured_sum += static_cast<double>(measured.cycles);
    cycles_gauge_.set(cycles_.ratio());
  }
  if (time_real) {
    duration_.predicted_sum += predicted.seconds;
    duration_.measured_sum += measured.seconds;
    duration_gauge_.set(duration_.ratio());
  }
  if (energy_real) {
    energy_.predicted_sum += predicted.joules;
    energy_.measured_sum += measured.joules;
    energy_gauge_.set(energy_.ratio());
  }
}

DriftSummary DriftTracker::summary() const {
  const std::scoped_lock lock(mu_);
  DriftSummary s;
  s.cycles_ratio = cycles_.ratio();
  s.duration_ratio = duration_.ratio();
  s.energy_ratio = energy_.ratio();
  s.spans_measured = spans_measured_;
  s.spans_model = spans_model_;
  return s;
}

}  // namespace dvfs::obs::hw
