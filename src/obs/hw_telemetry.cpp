#include "dvfs/obs/hw_telemetry.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <ctime>

namespace dvfs::obs::hw {

namespace fs = std::filesystem;

namespace {

bool force_fallback_env() {
  const char* v = std::getenv("DVFS_HW_FORCE_FALLBACK");
  return v != nullptr && v[0] == '1';
}

/// CLOCK_THREAD_CPUTIME_ID as seconds; the POSIX thread clock exists on
/// every supported target and needs no privilege.
Seconds thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<Seconds>(ts.tv_sec) +
         static_cast<Seconds>(ts.tv_nsec) * 1e-9;
}

std::uint64_t read_u64_file(const std::string& path, bool* ok = nullptr) {
  std::ifstream is(path);
  std::uint64_t v = 0;
  if (is >> v) {
    if (ok != nullptr) *ok = true;
    return v;
  }
  if (ok != nullptr) *ok = false;
  return 0;
}

std::string read_line_file(const std::string& path) {
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  return line;
}

#if defined(__linux__)

/// Two-counter perf group (cycles leader + instructions) attached to the
/// calling thread. Multiplex-scaled via TOTAL_TIME_ENABLED/RUNNING.
class PerfThreadCounters {
 public:
  PerfThreadCounters() {
    cycles_fd_ = open_counter(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (cycles_fd_ < 0) return;
    instructions_fd_ = open_counter(PERF_COUNT_HW_INSTRUCTIONS, cycles_fd_);
    // Reset + enable the whole group once; spans read cumulative values.
    ioctl(cycles_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(cycles_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }

  ~PerfThreadCounters() {
    if (instructions_fd_ >= 0) ::close(instructions_fd_);
    if (cycles_fd_ >= 0) ::close(cycles_fd_);
  }

  PerfThreadCounters(const PerfThreadCounters&) = delete;
  PerfThreadCounters& operator=(const PerfThreadCounters&) = delete;

  [[nodiscard]] bool ok() const { return cycles_fd_ >= 0; }

  struct Sample {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
  };

  /// Cumulative, multiplex-scaled counter values since enable.
  [[nodiscard]] Sample read() const {
    Sample s;
    if (cycles_fd_ < 0) return s;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[].
    struct {
      std::uint64_t nr;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
      std::uint64_t values[2];
    } buf{};
    const ssize_t n = ::read(cycles_fd_, &buf, sizeof(buf));
    if (n < static_cast<ssize_t>(4 * sizeof(std::uint64_t))) return s;
    double scale = 1.0;
    if (buf.time_running > 0 && buf.time_running < buf.time_enabled) {
      scale = static_cast<double>(buf.time_enabled) /
              static_cast<double>(buf.time_running);
    }
    s.cycles = static_cast<std::uint64_t>(
        static_cast<double>(buf.values[0]) * scale);
    if (buf.nr >= 2 && instructions_fd_ >= 0) {
      s.instructions = static_cast<std::uint64_t>(
          static_cast<double>(buf.values[1]) * scale);
    }
    return s;
  }

 private:
  static int open_counter(std::uint64_t config, int group_fd) {
    perf_event_attr attr{};
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0;
    attr.exclude_kernel = 1;  // lowers the paranoid threshold needed
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    // pid=0, cpu=-1: this thread, any CPU it migrates to.
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
  }

  int cycles_fd_ = -1;
  int instructions_fd_ = -1;
};

#endif  // __linux__

/// LinuxHwProvider's per-thread session. Counter and energy backends are
/// resolved per dimension; anything unmeasurable is charged from the
/// model and labeled `model`.
class LinuxThreadTelemetry final : public ThreadTelemetry {
 public:
  LinuxThreadTelemetry(bool try_perf, bool use_timer, RaplReader* rapl) {
    use_timer_ = use_timer;
#if defined(__linux__)
    if (try_perf) {
      auto perf = std::make_unique<PerfThreadCounters>();
      if (perf->ok()) perf_ = std::move(perf);
    }
#else
    (void)try_perf;
#endif
    rapl_ = rapl;
  }

  void begin_span(const SpanPrediction&) override {
#if defined(__linux__)
    if (perf_ != nullptr) start_counters_ = perf_->read();
#endif
    if (use_timer_) start_cpu_s_ = thread_cpu_seconds();
    if (rapl_ != nullptr) start_energy_ = rapl_->read();
  }

  SpanMeasurement end_span(const SpanPrediction& predicted) override {
    SpanMeasurement m;
#if defined(__linux__)
    if (perf_ != nullptr) {
      const PerfThreadCounters::Sample end = perf_->read();
      m.cycles = end.cycles - start_counters_.cycles;
      m.instructions = end.instructions - start_counters_.instructions;
      m.counter_source = Source::kPerf;
    }
#endif
    if (m.counter_source == Source::kUnavailable) {
      m.cycles = predicted.cycles;
      m.instructions = 0;
      m.counter_source = Source::kModel;
    }
    if (use_timer_) {
      m.seconds = thread_cpu_seconds() - start_cpu_s_;
      m.time_source = Source::kThreadTimer;
    } else {
      m.seconds = predicted.seconds;
      m.time_source = Source::kModel;
    }
    if (rapl_ != nullptr) {
      const RaplReader::Reading end = rapl_->read();
      // Prefer the core domain when present: it excludes uncore/DRAM and
      // attributes tighter to instruction execution.
      const Joules delta = end.has_core
                               ? end.core_j - start_energy_.core_j
                               : end.package_j - start_energy_.package_j;
      m.joules = delta < 0.0 ? 0.0 : delta;
      m.energy_source = Source::kRapl;
      m.energy_is_shared = true;
    } else {
      m.joules = predicted.joules;
      m.energy_source = Source::kModel;
    }
    return m;
  }

 private:
#if defined(__linux__)
  std::unique_ptr<PerfThreadCounters> perf_;
  PerfThreadCounters::Sample start_counters_;
#endif
  bool use_timer_ = false;
  Seconds start_cpu_s_ = 0.0;
  RaplReader* rapl_ = nullptr;
  RaplReader::Reading start_energy_;
};

/// FakeHwProvider's session: measurement := prediction * skew.
class FakeThreadTelemetry final : public ThreadTelemetry {
 public:
  explicit FakeThreadTelemetry(FakeHwProvider::Config config)
      : config_(config) {}

  void begin_span(const SpanPrediction&) override {}

  SpanMeasurement end_span(const SpanPrediction& predicted) override {
    SpanMeasurement m;
    const double cycles =
        static_cast<double>(predicted.cycles) * config_.cycles_skew;
    m.cycles = static_cast<std::uint64_t>(std::llround(cycles));
    m.instructions =
        static_cast<std::uint64_t>(std::llround(cycles * config_.ipc));
    m.seconds = predicted.seconds * config_.time_skew;
    m.joules = predicted.joules * config_.energy_skew;
    m.counter_source = Source::kFake;
    m.time_source = Source::kFake;
    m.energy_source = Source::kFake;
    return m;
  }

 private:
  FakeHwProvider::Config config_;
};

}  // namespace

// ----------------------------------------------------------- RaplReader

RaplReader::RaplReader(std::string root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return;

  const auto add_domain = [&](const fs::path& dir, bool is_core) {
    const std::string energy_path = (dir / "energy_uj").string();
    bool ok = false;
    const std::uint64_t uj = read_u64_file(energy_path, &ok);
    if (!ok) return;  // unreadable (permissions) => skip, not crash
    Domain d;
    d.energy_path = energy_path;
    d.max_range_uj = read_u64_file((dir / "max_energy_range_uj").string());
    d.last_uj = uj;
    d.is_core = is_core;
    domains_.push_back(std::move(d));
  };

  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string leaf = entry.path().filename().string();
    // Package domains are intel-rapl:N (exactly one colon).
    if (leaf.rfind("intel-rapl:", 0) != 0 ||
        leaf.find(':', sizeof("intel-rapl:") - 1) != std::string::npos) {
      continue;
    }
    const std::string name = read_line_file((entry.path() / "name").string());
    if (name.rfind("package", 0) != 0) continue;
    add_domain(entry.path(), /*is_core=*/false);
    // Subdomains intel-rapl:N:M; keep the one named "core".
    std::error_code sub_ec;
    for (const auto& sub : fs::directory_iterator(entry.path(), sub_ec)) {
      const std::string sub_leaf = sub.path().filename().string();
      if (sub_leaf.rfind(leaf + ":", 0) != 0) continue;
      if (read_line_file((sub.path() / "name").string()) == "core") {
        add_domain(sub.path(), /*is_core=*/true);
      }
    }
  }
}

std::size_t RaplReader::num_packages() const {
  std::size_t n = 0;
  for (const Domain& d : domains_) {
    if (!d.is_core) ++n;
  }
  return n;
}

RaplReader::Reading RaplReader::read() {
  const std::scoped_lock lock(mu_);
  Reading r;
  for (Domain& d : domains_) {
    bool ok = false;
    const std::uint64_t uj = read_u64_file(d.energy_path, &ok);
    if (ok) {
      std::uint64_t delta = 0;
      if (uj >= d.last_uj) {
        delta = uj - d.last_uj;
      } else if (d.max_range_uj > 0) {
        // Counter wrapped: it counts modulo max_energy_range_uj.
        delta = d.max_range_uj - d.last_uj + uj;
      }
      d.accumulated_uj += delta;
      d.last_uj = uj;
    }
    if (d.is_core) {
      r.core_j += static_cast<Joules>(d.accumulated_uj) * 1e-6;
      r.has_core = true;
    } else {
      r.package_j += static_cast<Joules>(d.accumulated_uj) * 1e-6;
    }
  }
  return r;
}

void make_fake_powercap_tree(const std::string& dir, std::size_t packages,
                             bool with_core_domain,
                             std::uint64_t max_range_uj) {
  DVFS_REQUIRE(packages >= 1, "powercap tree needs at least one package");
  const auto write_file = [](const fs::path& p, const std::string& text) {
    std::ofstream os(p);
    DVFS_REQUIRE(os.is_open(), "cannot create " + p.string());
    os << text;
  };
  for (std::size_t p = 0; p < packages; ++p) {
    const fs::path pkg =
        fs::path(dir) / ("intel-rapl:" + std::to_string(p));
    fs::create_directories(pkg);
    write_file(pkg / "name", "package-" + std::to_string(p) + "\n");
    write_file(pkg / "energy_uj", "0\n");
    write_file(pkg / "max_energy_range_uj",
               std::to_string(max_range_uj) + "\n");
    if (with_core_domain) {
      const fs::path core =
          pkg / ("intel-rapl:" + std::to_string(p) + ":0");
      fs::create_directories(core);
      write_file(core / "name", "core\n");
      write_file(core / "energy_uj", "0\n");
      write_file(core / "max_energy_range_uj",
                 std::to_string(max_range_uj) + "\n");
    }
  }
}

// ------------------------------------------------------ LinuxHwProvider

LinuxHwProvider::LinuxHwProvider(Options options)
    : options_(options) {
  if (options_.respect_env && force_fallback_env()) {
    if (options_.counters != Counters::kModel) {
      options_.counters = Counters::kTimer;
    }
    options_.energy = Energy::kModel;
  }
  if (options_.energy == Energy::kAuto || options_.energy == Energy::kRapl) {
    auto rapl = std::make_unique<RaplReader>(options_.powercap_root);
    if (rapl->available()) rapl_ = std::move(rapl);
  }
}

std::unique_ptr<ThreadTelemetry> LinuxHwProvider::open_thread_telemetry(
    std::size_t) {
  const bool try_perf = options_.counters == Counters::kAuto ||
                        options_.counters == Counters::kPerf;
  const bool use_timer = options_.counters != Counters::kModel;
  return std::make_unique<LinuxThreadTelemetry>(try_perf, use_timer,
                                                rapl_.get());
}

std::string LinuxHwProvider::describe() const {
  std::string counters;
  switch (options_.counters) {
    case Counters::kAuto: counters = "perf|timer"; break;
    case Counters::kPerf: counters = "perf"; break;
    case Counters::kTimer: counters = "timer"; break;
    case Counters::kModel: counters = "model"; break;
  }
  return counters + "+" + (rapl_ != nullptr ? "rapl" : "model");
}

// ------------------------------------------------------- FakeHwProvider

FakeHwProvider::FakeHwProvider(Config config) : config_(config) {
  DVFS_REQUIRE(config_.cycles_skew >= 0.0 && config_.time_skew >= 0.0 &&
                   config_.energy_skew >= 0.0 && config_.ipc >= 0.0,
               "fake telemetry skews must be non-negative");
}

std::unique_ptr<ThreadTelemetry> FakeHwProvider::open_thread_telemetry(
    std::size_t) {
  return std::make_unique<FakeThreadTelemetry>(config_);
}

std::string FakeHwProvider::describe() const {
  return "fake(cycles=" + std::to_string(config_.cycles_skew) +
         ",time=" + std::to_string(config_.time_skew) +
         ",energy=" + std::to_string(config_.energy_skew) + ")";
}

// -------------------------------------------------------- make_provider

std::unique_ptr<HwProvider> make_provider(const std::string& spec) {
  if (spec == "off") return nullptr;
  if (spec == "auto") return std::make_unique<LinuxHwProvider>();
  if (spec == "perf") {
    return std::make_unique<LinuxHwProvider>(
        LinuxHwProvider::Options{.counters = LinuxHwProvider::Counters::kPerf});
  }
  if (spec == "timer") {
    return std::make_unique<LinuxHwProvider>(LinuxHwProvider::Options{
        .counters = LinuxHwProvider::Counters::kTimer});
  }
  if (spec == "model") {
    return std::make_unique<LinuxHwProvider>(LinuxHwProvider::Options{
        .counters = LinuxHwProvider::Counters::kModel,
        .energy = LinuxHwProvider::Energy::kModel});
  }
  if (spec == "fake" || spec.rfind("fake:", 0) == 0) {
    FakeHwProvider::Config cfg;
    if (spec.size() > 5) {
      std::string rest = spec.substr(5);
      while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string kv = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        const auto eq = kv.find('=');
        DVFS_REQUIRE(eq != std::string::npos,
                     "bad --hw fake option (want key=value): " + kv);
        const std::string key = kv.substr(0, eq);
        double value = 0.0;
        try {
          value = std::stod(kv.substr(eq + 1));
        } catch (const std::exception&) {
          DVFS_REQUIRE(false, "bad --hw fake value: " + kv);
        }
        if (key == "cycles") {
          cfg.cycles_skew = value;
        } else if (key == "time") {
          cfg.time_skew = value;
        } else if (key == "energy") {
          cfg.energy_skew = value;
        } else if (key == "ipc") {
          cfg.ipc = value;
        } else {
          DVFS_REQUIRE(false,
                       "unknown --hw fake key (want cycles|time|energy|ipc): " +
                           key);
        }
      }
    }
    return std::make_unique<FakeHwProvider>(cfg);
  }
  DVFS_REQUIRE(false,
               "unknown --hw spec (want auto|perf|timer|model|fake[:k=v,...]"
               "|off): " + spec);
  return nullptr;  // unreachable
}

}  // namespace dvfs::obs::hw
