#include "dvfs/obs/recorder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "dvfs/common.h"
#include "dvfs/obs/trace.h"

namespace dvfs::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 2));
}

// Recorder-health counters live in the global registry like every other
// metric. They are bumped on the producer side, so a post-run
// `--metrics-out` (and the epilogue snapshot, captured after the run)
// both see the final values.
Counter& recorded_counter() {
  static Counter& c = Registry::global().counter("recorder.events_recorded");
  return c;
}
Counter& dropped_counter() {
  static Counter& c = Registry::global().counter("recorder.events_dropped");
  return c;
}

}  // namespace

RecorderChannel::RecorderChannel(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

bool RecorderChannel::record(const dfr::Event& e) noexcept {
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  if (t - h == slots_.size()) {
    // Full: tail-drop so the recorded prefix (which includes the run
    // header events) stays intact and replayable.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().inc();
    return false;
  }
  slots_[static_cast<std::size_t>(t) & mask_] = e;
  tail_.store(t + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  recorded_counter().inc();
  return true;
}

void RecorderChannel::drain_into(std::vector<dfr::Event>& out) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::uint64_t t = tail_.load(std::memory_order_acquire);
  out.reserve(out.size() + static_cast<std::size_t>(t - h));
  for (std::uint64_t i = h; i != t; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
  }
  head_.store(t, std::memory_order_release);
}

Recorder::Recorder(std::size_t num_channels, std::size_t capacity_per_channel) {
  DVFS_REQUIRE(num_channels >= 1, "recorder needs at least one channel");
  channels_.reserve(num_channels);
  for (std::size_t i = 0; i < num_channels; ++i) {
    channels_.push_back(std::make_unique<RecorderChannel>(capacity_per_channel));
  }
}

RecorderChannel& Recorder::channel(std::size_t i) {
  DVFS_REQUIRE(i < channels_.size(), "recorder channel index out of range");
  return *channels_[i];
}

RecorderChannel& Recorder::add_channel(std::size_t capacity) {
  channels_.push_back(std::make_unique<RecorderChannel>(capacity));
  return *channels_.back();
}

void Recorder::drain() {
  std::vector<dfr::Event> batch;
  for (auto& ch : channels_) ch->drain_into(batch);
  if (channels_.size() > 1) {
    // Merge producers by timestamp. Stable, so same-time events keep
    // channel order; a single-channel (simulator) drain is already
    // monotone and this branch never perturbs it.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const dfr::Event& a, const dfr::Event& b) {
                       return a.time_s < b.time_s;
                     });
  }
  events_.insert(events_.end(), batch.begin(), batch.end());
}

std::uint64_t Recorder::events_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->dropped();
  return n;
}

void Recorder::capture_metrics(const Registry& registry) {
  MetricsSnapshot snap;
  snap.counters = registry.counters_snapshot();
  snap.gauges = registry.gauges_snapshot();
  snap.histograms = registry.histograms_snapshot();
  metrics_ = std::move(snap);
}

void Recorder::capture_symbols(
    std::vector<std::pair<std::uint64_t, std::string>> symbols) {
  symbols_ = std::move(symbols);
}

namespace {

template <class T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_name(std::ostream& os, const std::string& name) {
  DVFS_REQUIRE(name.size() <= 0xffff, "metric name too long for .dfr");
  put(os, static_cast<std::uint16_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
}

template <class T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  DVFS_REQUIRE(is.good(), "truncated .dfr recording");
  return v;
}

std::string get_name(std::istream& is) {
  const auto len = get<std::uint16_t>(is);
  std::string name(len, '\0');
  is.read(name.data(), len);
  DVFS_REQUIRE(is.good(), "truncated .dfr recording");
  return name;
}

}  // namespace

void Recorder::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DVFS_REQUIRE(os.is_open(), "cannot open recording file: " + path);

  dfr::FileHeader header;
  header.num_channels = static_cast<std::uint32_t>(channels_.size());
  header.event_count = events_.size();
  header.dropped = events_dropped();
  put(os, header);
  // v4 per-channel summary table, one record per channel in order.
  for (const auto& ch : channels_) {
    dfr::ChannelStats stats;
    stats.recorded = ch->recorded();
    stats.dropped = ch->dropped();
    put(os, stats);
  }
  if (!events_.empty()) {
    os.write(reinterpret_cast<const char*>(events_.data()),
             static_cast<std::streamsize>(events_.size() *
                                          sizeof(dfr::Event)));
  }

  // v5 symbol epilogue first, metrics last: the metrics snapshot is
  // captured at the very end of a run, so keeping it terminal preserves
  // the "a torn tail costs only the epilogue being written" property for
  // both.
  if (!symbols_.empty()) {
    put(os, dfr::kSymbolsMagic);
    put(os, static_cast<std::uint32_t>(symbols_.size()));
    for (const auto& [addr, name] : symbols_) {
      put(os, addr);
      put_name(os, name);
    }
  }

  if (metrics_.has_value()) {
    put(os, dfr::kMetricsMagic);
    const auto entries = static_cast<std::uint32_t>(
        metrics_->counters.size() + metrics_->gauges.size() +
        metrics_->histograms.size());
    put(os, entries);
    for (const auto& [name, v] : metrics_->counters) {
      put(os, dfr::MetricKind::kCounter);
      put_name(os, name);
      put(os, v);
    }
    for (const auto& [name, v] : metrics_->gauges) {
      put(os, dfr::MetricKind::kGauge);
      put_name(os, name);
      put(os, v);
    }
    for (const auto& h : metrics_->histograms) {
      put(os, dfr::MetricKind::kHistogram);
      put_name(os, h.name);
      put(os, h.count);
      put(os, h.sum);
      put(os, static_cast<std::uint32_t>(h.buckets.size()));
      for (const auto& [lower, n] : h.buckets) {
        put(os, lower);
        put(os, n);
      }
    }
  }
  os.flush();
  DVFS_REQUIRE(os.good(), "failed writing recording file: " + path);
}

Recording Recording::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DVFS_REQUIRE(is.is_open(), "cannot open recording file: " + path);

  Recording rec;
  rec.header = get<dfr::FileHeader>(is);
  DVFS_REQUIRE(rec.header.magic == dfr::kFileMagic,
               path + ": not a .dfr recording (bad magic)");
  DVFS_REQUIRE(rec.header.version >= dfr::kMinFormatVersion &&
                   rec.header.version <= dfr::kFormatVersion,
               path + ": unsupported .dfr format version " +
                   std::to_string(rec.header.version));

  // The v4 per-channel table sits between the header and the events, so
  // it is readable even from an unfinalized (crashed) recording.
  if (rec.header.version >= 4) {
    rec.channels.resize(rec.header.num_channels);
    for (auto& stats : rec.channels) stats = get<dfr::ChannelStats>(is);
  }

  const bool finalized = rec.header.event_count != ~std::uint64_t{0};
  if (finalized) {
    rec.events.resize(rec.header.event_count);
    if (!rec.events.empty()) {
      is.read(reinterpret_cast<char*>(rec.events.data()),
              static_cast<std::streamsize>(rec.events.size() *
                                           sizeof(dfr::Event)));
      DVFS_REQUIRE(is.good(), path + ": truncated .dfr recording");
    }
  } else {
    // Unfinalized (crash mid-run): stream events until an epilogue
    // magic or EOF. An Event can never alias either magic because its
    // first byte is a small EventType, not 'D'.
    for (;;) {
      dfr::Event e;
      is.read(reinterpret_cast<char*>(&e), sizeof(e));
      if (is.gcount() == 0 && is.eof()) break;
      std::uint32_t head = 0;
      std::memcpy(&head, &e, sizeof(head));
      if (is.gcount() >= static_cast<std::streamsize>(sizeof(head)) &&
          (head == dfr::kMetricsMagic || head == dfr::kSymbolsMagic)) {
        // Rewind to the epilogue start and stop streaming events.
        is.clear();
        is.seekg(-is.gcount(), std::ios::cur);
        break;
      }
      DVFS_REQUIRE(is.gcount() == sizeof(e),
                   path + ": truncated .dfr recording");
      rec.events.push_back(e);
    }
    rec.header.event_count = rec.events.size();
  }

  // Optional epilogues: (v5) symbol table first, metrics snapshot last.
  // A torn epilogue (crash mid-write, partial copy) must not cost the
  // caller the events it already has: parse failures downgrade to a note
  // on the recording.
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is.eof() && magic == dfr::kSymbolsMagic) {
    try {
      const auto entries = get<std::uint32_t>(is);
      rec.symbols.reserve(entries);
      for (std::uint32_t i = 0; i < entries; ++i) {
        const auto addr = get<std::uint64_t>(is);
        rec.symbols.emplace_back(addr, get_name(is));
      }
    } catch (const PreconditionError& e) {
      // Mid-table tear: the stream position is unknowable, so any
      // metrics epilogue behind it is unreachable too.
      rec.symbols.clear();
      rec.epilogue_note =
          std::string("symbol epilogue unreadable: ") + e.what();
      return rec;
    }
    magic = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  }
  if (!is.eof()) {
    try {
      DVFS_REQUIRE(is.good() && magic == dfr::kMetricsMagic,
                   path + ": corrupt metrics epilogue");
      auto metrics = std::make_shared<Registry>();
      const auto entries = get<std::uint32_t>(is);
      for (std::uint32_t i = 0; i < entries; ++i) {
        const auto kind = get<dfr::MetricKind>(is);
        const std::string name = get_name(is);
        switch (kind) {
          case dfr::MetricKind::kCounter:
            metrics->counter(name).add(get<std::uint64_t>(is));
            break;
          case dfr::MetricKind::kGauge:
            metrics->gauge(name).set(get<double>(is));
            break;
          case dfr::MetricKind::kHistogram: {
            const auto count = get<std::uint64_t>(is);
            const auto sum = get<std::uint64_t>(is);
            const auto n = get<std::uint32_t>(is);
            std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
            buckets.reserve(n);
            for (std::uint32_t b = 0; b < n; ++b) {
              const auto lower = get<std::uint64_t>(is);
              const auto cnt = get<std::uint64_t>(is);
              buckets.emplace_back(lower, cnt);
            }
            metrics->histogram(name).restore(count, sum, buckets);
            break;
          }
          default:
            DVFS_REQUIRE(false, path + ": unknown metric kind in epilogue");
        }
      }
      rec.metrics = std::move(metrics);
    } catch (const PreconditionError& e) {
      rec.metrics = nullptr;
      rec.epilogue_note =
          std::string("metrics epilogue unreadable: ") + e.what();
    }
  }
  return rec;
}

std::optional<dfr::Event> Recording::first_of(dfr::EventType t) const {
  for (const dfr::Event& e : events) {
    if (e.type == static_cast<std::uint8_t>(t)) return e;
  }
  return std::nullopt;
}

void replay_to_trace(const Recording& rec, TraceWriter& writer) {
  DVFS_REQUIRE(writer.size() == 0, "replay needs an empty trace writer");
  // Chrome trace timestamps are microseconds; one trace second equals one
  // recorded second — the same constant the live engine uses, applied to
  // the same raw doubles, so the replayed JSON matches byte for byte.
  constexpr double kUsPerSecond = 1e6;
  std::int64_t gov_tid = 0;

  for (const dfr::Event& e : rec.events) {
    switch (static_cast<dfr::EventType>(e.type)) {
      case dfr::EventType::kRunBegin: {
        const auto cores = static_cast<std::size_t>(e.core);
        for (std::size_t j = 0; j < cores; ++j) {
          writer.thread_name(static_cast<std::int64_t>(j),
                             "core " + std::to_string(j));
        }
        gov_tid = static_cast<std::int64_t>(cores);
        writer.thread_name(gov_tid, "governor");
        break;
      }
      case dfr::EventType::kFreqChange:
        writer.instant(
            static_cast<std::int64_t>(e.core), "freq_change",
            e.time_s * kUsPerSecond,
            {{"rate_idx", Json(static_cast<std::uint64_t>(e.rate_idx))},
             {"ghz", Json(e.f0)}});
        break;
      case dfr::EventType::kSpanEnd: {
        Json::Object args{
            {"task", Json(e.task)},
            {"rate_idx", Json(static_cast<std::uint64_t>(e.rate_idx))}};
        if ((e.flags & dfr::kFlagPreempted) != 0) {
          args.emplace("preempted", Json(true));
        }
        writer.complete(static_cast<std::int64_t>(e.core),
                        "task " + std::to_string(e.task),
                        e.f0 * kUsPerSecond, (e.time_s - e.f0) * kUsPerSecond,
                        std::move(args));
        break;
      }
      case dfr::EventType::kDecision:
        writer.instant(gov_tid,
                       dfr::to_string(static_cast<dfr::DecisionKind>(e.aux)),
                       e.time_s * kUsPerSecond, {{"wall_ns", Json(e.f0)}});
        writer.counter("busy_cores", e.time_s * kUsPerSecond, e.f1);
        break;
      default:
        // Lifecycle, candidate and placement events carry no trace
        // output — they feed `dvfs_inspect explain` / `audit`.
        break;
    }
  }
}

}  // namespace dvfs::obs
