#include "dvfs/obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dvfs/common.h"

namespace dvfs::obs {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

SeriesRing::SeriesRing(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 2)) {}

void SeriesRing::push(double t, double v) {
  DVFS_REQUIRE(empty() || t >= back().t,
               "series timestamps must be monotone non-decreasing");
  if (size_ == slots_.size()) {
    slots_[head_] = Sample{t, v};
    head_ = (head_ + 1) % slots_.size();
  } else {
    slots_[(head_ + size_) % slots_.size()] = Sample{t, v};
    ++size_;
  }
}

SeriesRing::Sample SeriesRing::at(std::size_t i) const {
  DVFS_REQUIRE(i < size_, "series sample index out of range");
  return slots_[(head_ + i) % slots_.size()];
}

SeriesRing::Sample SeriesRing::back() const {
  DVFS_REQUIRE(size_ > 0, "series is empty");
  return at(size_ - 1);
}

std::size_t SeriesRing::skip_before(double cutoff) const {
  // Timestamps are monotone: binary-search the first retained sample with
  // t >= cutoff.
  std::size_t lo = 0, hi = size_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (at(mid).t < cutoff) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<SeriesRing::Sample> SeriesRing::window(double now,
                                                   double window_s) const {
  DVFS_REQUIRE(window_s > 0.0, "window must be positive");
  std::vector<Sample> out;
  for (std::size_t i = skip_before(now - window_s); i < size_; ++i) {
    out.push_back(at(i));
  }
  return out;
}

SeriesRing::WindowStats SeriesRing::window_stats(double now,
                                                 double window_s) const {
  DVFS_REQUIRE(window_s > 0.0, "window must be positive");
  WindowStats stats;
  stats.min = stats.max = stats.mean = kNan;
  stats.first = stats.last = stats.first_t = stats.last_t = kNan;
  double sum = 0.0;
  for (std::size_t i = skip_before(now - window_s); i < size_; ++i) {
    const Sample s = at(i);
    if (stats.count == 0) {
      stats.min = stats.max = s.v;
      stats.first = s.v;
      stats.first_t = s.t;
    } else {
      stats.min = std::min(stats.min, s.v);
      stats.max = std::max(stats.max, s.v);
    }
    stats.last = s.v;
    stats.last_t = s.t;
    sum += s.v;
    ++stats.count;
  }
  if (stats.count > 0) {
    stats.mean = sum / static_cast<double>(stats.count);
  }
  return stats;
}

double SeriesRing::delta(double now, double window_s) const {
  const WindowStats stats = window_stats(now, window_s);
  if (stats.count < 2) return kNan;
  return stats.last - stats.first;
}

double SeriesRing::rate(double now, double window_s) const {
  const WindowStats stats = window_stats(now, window_s);
  if (stats.count < 2 || stats.last_t <= stats.first_t) return kNan;
  return (stats.last - stats.first) / (stats.last_t - stats.first_t);
}

double SeriesRing::quantile_over_window(double now, double window_s,
                                        double q) const {
  DVFS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::vector<Sample> samples = window(now, window_s);
  if (samples.empty()) return kNan;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const Sample& s : samples) values.push_back(s.v);
  std::sort(values.begin(), values.end());
  // Nearest rank, consistent with Histogram::percentile_upper_bound.
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(q * static_cast<double>(values.size()))));
  return values[std::min(rank, values.size()) - 1];
}

double snapshot_percentile(const Registry::HistogramSnapshot& snapshot,
                           double p) {
  DVFS_REQUIRE(p >= 0.0 && p <= 1.0, "percentile must be in [0, 1]");
  if (snapshot.count == 0) return kNan;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(snapshot.count))));
  std::uint64_t seen = 0;
  for (const auto& [lower, n] : snapshot.buckets) {
    seen += n;
    if (seen >= target) {
      // Inclusive upper bound of the log2 bucket whose lower bound is
      // `lower` — the same value percentile_upper_bound reports. The top
      // bucket (lower = 2^63) wraps to ~0, which is its correct bound.
      return static_cast<double>(lower == 0 ? 0 : lower * 2 - 1);
    }
  }
  return static_cast<double>(~std::uint64_t{0});
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_series)
    : capacity_(capacity_per_series) {}

std::string TimeSeriesStore::quantile_key(const std::string& histogram,
                                          double q) {
  // "|q" cannot collide with a registry name ('|' never appears there).
  return histogram + "|q" + std::to_string(q);
}

void TimeSeriesStore::track_quantile(const std::string& histogram, double q) {
  DVFS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  for (const auto& [name, existing] : tracked_) {
    if (name == histogram && existing == q) return;
  }
  tracked_.emplace_back(histogram, q);
}

void TimeSeriesStore::sample(const Registry& registry, double now) {
  for (const auto& [name, value] : registry.counters_snapshot()) {
    series(name).push(now, static_cast<double>(value));
  }
  for (const auto& [name, value] : registry.gauges_snapshot()) {
    series(name).push(now, value);
  }
  if (!tracked_.empty()) {
    const auto histograms = registry.histograms_snapshot();
    for (const auto& [name, q] : tracked_) {
      for (const auto& snap : histograms) {
        if (snap.name != name) continue;
        series(quantile_key(name, q)).push(now, snapshot_percentile(snap, q));
        break;
      }
      // A histogram that is not registered yet simply contributes no
      // sample; the series starts once the metric exists.
    }
  }
  ++samples_;
}

const SeriesRing* TimeSeriesStore::find(const std::string& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

SeriesRing& TimeSeriesStore::series(const std::string& key) {
  const auto it = series_.find(key);
  if (it != series_.end()) return it->second;
  return series_.try_emplace(key, capacity_).first->second;
}

std::vector<std::string> TimeSeriesStore::keys() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [key, ring] : series_) out.push_back(key);
  return out;
}

}  // namespace dvfs::obs
