#include "dvfs/ds/lower_envelope.h"

#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <random>
#include <utility>
#include <vector>

namespace dvfs::ds {
namespace {

TEST(LowerEnvelope, SingleLineCoversEverything) {
  const std::vector<Line> lines{{2.0, 1.0, 0}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  ASSERT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.active[0], 0u);
  EXPECT_EQ(r.range_of[0].lo, 1u);
  EXPECT_TRUE(r.range_of[0].unbounded());
  EXPECT_EQ(r.winner(1), 0u);
  EXPECT_EQ(r.winner(1000000), 0u);
}

TEST(LowerEnvelope, TwoLinesCrossAtFractionalPoint) {
  // f0(k) = 1 + 2k, f1(k) = 4 + 1k; equal at k = 3 exactly.
  // At the tie position the later (higher-rate) line must win.
  const std::vector<Line> lines{{2.0, 1.0, 0}, {1.0, 4.0, 1}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  ASSERT_EQ(r.active.size(), 2u);
  EXPECT_EQ(r.range_of[0], (IntegerRange{1, 2}));
  EXPECT_EQ(r.range_of[1].lo, 3u);
  EXPECT_TRUE(r.range_of[1].unbounded());
  EXPECT_EQ(r.winner(2), 0u);
  EXPECT_EQ(r.winner(3), 1u);
}

TEST(LowerEnvelope, TieAtIntegerGoesToLaterLine) {
  // f0(k) = 2 + 3k, f1(k) = 8 + 1k: equal at k = 3.
  const std::vector<Line> lines{{3.0, 2.0, 0}, {1.0, 8.0, 1}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  EXPECT_EQ(r.winner(3), 1u);
  EXPECT_EQ(r.range_of[0], (IntegerRange{1, 2}));
}

TEST(LowerEnvelope, DominatedMiddleLineGetsEmptyRange) {
  // The middle line is above the envelope of the outer two everywhere.
  const std::vector<Line> lines{{3.0, 1.0, 0}, {2.0, 100.0, 1}, {1.0, 101.0, 2}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  EXPECT_TRUE(r.range_of[1].empty());
  ASSERT_EQ(r.active.size(), 2u);
  EXPECT_EQ(r.active[0], 0u);
  EXPECT_EQ(r.active[1], 2u);
}

TEST(LowerEnvelope, LineWinningNoIntegerPointIsDropped) {
  // Line 1 beats the others only on a sub-integer sliver: it wins on
  // (2.5, 2.8), which contains no integer, so it must not be active.
  // f0 = 1 + 10k, f1 = 26 + 0 at k=2.5 ... construct explicitly:
  // f0(k) = 10k, f1(k) = 24 + 0.4k, f2(k) = 25 + 0.05k.
  // f0 vs f1 cross at 2.5; f1 vs f2 cross at 2.857.
  const std::vector<Line> lines{
      {10.0, 0.1, 0}, {0.4, 24.0, 1}, {0.05, 25.0, 2}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  EXPECT_TRUE(r.range_of[1].empty());
  EXPECT_EQ(r.winner(2), 0u);
  EXPECT_EQ(r.winner(3), 2u);
}

TEST(LowerEnvelope, RejectsNonDecreasingSlopes) {
  const std::vector<Line> bad{{1.0, 1.0, 0}, {1.0, 2.0, 1}};
  EXPECT_THROW((void)lower_envelope_integer(bad), PreconditionError);
}

TEST(LowerEnvelope, RejectsNonIncreasingIntercepts) {
  const std::vector<Line> bad{{2.0, 5.0, 0}, {1.0, 5.0, 1}};
  EXPECT_THROW((void)lower_envelope_integer(bad), PreconditionError);
}

TEST(LowerEnvelope, RejectsEmptyInput) {
  const std::vector<Line> none;
  EXPECT_THROW((void)lower_envelope_integer(none), PreconditionError);
}

TEST(LowerEnvelope, WinnerRejectsPositionZero) {
  const std::vector<Line> lines{{1.0, 1.0, 0}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  EXPECT_THROW((void)r.winner(0), PreconditionError);
}

TEST(LowerEnvelope, ActiveRangesPartitionPrefix) {
  const std::vector<Line> lines{
      {5.0, 1.0, 0}, {3.0, 4.0, 1}, {2.0, 9.0, 2}, {1.0, 20.0, 3}};
  const EnvelopeResult r = lower_envelope_integer(lines);
  std::size_t expected_lo = 1;
  for (const std::size_t idx : r.active) {
    EXPECT_EQ(r.range_of[idx].lo, expected_lo);
    if (!r.range_of[idx].unbounded()) {
      expected_lo = r.range_of[idx].hi + 1;
    }
  }
  EXPECT_TRUE(r.range_of[r.active.back()].unbounded());
}

// Property: for random rate-model-shaped line families, the envelope's
// winner at every position achieves the minimum line value (within
// floating-point tolerance).
class LowerEnvelopeProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LowerEnvelopeProperty, WinnerMatchesBruteForceValue) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> num_lines_dist(1, 12);
  std::uniform_real_distribution<double> step(0.01, 2.0);

  for (int trial = 0; trial < 50; ++trial) {
    const int n = num_lines_dist(rng);
    std::vector<Line> lines;
    double slope = 10.0 + step(rng);
    double intercept = step(rng);
    for (int i = 0; i < n; ++i) {
      lines.push_back(Line{slope, intercept, static_cast<std::size_t>(i)});
      slope -= step(rng) * 0.5 + 1e-3;
      intercept += step(rng) + 1e-3;
    }
    const EnvelopeResult r = lower_envelope_integer(lines);
    for (std::size_t k = 1; k <= 200; ++k) {
      const std::size_t w = r.winner(k);
      const std::size_t ref = argmin_line_at(lines, k);
      const double got = lines[w].at(static_cast<double>(k));
      const double want = lines[ref].at(static_cast<double>(k));
      ASSERT_LE(got, want + 1e-9 * std::max(1.0, std::abs(want)))
          << "k=" << k << " winner=" << w << " ref=" << ref;
    }
    // Winners must be non-decreasing in line index along k (rates only
    // increase with backward position).
    std::size_t prev = r.winner(1);
    for (std::size_t k = 2; k <= 200; ++k) {
      const std::size_t w = r.winner(k);
      ASSERT_GE(w, prev) << "winner regressed at k=" << k;
      prev = w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerEnvelopeProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// MemoizedEnvelope: the per-rate-set cache must serve repeats without
// rebuilding and must rebuild on ANY change to the line set — the classic
// stale-cache trap is serving the old envelope after the rate set mutated.
// ---------------------------------------------------------------------------

std::vector<Line> make_lines(std::initializer_list<std::pair<double, double>>
                                 slope_intercept) {
  std::vector<Line> lines;
  std::size_t id = 0;
  for (const auto& [s, i] : slope_intercept) {
    lines.push_back(Line{s, i, id++});
  }
  return lines;
}

TEST(MemoizedEnvelope, RepeatRequestsHitTheCache) {
  MemoizedEnvelope memo;
  EXPECT_FALSE(memo.valid());
  const std::vector<Line> lines =
      make_lines({{4.0, 1.0}, {2.0, 3.0}, {1.0, 6.0}});
  const EnvelopeResult& a = memo.get(lines);
  EXPECT_TRUE(memo.valid());
  EXPECT_EQ(memo.rebuilds(), 1u);
  for (int i = 0; i < 100; ++i) {
    const EnvelopeResult& b = memo.get(lines);
    EXPECT_EQ(&a, &b);  // the cached object itself, not a rebuild
  }
  EXPECT_EQ(memo.rebuilds(), 1u);
}

TEST(MemoizedEnvelope, MutatedRateSetMidRunForcesRebuild) {
  MemoizedEnvelope memo;
  std::vector<Line> lines = make_lines({{4.0, 1.0}, {2.0, 3.0}, {1.0, 6.0}});
  const EnvelopeResult before = memo.get(lines);
  ASSERT_EQ(memo.rebuilds(), 1u);

  // Mid-run DVFS reconfiguration: a rate's characteristics change, so its
  // line moves. Serving `before` now would hand out stale winners.
  lines[1] = Line{1.5, 4.0, lines[1].id};
  const EnvelopeResult& after = memo.get(lines);
  EXPECT_EQ(memo.rebuilds(), 2u);
  EXPECT_EQ(after.range_of.size(), lines.size());
  // Fresh result matches a from-scratch construction at every queried k.
  const EnvelopeResult fresh = lower_envelope_integer(lines);
  for (std::size_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(after.winner(k), fresh.winner(k)) << "k=" << k;
  }
  // And differs from the stale envelope somewhere (the mutation moved the
  // crossover), proving a cache hit here would have been wrong.
  bool diverged = false;
  for (std::size_t k = 1; k <= 64 && !diverged; ++k) {
    diverged = before.winner(k) != after.winner(k);
  }
  EXPECT_TRUE(diverged);

  // Growing or shrinking the rate set rebuilds too.
  lines.push_back(Line{0.5, 9.0, 3});
  (void)memo.get(lines);
  EXPECT_EQ(memo.rebuilds(), 3u);
  lines.pop_back();
  (void)memo.get(lines);
  EXPECT_EQ(memo.rebuilds(), 4u);
}

TEST(MemoizedEnvelope, ExplicitInvalidateDropsTheCache) {
  MemoizedEnvelope memo;
  const std::vector<Line> lines = make_lines({{2.0, 1.0}, {1.0, 2.0}});
  (void)memo.get(lines);
  ASSERT_TRUE(memo.valid());
  memo.invalidate();
  EXPECT_FALSE(memo.valid());
  (void)memo.get(lines);  // identical lines, but the cache was dropped
  EXPECT_EQ(memo.rebuilds(), 2u);
}

TEST(MemoizedEnvelope, DegenerateOneRateSet) {
  MemoizedEnvelope memo;
  const std::vector<Line> one = make_lines({{3.0, 2.0}});
  const EnvelopeResult& r = memo.get(one);
  ASSERT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.winner(1), 0u);
  EXPECT_EQ(r.winner(1'000'000), 0u);
  EXPECT_TRUE(r.range_of[0].unbounded());
  (void)memo.get(one);
  EXPECT_EQ(memo.rebuilds(), 1u);
  // Transition 1 rate -> 2 rates rebuilds.
  (void)memo.get(make_lines({{3.0, 2.0}, {1.0, 5.0}}));
  EXPECT_EQ(memo.rebuilds(), 2u);
}

TEST(MemoizedEnvelope, NearIdenticalRatesStillKeyDistinctly) {
  // Two configurations whose lines differ only in the 15th significant
  // digit are DIFFERENT rate sets: exact-key comparison must rebuild, not
  // fuzzy-match them together.
  MemoizedEnvelope memo;
  const std::vector<Line> a = make_lines({{2.0, 1.0}, {1.0, 2.0}});
  std::vector<Line> b = a;
  b[1].slope = std::nextafter(b[1].slope, 0.0);
  (void)memo.get(a);
  (void)memo.get(b);
  EXPECT_EQ(memo.rebuilds(), 2u);
  // And flipping back is a miss again (single-slot memo, exact key).
  (void)memo.get(a);
  EXPECT_EQ(memo.rebuilds(), 3u);
}

}  // namespace
}  // namespace dvfs::ds
