#include "dvfs/core/yds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "dvfs/core/deadline.h"

namespace dvfs::core {
namespace {

std::vector<Task> jobs(std::initializer_list<std::pair<Cycles, Seconds>> spec) {
  std::vector<Task> tasks;
  TaskId id = 0;
  for (const auto& [cycles, deadline] : spec) {
    tasks.push_back(Task{.id = id++, .cycles = cycles, .deadline = deadline});
  }
  return tasks;
}

TEST(Yds, SingleJobRunsAtExactlyRequiredSpeed) {
  const auto tasks = jobs({{100, 10.0}});
  const YdsSchedule s = yds_schedule(tasks);
  ASSERT_EQ(s.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(s.segments[0].speed, 10.0);  // 100 cycles / 10 s
  EXPECT_DOUBLE_EQ(s.segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.segments[0].end, 10.0);
  EXPECT_TRUE(s.feasible(tasks));
}

TEST(Yds, TextbookTwoJobInstance) {
  // Job A: 10 cycles by t=2 (tight); job B: 2 cycles by t=12 (loose).
  // Critical interval [0,2] at speed 5; then B alone on [2,12] at 0.2.
  const auto tasks = jobs({{10, 2.0}, {2, 12.0}});
  const YdsSchedule s = yds_schedule(tasks);
  ASSERT_EQ(s.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(s.segments[0].speed, 5.0);
  EXPECT_DOUBLE_EQ(s.segments[0].end, 2.0);
  EXPECT_DOUBLE_EQ(s.segments[1].speed, 0.2);
  EXPECT_DOUBLE_EQ(s.segments[1].start, 2.0);
  EXPECT_DOUBLE_EQ(s.segments[1].end, 12.0);
}

TEST(Yds, EqualIntensityJobsMergeIntoOneInterval) {
  // Two jobs of 5 cycles with deadlines 5 and 10: uniform speed 1.
  const auto tasks = jobs({{5, 5.0}, {5, 10.0}});
  const YdsSchedule s = yds_schedule(tasks);
  ASSERT_EQ(s.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(s.segments[0].speed, 1.0);
  EXPECT_DOUBLE_EQ(s.segments[1].speed, 1.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(Yds, InputValidation) {
  EXPECT_THROW((void)yds_schedule(jobs({{0, 1.0}})), PreconditionError);
  std::vector<Task> no_deadline{{.id = 0, .cycles = 5}};
  EXPECT_THROW((void)yds_schedule(no_deadline), PreconditionError);
  std::vector<Task> late{{.id = 0, .cycles = 5, .arrival = 1.0,
                          .deadline = 2.0}};
  EXPECT_THROW((void)yds_schedule(late), PreconditionError);
  const YdsSchedule s = yds_schedule(jobs({{1, 1.0}}));
  EXPECT_THROW((void)s.energy(0.0, 3.0), PreconditionError);
  EXPECT_THROW((void)s.energy(1.0, 1.0), PreconditionError);
}

TEST(Yds, EnergyIntegralHandComputed) {
  // One segment at speed 5 for 2 s under P = 4 s^3: 4*125*2 = 1000 J.
  const YdsSchedule s = yds_schedule(jobs({{10, 2.0}}));
  EXPECT_DOUBLE_EQ(s.energy(4.0, 3.0), 1000.0);
}

TEST(YdsRounding, ExactSpeedStaysSingleSegment) {
  const EnergyModel gadget = EnergyModel::partition_gadget();
  // Speed 1.0 equals the fast rate exactly.
  const YdsSchedule s = yds_schedule(jobs({{10, 10.0}}));
  const YdsSchedule d = round_to_discrete(s, gadget);
  ASSERT_EQ(d.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(d.segments[0].speed, 1.0);
  EXPECT_DOUBLE_EQ(discrete_energy(d, gadget), 10.0 * 4.0);
}

TEST(YdsRounding, SplitsBetweenAdjacentRates) {
  const EnergyModel gadget = EnergyModel::partition_gadget();
  // 3 cycles by t=4: speed 0.75, between 0.5 and 1.0 -> half window each.
  const YdsSchedule s = yds_schedule(jobs({{3, 4.0}}));
  const YdsSchedule d = round_to_discrete(s, gadget);
  ASSERT_EQ(d.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(d.segments[0].speed, 1.0);  // fast first
  EXPECT_DOUBLE_EQ(d.segments[1].speed, 0.5);
  EXPECT_NEAR(d.segments[0].end - d.segments[0].start, 2.0, 1e-12);
  EXPECT_NEAR(d.segments[1].end - d.segments[1].start, 2.0, 1e-12);
  // Work conserved: 2*1.0 + 2*0.5 = 3 cycles, done exactly at t=4.
  const std::vector<Task> tasks = jobs({{3, 4.0}});
  EXPECT_TRUE(d.feasible(tasks));
  // Energy: 2 cycles at E=4 plus 1 cycle at E=1 = 9 J; continuous YDS at
  // 0.75: 4*0.75^3*4 = 6.75 J (lower, as it must be).
  EXPECT_DOUBLE_EQ(discrete_energy(d, gadget), 9.0);
  EXPECT_NEAR(s.energy(4.0, 3.0), 6.75, 1e-12);
}

TEST(YdsRounding, ClampsBelowSlowestRate) {
  const EnergyModel gadget = EnergyModel::partition_gadget();
  // 1 cycle by t=10: speed 0.1 < 0.5 -> runs at 0.5, finishes at t=2.
  const YdsSchedule s = yds_schedule(jobs({{1, 10.0}}));
  const YdsSchedule d = round_to_discrete(s, gadget);
  ASSERT_EQ(d.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(d.segments[0].speed, 0.5);
  EXPECT_DOUBLE_EQ(d.segments[0].end, 2.0);
}

TEST(YdsRounding, RejectsSpeedsAbovePlatform) {
  const EnergyModel gadget = EnergyModel::partition_gadget();
  const YdsSchedule s = yds_schedule(jobs({{100, 10.0}}));  // needs speed 10
  EXPECT_THROW((void)round_to_discrete(s, gadget), PreconditionError);
  // And discrete_energy refuses non-platform speeds.
  EXPECT_THROW((void)discrete_energy(s, gadget), PreconditionError);
}

class YdsProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(YdsProperty, SpeedsNonIncreasingFeasibleAndWorkConserving) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<Cycles> cyc(1, 1000);
  std::uniform_real_distribution<double> dl(0.1, 100.0);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 1 + rng() % 12;
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back(Task{.id = i, .cycles = cyc(rng), .deadline = dl(rng)});
    }
    const YdsSchedule s = yds_schedule(tasks);
    ASSERT_EQ(s.segments.size(), n);
    ASSERT_TRUE(s.feasible(tasks));
    // The YDS speed profile never increases over time.
    for (std::size_t i = 1; i < s.segments.size(); ++i) {
      ASSERT_LE(s.segments[i].speed, s.segments[i - 1].speed * (1 + 1e-9));
      ASSERT_NEAR(s.segments[i].start, s.segments[i - 1].end, 1e-9);
    }
    // Work conservation per task.
    for (const Task& t : tasks) {
      double done = 0.0;
      for (const YdsSegment& seg : s.segments) {
        if (seg.id == t.id) done += seg.work();
      }
      ASSERT_NEAR(done, static_cast<double>(t.cycles),
                  1e-9 * static_cast<double>(t.cycles) + 1e-9);
    }
  }
}

TEST_P(YdsProperty, LowerBoundsTheDiscreteExactSolver) {
  // Any discrete-rate feasible schedule spends at least the YDS energy
  // under the same power law. The partition gadget's rates {0.5, 1.0}
  // with E = {1, 4} J/cycle follow P = 4 s^3 (energy/cycle = 4 s^2)
  // exactly, so the comparison is apples to apples.
  std::mt19937_64 rng(GetParam() + 500);
  std::uniform_int_distribution<Cycles> cyc(1, 30);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 2 + rng() % 5;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Cycles c = cyc(rng);
      total += static_cast<double>(c);
      tasks.push_back(Task{.id = i, .cycles = c, .deadline = 0.0});
    }
    // Deadlines loose enough that the all-slow discrete schedule fits.
    Seconds horizon = 2.2 * total;
    for (Task& t : tasks) t.deadline = horizon;

    // Minimum feasible discrete energy via budget bisection.
    const EnergyModel gadget = EnergyModel::partition_gadget();
    double lo = 0.5;
    double hi = 5.0 * total;  // everything fast
    for (int it = 0; it < 40; ++it) {
      const double mid = (lo + hi) / 2.0;
      const DeadlineInstance inst{tasks, gadget, mid};
      if (solve_deadline_single_exact(inst).has_value()) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    const double discrete_min = hi;

    const YdsSchedule yds = yds_schedule(tasks);
    const double continuous = yds.energy(4.0, 3.0);
    ASSERT_LE(continuous, discrete_min * (1 + 1e-6))
        << "YDS must lower-bound any discrete schedule";
  }
}

TEST_P(YdsProperty, RoundingIsSandwichedBetweenBounds) {
  // continuous YDS <= rounded discrete (preemptive) <= non-preemptive
  // discrete minimum, on instances whose speeds fit the platform span.
  std::mt19937_64 rng(GetParam() + 900);
  std::uniform_int_distribution<Cycles> cyc(1, 30);
  const EnergyModel gadget = EnergyModel::partition_gadget();
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 2 + rng() % 4;
    double cum = 0.0;
    std::uniform_real_distribution<double> target(0.55, 0.95);
    for (std::size_t i = 0; i < n; ++i) {
      const Cycles c = cyc(rng);
      cum += static_cast<double>(c);
      tasks.push_back(
          Task{.id = i, .cycles = c, .deadline = cum / target(rng)});
    }
    std::sort(tasks.begin(), tasks.end(),
              [](const Task& a, const Task& b) {
                return a.deadline < b.deadline;
              });
    const YdsSchedule s = yds_schedule(tasks);
    const YdsSchedule d = round_to_discrete(s, gadget);
    ASSERT_TRUE(d.feasible(tasks));
    const double continuous = s.energy(4.0, 3.0);
    const double preemptive = discrete_energy(d, gadget);
    ASSERT_GE(preemptive, continuous * (1 - 1e-9));

    // Non-preemptive minimum via budget bisection over the exact solver.
    double lo = 0.0;
    double hi = 5.0 * cum;
    for (int it = 0; it < 40; ++it) {
      const double mid = (lo + hi) / 2.0;
      const DeadlineInstance inst{tasks, gadget, std::max(mid, 1e-9)};
      (solve_deadline_single_exact(inst).has_value() ? hi : lo) = mid;
    }
    ASSERT_LE(preemptive, hi * (1 + 1e-6))
        << "splitting rates within a task can only help";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YdsProperty,
                         ::testing::Values(5u, 15u, 25u, 35u));

}  // namespace
}  // namespace dvfs::core
