#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "dvfs/workload/estimator.h"
#include "dvfs/workload/generators.h"
#include "dvfs/workload/spec2006int.h"
#include "dvfs/workload/trace.h"

namespace dvfs::workload {
namespace {

// ----------------------------------------------------------------- Table I

TEST(Spec2006, TableHas24Workloads) {
  const auto table = spec2006int();
  ASSERT_EQ(table.size(), 24u);
  std::size_t train = 0;
  std::size_t ref = 0;
  for (const SpecWorkload& w : table) {
    (w.input == SpecInput::kTrain ? train : ref) += 1;
    EXPECT_GT(w.avg_seconds_at_1_6ghz, 0.0);
  }
  EXPECT_EQ(train, 12u);
  EXPECT_EQ(ref, 12u);
}

TEST(Spec2006, SpotCheckPaperValues) {
  const auto table = spec2006int();
  EXPECT_EQ(table[0].benchmark, "perlbench");
  EXPECT_DOUBLE_EQ(table[0].avg_seconds_at_1_6ghz, 43.516);
  EXPECT_DOUBLE_EQ(table[1].avg_seconds_at_1_6ghz, 749.624);
  EXPECT_EQ(table[23].benchmark, "xalancbmk");
  EXPECT_DOUBLE_EQ(table[23].avg_seconds_at_1_6ghz, 453.463);
  // gcc train is the shortest workload, h264ref ref the longest.
  EXPECT_DOUBLE_EQ(table[4].avg_seconds_at_1_6ghz, 1.63);
  EXPECT_DOUBLE_EQ(table[17].avg_seconds_at_1_6ghz, 1549.734);
}

TEST(Spec2006, CycleConversionUsesProfileFrequency) {
  // L = seconds * 1.6e9, the paper's estimation method.
  const auto table = spec2006int();
  EXPECT_EQ(spec_cycles(table[4]), static_cast<Cycles>(1.63 * 1.6e9));
  const double expect = 749.624 * 1.6e9;
  EXPECT_NEAR(static_cast<double>(spec_cycles(table[1])), expect, 1.0);
}

TEST(Spec2006, BatchTasksCoverTable) {
  const auto tasks = spec_batch_tasks();
  ASSERT_EQ(tasks.size(), 24u);
  for (const core::Task& t : tasks) {
    EXPECT_TRUE(core::is_valid(t));
    EXPECT_EQ(t.arrival, 0.0);
    EXPECT_EQ(t.klass, core::TaskClass::kBatch);
  }
  EXPECT_EQ(spec_batch_tasks(SpecInput::kTrain).size(), 12u);
  EXPECT_EQ(spec_batch_tasks(SpecInput::kRef).size(), 12u);
}

// ------------------------------------------------------------------- Trace

TEST(Trace, SortsByArrivalThenId) {
  std::vector<core::Task> tasks{
      {.id = 2, .cycles = 10, .arrival = 5.0,
       .klass = core::TaskClass::kNonInteractive},
      {.id = 1, .cycles = 10, .arrival = 5.0,
       .klass = core::TaskClass::kNonInteractive},
      {.id = 3, .cycles = 10, .arrival = 1.0,
       .klass = core::TaskClass::kNonInteractive},
  };
  const Trace trace(std::move(tasks));
  EXPECT_EQ(trace[0].id, 3u);
  EXPECT_EQ(trace[1].id, 1u);
  EXPECT_EQ(trace[2].id, 2u);
  EXPECT_DOUBLE_EQ(trace.horizon(), 5.0);
  EXPECT_EQ(trace.total_cycles(), 30u);
}

TEST(Trace, RejectsInvalidTasks) {
  std::vector<core::Task> bad{{.id = 1, .cycles = 0}};
  EXPECT_THROW(Trace{std::move(bad)}, PreconditionError);
}

TEST(Trace, CountsByClass) {
  std::vector<core::Task> tasks{
      {.id = 1, .cycles = 1, .klass = core::TaskClass::kInteractive},
      {.id = 2, .cycles = 1, .klass = core::TaskClass::kInteractive},
      {.id = 3, .cycles = 1, .klass = core::TaskClass::kNonInteractive},
  };
  const Trace trace(std::move(tasks));
  EXPECT_EQ(trace.count(core::TaskClass::kInteractive), 2u);
  EXPECT_EQ(trace.count(core::TaskClass::kNonInteractive), 1u);
  EXPECT_EQ(trace.count(core::TaskClass::kBatch), 0u);
}

TEST(Trace, SliceRebasesWindow) {
  std::vector<core::Task> tasks{
      {.id = 1, .cycles = 1, .arrival = 0.5,
       .klass = core::TaskClass::kNonInteractive},
      {.id = 2, .cycles = 1, .arrival = 2.0, .deadline = 4.0,
       .klass = core::TaskClass::kInteractive},
      {.id = 3, .cycles = 1, .arrival = 5.0,
       .klass = core::TaskClass::kNonInteractive},
  };
  const Trace trace(std::move(tasks));
  const Trace window = trace.slice(1.0, 5.0);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].id, 2u);
  EXPECT_DOUBLE_EQ(window[0].arrival, 1.0);  // 2.0 - 1.0
  EXPECT_DOUBLE_EQ(window[0].deadline, 3.0);
  // Boundary semantics: [from, to).
  EXPECT_EQ(trace.slice(5.0, 6.0).size(), 1u);
  EXPECT_EQ(trace.slice(0.0, 0.5).size(), 0u);
  EXPECT_THROW((void)trace.slice(2.0, 2.0), PreconditionError);
  EXPECT_THROW((void)trace.slice(-1.0, 2.0), PreconditionError);
}

TEST(Trace, MergePreservesOrderAndSize) {
  const Trace a(std::vector<core::Task>{
      {.id = 1, .cycles = 1, .arrival = 1.0,
       .klass = core::TaskClass::kInteractive}});
  const Trace b(std::vector<core::Task>{
      {.id = 2, .cycles = 1, .arrival = 0.5,
       .klass = core::TaskClass::kNonInteractive}});
  const Trace m = Trace::merge(a, b);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].id, 2u);
}

TEST(TraceCsv, RoundTripsAllFields) {
  std::vector<core::Task> tasks{
      {.id = 7, .cycles = 123456789, .arrival = 1.25, .deadline = 9.5,
       .klass = core::TaskClass::kInteractive},
      {.id = 8, .cycles = 42, .arrival = 0.75,
       .klass = core::TaskClass::kNonInteractive},
  };
  const Trace original(std::move(tasks));
  std::stringstream ss;
  write_csv(original, ss);
  const Trace parsed = read_csv(ss);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].id, original[i].id);
    EXPECT_EQ(parsed[i].cycles, original[i].cycles);
    EXPECT_DOUBLE_EQ(parsed[i].arrival, original[i].arrival);
    EXPECT_EQ(parsed[i].klass, original[i].klass);
    EXPECT_DOUBLE_EQ(parsed[i].deadline, original[i].deadline);
  }
}

TEST(TraceCsv, RejectsMalformedInput) {
  {
    std::stringstream ss("not,a,header\n");
    EXPECT_THROW((void)read_csv(ss), PreconditionError);
  }
  {
    std::stringstream ss("id,arrival,cycles,class,deadline\n1,0.0\n");
    EXPECT_THROW((void)read_csv(ss), PreconditionError);
  }
  {
    std::stringstream ss(
        "id,arrival,cycles,class,deadline\n1,0.0,10,alien,\n");
    EXPECT_THROW((void)read_csv(ss), PreconditionError);
  }
  {
    std::stringstream ss("id,arrival,cycles,class,deadline\n1,zero,10,batch,\n");
    EXPECT_THROW((void)read_csv(ss), PreconditionError);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW((void)read_csv(ss), PreconditionError);
  }
}

TEST(TraceCsv, RandomRoundTripProperty) {
  std::mt19937_64 rng(2718);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::Task> tasks;
    const std::size_t n = 1 + rng() % 50;
    for (std::size_t i = 0; i < n; ++i) {
      core::Task t;
      t.id = i;
      t.cycles = 1 + rng() % 1'000'000'000'000ULL;
      t.arrival = static_cast<double>(rng() % 1'000'000) / 256.0;
      t.klass = (rng() % 2 == 0) ? core::TaskClass::kInteractive
                                 : core::TaskClass::kNonInteractive;
      if (rng() % 3 == 0) {
        t.deadline = t.arrival + 1.0 + static_cast<double>(rng() % 100);
      }
      tasks.push_back(t);
    }
    const Trace original(std::move(tasks));
    std::stringstream ss;
    write_csv(original, ss);
    const Trace parsed = read_csv(ss);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      ASSERT_EQ(parsed[i].id, original[i].id);
      ASSERT_EQ(parsed[i].cycles, original[i].cycles);
      ASSERT_DOUBLE_EQ(parsed[i].arrival, original[i].arrival);
      ASSERT_DOUBLE_EQ(parsed[i].deadline, original[i].deadline);
      ASSERT_EQ(parsed[i].klass, original[i].klass);
    }
  }
}

TEST(TraceCsv, FileRoundTrip) {
  const Trace original(std::vector<core::Task>{
      {.id = 1, .cycles = 99, .arrival = 0.0,
       .klass = core::TaskClass::kNonInteractive}});
  const std::string path = ::testing::TempDir() + "/dvfs_trace_test.csv";
  write_csv_file(original, path);
  const Trace parsed = read_csv_file(path);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].cycles, 99u);
  EXPECT_THROW((void)read_csv_file(path + ".missing"), PreconditionError);
}

// -------------------------------------------------------------- generators

TEST(Poisson, DeterministicGivenSeed) {
  const PoissonConfig cfg{.arrivals_per_second = 5.0, .duration = 100.0};
  const Trace a = generate_poisson(cfg, 123);
  const Trace b = generate_poisson(cfg, 123);
  const Trace c = generate_poisson(cfg, 124);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycles, b[i].cycles);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
  }
  EXPECT_NE(a.size(), 0u);
  EXPECT_TRUE(a.size() != c.size() || a[0].cycles != c[0].cycles);
}

TEST(Poisson, RateControlsArrivalCount) {
  const PoissonConfig slow{.arrivals_per_second = 1.0, .duration = 500.0};
  const PoissonConfig fast{.arrivals_per_second = 10.0, .duration = 500.0};
  const std::size_t n_slow = generate_poisson(slow, 7).size();
  const std::size_t n_fast = generate_poisson(fast, 7).size();
  // Expected 500 vs 5000; huge margin to keep this deterministic-robust.
  EXPECT_GT(n_slow, 300u);
  EXPECT_LT(n_slow, 800u);
  EXPECT_GT(n_fast, 4000u);
  EXPECT_LT(n_fast, 6000u);
}

TEST(Poisson, RejectsBadConfig) {
  EXPECT_THROW((void)generate_poisson({.arrivals_per_second = 0.0}, 1),
               PreconditionError);
  EXPECT_THROW((void)generate_poisson({.duration = 0.0}, 1),
               PreconditionError);
}

TEST(Judgegirl, ReproducesPaperPopulation) {
  const JudgegirlConfig cfg;  // defaults = the paper's Section V-B numbers
  const Trace trace = generate_judgegirl(cfg, 2014);
  EXPECT_EQ(trace.count(core::TaskClass::kNonInteractive), 768u);
  EXPECT_EQ(trace.count(core::TaskClass::kInteractive), 50525u);
  EXPECT_EQ(trace.size(), 768u + 50525u);
  EXPECT_LE(trace.horizon(), 1800.0);
}

TEST(Judgegirl, InteractiveTasksAreTiny) {
  const Trace trace = generate_judgegirl(JudgegirlConfig{}, 3);
  double interactive_mean = 0.0;
  double judge_mean = 0.0;
  for (const core::Task& t : trace.tasks()) {
    if (t.klass == core::TaskClass::kInteractive) {
      interactive_mean += static_cast<double>(t.cycles);
    } else {
      judge_mean += static_cast<double>(t.cycles);
    }
  }
  interactive_mean /= 50525.0;
  judge_mean /= 768.0;
  // Judging a submission is far heavier than serving a query.
  EXPECT_GT(judge_mean, 10.0 * interactive_mean);
}

TEST(Judgegirl, BurstinessLoadsTheExamEnd) {
  JudgegirlConfig cfg;
  cfg.burstiness = 4.0;
  const Trace trace = generate_judgegirl(cfg, 11);
  std::size_t first_half = 0;
  std::size_t second_half = 0;
  for (const core::Task& t : trace.tasks()) {
    (t.arrival < cfg.duration / 2 ? first_half : second_half) += 1;
  }
  EXPECT_GT(second_half, first_half);
}

TEST(Judgegirl, RejectsBadConfig) {
  JudgegirlConfig cfg;
  cfg.num_problems = 0;
  EXPECT_THROW((void)generate_judgegirl(cfg, 1), PreconditionError);
  cfg = JudgegirlConfig{};
  cfg.burstiness = 0.5;
  EXPECT_THROW((void)generate_judgegirl(cfg, 1), PreconditionError);
}

TEST(BatchGenerator, ShapesStayInBounds) {
  for (const BatchShape shape :
       {BatchShape::kUniform, BatchShape::kLognormal, BatchShape::kBimodal}) {
    BatchConfig cfg;
    cfg.shape = shape;
    cfg.num_tasks = 200;
    const auto tasks = generate_batch(cfg, 5);
    ASSERT_EQ(tasks.size(), 200u);
    for (const core::Task& t : tasks) {
      EXPECT_GE(t.cycles, cfg.min_cycles);
      EXPECT_LE(t.cycles, cfg.max_cycles);
      EXPECT_TRUE(core::is_valid(t));
    }
  }
}

TEST(BatchGenerator, BimodalHasTwoModes) {
  BatchConfig cfg;
  cfg.shape = BatchShape::kBimodal;
  cfg.num_tasks = 400;
  const auto tasks = generate_batch(cfg, 9);
  const double mid =
      (static_cast<double>(cfg.min_cycles) + static_cast<double>(cfg.max_cycles)) / 2;
  std::size_t low = 0;
  std::size_t high = 0;
  for (const core::Task& t : tasks) {
    (static_cast<double>(t.cycles) < mid ? low : high) += 1;
  }
  EXPECT_GT(low, 100u);  // ~70%
  EXPECT_GT(high, 50u);  // ~30%
}

TEST(BatchGenerator, RejectsBadBounds) {
  BatchConfig cfg;
  cfg.min_cycles = 10;
  cfg.max_cycles = 9;
  EXPECT_THROW((void)generate_batch(cfg, 1), PreconditionError);
}

// -------------------------------------------------------------- estimators

TEST(ProfileEstimator, StoresAndLooksUp) {
  ProfileEstimator est;
  EXPECT_FALSE(est.has_profile("score_query"));
  est.set_profile("score_query", 3'000'000);
  EXPECT_TRUE(est.has_profile("score_query"));
  EXPECT_EQ(est.estimate("score_query"), 3'000'000u);
  est.set_profile("score_query", 4'000'000);  // replace
  EXPECT_EQ(est.estimate("score_query"), 4'000'000u);
  EXPECT_EQ(est.size(), 1u);
  EXPECT_THROW((void)est.estimate("unknown"), PreconditionError);
  EXPECT_THROW(est.set_profile("zero", 0), PreconditionError);
}

TEST(HistoricalAverage, PriorUntilDataThenMean) {
  HistoricalAverageEstimator est(3, 1'000'000);
  EXPECT_EQ(est.estimate(0), 1'000'000u);
  est.record(0, 200);
  est.record(0, 400);
  EXPECT_EQ(est.estimate(0), 300u);
  EXPECT_EQ(est.observations(0), 2u);
  // Other categories unaffected.
  EXPECT_EQ(est.estimate(1), 1'000'000u);
  EXPECT_EQ(est.observations(2), 0u);
}

TEST(HistoricalAverage, BoundsChecked) {
  HistoricalAverageEstimator est(2, 10);
  EXPECT_THROW((void)est.estimate(2), PreconditionError);
  EXPECT_THROW(est.record(2, 1), PreconditionError);
  EXPECT_THROW(est.record(0, 0), PreconditionError);
  EXPECT_THROW(HistoricalAverageEstimator(0, 10), PreconditionError);
}

TEST(HistoricalAverage, ConvergesOnJudgegirlStream) {
  // Feeding the generator's per-problem submissions, the estimate should
  // land near the configured per-problem mean.
  JudgegirlConfig cfg;
  cfg.non_interactive_tasks = 600;
  cfg.interactive_tasks = 0;
  cfg.num_problems = 1;  // single category keeps the check tight
  const Trace trace = generate_judgegirl(cfg, 77);
  HistoricalAverageEstimator est(1, 1);
  for (const core::Task& t : trace.tasks()) {
    est.record(0, t.cycles);
  }
  const double got = static_cast<double>(est.estimate(0));
  EXPECT_NEAR(got, cfg.base_judge_cycles, 0.2 * cfg.base_judge_cycles);
}

}  // namespace
}  // namespace dvfs::workload
