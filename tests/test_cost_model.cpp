#include "dvfs/core/cost_model.h"

#include <gtest/gtest.h>

#include <tuple>

namespace dvfs::core {
namespace {

CostTable table2_table(Money re = 0.1, Money rt = 0.4) {
  return CostTable(EnergyModel::icpp2014_table2(), CostParams{re, rt});
}

TEST(CostTable, BackwardCostFormula) {
  const CostTable t = table2_table();
  const EnergyModel& m = t.model();
  // C_B(k, p) = Re*E(p) + k*Rt*T(p) for a few spot checks.
  for (const std::size_t k : {1u, 2u, 17u}) {
    for (std::size_t r = 0; r < m.num_rates(); ++r) {
      EXPECT_DOUBLE_EQ(t.backward_cost(k, r),
                       0.1 * m.energy_per_cycle(r) +
                           static_cast<double>(k) * 0.4 * m.time_per_cycle(r));
    }
  }
}

TEST(CostTable, ForwardEqualsBackwardMirror) {
  const CostTable t = table2_table();
  const std::size_t n = 10;
  for (std::size_t k = 1; k <= n; ++k) {
    for (std::size_t r = 0; r < t.model().num_rates(); ++r) {
      EXPECT_DOUBLE_EQ(t.forward_cost(k, n, r),
                       t.backward_cost(n - k + 1, r));
    }
  }
}

TEST(CostTable, PositionZeroRejected) {
  const CostTable t = table2_table();
  EXPECT_THROW((void)t.backward_cost(0, 0), PreconditionError);
  EXPECT_THROW((void)t.best_rate(0), PreconditionError);
  EXPECT_THROW((void)t.forward_cost(0, 5, 0), PreconditionError);
  EXPECT_THROW((void)t.forward_cost(6, 5, 0), PreconditionError);
}

TEST(CostTable, InvalidParamsRejected) {
  EXPECT_THROW(CostTable(EnergyModel::icpp2014_table2(), CostParams{0.0, 1.0}),
               PreconditionError);
  EXPECT_THROW(CostTable(EnergyModel::icpp2014_table2(), CostParams{1.0, -1.0}),
               PreconditionError);
}

TEST(CostTable, BestCostIncreasesInBackwardPosition) {
  // Lemma 2 says the forward C(k) strictly decreases in k; since
  // C_B(k) = C(n - k + 1), the backward form strictly increases.
  const CostTable t = table2_table();
  for (std::size_t k = 1; k < 5000; ++k) {
    EXPECT_LT(t.best_backward_cost(k), t.best_backward_cost(k + 1));
  }
}

TEST(CostTable, RatesAreMonotoneInBackwardPosition) {
  // Deeper backward positions (more tasks waiting behind) never use a
  // slower rate.
  const CostTable t = table2_table();
  std::size_t prev = t.best_rate(1);
  for (std::size_t k = 2; k <= 5000; ++k) {
    const std::size_t r = t.best_rate(k);
    EXPECT_GE(r, prev);
    prev = r;
  }
  // Eventually the highest rate dominates.
  EXPECT_EQ(t.best_rate(1000000), t.model().rates().highest_index());
}

TEST(CostTable, RangesPartitionPositions) {
  const CostTable t = table2_table();
  std::size_t expect_lo = 1;
  for (const DominatingRange& r : t.ranges()) {
    EXPECT_EQ(r.range.lo, expect_lo);
    if (!r.range.unbounded()) expect_lo = r.range.hi + 1;
  }
  EXPECT_TRUE(t.ranges().back().range.unbounded());
}

TEST(CostTable, ActiveRatesAscend) {
  const CostTable t = table2_table();
  const auto active = t.active_rates();
  for (std::size_t i = 1; i < active.size(); ++i) {
    EXPECT_LT(active[i - 1], active[i]);
  }
}

TEST(CostTable, SingleRateModelAlwaysPicksIt) {
  const CostTable t(EnergyModel(RateSet({1.0}), {1.0}, {1.0}),
                    CostParams{1.0, 1.0});
  EXPECT_EQ(t.best_rate(1), 0u);
  EXPECT_EQ(t.best_rate(12345), 0u);
  EXPECT_EQ(t.ranges().size(), 1u);
}

// Property sweep: best_rate must agree with the naive argmin for many
// (Re, Rt) weightings and both beyond and within the cached prefix.
class CostTableSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CostTableSweep, EnvelopeAgreesWithNaiveArgmin) {
  const auto [re, rt] = GetParam();
  const CostTable t = table2_table(re, rt);
  for (std::size_t k = 1; k <= 2000; ++k) {
    const std::size_t fast = t.best_rate(k);
    const std::size_t naive = t.best_rate_naive(k);
    // Equal cost is acceptable (tie) but value must match exactly.
    ASSERT_NEAR(t.backward_cost(k, fast), t.backward_cost(k, naive),
                1e-12 * t.backward_cost(k, naive))
        << "k=" << k;
  }
  for (const std::size_t k : {5000u, 100000u, 10000000u}) {
    const std::size_t fast = t.best_rate(k);
    const std::size_t naive = t.best_rate_naive(k);
    ASSERT_NEAR(t.backward_cost(k, fast), t.backward_cost(k, naive),
                1e-12 * t.backward_cost(k, naive));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ReRtGrid, CostTableSweep,
    ::testing::Combine(::testing::Values(0.01, 0.1, 0.4, 1.0, 10.0),
                       ::testing::Values(0.01, 0.1, 0.4, 1.0, 10.0)));

// The cubic model across rate-set sizes must also agree with naive argmin.
class CostTableCubicSweep : public ::testing::TestWithParam<int> {};

TEST_P(CostTableCubicSweep, EnvelopeAgreesWithNaiveArgmin) {
  std::vector<Rate> rates;
  for (int i = 0; i < GetParam(); ++i) {
    rates.push_back(0.5 + 0.25 * i);
  }
  const CostTable t(EnergyModel::cubic(RateSet(rates)), CostParams{0.2, 0.3});
  for (std::size_t k = 1; k <= 500; ++k) {
    const std::size_t fast = t.best_rate(k);
    const std::size_t naive = t.best_rate_naive(k);
    ASSERT_NEAR(t.backward_cost(k, fast), t.backward_cost(k, naive),
                1e-12 * t.backward_cost(k, naive));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CostTableCubicSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

TEST(CostTableSharedCache, SameRateSetSharesOnePrecompute) {
  CostTable::clear_shared_cache();
  const CostTable a = table2_table();
  const auto after_first = CostTable::shared_cache_stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.entries, 1u);
  // Every further table on the same (rates, Re, Rt) is a cache hit and
  // shares the ranges storage outright (a multi-core homogeneous platform
  // builds R identical tables).
  const CostTable b = table2_table();
  const CostTable c = table2_table();
  const auto after_three = CostTable::shared_cache_stats();
  EXPECT_EQ(after_three.misses, 1u);
  EXPECT_GE(after_three.hits, 2u);
  EXPECT_EQ(a.ranges().data(), b.ranges().data());
  EXPECT_EQ(b.ranges().data(), c.ranges().data());
}

TEST(CostTableSharedCache, ChangedRateSetOrParamsMisses) {
  CostTable::clear_shared_cache();
  const CostTable a = table2_table();
  const CostTable b = table2_table(0.4, 0.1);  // swapped Re/Rt: new lines
  const CostTable c(EnergyModel::cubic(RateSet({0.5, 1.0, 1.5})),
                    CostParams{0.1, 0.4});
  const auto stats = CostTable::shared_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_NE(a.ranges().data(), b.ranges().data());
  EXPECT_NE(a.ranges().data(), c.ranges().data());
  // Distinct entries answer queries independently and correctly.
  for (std::size_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(a.best_rate(k), a.best_rate_naive(k));
    EXPECT_EQ(b.best_rate(k), b.best_rate_naive(k));
    EXPECT_EQ(c.best_rate(k), c.best_rate_naive(k));
  }
}

TEST(CostTableSharedCache, ClearKeepsLiveTablesUsable) {
  CostTable::clear_shared_cache();
  const CostTable t = table2_table();
  CostTable::clear_shared_cache();
  const auto stats = CostTable::shared_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  // The table's shared_ptr keeps the dropped entry alive.
  EXPECT_EQ(t.best_rate(1), t.best_rate_naive(1));
  EXPECT_FALSE(t.ranges().empty());
}

}  // namespace
}  // namespace dvfs::core
